#!/usr/bin/env python
"""Zero-label personalization with pseudo-labels + system persistence.

Extends the paper along its own future-work axis ("reduce the need for
labelled data"): after the cold-start assignment, the cluster
checkpoint pseudo-labels the new user's *unlabeled* stream and
fine-tunes on its own confident predictions.  Also demonstrates saving
the fitted CLEAR system to disk and reloading it — the cloud-to-edge
shipping step.

Run:  python examples/zero_label_personalization.py
"""

import tempfile
from pathlib import Path

from repro.core import (
    CLEAR,
    CLEARConfig,
    PseudoLabelConfig,
    load_system,
    pseudo_label_fine_tune,
    save_system,
)
from repro.datasets import SyntheticWEMAC, WEMACConfig


def main() -> None:
    print("=== Zero-label personalization ===\n")
    dataset = SyntheticWEMAC(WEMACConfig.small(seed=0)).generate()
    new_user = dataset.subjects[4]
    population = {
        s.subject_id: list(s.maps)
        for s in dataset.subjects
        if s.subject_id != new_user.subject_id
    }

    print("Fitting CLEAR on the cloud...")
    config = CLEARConfig.fast(seed=0)
    system = CLEAR(config).fit(population)

    with tempfile.TemporaryDirectory() as tmp:
        deploy_dir = Path(tmp) / "edge_bundle"
        save_system(system, deploy_dir)
        files = sorted(p.name for p in deploy_dir.iterdir())
        print(f"saved deployment bundle: {files}")
        edge_system = load_system(deploy_dir)
        print("reloaded system on the 'edge'\n")

    assignment = edge_system.assign_new_user(new_user.maps[:1])
    checkpoint = edge_system.model_for(assignment.cluster)
    stream = new_user.maps[1:6]  # unlabeled data accumulating on-device
    test_maps = new_user.maps[6:]
    print(
        f"new user {new_user.subject_id} -> cluster {assignment.cluster}; "
        f"{len(stream)} unlabeled maps on device"
    )

    before = checkpoint.evaluate(test_maps)
    print(f"accuracy before personalization: {before['accuracy']:.2%}")

    tuned, report = pseudo_label_fine_tune(
        checkpoint,
        stream,
        config=PseudoLabelConfig(fine_tuning=config.fine_tuning),
        seed=0,
    )
    print(
        f"pseudo-labels: {report.num_selected}/{report.num_candidates} maps "
        f"selected (mean confidence {report.mean_confidence:.2f}, "
        f"class counts {report.class_counts})"
    )
    after = tuned.evaluate(test_maps)
    print(f"accuracy after zero-label personalization: {after['accuracy']:.2%}")
    print("\nNo user labelling was required at any point.")


if __name__ == "__main__":
    main()
