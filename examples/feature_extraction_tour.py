#!/usr/bin/env python
"""Feature-extraction tour: raw physiological signals to 2D feature maps.

Walks the signal substrate end to end on one simulated trial:
BVP pulse detection and HRV, GSR tonic/phasic decomposition and SCR
counting, SKT trends, the 123-feature vector, and the F x W feature
map that feeds the CNN-LSTM.

Run:  python examples/feature_extraction_tour.py
"""

import numpy as np

from repro.datasets import FEAR, NON_FEAR, PhysiologicalSimulator, sample_subject
from repro.signals import (
    ALL_FEATURE_NAMES,
    FeatureExtractor,
    SensorRates,
    decompose_gsr,
    detect_pulse_peaks,
    detect_scrs,
    ibi_from_peaks,
)


def main() -> None:
    print("=== From raw signals to feature maps ===\n")
    rng = np.random.default_rng(0)
    simulator = PhysiologicalSimulator(fs_bvp=64.0, fs_gsr=4.0, fs_skt=4.0)
    profile = sample_subject(0, archetype_id=1, rng=rng)  # electrodermal
    print(f"virtual volunteer archetype: {profile.params.name}")
    print(f"  resting HR {profile.params.rest_hr_bpm:.1f} bpm, "
          f"SCL {profile.params.scl_base:.1f} uS\n")

    for label, name in ((NON_FEAR, "neutral video"), (FEAR, "fear video")):
        raw = simulator.simulate_trial(profile, label, duration=60.0, rng=rng)

        # BVP: beats and heart rate.
        peaks = detect_pulse_peaks(raw["bvp"], 64.0)
        ibis = ibi_from_peaks(peaks, 64.0)
        hr = 60.0 / ibis.mean() if ibis.size else float("nan")

        # GSR: tonic level and skin conductance responses.
        tonic, phasic = decompose_gsr(raw["gsr"], 4.0)
        scrs = detect_scrs(phasic, 4.0)

        print(f"--- {name} ---")
        print(f"  BVP: {peaks.size} beats detected, mean HR {hr:.1f} bpm, "
              f"RMSSD {np.sqrt(np.mean(np.diff(ibis)**2)) * 1e3:.1f} ms")
        print(f"  GSR: SCL {tonic.mean():.2f} uS, {scrs['peaks'].size} SCRs, "
              f"mean amplitude "
              f"{scrs['amplitudes'].mean() if scrs['amplitudes'].size else 0:.3f} uS")
        print(f"  SKT: {raw['skt'].mean():.2f} degC, "
              f"drift {(raw['skt'][-1] - raw['skt'][0]):+.3f} degC/min\n")

    # The 123-feature inventory.
    extractor = FeatureExtractor(
        rates=SensorRates(64.0, 4.0, 4.0), window_seconds=10.0
    )
    raw = simulator.simulate_trial(profile, FEAR, duration=60.0, rng=rng)
    vectors = extractor.extract_recording(raw["bvp"], raw["gsr"], raw["skt"])
    print(f"feature matrix for one trial: {vectors.shape} (windows x features)")

    groups = {
        "BVP (84)": [n for n in ALL_FEATURE_NAMES
                     if not n.startswith(("gsr", "scr", "skt"))],
        "GSR (34)": [n for n in ALL_FEATURE_NAMES if n.startswith(("gsr", "scr"))],
        "SKT (5)": [n for n in ALL_FEATURE_NAMES if n.startswith("skt")],
    }
    for group, names in groups.items():
        print(f"\n{group}: {len(names)} features, e.g. {', '.join(names[:6])} ...")

    fmap = vectors.T  # F x W, the paper's M matrix
    print(f"\n2D feature map M: {fmap.shape[0]} features x {fmap.shape[1]} windows")
    print("This matrix is what the CNN-LSTM consumes as an 'image'.")


if __name__ == "__main__":
    main()
