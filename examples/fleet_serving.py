#!/usr/bin/env python
"""Fleet serving: micro-batched inference for a population of users.

Fits a small CLEAR system on a synthetic WEMAC corpus, then serves a
48-user fleet through :class:`repro.serving.InferenceService`: users
arrive over virtual time, cold-start onto cluster checkpoints, stream
decisions that the micro-batcher coalesces into canonical-slab
``predict_many`` calls, and a few personalize mid-stream.  The run is
repeated sequentially (batch size 1) to show the decision streams are
**bit-identical** — batching is pure throughput, never a behaviour
change.

The second half replays a burst arrival against a tight admission
policy: excess requests shed to the population fallback (answered with
``FALLBACK`` health naming the queue depth) and the overflow beyond the
hard limit is rejected with a typed ``AdmissionError`` — every submit
accounted for.

Run:  python examples/fleet_serving.py
"""

from dataclasses import replace

from repro.core import (
    CLEAR,
    CLEARConfig,
    FineTuneConfig,
    ModelConfig,
    TrainingConfig,
)
from repro.datasets import SyntheticWEMAC, WEMACConfig
from repro.resilience.retry import FakeClock
from repro.serving import (
    AdmissionPolicy,
    BatchPolicy,
    InferenceService,
    LoadScenario,
    run_load,
    scenario_events,
)

CFG = CLEARConfig(
    num_clusters=4,
    subclusters_per_cluster=2,
    gc_refinements=3,
    model=ModelConfig(conv_filters=(4, 8), lstm_units=8, dropout=0.0),
    training=TrainingConfig(epochs=6, batch_size=8, early_stopping_patience=3),
    fine_tuning=FineTuneConfig(epochs=2),
    seed=0,
)

SCENARIO = LoadScenario(
    num_users=48,
    seed=7,
    arrival_span_s=10.0,
    decisions_per_user=3,
    decision_interval_s=5.0,
    cold_start_maps=2,
    fine_tune_fraction=0.1,
    fine_tune_after=1,
    fine_tune_maps=2,
    perturbation=0.05,
)

POLICY = BatchPolicy(max_batch=16, max_wait_s=2.0, canonical_rows=4)


def build_service(system, sequential=False, admission=None):
    return InferenceService(
        system,
        clock=FakeClock(),
        batch_policy=POLICY,
        admission=admission,
        sequential=sequential,
    )


def main():
    print("== Fit: cloud stage on the synthetic corpus ==")
    dataset = SyntheticWEMAC(WEMACConfig.tiny(seed=0)).generate()
    base_maps = {s.subject_id: list(s.maps) for s in dataset.subjects}
    system = CLEAR(CFG).fit(base_maps)
    print(f"clusters: {sorted(system.cluster_models)}")

    print(f"\n== Serve: {SCENARIO.num_users} synthetic users on virtual time ==")
    events = scenario_events(SCENARIO, base_maps)
    service = build_service(system)
    report = run_load(service, SCENARIO, base_maps, events=events)
    metrics = service.metrics()
    latency = report.latency_percentiles()
    print(f"decisions        : {len(report.results)}")
    print(f"personalizations : {report.personalizations}")
    print(f"mean batch size  : {metrics['mean_batch_size']:.1f}")
    print(f"virtual latency  : p50 {latency['p50']:.2f}s  p99 {latency['p99']:.2f}s")
    print(f"registry         : {metrics['registry']}")

    print("\n== Replay sequentially (batch size 1): bit-identity ==")
    sequential = run_load(
        build_service(system, sequential=True), SCENARIO, base_maps, events=events
    )
    assert report.fingerprint() == sequential.fingerprint()
    print(f"batched    fingerprint: {report.fingerprint()[:32]}…")
    print(f"sequential fingerprint: {sequential.fingerprint()[:32]}…  (identical)")

    print("\n== Burst arrival vs tight admission: graceful degradation ==")
    burst = replace(SCENARIO, arrival_span_s=0.0, fine_tune_fraction=0.0, seed=11)
    service = build_service(
        system, admission=AdmissionPolicy(max_pending=4, hard_limit=16)
    )
    overloaded = run_load(service, burst, base_maps)
    shed = [r for r in overloaded.results if r.health.used_fallback_model]
    print(f"decisions : {len(overloaded.results)}")
    print(f"shed      : {len(shed)} (answered by population fallback)")
    print(f"rejected  : {overloaded.rejections} (typed AdmissionError)")
    submitted = burst.num_users * burst.decisions_per_user
    assert len(overloaded.results) + overloaded.rejections == submitted
    if shed:
        print(f"example shed health: {shed[0].health.reasons[0]}")


if __name__ == "__main__":
    main()
