#!/usr/bin/env python
"""Edge deployment: quantize a CLEAR checkpoint for each platform.

Reproduces the flavour of the paper's Table II: accuracy under each
platform's numeric scheme (GPU fp32, Coral TPU int8, Pi+NCS2 fp16),
plus the analytic time/power cost model for inference and on-device
fine-tuning.

Run:  python examples/edge_deployment.py
"""

from repro.core import CLEAR, CLEARConfig
from repro.datasets import SyntheticWEMAC, WEMACConfig
from repro.edge import ALL_DEVICES, EdgeDeployment


def main() -> None:
    print("=== Cloud-edge deployment of CLEAR ===\n")
    dataset = SyntheticWEMAC(WEMACConfig.small(seed=0)).generate()
    # Pick a new user from the most common archetype so their cluster
    # model was trained on several similar volunteers.
    new_user = dataset.subjects[0]
    population = {
        s.subject_id: list(s.maps)
        for s in dataset.subjects
        if s.subject_id != new_user.subject_id
    }
    config = CLEARConfig.fast(seed=0)
    system = CLEAR(config).fit(population)

    assignment = system.assign_new_user(new_user.maps[:1])
    checkpoint = system.model_for(assignment.cluster)
    cluster_maps = [
        m
        for sid in system.gc.members(assignment.cluster)
        for m in population[sid]
    ]
    from numpy.random import default_rng

    from repro.datasets import split_maps_by_fraction

    ft_maps, test_maps = split_maps_by_fraction(
        new_user.maps[1:], 0.3, default_rng(0), stratified=True
    )
    print(
        f"new user {new_user.subject_id} -> cluster {assignment.cluster}; "
        f"evaluating on {len(test_maps)} maps\n"
    )

    header = (
        f"{'platform':<16}{'scheme':<8}{'acc':>7}{'acc+FT':>8}"
        f"{'test ms':>9}{'retrain s':>11}{'P(test) W':>11}"
    )
    print(header)
    print("-" * len(header))
    for device in ALL_DEVICES.values():
        deployment = EdgeDeployment(
            checkpoint, device, calibration_maps=cluster_maps[:8]
        )
        acc = deployment.evaluate(test_maps)["accuracy"]
        tuned = deployment.fine_tune_on_device(ft_maps, config.fine_tuning)
        acc_ft = tuned.evaluate(test_maps)["accuracy"]
        cost = deployment.cost_report(
            test_maps, ft_examples=len(ft_maps), ft_epochs=config.fine_tuning.epochs
        )
        print(
            f"{device.name:<16}{device.scheme:<8}{acc:>7.2%}{acc_ft:>8.2%}"
            f"{cost.test_time_s * 1e3:>9.1f}{cost.retrain_time_s:>11.1f}"
            f"{cost.power_test_w:>11.2f}"
        )

    print("\nTime/power shape of the paper's Table II: the TPU is ~5x faster")
    print("and draws about half the power of the Pi + NCS2 stack. On a single")
    print("easy user the accuracies can saturate; the aggregate int8 penalty")
    print("(TPU < NCS2 < GPU) appears in benchmarks/test_table2_*.py, which")
    print("averages over every LOSO fold.")


if __name__ == "__main__":
    main()
