#!/usr/bin/env python
"""Real-time streaming detection on a simulated wearable.

Demonstrates the edge runtime: raw BVP/GSR/SKT samples arrive in
1-second chunks, the streaming extractor windows them into 123-feature
vectors, a rolling feature map feeds the CNN-LSTM, and detections are
smoothed over time.  The stream alternates neutral and fear segments;
the detector should follow, with a short lag from windowing + smoothing.

The second half of the demo re-runs the session under a
:class:`DegradationPolicy` and kills the GSR electrode mid-stream: the
detector gates the dead channel, imputes its features from recent clean
windows, keeps every probability finite, and reports what it did in the
machine-readable ``HealthStatus`` attached to each detection.

Run:  python examples/realtime_streaming.py
"""

import numpy as np

from repro.core import ModelConfig, TrainingConfig, train_on_maps
from repro.datasets import FEAR, NON_FEAR, PhysiologicalSimulator, sample_subject
from repro.edge import OnlineDetector, StreamingFeatureExtractor
from repro.resilience import DegradationPolicy
from repro.signals import FeatureExtractor, SensorRates
from repro.signals.feature_map import build_feature_map

FS_BVP, FS_SLOW = 32.0, 4.0
WINDOW_S = 8.0
RATES = SensorRates(bvp=FS_BVP, gsr=FS_SLOW, skt=FS_SLOW)


def train_personal_model(profile, rng):
    """Pre-train a model on the wearer's enrollment data."""
    sim = PhysiologicalSimulator(FS_BVP, FS_SLOW, FS_SLOW)
    fe = FeatureExtractor(rates=RATES, window_seconds=WINDOW_S)
    maps = []
    for label in (NON_FEAR, FEAR) * 8:
        raw = sim.simulate_trial(profile, label, 4 * WINDOW_S, rng)
        vectors = fe.extract_recording(raw["bvp"], raw["gsr"], raw["skt"])
        maps.append(build_feature_map(vectors, label=label, subject_id=0))
    return train_on_maps(
        maps,
        ModelConfig(conv_filters=(4, 8), lstm_units=8, dropout=0.0),
        TrainingConfig(epochs=15, batch_size=8),
        seed=0,
    )


def main() -> None:
    print("=== Real-time streaming fear detection ===\n")
    rng = np.random.default_rng(0)
    profile = sample_subject(0, archetype_id=0, rng=rng, jitter=0.02)
    print("training enrollment model...")
    model = train_personal_model(profile, rng)

    stream = StreamingFeatureExtractor(RATES, window_seconds=WINDOW_S)
    detector = OnlineDetector(model, windows_per_map=4, streaming=stream, smoothing=3)

    # Simulate a session: 48 s neutral, 48 s fear, 48 s neutral.
    sim = PhysiologicalSimulator(FS_BVP, FS_SLOW, FS_SLOW)
    segments = [(NON_FEAR, 48.0), (FEAR, 48.0), (NON_FEAR, 48.0)]
    print("streaming session: neutral -> FEAR -> neutral\n")
    print(f"{'time':>6}  {'truth':<8}{'raw':<6}{'smoothed':<9}")

    for label, seconds in segments:
        raw = sim.simulate_trial(profile, label, seconds, rng)
        for i in range(int(seconds)):
            sl_b = slice(int(i * FS_BVP), int((i + 1) * FS_BVP))
            sl_s = slice(int(i * FS_SLOW), int((i + 1) * FS_SLOW))
            detections = detector.push(
                bvp=raw["bvp"][sl_b], gsr=raw["gsr"][sl_s], skt=raw["skt"][sl_s]
            )
            for d in detections:
                truth = "FEAR" if label == FEAR else "neutral"
                print(
                    f"{d.stream_time:>5.0f}s  {truth:<8}"
                    f"{d.raw_prediction:<6}{d.smoothed_prediction:<9}"
                )

    preds = [d.smoothed_prediction for d in detector.detections]
    print(f"\n{len(preds)} detections emitted over the session.")
    print("The detector should flip to 1 during the fear segment and back,")
    print("with a lag of roughly one feature map (windowing + smoothing).")

    degraded_mode_demo(model, profile, rng)


def degraded_mode_demo(model, profile, rng) -> None:
    """Re-run the stream with the GSR electrode dying halfway through."""
    print("\n=== Degraded mode: GSR electrode dies mid-stream ===\n")
    stream = StreamingFeatureExtractor(RATES, window_seconds=WINDOW_S)
    detector = OnlineDetector(
        model,
        windows_per_map=4,
        streaming=stream,
        smoothing=3,
        policy=DegradationPolicy(min_quality=0.5, impute="mean"),
    )

    sim = PhysiologicalSimulator(FS_BVP, FS_SLOW, FS_SLOW)
    seconds = 96.0
    raw = sim.simulate_trial(profile, FEAR, seconds, rng)
    death = seconds / 2.0
    print(f"GSR flatlines at t = {death:.0f}s\n")
    print(f"{'time':>6}  {'state':<10}{'gated':<8}{'imputed':<9}{'p(fear)':<9}reasons")

    for i in range(int(seconds)):
        sl_b = slice(int(i * FS_BVP), int((i + 1) * FS_BVP))
        sl_s = slice(int(i * FS_SLOW), int((i + 1) * FS_SLOW))
        gsr = raw["gsr"][sl_s]
        if i >= death:
            gsr = np.zeros_like(gsr)  # dead electrode
        detections = detector.push(bvp=raw["bvp"][sl_b], gsr=gsr, skt=raw["skt"][sl_s])
        for d in detections:
            h = d.health
            print(
                f"{d.stream_time:>5.0f}s  {h.state:<10}"
                f"{','.join(h.gated_channels) or '-':<8}"
                f"{h.imputed_features:<9}{d.probabilities[1]:<9.3f}"
                f"{'; '.join(h.reasons) or '-'}"
            )

    healthy = sum(d.health.ok for d in detector.detections)
    print(
        f"\n{len(detector.detections)} decisions: {healthy} healthy, "
        f"{len(detector.detections) - healthy} degraded/abstained."
    )
    print("Every probability stayed finite; the dead channel was imputed")
    print("from the running mean of clean windows, and HealthStatus records")
    print("exactly which windows to distrust (h.to_dict() is log-ready).")


if __name__ == "__main__":
    main()
