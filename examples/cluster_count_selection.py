#!/usr/bin/env python
"""Choosing K: the internal-index analysis behind the paper's K = 4.

The paper selects K = 4 clusters from a preliminary analysis balancing
intra-cluster similarity and inter-cluster separation.  This example
reruns that analysis on the synthetic corpus: silhouette,
Davies-Bouldin, Calinski-Harabasz and the inertia elbow across
candidate K, plus the resulting cluster sizes.

Run:  python examples/cluster_count_selection.py
"""

from collections import Counter

from repro.clustering import (
    GlobalClustering,
    StandardScaler,
    select_k,
    subject_matrix,
)
from repro.datasets import SyntheticWEMAC, WEMACConfig


def main() -> None:
    print("=== Selecting the number of clusters K ===\n")
    dataset = SyntheticWEMAC(WEMACConfig.small(seed=0)).generate()
    maps_by = {s.subject_id: list(s.maps) for s in dataset.subjects}

    signatures = StandardScaler().fit_transform(subject_matrix(maps_by))
    report = select_k(signatures, k_min=2, k_max=7, method="silhouette")

    header = f"{'K':>3}{'inertia':>12}{'silhouette':>12}{'DB':>8}{'CH':>10}"
    print(header)
    print("-" * len(header))
    for k in report.candidates:
        print(
            f"{k:>3}{report.inertias[k]:>12.1f}{report.silhouettes[k]:>12.3f}"
            f"{report.davies_bouldin[k]:>8.3f}{report.calinski_harabasz[k]:>10.1f}"
        )
    print(f"\nselected K = {report.selected_k} (method: {report.method})")

    # Fit GC at the selected K and compare against the latent archetypes.
    gc = GlobalClustering(k=report.selected_k, seed=0).fit(maps_by)
    truth = dataset.archetype_assignment()
    print(f"cluster sizes: {gc.cluster_sizes()}")
    print("cluster composition vs latent archetypes:")
    for cluster in range(gc.k):
        members = gc.members(cluster)
        counts = Counter(truth[m] for m in members)
        breakdown = ", ".join(
            f"archetype {a}: {c}" for a, c in sorted(counts.items())
        )
        print(f"  cluster {cluster} ({len(members)} users): {breakdown}")


if __name__ == "__main__":
    main()
