#!/usr/bin/env python
"""Adaptive re-assignment when a user's physiology drifts.

A deployed user starts in the cluster their cold-start assignment
picked.  Months later their physiology has changed (new medication,
fitness change, chronic stress) and another cluster fits better.  The
drift monitor notices from *unlabeled* data alone and recommends a
re-assignment — the adaptive-deep-learning loop the paper motivates.

The drift is simulated by switching the monitored data stream from one
volunteer to another volunteer of a different archetype.

Run:  python examples/drift_adaptation.py
"""

import numpy as np

from repro import viz
from repro.core import CLEAR, CLEARConfig, DriftDetector
from repro.datasets import SyntheticWEMAC, WEMACConfig


def main() -> None:
    print("=== Drift detection and adaptive re-assignment ===\n")
    dataset = SyntheticWEMAC(WEMACConfig.small(seed=0)).generate()
    maps_by = {s.subject_id: list(s.maps) for s in dataset.subjects}
    system = CLEAR(CLEARConfig.fast(seed=0)).fit(maps_by)

    # Two volunteers from different clusters play "before" and "after".
    sizes = system.gc.cluster_sizes()
    ordered = np.argsort(sizes)[::-1]
    home_cluster, away_cluster = int(ordered[0]), int(ordered[1])
    home_user = system.gc.members(home_cluster)[0]
    away_user = system.gc.members(away_cluster)[0]
    print(
        f"user starts in cluster {home_cluster} "
        f"(their own data: subject {home_user});"
    )
    print(
        f"after the 'life change' their physiology looks like subject "
        f"{away_user} (cluster {away_cluster})\n"
    )

    detector = DriftDetector(
        system.assigner, home_cluster, window_maps=4, patience=2
    )

    stream = maps_by[home_user][:8] + maps_by[away_user][:8]
    print(f"{'check':>6}{'assigned score':>16}{'best other':>12}{'drift?':>8}")
    for i in range(0, len(stream), 2):
        obs = detector.update(stream[i : i + 2])
        if obs is None:
            continue
        print(
            f"{obs.check_index:>6}{obs.assigned_score:>16.3f}"
            f"{obs.best_other_score:>12.3f}{'YES' if obs.drifted else 'no':>8}"
        )
        if detector.reassignment_recommended:
            target = detector.recommended_cluster()
            print(
                f"\n-> sustained drift: re-assigning from cluster "
                f"{detector.assigned_cluster} to cluster {target}"
            )
            detector.reset(new_cluster=target)

    final = detector.assigned_cluster
    print(f"\nfinal cluster: {final} (expected {away_cluster})")

    # Show the final CA score profile.
    result = system.assigner.assign(stream[-4:])
    print("\nfinal cold-start score profile (lower = better fit):")
    print(viz.assignment_scores(result.scores))


if __name__ == "__main__":
    main()
