#!/usr/bin/env python
"""Cold-start deep dive: how unsupervised cluster assignment behaves.

For every volunteer in turn (LOSO): fit CLEAR without them, then assign
them from progressively larger *unlabeled* data slices and report (a)
how often the assignment matches where GC would place them with full
data, and (b) the accuracy gap between the assigned cluster's model and
the other clusters' models (the paper's RT CLEAR contrast).

Run:  python examples/cold_start_new_user.py
"""

import numpy as np

from repro.core import CLEAR, CLEARConfig
from repro.datasets import SyntheticWEMAC, WEMACConfig
from repro.signals import subject_signature


def main() -> None:
    print("=== Cold-start cluster assignment study ===\n")
    dataset = SyntheticWEMAC(WEMACConfig.small(seed=0)).generate()
    config = CLEARConfig.fast(seed=0)

    # Keep the demo quick: LOSO over the first few volunteers.
    volunteers = dataset.subjects[:4]
    slice_sizes = (1, 2, 4)
    match_counts = {n: 0 for n in slice_sizes}
    assigned_accs, foreign_accs = [], []

    for record in volunteers:
        population = {
            s.subject_id: list(s.maps)
            for s in dataset.subjects
            if s.subject_id != record.subject_id
        }
        system = CLEAR(config).fit(population)

        # Where would GC place this user given all their data?
        reference = system.gc.assign_signature(subject_signature(record.maps))

        print(f"new user {record.subject_id} (GC reference cluster {reference}):")
        for n in slice_sizes:
            result = system.assign_new_user(record.maps[:n])
            match = result.cluster == reference
            match_counts[n] += match
            scores = ", ".join(
                f"c{c}={s:.2f}" for c, s in sorted(result.scores.items())
            )
            print(
                f"  {n} unlabeled map(s): cluster {result.cluster} "
                f"({'match' if match else 'MISS'}; scores {scores})"
            )

        # Accuracy contrast: assigned cluster vs the other clusters.
        assignment = system.assign_new_user(record.maps[:1])
        test_maps = record.maps[1:]
        own = system.model_for(assignment.cluster).evaluate(test_maps)["accuracy"]
        others = [
            system.model_for(c).evaluate(test_maps)["accuracy"]
            for c in range(config.num_clusters)
            if c != assignment.cluster
        ]
        assigned_accs.append(own)
        foreign_accs.append(float(np.mean(others)))
        print(
            f"  accuracy: assigned model {own:.2%} vs "
            f"other clusters {np.mean(others):.2%}\n"
        )

    print("--- summary ---")
    for n in slice_sizes:
        print(
            f"assignment consistency with {n} map(s): "
            f"{match_counts[n]}/{len(volunteers)}"
        )
    print(
        f"mean accuracy: assigned {np.mean(assigned_accs):.2%} "
        f"vs foreign {np.mean(foreign_accs):.2%} "
        "(the RT CLEAR contrast from Table I)"
    )


if __name__ == "__main__":
    main()
