#!/usr/bin/env python
"""Cold-start deep dive: how unsupervised cluster assignment behaves.

For every volunteer in turn (LOSO): fit CLEAR without them, then assign
them from progressively larger *unlabeled* data slices and report (a)
how often the assignment matches where GC would place them with full
data, and (b) the accuracy gap between the assigned cluster's model and
the other clusters' models (the paper's RT CLEAR contrast).

The demo ends with the degradation-aware path: when the assignment
margin is too small to trust any single cluster checkpoint,
``predict_with_health`` falls back to the population-average model and
says so in its ``HealthStatus``.

Run:  python examples/cold_start_new_user.py
"""

import numpy as np

from repro.core import CLEAR, CLEARConfig
from repro.datasets import SyntheticWEMAC, WEMACConfig
from repro.resilience import DegradationPolicy
from repro.signals import subject_signature


def main() -> None:
    print("=== Cold-start cluster assignment study ===\n")
    dataset = SyntheticWEMAC(WEMACConfig.small(seed=0)).generate()
    config = CLEARConfig.fast(seed=0)

    # Keep the demo quick: LOSO over the first few volunteers.
    volunteers = dataset.subjects[:4]
    slice_sizes = (1, 2, 4)
    match_counts = {n: 0 for n in slice_sizes}
    assigned_accs, foreign_accs = [], []

    for record in volunteers:
        population = {
            s.subject_id: list(s.maps)
            for s in dataset.subjects
            if s.subject_id != record.subject_id
        }
        system = CLEAR(config).fit(population)

        # Where would GC place this user given all their data?
        reference = system.gc.assign_signature(subject_signature(record.maps))

        print(f"new user {record.subject_id} (GC reference cluster {reference}):")
        for n in slice_sizes:
            result = system.assign_new_user(record.maps[:n])
            match = result.cluster == reference
            match_counts[n] += match
            scores = ", ".join(
                f"c{c}={s:.2f}" for c, s in sorted(result.scores.items())
            )
            print(
                f"  {n} unlabeled map(s): cluster {result.cluster} "
                f"({'match' if match else 'MISS'}; scores {scores})"
            )

        # Accuracy contrast: assigned cluster vs the other clusters.
        assignment = system.assign_new_user(record.maps[:1])
        test_maps = record.maps[1:]
        own = system.model_for(assignment.cluster).evaluate(test_maps)["accuracy"]
        others = [
            system.model_for(c).evaluate(test_maps)["accuracy"]
            for c in range(config.num_clusters)
            if c != assignment.cluster
        ]
        assigned_accs.append(own)
        foreign_accs.append(float(np.mean(others)))
        print(
            f"  accuracy: assigned model {own:.2%} vs "
            f"other clusters {np.mean(others):.2%}\n"
        )

    print("--- summary ---")
    for n in slice_sizes:
        print(
            f"assignment consistency with {n} map(s): "
            f"{match_counts[n]}/{len(volunteers)}"
        )
    print(
        f"mean accuracy: assigned {np.mean(assigned_accs):.2%} "
        f"vs foreign {np.mean(foreign_accs):.2%} "
        "(the RT CLEAR contrast from Table I)"
    )

    fallback_demo(system, record)


def fallback_demo(system, record) -> None:
    """Low-confidence assignment -> population-average fallback model."""
    print("\n--- degradation-aware cold start ---")
    maps = list(record.maps)

    # Normal confidence: the cluster checkpoint is trusted.
    preds, health = system.predict_with_health(maps)
    print(
        f"default policy:   state={health.state:<9} "
        f"fallback={health.used_fallback_model} "
        f"margin={health.assignment_margin:.3f}"
    )

    # Paranoid policy: demand an unattainable margin, forcing the
    # population-average fallback (nobody's best model, everybody's
    # safest) -- the HealthStatus says exactly why.
    policy = DegradationPolicy(min_assignment_margin=1e6)
    preds, health = system.predict_with_health(maps, policy=policy)
    print(
        f"paranoid policy:  state={health.state:<9} "
        f"fallback={health.used_fallback_model} "
        f"reasons={list(health.reasons)}"
    )
    print(
        f"fallback predictions still valid: "
        f"{np.bincount(preds, minlength=2)} (non-fear/fear counts)"
    )


if __name__ == "__main__":
    main()
