#!/usr/bin/env python
"""Privacy-preserving pre-training with clustered federated averaging.

The paper's edge stage already preserves privacy (new users keep their
data on-device).  This example extends the guarantee to the *cloud*
stage: a cluster's model is trained by FedAvg across its member
subjects, so even the initial volunteers never upload raw physiological
data — only weight updates and pooled normalization moments.

Run:  python examples/federated_pretraining.py
"""

import numpy as np

from repro import viz
from repro.clustering import GlobalClustering
from repro.core import (
    CLEARConfig,
    FederatedConfig,
    federated_train_cluster,
    train_on_maps,
)
from repro.datasets import SyntheticWEMAC, WEMACConfig


def main() -> None:
    print("=== Federated per-cluster pre-training ===\n")
    dataset = SyntheticWEMAC(WEMACConfig.small(seed=0)).generate()
    maps_by = {s.subject_id: list(s.maps) for s in dataset.subjects}
    config = CLEARConfig.fast(seed=0)

    gc = GlobalClustering(k=config.num_clusters, seed=0).fit(maps_by)
    cluster = int(np.argmax(gc.cluster_sizes()))
    members = gc.members(cluster)
    held_out = members[0]
    clients = {sid: maps_by[sid] for sid in members[1:]}
    print(
        f"cluster {cluster}: {len(clients)} federated clients, "
        f"subject {held_out} held out for evaluation\n"
    )

    # Centralized baseline: the paper's cloud stage (pools raw data).
    all_maps = [m for maps in clients.values() for m in maps]
    central = train_on_maps(all_maps, config.model, config.training, seed=0)
    central_acc = central.evaluate(maps_by[held_out])["accuracy"]

    # Federated: raw maps never leave a client.
    print("running FedAvg rounds...")
    federated, history = federated_train_cluster(
        clients,
        config.model,
        FederatedConfig(rounds=8, local_epochs=2, learning_rate=2e-3, seed=0),
    )
    fed_acc = federated.evaluate(maps_by[held_out])["accuracy"]

    print("\nmean client loss per round:")
    print("  " + viz.sparkline(history.round_losses))
    for i, loss in enumerate(history.round_losses):
        print(f"  round {i + 1}: {loss:.3f}")

    print(f"\nheld-out subject accuracy:")
    print(f"  centralized (pools raw data): {central_acc:.2%}")
    print(f"  federated   (privacy kept):   {fed_acc:.2%}")
    print("\nThe normalization statistics are pooled with the exact")
    print("pooled-moments identity, so no accuracy is lost to privacy there.")


if __name__ == "__main__":
    main()
