#!/usr/bin/env python
"""Quickstart: the full CLEAR story in one script.

1. Generate a synthetic WEMAC-like corpus (virtual volunteers drawn
   from physiological archetypes).
2. Fit the CLEAR cloud stage: global clustering + one CNN-LSTM per
   cluster.
3. Cold-start a brand-new user from a small slice of *unlabeled* data.
4. Fine-tune the assigned cluster checkpoint with a few labelled maps.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import CLEAR, CLEARConfig
from repro.datasets import SyntheticWEMAC, WEMACConfig


def main() -> None:
    print("=== CLEAR quickstart ===\n")

    # -- 1. Data ---------------------------------------------------------
    print("Generating synthetic WEMAC corpus (16 volunteers)...")
    dataset = SyntheticWEMAC(WEMACConfig.small(seed=0)).generate()
    print(f"  corpus: {dataset.summary()}\n")

    # Hold one volunteer out to play the role of the new user.
    new_user = dataset.subjects[-1]
    population = {
        s.subject_id: list(s.maps)
        for s in dataset.subjects
        if s.subject_id != new_user.subject_id
    }

    # -- 2. Cloud stage ----------------------------------------------------
    print("Fitting CLEAR cloud stage (GC + per-cluster CNN-LSTM)...")
    system = CLEAR(CLEARConfig.fast(seed=0)).fit(population)
    print(f"  cluster sizes: {system.cluster_sizes()}")
    for cluster, model in system.cluster_models.items():
        members = system.gc.members(cluster)
        maps = [m for sid in members for m in population[sid]]
        acc = model.evaluate(maps)["accuracy"]
        print(f"  cluster {cluster}: {len(members)} users, train acc {acc:.2%}")
    print()

    # -- 3. Cold start ------------------------------------------------------
    # The new user provides ~10 % of their data, with NO labels.
    ca_maps = new_user.maps[:1]
    assignment = system.assign_new_user(ca_maps)
    print(
        f"Cold-start assignment for new user {new_user.subject_id}: "
        f"cluster {assignment.cluster} (margin {assignment.margin():.3f})"
    )
    held_back = new_user.maps[1:]
    wo_ft = system.model_for(assignment.cluster).evaluate(held_back)
    print(f"  accuracy without fine-tuning: {wo_ft['accuracy']:.2%}\n")

    # -- 4. Fine-tuning -----------------------------------------------------
    # ~20 % labelled data, stratified so both classes are represented.
    from repro.datasets import split_maps_by_fraction

    ft_maps, test_maps = split_maps_by_fraction(
        held_back, 0.25, np.random.default_rng(0), stratified=True
    )
    print(f"Fine-tuning with {len(ft_maps)} labelled maps...")
    baseline = system.model_for(assignment.cluster).evaluate(test_maps)
    personalized = system.personalize(ft_maps, cluster=assignment.cluster)
    w_ft = personalized.evaluate(test_maps)
    print(f"  accuracy before fine-tuning:  {baseline['accuracy']:.2%}")
    print(f"  accuracy after fine-tuning:   {w_ft['accuracy']:.2%}")
    print(f"  F1 after fine-tuning:         {w_ft['f1']:.2%}")
    print("\nDone: cold-start solved without labels; personalization with a")
    print("handful of labelled maps improved the cluster checkpoint.")


if __name__ == "__main__":
    main()
