"""Ablations: signal-artifact robustness and the GC algorithm choice.

Wearable deployments see corrupted signals; this bench measures how
classification degrades with artifact severity and how much a quality
gate recovers.  A second bench swaps the GC clustering algorithm
(k-means refinement vs agglomerative/Ward) and compares archetype
purity — a design choice DESIGN.md calls out.
"""

from collections import Counter

import numpy as np
import pytest

from repro.clustering import (
    GlobalClustering,
    StandardScaler,
    agglomerative_labels,
    subject_matrix,
)
from repro.signals import (
    FeatureExtractor,
    SensorRates,
    assess_quality,
    inject_dropout,
    inject_motion_spikes,
)
from repro.signals.feature_map import build_feature_map


@pytest.fixture(scope="module")
def subject_and_model(bench_dataset, bench_config):
    """A trained cluster model + its cluster's subjects for corruption."""
    from repro.core import train_on_maps

    maps_by = {s.subject_id: list(s.maps) for s in bench_dataset.subjects}
    gc = GlobalClustering(k=bench_config.num_clusters, seed=0).fit(maps_by)
    largest = int(np.argmax(gc.cluster_sizes()))
    members = gc.members(largest)
    test_subject = members[0]
    train_maps = [m for sid in members[1:] for m in maps_by[sid]]
    model = train_on_maps(
        train_maps, bench_config.model, bench_config.training, seed=0
    )
    return model, bench_dataset.subject(test_subject)


def _corrupted_maps(record, dataset_cfg, severity, rng):
    """Re-simulate the subject's trials with artifact injection."""
    from repro.datasets import PhysiologicalSimulator

    sim = PhysiologicalSimulator(
        dataset_cfg.fs_bvp, dataset_cfg.fs_gsr, dataset_cfg.fs_skt
    )
    fe = FeatureExtractor(
        rates=SensorRates(
            bvp=dataset_cfg.fs_bvp, gsr=dataset_cfg.fs_gsr, skt=dataset_cfg.fs_skt
        ),
        window_seconds=dataset_cfg.window_seconds,
    )
    maps = []
    qualities = []
    for trial in record.schedule.trials:
        raw = sim.simulate_trial(record.profile, trial.label, trial.duration_seconds, rng)
        bvp = raw["bvp"]
        if severity > 0:
            bvp = inject_motion_spikes(
                bvp, rng, rate_per_minute=20.0 * severity, fs=dataset_cfg.fs_bvp
            )
            bvp = inject_dropout(bvp, rng, 0.15 * severity, dataset_cfg.fs_bvp)
        qualities.append(assess_quality(bvp).overall)
        vectors = fe.extract_recording(bvp, raw["gsr"], raw["skt"])
        maps.append(
            build_feature_map(
                vectors[: dataset_cfg.windows_per_map],
                label=trial.label,
                subject_id=record.subject_id,
            )
        )
    return maps, qualities


def test_ablation_artifact_robustness(
    subject_and_model, bench_dataset, benchmark
):
    model, record = subject_and_model
    cfg = bench_dataset.config

    def run():
        rng = np.random.default_rng(0)
        lines = ["Ablation -- accuracy vs signal-artifact severity"]
        lines.append(f"{'severity':>9}{'mean quality':>14}{'accuracy':>10}")
        series = {}
        for severity in (0.0, 0.5, 1.0, 2.0):
            maps, qualities = _corrupted_maps(record, cfg, severity, rng)
            acc = model.evaluate(maps)["accuracy"]
            lines.append(
                f"{severity:>9.1f}{np.mean(qualities):>14.2f}{acc * 100:>10.2f}"
            )
            series[severity] = (acc, float(np.mean(qualities)))
        return "\n".join(lines), series

    text, series = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + text)

    # Quality index must fall monotonically with severity.
    qualities = [series[s][1] for s in sorted(series)]
    assert all(a >= b - 0.05 for a, b in zip(qualities, qualities[1:]))
    # The pipeline must never crash and should retain better-than-random
    # behaviour at mild severity.
    assert series[0.5][0] >= 0.3


def _maps_with_channel_dropout(record, dataset_cfg, channel, rate, rng):
    """Re-simulate the subject's trials with one channel partially dropped."""
    from repro.datasets import PhysiologicalSimulator
    from repro.resilience.faults import ChannelDropout, FaultPlan

    sim = PhysiologicalSimulator(
        dataset_cfg.fs_bvp, dataset_cfg.fs_gsr, dataset_cfg.fs_skt
    )
    fs = {
        "bvp": dataset_cfg.fs_bvp,
        "gsr": dataset_cfg.fs_gsr,
        "skt": dataset_cfg.fs_skt,
    }
    fe = FeatureExtractor(
        rates=SensorRates(bvp=fs["bvp"], gsr=fs["gsr"], skt=fs["skt"]),
        window_seconds=dataset_cfg.window_seconds,
    )
    plan = FaultPlan(
        f"sweep_{channel}_{rate}",
        (ChannelDropout(channel, fraction=rate),) if rate > 0 else (),
        seed=0,
    )
    maps = []
    for trial in record.schedule.trials:
        raw = sim.simulate_trial(
            record.profile, trial.label, trial.duration_seconds, rng
        )
        corrupted = plan.apply_to_signals(raw, fs, rng=rng)
        vectors = fe.extract_recording(
            corrupted["bvp"], corrupted["gsr"], corrupted["skt"]
        )
        maps.append(
            build_feature_map(
                vectors[: dataset_cfg.windows_per_map],
                label=trial.label,
                subject_id=record.subject_id,
            )
        )
    return maps


def test_ablation_fault_severity_sweep(
    subject_and_model, bench_dataset, benchmark
):
    """Accuracy vs channel-dropout severity, per modality.

    The degradation curve behind the resilience runtime: how much
    accuracy each modality's loss costs, and that a fully-dead channel
    degrades the classifier instead of crashing it.
    """
    model, record = subject_and_model
    cfg = bench_dataset.config
    rates = (0.0, 0.25, 0.5, 0.75)
    channels = ("bvp", "gsr", "skt")

    def run():
        series = {}
        for channel in channels:
            rng = np.random.default_rng(1)
            for rate in rates:
                maps = _maps_with_channel_dropout(record, cfg, channel, rate, rng)
                series[(channel, rate)] = model.evaluate(maps)["accuracy"]
        lines = ["Ablation -- accuracy vs channel-dropout severity"]
        header = f"{'channel':>9}" + "".join(f"{r:>8.2f}" for r in rates)
        lines.append(header)
        for channel in channels:
            lines.append(
                f"{channel:>9}"
                + "".join(f"{series[(channel, r)] * 100:>8.1f}" for r in rates)
            )
        return "\n".join(lines), series

    text, series = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + text)

    # Sweep must complete for every (modality, rate) cell without a
    # crash and yield valid accuracies.
    assert len(series) == len(rates) * len(channels)
    assert all(0.0 <= acc <= 1.0 for acc in series.values())
    # The uncorrupted column is the same stream regardless of channel.
    baseline = {series[(c, 0.0)] for c in channels}
    assert len(baseline) == 1
    assert baseline.pop() >= 0.5


def test_ablation_gc_algorithm(bench_dataset, benchmark):
    """k-means GC refinement vs agglomerative Ward on archetype purity."""
    maps_by = {s.subject_id: list(s.maps) for s in bench_dataset.subjects}
    truth = bench_dataset.archetype_assignment()
    ordered_ids = sorted(maps_by)

    def purity(labels):
        total = 0
        for c in np.unique(labels):
            members = [truth[ordered_ids[i]] for i in np.flatnonzero(labels == c)]
            total += Counter(members).most_common(1)[0][1]
        return total / len(ordered_ids)

    def run():
        signatures = StandardScaler().fit_transform(subject_matrix(maps_by))
        gc = GlobalClustering(k=4, seed=0).fit(maps_by)
        km_labels = np.array([gc.assignments[sid] for sid in ordered_ids])
        results = {
            "kmeans+refinement": purity(km_labels),
            "agglomerative/ward": purity(agglomerative_labels(signatures, 4, "ward")),
            "agglomerative/avg": purity(
                agglomerative_labels(signatures, 4, "average")
            ),
        }
        lines = ["Ablation -- GC clustering algorithm (archetype purity)"]
        for name, value in results.items():
            lines.append(f"  {name:<22} {value:.2f}")
        return "\n".join(lines), results

    text, results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + text)
    assert all(v >= 0.5 for v in results.values())
