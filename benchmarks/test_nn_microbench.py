"""Microbenchmarks of the numpy nn substrate (throughput sanity).

Not a paper table; these pin the cost of the primitives every
experiment above is built from, so performance regressions in the
substrate are visible.

``test_backend_speedup_cnn_lstm`` additionally records the optimized
vs. reference backend trajectory on the paper's CNN-LSTM (forward +
backward, batch grid) into ``BENCH_nn.json`` at the repo root.  Each
backend is timed in its own contiguous block — interleaving them makes
the reference backend's float64 working set evict the optimized
backend's float32 workspaces between steps, which benchmarks the cache
thrash instead of the kernels.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro import nn
from repro.core import build_cnn_lstm
from repro.edge import QuantizedModel
from repro.nn.backends import get_backend

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_nn.json"

#: (batch, timed iterations) — batch 32 is the headline configuration.
BACKEND_GRID = ((16, 30), (32, 25), (64, 10), (128, 6))
HEADLINE_BATCH = 32
#: CI regression floor for the headline ratio.  Measured speedup on an
#: AVX2 single-core host is ~4.8-5.2x (see BENCH_nn.json); the floor is
#: set well below that so shared-runner noise cannot flake the job,
#: while still catching any real regression of the optimized path.
MIN_HEADLINE_SPEEDUP = 3.5


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


@pytest.fixture(scope="module")
def conv_layer(rng):
    layer = nn.Conv2D(16, 3, padding="same")
    x = rng.normal(size=(8, 8, 32, 32))
    layer.ensure_built(x, rng)
    return layer, x


@pytest.fixture(scope="module")
def lstm_layer(rng):
    layer = nn.LSTM(64)
    x = rng.normal(size=(8, 16, 128))
    layer.ensure_built(x, rng)
    return layer, x


def test_conv2d_forward(conv_layer, benchmark):
    layer, x = conv_layer
    benchmark(layer.forward, x)


def test_conv2d_backward(conv_layer, benchmark):
    layer, x = conv_layer
    out = layer.forward(x)
    grad = np.ones_like(out)
    benchmark(layer.backward, grad)


def test_lstm_forward(lstm_layer, benchmark):
    layer, x = lstm_layer
    benchmark(layer.forward, x)


def test_lstm_backward(lstm_layer, benchmark):
    layer, x = lstm_layer
    layer.forward(x)
    grad = np.ones((8, 64))
    benchmark(layer.backward, grad)


def test_cnn_lstm_train_batch(rng, benchmark):
    model = build_cnn_lstm((1, 123, 8), seed=0).compile(
        "softmax_cross_entropy", nn.Adam(1e-3)
    )
    x = rng.normal(size=(16, 1, 123, 8))
    y = rng.integers(0, 2, 16)
    benchmark(model.train_batch, x, y)


def test_float_vs_int8_inference(rng, benchmark):
    model = build_cnn_lstm((1, 123, 8), seed=0)
    x = rng.normal(size=(8, 1, 123, 8))
    model.forward(x)
    quantized = QuantizedModel(model, scheme="int8", calibration_x=x)
    benchmark(quantized.predict, x)


def _train_step(backend_name, batch, rng):
    """A forward+backward step closure on the paper CNN-LSTM.

    Input is float32 so each backend applies its own dtype policy
    (reference promotes to float64, optimized stays float32) — the
    comparison is end-to-end serving cost, not like-for-like dtypes.
    """
    model = build_cnn_lstm((1, 123, 8), seed=0)
    model.set_backend(get_backend(backend_name))
    loss = nn.SoftmaxCrossEntropy()
    x = rng.normal(size=(batch, 1, 123, 8)).astype(np.float32)
    y = rng.integers(0, 2, batch)

    def step():
        out = model.forward(x, training=True)
        model.backward(loss.grad(out, y))

    return step


def _best_median_ms(step, iters, warmup=5, repeats=3):
    """Best-of-``repeats`` block medians (timeit's repeat+min advice).

    Host noise only ever inflates wall times, so the minimum across
    blocks is the least-perturbed estimate; the median within a block
    discards stragglers.
    """
    for _ in range(warmup):
        step()
    medians = []
    for _ in range(repeats):
        times = []
        for _ in range(iters):
            t0 = time.perf_counter()
            step()
            times.append(time.perf_counter() - t0)
        medians.append(np.median(times))
    return float(min(medians) * 1e3)


def _merge_report(section, payload):
    report = {}
    if BENCH_PATH.exists():
        report = json.loads(BENCH_PATH.read_text())
    report[section] = payload
    report["note"] = (
        "single-core wall times; ratios are environment-dependent "
        "(BLAS build, cache sizes) — the asserted invariant is the "
        "headline-batch speedup floor, not the absolute times"
    )
    BENCH_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def test_backend_speedup_cnn_lstm(rng):
    """Optimized vs reference backend on the CNN-LSTM train step.

    Records the full batch grid into ``BENCH_nn.json`` and asserts the
    headline-batch ratio stays above the regression floor.
    """
    grid = {}
    for batch, iters in BACKEND_GRID:
        ref_ms = _best_median_ms(_train_step("reference", batch, rng), iters)
        opt_ms = _best_median_ms(_train_step("optimized", batch, rng), iters)
        grid[str(batch)] = {
            "reference_ms": round(ref_ms, 3),
            "optimized_ms": round(opt_ms, 3),
            "speedup": round(ref_ms / opt_ms, 2),
        }
        print(
            f"\n[nn] batch {batch}: reference {ref_ms:.2f}ms, "
            f"optimized {opt_ms:.2f}ms ({ref_ms / opt_ms:.2f}x)"
        )
    headline = grid[str(HEADLINE_BATCH)]["speedup"]
    _merge_report(
        "cnn_lstm_train_step",
        {
            "input_shape": [1, 123, 8],
            "grid": grid,
            "headline_batch": HEADLINE_BATCH,
            "headline_speedup": headline,
            "min_speedup_asserted": MIN_HEADLINE_SPEEDUP,
        },
    )
    assert headline >= MIN_HEADLINE_SPEEDUP, (
        f"optimized backend regressed: {headline:.2f}x < "
        f"{MIN_HEADLINE_SPEEDUP}x at batch {HEADLINE_BATCH}"
    )


@pytest.mark.smoke
def test_backend_equivalence_smoke(rng):
    """Reference and optimized forwards are bit-identical on float64.

    The CI-fast guarantee check: same CNN-LSTM, same float64 input,
    both backends — outputs must match to the last bit (the optimized
    float32 serving path is covered by tests/nn/test_backends.py).
    """
    x = rng.normal(size=(4, 1, 123, 8))
    outs = {}
    for name in ("reference", "optimized"):
        model = build_cnn_lstm((1, 123, 8), seed=0)
        model.set_backend(get_backend(name))
        outs[name] = model.forward(x, training=False)
    np.testing.assert_array_equal(outs["reference"], outs["optimized"])
