"""Microbenchmarks of the numpy nn substrate (throughput sanity).

Not a paper table; these pin the cost of the primitives every
experiment above is built from, so performance regressions in the
substrate are visible.
"""

import numpy as np
import pytest

from repro import nn
from repro.core import build_cnn_lstm
from repro.edge import QuantizedModel


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


@pytest.fixture(scope="module")
def conv_layer(rng):
    layer = nn.Conv2D(16, 3, padding="same")
    x = rng.normal(size=(8, 8, 32, 32))
    layer.ensure_built(x, rng)
    return layer, x


@pytest.fixture(scope="module")
def lstm_layer(rng):
    layer = nn.LSTM(64)
    x = rng.normal(size=(8, 16, 128))
    layer.ensure_built(x, rng)
    return layer, x


def test_conv2d_forward(conv_layer, benchmark):
    layer, x = conv_layer
    benchmark(layer.forward, x)


def test_conv2d_backward(conv_layer, benchmark):
    layer, x = conv_layer
    out = layer.forward(x)
    grad = np.ones_like(out)
    benchmark(layer.backward, grad)


def test_lstm_forward(lstm_layer, benchmark):
    layer, x = lstm_layer
    benchmark(layer.forward, x)


def test_lstm_backward(lstm_layer, benchmark):
    layer, x = lstm_layer
    layer.forward(x)
    grad = np.ones((8, 64))
    benchmark(layer.backward, grad)


def test_cnn_lstm_train_batch(rng, benchmark):
    model = build_cnn_lstm((1, 123, 8), seed=0).compile(
        "softmax_cross_entropy", nn.Adam(1e-3)
    )
    x = rng.normal(size=(16, 1, 123, 8))
    y = rng.integers(0, 2, 16)
    benchmark(model.train_batch, x, y)


def test_float_vs_int8_inference(rng, benchmark):
    model = build_cnn_lstm((1, 123, 8), seed=0)
    x = rng.normal(size=(8, 1, 123, 8))
    model.forward(x)
    quantized = QuantizedModel(model, scheme="int8", calibration_x=x)
    benchmark(quantized.predict, x)
