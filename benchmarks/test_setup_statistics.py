"""Section IV-A setup statistics: corpus shape, feature split, clusters.

The paper reports ~800 feature maps from the WEMAC corpus, 123 features
(34 GSR + 84 BVP + 5 SKT), K = 4 clusters of sizes 17/13/7/7.  This
bench regenerates those statistics for the synthetic corpus at both the
bench scale and (structurally) the paper scale.
"""

import numpy as np
import pytest

from repro.clustering import GlobalClustering
from repro.datasets import WEMACConfig
from repro.signals import (
    BVP_FEATURE_NAMES,
    GSR_FEATURE_NAMES,
    NUM_FEATURES,
    SKT_FEATURE_NAMES,
)


def test_setup_statistics(bench_dataset, bench_config, benchmark):
    def assemble():
        summary = bench_dataset.summary()
        maps_by = {s.subject_id: list(s.maps) for s in bench_dataset.subjects}
        gc = GlobalClustering(k=bench_config.num_clusters, seed=0).fit(maps_by)
        lines = ["Section IV-A -- experimental setup statistics"]
        lines.append(
            f"  volunteers: {int(summary['num_subjects'])} "
            "(paper: 44-47)"
        )
        lines.append(
            f"  feature maps: {int(summary['num_maps'])} at bench scale "
            f"({WEMACConfig().num_subjects * WEMACConfig().trials_per_subject} "
            "at paper scale; paper: ~800)"
        )
        lines.append(
            f"  features: {int(summary['num_features'])} "
            f"= {len(BVP_FEATURE_NAMES)} BVP + {len(GSR_FEATURE_NAMES)} GSR "
            f"+ {len(SKT_FEATURE_NAMES)} SKT (paper: 123 = 84 + 34 + 5)"
        )
        sizes = sorted(gc.cluster_sizes(), reverse=True)
        lines.append(
            f"  K = {bench_config.num_clusters} cluster sizes: {sizes} "
            "(paper: [17, 13, 7, 7])"
        )
        lines.append(
            f"  fear fraction: {summary['fear_fraction']:.2f} (binary task)"
        )
        return "\n".join(lines)

    print("\n" + benchmark.pedantic(assemble, rounds=1, iterations=1))

    # Setup invariants from §IV-A.
    assert NUM_FEATURES == 123
    assert len(BVP_FEATURE_NAMES) == 84
    assert len(GSR_FEATURE_NAMES) == 34
    assert len(SKT_FEATURE_NAMES) == 5
    cfg = WEMACConfig()
    assert 700 <= cfg.num_subjects * cfg.trials_per_subject <= 900
    # Cluster sizes are skewed like the paper's 17/13/7/7, not uniform.
    maps_by = {s.subject_id: list(s.maps) for s in bench_dataset.subjects}
    gc = GlobalClustering(k=bench_config.num_clusters, seed=0).fit(maps_by)
    sizes = sorted(gc.cluster_sizes(), reverse=True)
    assert sizes[0] >= 2 * sizes[-1] or sizes[0] - sizes[-1] >= 3
    for fmap in bench_dataset.all_maps()[:20]:
        assert fmap.num_features == 123
    print("setup invariants hold")
