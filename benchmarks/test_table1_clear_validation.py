"""Table I: CLEAR validation on the (synthetic) WEMAC fear task.

Regenerates every measured row of the paper's Table I — General Model,
RT CL, CL validation, RT CLEAR, CLEAR w/o FT, CLEAR w FT — and prints
them next to the paper's values.  Absolute numbers differ (synthetic
corpus, reduced scale); the assertions pin the *orderings* the paper's
conclusions rest on.
"""

import pytest

from repro.core import (
    PAPER_TABLE1_REFERENCES,
    PAPER_TABLE1_RESULTS,
    cl_validation,
    clear_validation,
    evaluate_general_model,
    render_table,
)
from conftest import BENCH_FOLDS


@pytest.fixture(scope="module")
def table1(bench_dataset, bench_config):
    general = evaluate_general_model(
        bench_dataset,
        bench_config,
        group_size=max(2, bench_dataset.num_subjects // bench_config.num_clusters),
        max_folds=BENCH_FOLDS,
    )
    cl = cl_validation(bench_dataset, bench_config, max_folds=2 * BENCH_FOLDS)
    clear = clear_validation(bench_dataset, bench_config, max_folds=BENCH_FOLDS)
    return general, cl, clear


def test_table1_rows(table1, benchmark):
    """Print the full Table I reproduction (timing: table assembly)."""
    general, cl, clear = table1

    def assemble():
        rows = [
            general,
            cl.rt_cl,
            cl.cl,
            clear.rt_clear,
            clear.without_ft,
            clear.with_ft,
        ]
        return render_table(
            rows,
            title=(
                "Table I -- fear / non-fear on synthetic WEMAC "
                "(paper values right)"
            ),
            paper_rows={**PAPER_TABLE1_RESULTS, **PAPER_TABLE1_REFERENCES},
        )

    text = benchmark.pedantic(assemble, rounds=1, iterations=1)
    print("\n" + text)
    print(f"\ncluster sizes: {cl.cluster_sizes}  (paper: 17/13/7/7)")
    matches = sum(clear.assignment_matches_gc.values())
    print(
        f"cold-start assignments matching GC reference: "
        f"{matches}/{len(clear.assignment_matches_gc)}"
    )

    # The paper's Table I orderings must survive the reproduction.
    # 1. Clustering beats the no-clustering General model.
    assert cl.cl.accuracy_mean > general.accuracy_mean
    # 2. RT CL collapses: cluster models do not transfer across clusters.
    assert cl.rt_cl.accuracy_mean < cl.cl.accuracy_mean - 5.0
    # 3. Cold-start CLEAR w/o FT clearly beats the robustness test.
    assert clear.without_ft.accuracy_mean > cl.rt_cl.accuracy_mean
    assert clear.rt_clear.accuracy_mean < clear.without_ft.accuracy_mean
    # 4. The headline: fine-tuning with 20 % labels lifts accuracy
    #    (paper: 80.63 -> 86.34).
    assert clear.with_ft.accuracy_mean > clear.without_ft.accuracy_mean
    print("all Table I orderings hold")
