"""Ablation: pseudo-label (zero-label) personalization vs supervised FT.

Extension of the paper's future-work direction ("reduce the need for
labelled data"): compares the cluster checkpoint as-is, pseudo-label
fine-tuning (no labels from the user), and supervised fine-tuning
(20 % labels, the paper's protocol) on the same LOSO folds.
"""

import pytest

from repro.core import (
    FoldMetrics,
    MetricSummary,
    PseudoLabelConfig,
    pseudo_label_fine_tune,
)


def test_ablation_pseudo_labels(edge_folds, bench_config, benchmark):
    def run():
        no_ft = MetricSummary("no FT")
        pseudo = MetricSummary("pseudo-label FT (0 labels)")
        supervised = MetricSummary("supervised FT (20% labels)")
        selected_counts = []
        for fold in edge_folds:
            base = fold.checkpoint.evaluate(fold.test_maps)
            no_ft.add(FoldMetrics(base["accuracy"], base["f1"], fold.subject_id))

            # Pseudo-label personalization uses the test pool WITHOUT
            # labels (they are stripped by prediction).
            tuned, report = pseudo_label_fine_tune(
                fold.checkpoint,
                fold.test_maps,
                config=PseudoLabelConfig(fine_tuning=bench_config.fine_tuning),
                seed=0,
            )
            selected_counts.append(report.num_selected)
            m = tuned.evaluate(fold.test_maps)
            pseudo.add(FoldMetrics(m["accuracy"], m["f1"], fold.subject_id))

            sup = fold.tuned.evaluate(fold.test_maps)
            supervised.add(FoldMetrics(sup["accuracy"], sup["f1"], fold.subject_id))

        lines = ["Ablation -- zero-label pseudo-label FT vs supervised FT"]
        for summary in (no_ft, pseudo, supervised):
            lines.append(
                f"  {summary.name:<28} acc {summary.accuracy_mean:6.2f} "
                f"+- {summary.accuracy_std:.2f}"
            )
        lines.append(
            f"  pseudo-labels selected per fold: {selected_counts}"
        )
        return "\n".join(lines), no_ft, pseudo, supervised

    text, no_ft, pseudo, supervised = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print("\n" + text)

    # Pseudo-labeling must not catastrophically hurt, and real labels
    # should be at least as good as zero labels.
    assert pseudo.accuracy_mean >= no_ft.accuracy_mean - 10.0
    assert supervised.accuracy_mean >= pseudo.accuracy_mean - 10.0
