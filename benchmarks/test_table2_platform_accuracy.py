"""Table II (upper): CLEAR w/o FT accuracy per deployment platform.

Deploys the best per-fold cluster checkpoints onto each platform's
numeric scheme (GPU fp32, Coral TPU int8, Pi + NCS2 fp16), evaluates
the new user's held-back maps, and prints the paper's upper Table II
rows including the RT CLEAR contrast per platform.
"""

import numpy as np
import pytest

from repro.core import FoldMetrics, MetricSummary
from repro.edge import ALL_DEVICES, EdgeDeployment

#: The paper's Table II upper rows for side-by-side printing.
PAPER_UPPER = {
    "GPU (baseline)": (80.63, 79.97),
    "Coral TPU": (74.17, 73.57),
    "Pi + NCS2": (79.03, 78.48),
}


@pytest.fixture(scope="module")
def platform_rows(edge_folds):
    rows = {}
    rt_rows = {}
    for key, device in ALL_DEVICES.items():
        summary = MetricSummary(device.name)
        rt_summary = MetricSummary(f"RT CLEAR on {device.name}")
        for fold in edge_folds:
            deployment = EdgeDeployment(
                fold.checkpoint, device, calibration_maps=fold.calibration_maps
            )
            m = deployment.evaluate(fold.test_maps)
            summary.add(FoldMetrics(m["accuracy"], m["f1"], fold.subject_id))
            other = [
                EdgeDeployment(
                    ckpt, device, calibration_maps=fold.calibration_maps
                ).evaluate(fold.test_maps)
                for ckpt in fold.other_checkpoints
            ]
            rt_summary.add(
                FoldMetrics(
                    float(np.mean([o["accuracy"] for o in other])),
                    float(np.mean([o["f1"] for o in other])),
                    fold.subject_id,
                )
            )
        rows[key] = summary
        rt_rows[key] = rt_summary
    return rows, rt_rows


def test_table2_upper(platform_rows, benchmark):
    rows, rt_rows = platform_rows

    def assemble():
        lines = [
            "Table II (upper) -- platform accuracy, CLEAR w/o FT "
            "(paper values right)"
        ]
        header = (
            f"{'platform':<18}{'acc':>8}{'std':>7}{'f1':>8}{'std':>7}"
            f"{'paper acc':>11}{'paper f1':>10}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for key in ("gpu", "coral_tpu", "pi_ncs2"):
            summary = rows[key]
            p_acc, p_f1 = PAPER_UPPER[summary.name]
            lines.append(
                f"{summary.name:<18}{summary.accuracy_mean:>8.2f}"
                f"{summary.accuracy_std:>7.2f}{summary.f1_mean:>8.2f}"
                f"{summary.f1_std:>7.2f}{p_acc:>11.2f}{p_f1:>10.2f}"
            )
            rt = rt_rows[key]
            lines.append(
                f"{'  RT CLEAR':<18}{rt.accuracy_mean:>8.2f}"
                f"{rt.accuracy_std:>7.2f}{rt.f1_mean:>8.2f}{rt.f1_std:>7.2f}"
            )
        return "\n".join(lines)

    print("\n" + benchmark.pedantic(assemble, rounds=1, iterations=1))

    # Table II (upper) orderings.
    # 1. The int8-only TPU does not meaningfully beat the fp32 GPU (the
    #    paper's 8-bit penalty).  A few points of tolerance absorbs
    #    small-fold-count noise: int8 perturbations can flip borderline
    #    predictions either way on individual users.
    assert rows["coral_tpu"].accuracy_mean <= rows["gpu"].accuracy_mean + 5.0
    # 2. fp16 NCS2 tracks the GPU accuracy.
    assert abs(rows["pi_ncs2"].accuracy_mean - rows["gpu"].accuracy_mean) < 10.0
    # 3. The assigned cluster beats foreign clusters on every platform.
    for key in rows:
        assert rows[key].accuracy_mean > rt_rows[key].accuracy_mean
    print("all Table II (upper) orderings hold")
