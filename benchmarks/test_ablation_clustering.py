"""Ablations on the clustering side of CLEAR.

DESIGN.md calls out three design choices the paper fixes without
sweeping: the number of clusters K (= 4), the amount of unlabeled data
used for cold-start assignment (10 %), and the sub-cluster depth used
by CA.  These benches sweep each one.
"""

import numpy as np
import pytest

from repro.clustering import (
    ColdStartAssigner,
    GlobalClustering,
    StandardScaler,
    build_subclusters,
    silhouette_score,
    subject_matrix,
)


@pytest.fixture(scope="module")
def maps_by(bench_dataset):
    return {s.subject_id: list(s.maps) for s in bench_dataset.subjects}


@pytest.fixture(scope="module")
def gc4(maps_by):
    return GlobalClustering(k=4, seed=0).fit(maps_by)


def _ca_consistency(gc, assigner, maps_by, n_maps=1):
    """Fraction of users CA routes to their GC cluster from n unlabeled maps."""
    hits = sum(
        assigner.assign(maps[:n_maps]).cluster == gc.assignments[sid]
        for sid, maps in maps_by.items()
    )
    return hits / len(maps_by)


def test_ablation_k_sweep(maps_by, bench_dataset, benchmark):
    """Silhouette + archetype purity across K (the paper picks K = 4)."""

    def run():
        signatures = StandardScaler().fit_transform(subject_matrix(maps_by))
        truth = bench_dataset.archetype_assignment()
        ordered_ids = sorted(maps_by)
        lines = ["Ablation -- cluster count K (paper fixes K = 4)"]
        lines.append(f"{'K':>3}{'silhouette':>12}{'purity':>9}{'sizes':>20}")
        results = {}
        for k in (2, 3, 4, 5, 6):
            gc = GlobalClustering(k=k, seed=0).fit(maps_by)
            labels = np.array([gc.assignments[sid] for sid in ordered_ids])
            sil = silhouette_score(signatures, labels)
            purity = 0
            for c in range(k):
                members = gc.members(c)
                if members:
                    archetypes = [truth[m] for m in members]
                    purity += max(archetypes.count(a) for a in set(archetypes))
            purity /= len(ordered_ids)
            sizes = sorted(gc.cluster_sizes(), reverse=True)
            lines.append(f"{k:>3}{sil:>12.3f}{purity:>9.2f}{str(sizes):>20}")
            results[k] = (sil, purity)
        return "\n".join(lines), results

    text, results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + text)
    # K = 4 (the true archetype count) should maximize purity.
    best_purity_k = max(results, key=lambda k: results[k][1])
    assert best_purity_k >= 4


def test_ablation_ca_data_fraction(maps_by, gc4, benchmark):
    """CA consistency vs amount of unlabeled data (paper uses 10 %)."""
    subs = build_subclusters(gc4, maps_by, 3)
    assigner = ColdStartAssigner(gc4, subs)

    def run():
        lines = ["Ablation -- unlabeled maps given to cold-start CA"]
        lines.append(f"{'maps':>6}{'consistency':>13}")
        series = {}
        for n in (1, 2, 4, 8):
            rate = _ca_consistency(gc4, assigner, maps_by, n_maps=n)
            lines.append(f"{n:>6}{rate:>13.2f}")
            series[n] = rate
        return "\n".join(lines), series

    text, series = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + text)
    # More unlabeled data never hurts much; full data should be >= 1 map.
    assert series[8] >= series[1] - 0.05
    assert series[1] >= 0.6  # even one map mostly suffices (the cold start)


def test_ablation_subcluster_depth(maps_by, gc4, benchmark):
    """CA consistency vs sub-clusters per cluster I_k (paper's hierarchy)."""

    def run():
        lines = ["Ablation -- sub-clusters per cluster used by CA"]
        lines.append(f"{'I_k':>5}{'consistency':>13}")
        series = {}
        for i_k in (1, 2, 3, 5):
            subs = build_subclusters(gc4, maps_by, i_k)
            assigner = ColdStartAssigner(gc4, subs)
            rate = _ca_consistency(gc4, assigner, maps_by, n_maps=1)
            lines.append(f"{i_k:>5}{rate:>13.2f}")
            series[i_k] = rate
        return "\n".join(lines), series

    text, series = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + text)
    assert all(rate >= 0.5 for rate in series.values())


def test_ablation_gc_refinement(maps_by, benchmark):
    """Effect of the iterative GC refinement loop vs plain k-means."""

    def run():
        plain = GlobalClustering(k=4, n_refinements=0, seed=0).fit(maps_by)
        refined = GlobalClustering(k=4, n_refinements=10, seed=0).fit(maps_by)
        moved = sum(
            plain.assignments[sid] != refined.assignments[sid]
            for sid in plain.assignments
        )
        return (
            "Ablation -- GC refinement loop\n"
            f"  users reassigned by refinement: {moved}/{len(plain.assignments)}\n"
            f"  refined converged: {refined.converged} "
            f"after {refined.n_refinements} rounds"
        )

    print("\n" + benchmark.pedantic(run, rounds=1, iterations=1))
