"""Scenario scaling bench: streamed populations at 100k subjects.

The headline claim of the streaming population interface: a
100k-subject scenario runs generate → extract → cluster → score end to
end with peak memory bounded by the chunk size, never by the
population.  This bench asserts that bound (tracemalloc peak against a
chunk-proportional budget, far below the materialized-population
estimate) and records the cross-scenario accuracy matrix — every
registered scenario clustered in exact and minibatch modes — plus
streamed-vs-materialized bit-identity at bench scale, into
``BENCH_scenarios.json`` at the repo root.

``pytest benchmarks/test_scenario_scaling.py -m smoke`` runs only the
tier-1-safe tiny variant (3 scenarios x tiny scale, seconds, suitable
for CI).  The full ``-m scenario`` run takes a few minutes; set
``REPRO_SCENARIO_SUBJECTS`` to change the scale-test population
(default 100000).
"""

import json
import os
import resource
import time
import tracemalloc
from pathlib import Path

import numpy as np
import pytest

from repro.clustering.streaming import fit_signature_matrix
from repro.scenarios import (
    available_scenarios,
    circumplex_scenario,
    get_scenario,
    run_scenario_stream,
    scenario_fingerprint,
)
from repro.signals.feature_map import signature_matrix

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_scenarios.json"

SCALE_SUBJECTS = int(os.environ.get("REPRO_SCENARIO_SUBJECTS", "100000"))
SCALE_CHUNK = 512
#: Bytes of map payload one subject carries in the scale scenario
#: (maps x windows x features x float64).
_SCALE_MAPS = 2
_SCALE_WINDOWS = 2
_SUBJECT_BYTES = _SCALE_MAPS * _SCALE_WINDOWS * 123 * 8


def _merge_report(section, payload):
    report = {}
    if REPORT_PATH.exists():
        report = json.loads(REPORT_PATH.read_text())
    report[section] = payload
    report["note"] = (
        "wall times and RSS are environment-dependent; the asserted "
        "invariants are streamed==materialized bit-identity and the "
        "chunk-proportional tracemalloc peak of the 100k streaming run"
    )
    REPORT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def _scale_scenario(num_subjects):
    return circumplex_scenario(
        num_subjects=num_subjects,
        seed=0,
        maps_per_subject=_SCALE_MAPS,
        windows_per_map=_SCALE_WINDOWS,
        chunk_size=SCALE_CHUNK,
    )


# -- smoke tier (CI): 3 scenarios x tiny scale ---------------------------


@pytest.mark.smoke
@pytest.mark.scenario
@pytest.mark.parametrize("name", sorted(available_scenarios()))
def test_smoke_streamed_equals_materialized(name):
    scenario = get_scenario(name, scale="tiny", seed=0)
    streamed = scenario_fingerprint(scenario.iter_subjects(chunk_size=3))
    materialized = scenario_fingerprint(scenario.materialize().subjects)
    assert streamed == materialized


@pytest.mark.smoke
@pytest.mark.scenario
def test_smoke_matrix_and_bit_identity():
    matrix = {}
    for name in sorted(available_scenarios()):
        scenario = get_scenario(name, scale="tiny", seed=0)
        report = run_scenario_stream(scenario, n_init=4, sample_size=32)
        # The streamed exact fit must be bitwise the materialized fit.
        full = signature_matrix(scenario.materialize().subjects)
        batch = fit_signature_matrix(
            full, scenario.num_archetypes, n_init=4, seed=scenario.seed
        )
        assert np.array_equal(report.model.centers, batch.centers)
        record = report.score.to_dict()
        record["streamed_equals_materialized"] = True
        matrix[name] = record
    assert set(matrix) == set(available_scenarios())
    _merge_report("smoke_matrix", matrix)


# -- full tier: bench-scale matrix + the 100k memory bound ----------------


@pytest.mark.scenario
def test_cross_scenario_accuracy_matrix():
    matrix = {}
    for name in sorted(available_scenarios()):
        scenario = get_scenario(name, scale="bench", seed=0)
        population = scenario.materialize()
        streamed = scenario_fingerprint(scenario.iter_subjects(chunk_size=17))
        identical = streamed == scenario_fingerprint(population.subjects)
        assert identical, f"{name}: streamed != materialized at bench scale"
        cells = {}
        # WEMAC simulates physiology (~0.5 s/subject), so it gets the
        # exact cell only; the feature-space scenarios are cheap enough
        # to run both modes.
        modes = ("exact",) if name == "wemac" else ("exact", "minibatch")
        for mode in modes:
            t0 = time.perf_counter()
            report = run_scenario_stream(scenario, mode=mode, n_init=8)
            record = report.score.to_dict()
            record["wall_s"] = round(time.perf_counter() - t0, 3)
            assert 0.0 <= record["archetype_purity"] <= 1.0
            assert record["cluster_sizes"] and sum(
                record["cluster_sizes"]
            ) == scenario.num_subjects
            cells[mode] = record
        matrix[name] = {
            "num_subjects": scenario.num_subjects,
            "streamed_equals_materialized": identical,
            "modes": cells,
        }
    _merge_report("cross_scenario_matrix", matrix)


@pytest.mark.scenario
def test_minibatch_chunk_size_tradeoff():
    scenario = get_scenario("circumplex", scale="bench", seed=0)
    rows = {}
    for chunk in (64, 256):
        first = run_scenario_stream(
            scenario, mode="minibatch", chunk_size=chunk
        )
        second = run_scenario_stream(
            scenario, mode="minibatch", chunk_size=chunk
        )
        # Minibatch centers depend on chunking but never on the run.
        np.testing.assert_array_equal(
            first.model.centers, second.model.centers
        )
        rows[str(chunk)] = {
            "inertia": round(first.score.inertia, 6),
            "archetype_purity": first.score.archetype_purity,
            "n_updates": int(first.model.n_updates),
        }
    _merge_report("minibatch_chunk_tradeoff", rows)


@pytest.mark.scenario
def test_scale_streaming_peak_memory_bounded_by_chunk():
    """The headline: 100k subjects end to end, peak RAM ~ chunk size."""
    scenario = _scale_scenario(SCALE_SUBJECTS)
    materialized_estimate = SCALE_SUBJECTS * _SUBJECT_BYTES
    # Generous chunk-proportional budget: the live chunk (maps + the
    # per-chunk signature matrix + executor scratch) plus a fixed
    # interpreter/numpy overhead.  What matters is that it does NOT
    # scale with SCALE_SUBJECTS.
    chunk_budget = 48 * 1024 * 1024 + 64 * SCALE_CHUNK * _SUBJECT_BYTES
    tracemalloc.start()
    t0 = time.perf_counter()
    report = run_scenario_stream(
        scenario, mode="minibatch", chunk_size=SCALE_CHUNK, sample_size=256
    )
    wall = time.perf_counter() - t0
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    assert report.score.num_subjects == SCALE_SUBJECTS
    assert report.score.contingency.sum() == SCALE_SUBJECTS
    assert np.isfinite(report.model.centers).all()
    assert peak < chunk_budget, (
        f"streaming peak {peak / 1e6:.1f} MB exceeds the "
        f"chunk-proportional budget {chunk_budget / 1e6:.1f} MB"
    )
    if SCALE_SUBJECTS >= 20_000:
        assert peak < materialized_estimate / 4, (
            f"peak {peak / 1e6:.1f} MB is not clearly below the "
            f"materialized estimate {materialized_estimate / 1e6:.1f} MB"
        )
    _merge_report(
        "scale_streaming",
        {
            "num_subjects": SCALE_SUBJECTS,
            "chunk_size": SCALE_CHUNK,
            "mode": "minibatch",
            "wall_s": round(wall, 3),
            "tracemalloc_peak_mb": round(peak / 1e6, 3),
            "chunk_budget_mb": round(chunk_budget / 1e6, 3),
            "materialized_estimate_mb": round(materialized_estimate / 1e6, 3),
            "ru_maxrss_mb": round(
                resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0, 3
            ),
            "archetype_purity": report.score.archetype_purity,
            "nmi": round(report.score.nmi, 6),
        },
    )
