"""Fleet-scale serving load bench: micro-batching vs per-user predicts.

Drives :class:`repro.serving.InferenceService` through deterministic
load-generator scenarios (synthetic WEMAC users arriving, cold-starting,
streaming decisions, fine-tuning) in three configurations over the same
event schedule:

- ``batched``   — the serving path: same-cluster requests coalesced into
  ``forward_many`` canonical slabs under the max-batch/max-wait policy.
- ``sequential_canonical`` — one request per flush on the *same* slab
  shape; the bit-identity reference (identical fingerprint required).
- ``sequential_unpadded``  — one request per flush, no padding: the
  pre-serving status quo (per-user ``OnlineDetector.predict``-style
  calls) and the honest speedup denominator.

The headline test (≥1000 users) records p50/p99 latency, sustained
decisions/sec, speedup, and shed rate into ``BENCH_serving.json``; the
overload test records shed/reject rates under a burst arrival.  Wall
times are environment-dependent — the asserted invariants are
bit-identity, the speedup floor, and shed-rate bounds.

``pytest benchmarks/test_serving_load.py -m smoke`` runs the tier-1-safe
tiny-corpus variant (seconds, suitable for CI).
"""

import json
import time
from dataclasses import replace
from pathlib import Path

import pytest

from repro.core import (
    CLEAR,
    CLEARConfig,
    FineTuneConfig,
    ModelConfig,
    TrainingConfig,
)
from repro.datasets import SyntheticWEMAC, WEMACConfig
from repro.resilience.retry import FakeClock
from repro.serving import (
    AdmissionPolicy,
    BatchPolicy,
    InferenceService,
    LoadScenario,
    run_load,
    scenario_events,
)

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_serving.json"

#: Headline serving policy.  ``canonical_rows=8`` keeps per-row cost
#: near the full-batch optimum even when a bucket flushes partially
#: filled (a 64-row flush is 8 slabs; a 20-row flush is 2 full slabs
#: plus one padded one) — small slabs waste at most 7 padded rows per
#: flush, where ``canonical_rows=64`` would pad 44.
HEADLINE_POLICY = BatchPolicy(max_batch=64, max_wait_s=2.0, canonical_rows=8)

#: Identity/speedup runs must not shed: shedding depends on queue depth,
#: which differs between batched and sequential execution.
WIDE_OPEN = AdmissionPolicy(max_pending=10**6, hard_limit=2 * 10**6)

#: Floor for batched throughput over sequential unpadded predicts.  The
#: quiet-host measurement is ~2.3-2.4x (the amortization ceiling of the
#: CNN-LSTM forward at this map size is ~2.5x, see BENCH_serving.json);
#: the smoke floor is lower so shared-runner noise cannot flake CI.
MIN_HEADLINE_SPEEDUP = 2.0
MIN_SMOKE_SPEEDUP = 1.1

#: Pure decision throughput: no fine-tuning events, so the three modes
#: differ only in how forwards are batched (``personalize`` quiesces the
#: queue with a drain, which flushes partial buckets and adds identical
#: fine-tune wall time to every mode — measuring that would dilute the
#: batching ratio without informing it).  The fine-tuning leg of the
#: user lifecycle is exercised by the burst scenario below and by
#: tests/serving/test_loadgen.py.
HEADLINE_SCENARIO = LoadScenario(
    num_users=1000,
    seed=3,
    arrival_span_s=20.0,
    decisions_per_user=6,
    decision_interval_s=5.0,
    cold_start_maps=2,
    fine_tune_fraction=0.0,
    perturbation=0.05,
)

BURST_SCENARIO = LoadScenario(
    num_users=300,
    seed=5,
    arrival_span_s=0.0,
    decisions_per_user=4,
    decision_interval_s=5.0,
    cold_start_maps=2,
    fine_tune_fraction=0.01,
    fine_tune_after=2,
    fine_tune_maps=2,
    perturbation=0.05,
)


def _service(system, policy, sequential=False, admission=WIDE_OPEN):
    return InferenceService(
        system,
        clock=FakeClock(),
        batch_policy=policy,
        admission=admission,
        sequential=sequential,
        wall_timer=time.perf_counter,
    )


def _timed_run(system, policy, scenario, base_maps, events, sequential=False):
    service = _service(system, policy, sequential=sequential)
    start = time.perf_counter()
    report = run_load(service, scenario, base_maps, events=events)
    return service, report, time.perf_counter() - start


def _merge_report(section, payload):
    report = {}
    if BENCH_PATH.exists():
        report = json.loads(BENCH_PATH.read_text())
    report[section] = payload
    report["note"] = (
        "single-core wall times on a quiet host; decisions/sec and "
        "speedups are environment-dependent (BLAS build, cache sizes) — "
        "the asserted invariants are batched≡sequential bit-identity, "
        "the headline speedup floor, and shed-rate bounds, not the "
        "absolute times"
    )
    BENCH_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="module")
def fleet(bench_dataset):
    """A CLEAR system fit on the bench corpus + its map dictionary."""
    base_maps = {s.subject_id: list(s.maps) for s in bench_dataset.subjects}
    system = CLEAR(CLEARConfig.fast(seed=0)).fit(base_maps)
    return system, base_maps


def test_fleet_load_headline(fleet):
    """≥1000 users: bit-identity, ≥2x speedup, latency/throughput record."""
    system, base_maps = fleet
    events = scenario_events(HEADLINE_SCENARIO, base_maps)

    batched_svc, batched, batched_s = _timed_run(
        system, HEADLINE_POLICY, HEADLINE_SCENARIO, base_maps, events
    )
    _, canonical, canonical_s = _timed_run(
        system, HEADLINE_POLICY, HEADLINE_SCENARIO, base_maps, events,
        sequential=True,
    )
    unpadded_policy = replace(HEADLINE_POLICY, canonical_rows=1)
    _, unpadded, unpadded_s = _timed_run(
        system, unpadded_policy, HEADLINE_SCENARIO, base_maps, events,
        sequential=True,
    )

    decisions = len(batched.results)
    expected = HEADLINE_SCENARIO.num_users * HEADLINE_SCENARIO.decisions_per_user
    assert decisions == expected
    assert batched.rejections == 0 and batched.shed_count() == 0

    # The core guarantee at fleet scale: coalescing changed nothing.
    assert batched.fingerprint() == canonical.fingerprint()

    speedup_unpadded = unpadded_s / batched_s
    speedup_canonical = canonical_s / batched_s
    metrics = batched_svc.metrics()
    payload = {
        "scenario": {
            "num_users": HEADLINE_SCENARIO.num_users,
            "decisions_per_user": HEADLINE_SCENARIO.decisions_per_user,
            "arrival_span_s": HEADLINE_SCENARIO.arrival_span_s,
            "decision_interval_s": HEADLINE_SCENARIO.decision_interval_s,
            "fine_tune_fraction": HEADLINE_SCENARIO.fine_tune_fraction,
            "seed": HEADLINE_SCENARIO.seed,
        },
        "policy": {
            "max_batch": HEADLINE_POLICY.max_batch,
            "max_wait_s": HEADLINE_POLICY.max_wait_s,
            "canonical_rows": HEADLINE_POLICY.canonical_rows,
        },
        "decisions": decisions,
        "personalizations": batched.personalizations,
        "mean_batch_size": round(metrics["mean_batch_size"], 2),
        "wall_s": {
            "batched": round(batched_s, 3),
            "sequential_canonical": round(canonical_s, 3),
            "sequential_unpadded": round(unpadded_s, 3),
        },
        "decisions_per_sec": round(decisions / batched_s, 1),
        "speedup_vs_sequential_unpadded": round(speedup_unpadded, 2),
        "speedup_vs_sequential_canonical": round(speedup_canonical, 2),
        "latency_virtual_s": batched.latency_percentiles(),
        "latency_wall_s": {
            k: round(v, 6)
            for k, v in batched.latency_percentiles(wall=True).items()
        },
        "bit_identical": True,
        "shed_rate": 0.0,
        "min_speedup_asserted": MIN_HEADLINE_SPEEDUP,
        "fingerprint": batched.fingerprint(),
    }
    _merge_report("fleet_headline", payload)
    print(
        f"\n[serving] {decisions} decisions: batched {batched_s:.2f}s "
        f"({decisions / batched_s:.0f}/s, mean batch "
        f"{metrics['mean_batch_size']:.1f}), sequential unpadded "
        f"{unpadded_s:.2f}s ({speedup_unpadded:.2f}x), canonical "
        f"{canonical_s:.2f}s ({speedup_canonical:.2f}x)"
    )
    assert speedup_unpadded >= MIN_HEADLINE_SPEEDUP, (
        f"micro-batching regressed: {speedup_unpadded:.2f}x < "
        f"{MIN_HEADLINE_SPEEDUP}x over sequential per-user predicts"
    )


def test_fleet_overload_shedding(fleet):
    """Burst arrival against tight admission: bounded, accounted shedding."""
    system, base_maps = fleet
    policy = replace(HEADLINE_POLICY, max_batch=32, max_wait_s=50.0)
    service = _service(
        system,
        policy,
        admission=AdmissionPolicy(max_pending=64, hard_limit=256),
    )
    report = run_load(service, BURST_SCENARIO, base_maps)

    submitted = BURST_SCENARIO.num_users * BURST_SCENARIO.decisions_per_user
    assert len(report.results) + report.rejections == submitted
    shed_rate = service.admission.shed_rate
    assert 0.0 < shed_rate < 1.0
    # Every shed decision still produced an answer, flagged FALLBACK.
    assert report.shed_count() == service.admission.shed

    payload = {
        "scenario": {
            "num_users": BURST_SCENARIO.num_users,
            "decisions_per_user": BURST_SCENARIO.decisions_per_user,
            "arrival": "burst (all users at t=0)",
        },
        "admission": service.admission.to_dict(),
        "decisions": len(report.results),
        "rejections": report.rejections,
        "shed_rate": round(shed_rate, 4),
        "reject_rate": round(service.admission.reject_rate, 4),
    }
    _merge_report("overload_burst", payload)
    print(
        f"\n[serving] burst: shed rate {shed_rate:.2%}, "
        f"reject rate {service.admission.reject_rate:.2%}"
    )


# -- tier-1-safe smoke (CI: serving-smoke job) --------------------------------

SMOKE_CFG = CLEARConfig(
    num_clusters=4,
    subclusters_per_cluster=2,
    gc_refinements=3,
    model=ModelConfig(conv_filters=(4, 8), lstm_units=8, dropout=0.0),
    training=TrainingConfig(epochs=6, batch_size=8, early_stopping_patience=3),
    fine_tuning=FineTuneConfig(epochs=2),
    seed=0,
)

SMOKE_SCENARIO = LoadScenario(
    num_users=48,
    seed=7,
    arrival_span_s=10.0,
    decisions_per_user=3,
    decision_interval_s=5.0,
    cold_start_maps=2,
    fine_tune_fraction=0.0,
    perturbation=0.05,
)

SMOKE_POLICY = BatchPolicy(max_batch=16, max_wait_s=2.0, canonical_rows=4)


@pytest.fixture(scope="module")
def smoke_fleet():
    dataset = SyntheticWEMAC(WEMACConfig.tiny(seed=0)).generate()
    base_maps = {s.subject_id: list(s.maps) for s in dataset.subjects}
    system = CLEAR(SMOKE_CFG).fit(base_maps)
    return system, base_maps


@pytest.mark.smoke
def test_serving_smoke_bit_identity_and_speedup(smoke_fleet):
    system, base_maps = smoke_fleet
    events = scenario_events(SMOKE_SCENARIO, base_maps)
    batched_svc, batched, batched_s = _timed_run(
        system, SMOKE_POLICY, SMOKE_SCENARIO, base_maps, events
    )
    _, canonical, _ = _timed_run(
        system, SMOKE_POLICY, SMOKE_SCENARIO, base_maps, events,
        sequential=True,
    )
    _, _, unpadded_s = _timed_run(
        system,
        replace(SMOKE_POLICY, canonical_rows=1),
        SMOKE_SCENARIO,
        base_maps,
        events,
        sequential=True,
    )
    expected = SMOKE_SCENARIO.num_users * SMOKE_SCENARIO.decisions_per_user
    assert len(batched.results) == expected
    assert batched.fingerprint() == canonical.fingerprint()
    assert batched_svc.metrics()["mean_batch_size"] > 1.5
    speedup = unpadded_s / batched_s
    print(f"\n[serving smoke] speedup {speedup:.2f}x over unpadded sequential")
    assert speedup >= MIN_SMOKE_SPEEDUP


@pytest.mark.smoke
def test_serving_smoke_shed_bounds(smoke_fleet):
    system, base_maps = smoke_fleet
    burst = replace(
        SMOKE_SCENARIO, arrival_span_s=0.0, decisions_per_user=4, seed=11
    )
    service = _service(
        system,
        replace(SMOKE_POLICY, max_wait_s=50.0),
        admission=AdmissionPolicy(max_pending=4, hard_limit=16),
    )
    report = run_load(service, burst, base_maps)
    submitted = burst.num_users * burst.decisions_per_user
    assert len(report.results) + report.rejections == submitted
    assert 0.0 < service.admission.shed_rate < 1.0
    assert report.shed_count() == service.admission.shed
