"""Ablation: numeric schemes and their interaction with pruning.

Aggregates quantized evaluation over every edge fold's full test pool
(more samples than the per-platform Table II rows) to expose the
int8-vs-fp16 penalty statistically, then combines pruning with int8 —
the full compression stack for a shipped checkpoint.
"""

import numpy as np
import pytest

from repro.edge import QuantizedModel
from repro.edge.pruning import measure_sparsity, prune_trained
from repro.signals.feature_map import maps_to_arrays


def _prepare(fold):
    normalizer = fold.checkpoint.normalizer
    x_test, y_test = maps_to_arrays(normalizer.transform_all(fold.test_maps))
    x_cal, _ = maps_to_arrays(normalizer.transform_all(fold.calibration_maps))
    return x_test, y_test, x_cal


def test_ablation_quantization_schemes(edge_folds, benchmark):
    def run():
        distortions = {"fp16": [], "int8": []}
        accuracies = {"fp32": [], "fp16": [], "int8": []}
        agreement = {"fp16": [], "int8": []}  # prediction match vs fp32
        for fold in edge_folds:
            x_test, y_test, x_cal = _prepare(fold)
            float_preds = fold.checkpoint.model.predict_classes(x_test)
            accuracies["fp32"].append(np.mean(float_preds == y_test))
            for scheme in ("fp16", "int8"):
                q = QuantizedModel(
                    fold.checkpoint.model,
                    scheme=scheme,
                    calibration_x=x_cal if scheme == "int8" else None,
                )
                preds = q.predict_classes(x_test)
                accuracies[scheme].append(np.mean(preds == y_test))
                agreement[scheme].append(np.mean(preds == float_preds))
                distortions[scheme].append(q.weight_error(fold.checkpoint.model))

        lines = ["Ablation -- numeric schemes (aggregated over folds)"]
        lines.append(
            f"{'scheme':>7}{'accuracy':>10}{'agree w/ fp32':>15}"
            f"{'weight distortion':>19}"
        )
        for scheme in ("fp32", "fp16", "int8"):
            acc = np.mean(accuracies[scheme]) * 100
            agree = (
                np.mean(agreement[scheme]) * 100 if scheme in agreement else 100.0
            )
            dist = np.mean(distortions[scheme]) if scheme in distortions else 0.0
            lines.append(f"{scheme:>7}{acc:>10.2f}{agree:>15.2f}{dist:>19.4f}")
        return "\n".join(lines), accuracies, agreement, distortions

    text, accuracies, agreement, distortions = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print("\n" + text)

    # The distortion mechanism: int8 perturbs weights far more than fp16.
    assert np.mean(distortions["int8"]) > 10 * np.mean(distortions["fp16"])
    # fp16 is effectively transparent: near-total prediction agreement.
    assert np.mean(agreement["fp16"]) > 0.95
    # int8 flips more predictions than fp16 (the Table II penalty source).
    assert np.mean(agreement["int8"]) <= np.mean(agreement["fp16"]) + 1e-9


def test_ablation_prune_plus_int8(edge_folds, benchmark):
    """The full compression stack: 50 % sparsity + int8 weights."""
    fold = edge_folds[0]

    def run():
        x_test, y_test, x_cal = _prepare(fold)
        dense_acc = np.mean(
            fold.checkpoint.model.predict_classes(x_test) == y_test
        )
        pruned = prune_trained(fold.checkpoint, 0.5)
        pruned_acc = np.mean(pruned.model.predict_classes(x_test) == y_test)
        stacked = QuantizedModel(pruned.model, scheme="int8", calibration_x=x_cal)
        stacked_acc = np.mean(stacked.predict_classes(x_test) == y_test)
        report = measure_sparsity(pruned.model)
        dense_kib = report.params_total * 4 / 1024
        stacked_kib = report.compressed_bytes(1) / 1024
        text = (
            "Ablation -- compression stack (prune 50% then int8)\n"
            f"  dense fp32:        acc {dense_acc * 100:6.2f}  {dense_kib:7.1f} KiB\n"
            f"  pruned fp32:       acc {pruned_acc * 100:6.2f}\n"
            f"  pruned + int8:     acc {stacked_acc * 100:6.2f}  {stacked_kib:7.1f} KiB"
            f"  ({dense_kib / stacked_kib:.0f}x smaller)"
        )
        return text, dense_acc, stacked_acc, dense_kib, stacked_kib

    text, dense_acc, stacked_acc, dense_kib, stacked_kib = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print("\n" + text)
    assert stacked_kib < 0.2 * dense_kib  # 8x via dtype, 2x via sparsity
    assert stacked_acc >= dense_acc - 0.35
