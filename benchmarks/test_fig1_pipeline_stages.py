"""Fig. 1: the CLEAR architecture, stage by stage, with wall-clock cost.

Fig. 1 of the paper is the two-stage system diagram (cloud CL stage,
edge cold-start + fine-tuning stage).  This bench walks one new user
through every box of that diagram and times each stage, demonstrating
the paper's asymmetry claim: the expensive work (clustering, per-
cluster pre-training) happens once on the cloud, while the edge stages
(assignment, fine-tuning) stay lightweight.
"""

import time

import numpy as np
import pytest

from repro.clustering import GlobalClustering, build_subclusters, ColdStartAssigner
from repro.core import CLEAR, fine_tune
from repro.core.trainer import train_on_maps
from repro.datasets import split_maps_by_fraction


@pytest.fixture(scope="module")
def pipeline_run(bench_dataset, bench_config):
    record = bench_dataset.subjects[0]
    population = {
        s.subject_id: list(s.maps)
        for s in bench_dataset.subjects
        if s.subject_id != record.subject_id
    }
    timings = {}

    t0 = time.perf_counter()
    gc = GlobalClustering(
        k=bench_config.num_clusters,
        n_refinements=bench_config.gc_refinements,
        subsample_fraction=bench_config.gc_subsample_fraction,
        seed=bench_config.seed,
    ).fit(population)
    timings["cloud: global clustering (GC)"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    subclusters = build_subclusters(
        gc, population, bench_config.subclusters_per_cluster, bench_config.seed
    )
    timings["cloud: sub-cluster hierarchy"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    models = {}
    for cluster in range(bench_config.num_clusters):
        maps = [m for sid in gc.members(cluster) for m in population[sid]]
        models[cluster] = train_on_maps(
            maps, bench_config.model, bench_config.training, seed=bench_config.seed
        )
    timings["cloud: per-cluster pre-training"] = time.perf_counter() - t0

    rng = np.random.default_rng(0)
    ca_maps, held_back = split_maps_by_fraction(
        record.maps, bench_config.ca_data_fraction, rng, stratified=False
    )
    assigner = ColdStartAssigner(gc, subclusters)
    t0 = time.perf_counter()
    assignment = assigner.assign(ca_maps)
    timings["edge: cold-start assignment (CA)"] = time.perf_counter() - t0

    ft_maps, test_maps = split_maps_by_fraction(held_back, 0.25, rng)
    t0 = time.perf_counter()
    tuned = fine_tune(
        models[assignment.cluster],
        ft_maps,
        bench_config.fine_tuning,
        seed=bench_config.seed,
    )
    timings["edge: fine-tuning (FT)"] = time.perf_counter() - t0

    t0 = time.perf_counter()
    metrics = tuned.evaluate(test_maps)
    timings["edge: inference"] = time.perf_counter() - t0

    return timings, assignment, metrics


def test_fig1_stage_walkthrough(pipeline_run, benchmark):
    timings, assignment, metrics = pipeline_run

    def assemble():
        lines = ["Fig. 1 -- CLEAR stage walkthrough (one new user)"]
        for stage, seconds in timings.items():
            lines.append(f"  {stage:<38} {seconds * 1e3:10.1f} ms")
        lines.append(
            f"  -> assigned cluster {assignment.cluster}, "
            f"final accuracy {metrics['accuracy']:.2%}"
        )
        return "\n".join(lines)

    print("\n" + benchmark.pedantic(assemble, rounds=1, iterations=1))

    # Fig. 1's asymmetry claims: the expensive work lives on the cloud.
    cloud = timings["cloud: per-cluster pre-training"]
    for stage, seconds in timings.items():
        if stage.startswith("edge"):
            assert seconds < cloud
    # CA is distance arithmetic: milliseconds, no training.
    assert timings["edge: cold-start assignment (CA)"] < 1.0
    assert timings["edge: fine-tuning (FT)"] < cloud
    print("cloud/edge cost asymmetry holds")


def test_end_to_end_facade(bench_dataset, bench_config, benchmark):
    """The CLEAR facade must reproduce the manual stage composition."""
    record = bench_dataset.subjects[0]
    population = {
        s.subject_id: list(s.maps)
        for s in bench_dataset.subjects
        if s.subject_id != record.subject_id
    }

    def run():
        system = CLEAR(bench_config).fit(population)
        return system.assign_new_user(record.maps[:1])

    assignment = benchmark.pedantic(run, rounds=1, iterations=1)
    assert 0 <= assignment.cluster < bench_config.num_clusters
