"""Ablation: checkpoint compression by magnitude pruning.

Sweeps unstructured sparsity on a deployed cluster checkpoint and
reports the accuracy/size trade — the compression axis beyond the
paper's int8 quantization.
"""

import pytest

from repro.edge.pruning import measure_sparsity, prune_trained, sparsity_sweep


def test_ablation_pruning_sweep(edge_folds, benchmark):
    fold = edge_folds[0]

    def run():
        rows = sparsity_sweep(
            fold.checkpoint,
            fold.test_maps,
            sparsities=(0.0, 0.25, 0.5, 0.75, 0.9),
        )
        lines = ["Ablation -- magnitude pruning of a cluster checkpoint"]
        lines.append(
            f"{'target':>8}{'actual':>8}{'accuracy':>10}{'weights kept':>14}"
        )
        for row in rows:
            kept = 1.0 - row["actual_sparsity"]
            lines.append(
                f"{row['target_sparsity']:>8.2f}{row['actual_sparsity']:>8.2f}"
                f"{row['accuracy'] * 100:>10.2f}{kept:>13.0%}"
            )
        return "\n".join(lines), rows

    text, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + text)

    dense_acc = rows[0]["accuracy"]
    mild = next(r for r in rows if r["target_sparsity"] == 0.25)
    # A quarter of the weights can go with minor damage.
    assert mild["accuracy"] >= dense_acc - 0.2
    # Compression accounting is consistent.
    pruned = prune_trained(fold.checkpoint, 0.9)
    report = measure_sparsity(pruned.model)
    assert report.compressed_bytes(1) < 0.2 * report.params_total
