"""Ablation: federated vs centralized per-cluster pre-training.

The paper's privacy argument covers the edge stage; clustered federated
averaging (after Huang et al. [8]) extends it to pre-training.  This
bench trains the largest cluster's model both ways and compares
accuracy on a held-out member — quantifying the privacy-for-accuracy
trade.
"""

import numpy as np
import pytest

from repro.clustering import GlobalClustering
from repro.core import FederatedConfig, federated_train_cluster, train_on_maps


@pytest.fixture(scope="module")
def cluster_clients(bench_dataset, bench_config):
    maps_by = {s.subject_id: list(s.maps) for s in bench_dataset.subjects}
    gc = GlobalClustering(k=bench_config.num_clusters, seed=0).fit(maps_by)
    largest = int(np.argmax(gc.cluster_sizes()))
    members = gc.members(largest)
    held_out = members[0]
    clients = {sid: maps_by[sid] for sid in members[1:]}
    return clients, maps_by[held_out]


def test_ablation_federated_vs_centralized(
    cluster_clients, bench_config, benchmark
):
    clients, test_maps = cluster_clients

    def run():
        all_maps = [m for maps in clients.values() for m in maps]
        central = train_on_maps(
            all_maps, bench_config.model, bench_config.training, seed=0
        )
        central_acc = central.evaluate(test_maps)["accuracy"] * 100

        federated, history = federated_train_cluster(
            clients,
            bench_config.model,
            FederatedConfig(rounds=8, local_epochs=2, learning_rate=2e-3, seed=0),
        )
        fed_acc = federated.evaluate(test_maps)["accuracy"] * 100

        text = (
            "Ablation -- privacy-preserving federated pre-training\n"
            f"  centralized (paper's cloud stage): acc {central_acc:6.2f}\n"
            f"  federated (FedAvg over {len(clients)} members): "
            f"acc {fed_acc:6.2f}\n"
            f"  round losses: "
            + " ".join(f"{l:.3f}" for l in history.round_losses)
        )
        return text, central_acc, fed_acc, history

    text, central_acc, fed_acc, history = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print("\n" + text)

    # Federated training must converge (loss drops) and stay within a
    # usable band of centralized accuracy.
    assert history.round_losses[-1] < history.round_losses[0]
    assert fed_acc >= central_acc - 25.0
