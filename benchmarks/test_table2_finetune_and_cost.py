"""Table II (lower): post-fine-tuning accuracy + time / power per platform.

The float fine-tuned checkpoint is re-quantized per platform (the int8
TPU keeps paying its precision penalty after personalization), and the
device cost models report MTC/MPC — mean time and power consumption for
re-training and test — in the regime of the paper's measurements.
"""

import pytest

from repro.core import FoldMetrics, MetricSummary
from repro.edge import ALL_DEVICES, GPU_BASELINE, EdgeDeployment

#: Paper Table II lower: accuracy/f1 after FT, and MTC/MPC rows.
PAPER_LOWER = {
    "GPU (baseline)": {"acc": 86.34, "f1": 86.03},
    "Coral TPU": {
        "acc": 79.40,
        "f1": 79.14,
        "retrain_s": 32.48,
        "test_ms": 47.31,
        "p_retrain": 1.82,
        "p_test": 1.64,
        "p_idle": 1.28,
    },
    "Pi + NCS2": {
        "acc": 84.49,
        "f1": 84.07,
        "retrain_s": 78.52,
        "test_ms": 239.70,
        "p_retrain": 3.78,
        "p_test": 3.43,
        "p_idle": 2.76,
    },
}


@pytest.fixture(scope="module")
def finetuned_rows(edge_folds, bench_config):
    rows = {}
    costs = {}
    for key, device in ALL_DEVICES.items():
        summary = MetricSummary(device.name)
        reports = []
        for fold in edge_folds:
            deployment = EdgeDeployment(
                fold.tuned, device, calibration_maps=fold.calibration_maps
            )
            m = deployment.evaluate(fold.test_maps)
            summary.add(FoldMetrics(m["accuracy"], m["f1"], fold.subject_id))
            reports.append(
                deployment.cost_report(
                    fold.test_maps,
                    ft_examples=fold.ft_examples,
                    ft_epochs=bench_config.fine_tuning.epochs,
                )
            )
        rows[key] = summary
        costs[key] = reports
    return rows, costs


def _mean(reports, attr):
    values = [getattr(r, attr) for r in reports]
    return sum(values) / len(values)


def test_table2_lower(finetuned_rows, edge_folds, benchmark):
    rows, costs = finetuned_rows

    def assemble():
        lines = [
            "Table II (lower) -- after on-device fine-tuning "
            "(paper values in parentheses)"
        ]
        for key in ("gpu", "coral_tpu", "pi_ncs2"):
            summary = rows[key]
            paper = PAPER_LOWER[summary.name]
            reports = costs[key]
            lines.append(f"\n{summary.name}:")
            lines.append(
                f"  accuracy {summary.accuracy_mean:6.2f} +- "
                f"{summary.accuracy_std:.2f}   (paper {paper['acc']:.2f})"
            )
            lines.append(
                f"  f1       {summary.f1_mean:6.2f} +- "
                f"{summary.f1_std:.2f}   (paper {paper['f1']:.2f})"
            )
            if "retrain_s" in paper:
                lines.append(
                    f"  MTC retrain {_mean(reports, 'retrain_time_s'):7.2f} s"
                    f"    (paper {paper['retrain_s']:.2f} s)"
                )
                lines.append(
                    f"  MTC test    {_mean(reports, 'test_time_s') * 1e3:7.2f} ms"
                    f"   (paper {paper['test_ms']:.2f} ms)"
                )
                lines.append(
                    f"  MPC retrain {reports[0].power_retrain_w:7.2f} W"
                    f"    (paper {paper['p_retrain']:.2f} W)"
                )
                lines.append(
                    f"  MPC test    {reports[0].power_test_w:7.2f} W"
                    f"    (paper {paper['p_test']:.2f} W)"
                )
                lines.append(
                    f"  MPC idle    {reports[0].power_idle_w:7.2f} W"
                    f"    (paper {paper['p_idle']:.2f} W)"
                )
        return "\n".join(lines)

    print("\n" + benchmark.pedantic(assemble, rounds=1, iterations=1))

    # Table II (lower) orderings.
    # 1. Post-FT, the fp32 GPU stays at or above the int8 TPU.
    assert rows["gpu"].accuracy_mean >= rows["coral_tpu"].accuracy_mean
    # 2. The TPU retrains and tests faster than the Pi + NCS2.
    assert _mean(costs["coral_tpu"], "retrain_time_s") < _mean(
        costs["pi_ncs2"], "retrain_time_s"
    )
    assert _mean(costs["coral_tpu"], "test_time_s") < _mean(
        costs["pi_ncs2"], "test_time_s"
    )
    # 3. Times land within ~2x of the paper's magnitudes.
    tpu_test_ms = _mean(costs["coral_tpu"], "test_time_s") * 1e3
    ncs2_test_ms = _mean(costs["pi_ncs2"], "test_time_s") * 1e3
    assert 20 < tpu_test_ms < 100  # paper 47.31 ms
    assert 120 < ncs2_test_ms < 480  # paper 239.70 ms
    # 4. Power: idle < test < retrain on each device; TPU < NCS2 overall.
    tpu, ncs2 = costs["coral_tpu"][0], costs["pi_ncs2"][0]
    assert tpu.power_idle_w < tpu.power_test_w < tpu.power_retrain_w
    assert ncs2.power_idle_w < ncs2.power_test_w < ncs2.power_retrain_w
    assert tpu.power_retrain_w < ncs2.power_retrain_w
    # 5. Fine-tuning helps: lower-table GPU beats the pre-FT checkpoint.
    pre = MetricSummary("pre")
    for fold in edge_folds:
        m = EdgeDeployment(fold.checkpoint, GPU_BASELINE).evaluate(fold.test_maps)
        pre.add(FoldMetrics(m["accuracy"], m["f1"]))
    assert rows["gpu"].accuracy_mean >= pre.accuracy_mean
    print("all Table II (lower) orderings hold")
