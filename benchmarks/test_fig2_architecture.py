"""Fig. 2: the CNN-LSTM architecture — structure, size, deployability.

Fig. 2 of the paper shows the classifier: two convolutional blocks
feeding an LSTM and a dense head.  This bench prints the layer table
and MAC/parameter profile at the paper's input scale (123 x 8 feature
maps) and microbenchmarks a single-map inference on the numpy
substrate.
"""

import numpy as np
import pytest

from repro.core import ModelConfig, architecture_summary, build_cnn_lstm
from repro.edge import profile_model

PAPER_INPUT_SHAPE = (1, 123, 8)  # 123 features x 8 windows


@pytest.fixture(scope="module")
def model():
    return build_cnn_lstm(PAPER_INPUT_SHAPE, ModelConfig(), seed=0)


def test_fig2_architecture_table(model, benchmark):
    def assemble():
        profile = profile_model(model, PAPER_INPUT_SHAPE)
        return (
            "Fig. 2 -- CNN-LSTM architecture at paper scale\n"
            + architecture_summary(PAPER_INPUT_SHAPE)
            + "\n\n"
            + profile.render()
            + f"\n\nint8 parameter memory: {profile.memory_bytes(1) / 1024:.1f} KiB"
            f" (fp32: {profile.memory_bytes(4) / 1024:.1f} KiB)"
        )

    print("\n" + benchmark.pedantic(assemble, rounds=1, iterations=1))

    # Fig. 2 deployability claims.
    profile = profile_model(model, PAPER_INPUT_SHAPE)
    # Small checkpoint: the int8 parameter image fits in < 1 MiB.
    assert profile.memory_bytes(1) < 1 << 20
    # Exactly two conv blocks and one LSTM, as drawn.
    kinds = [type(l).__name__ for l in model.layers]
    assert kinds.count("Conv2D") == 2
    assert kinds.count("LSTM") == 1
    # Compute is dominated by the conv + LSTM blocks.
    by_kind = profile.macs_by_kind()
    heavy = by_kind.get("Conv2D", 0) + by_kind.get("LSTM", 0)
    assert heavy > 0.9 * profile.total_macs
    print("Fig. 2 deployability constraints hold")


def test_single_map_inference_speed(model, benchmark):
    """Microbenchmark: one feature-map forward pass (the edge 'Test' op)."""
    x = np.random.default_rng(0).normal(size=(1,) + PAPER_INPUT_SHAPE)

    benchmark(model.predict, x)
