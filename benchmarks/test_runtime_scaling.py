"""Runtime-layer scaling bench: executor fan-out + content-addressed cache.

Records serial vs parallel wall time for corpus generation and CLEAR
LOSO validation, and the cold- vs warm-cache speedup, into
``BENCH_runtime.json`` at the repo root.  Wall times are *recorded, not
asserted* — a single-CPU host legitimately sees parallel >= serial —
but bit-identity between executors and zero re-work on a warm cache are
hard assertions.

``pytest benchmarks/test_runtime_scaling.py -m smoke`` runs only the
tier-1-safe 2-fold smoke variant (seconds, suitable for CI).
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import (
    CLEARConfig,
    FineTuneConfig,
    ModelConfig,
    TrainingConfig,
    clear_validation,
)
from repro.datasets import SyntheticWEMAC, WEMACConfig
from repro.orchestration import PipelineGraph, Stage
from repro.runtime import ParallelExecutor, SerialExecutor

from conftest import bench_dataset_config

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"
WORKERS = 2

VALIDATION_CFG = CLEARConfig(
    num_clusters=4,
    subclusters_per_cluster=2,
    gc_refinements=3,
    model=ModelConfig(conv_filters=(4, 8), lstm_units=8, dropout=0.0),
    training=TrainingConfig(epochs=6, batch_size=8, early_stopping_patience=3),
    fine_tuning=FineTuneConfig(epochs=3),
    seed=0,
)


def _maps_equal(a, b):
    return all(
        sa.subject_id == sb.subject_id
        and len(sa.maps) == len(sb.maps)
        and all(
            (ma.values == mb.values).all() and ma.label == mb.label
            for ma, mb in zip(sa.maps, sb.maps)
        )
        for sa, sb in zip(a.subjects, b.subjects)
    )


def _folds(summary):
    return [(f.fold_id, f.accuracy, f.f1) for f in summary.folds]


def _timed(fn, *args, **kwargs):
    t0 = time.perf_counter()
    out = fn(*args, **kwargs)
    return out, time.perf_counter() - t0


def _merge_report(section, payload):
    report = {}
    if REPORT_PATH.exists():
        report = json.loads(REPORT_PATH.read_text())
    report[section] = payload
    report["note"] = (
        "wall times are environment-dependent (single-CPU hosts may see "
        "parallel >= serial); bit-identity and warm-cache hit counts are "
        "the asserted invariants"
    )
    REPORT_PATH.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def test_generation_scaling_and_cache(tmp_path):
    cfg = bench_dataset_config()
    cache_dir = tmp_path / "cache"

    serial, serial_s = _timed(SyntheticWEMAC(cfg).generate)
    parallel, parallel_s = _timed(
        SyntheticWEMAC(cfg).generate, executor=ParallelExecutor(WORKERS)
    )
    assert _maps_equal(serial, parallel)

    cold, cold_s = _timed(SyntheticWEMAC(cfg).generate, cache_dir=cache_dir)
    warm, warm_s = _timed(SyntheticWEMAC(cfg).generate, cache_dir=cache_dir)
    assert _maps_equal(serial, cold)
    assert _maps_equal(serial, warm)

    map_count = sum(len(s.maps) for s in warm.subjects)
    # Zero re-extractions on a warm cache: every map lookup hits.
    assert warm.runtime.cache_misses == 0
    assert warm.runtime.cache_hits == map_count
    assert cold.runtime.cache_misses == map_count

    _merge_report(
        "generation",
        {
            "subjects": cfg.num_subjects,
            "map_count": map_count,
            "serial_s": round(serial_s, 3),
            "parallel_s": round(parallel_s, 3),
            "workers": WORKERS,
            "bit_identical": True,
            "cold_cache_s": round(cold_s, 3),
            "warm_cache_s": round(warm_s, 3),
            "cache_speedup": round(cold_s / warm_s, 1) if warm_s else None,
            "warm_hit_rate": warm.runtime.cache_hit_rate,
        },
    )
    print(
        f"\n[runtime] generation: serial {serial_s:.2f}s, "
        f"parallel({WORKERS}) {parallel_s:.2f}s, cache cold {cold_s:.2f}s "
        f"-> warm {warm_s:.2f}s ({cold_s / max(warm_s, 1e-9):.0f}x)"
    )


def test_validation_scaling_and_cache(bench_dataset, tmp_path):
    folds = 3
    cache_dir = tmp_path / "cache"

    serial, serial_s = _timed(
        clear_validation,
        bench_dataset,
        VALIDATION_CFG,
        max_folds=folds,
        executor=SerialExecutor(),
    )
    parallel, parallel_s = _timed(
        clear_validation,
        bench_dataset,
        VALIDATION_CFG,
        max_folds=folds,
        executor=ParallelExecutor(WORKERS),
    )
    assert _folds(serial.without_ft) == _folds(parallel.without_ft)
    assert _folds(serial.with_ft) == _folds(parallel.with_ft)
    assert serial.assignments == parallel.assignments

    cold, cold_s = _timed(
        clear_validation,
        bench_dataset,
        VALIDATION_CFG,
        max_folds=folds,
        cache_dir=cache_dir,
    )
    warm, warm_s = _timed(
        clear_validation,
        bench_dataset,
        VALIDATION_CFG,
        max_folds=folds,
        cache_dir=cache_dir,
    )
    assert _folds(cold.without_ft) == _folds(serial.without_ft)
    assert _folds(warm.without_ft) == _folds(serial.without_ft)
    # Warm rerun re-trains no fold checkpoint.
    assert warm.runtime.cache_misses == 0
    assert warm.runtime.cache_hits == (
        cold.runtime.cache_hits + cold.runtime.cache_misses
    )

    _merge_report(
        "validation",
        {
            "folds": folds,
            "serial_s": round(serial_s, 3),
            "parallel_s": round(parallel_s, 3),
            "workers": WORKERS,
            "bit_identical": True,
            "cold_cache_s": round(cold_s, 3),
            "warm_cache_s": round(warm_s, 3),
            "cache_speedup": round(cold_s / warm_s, 1) if warm_s else None,
            "warm_hit_rate": warm.runtime.cache_hit_rate,
        },
    )
    print(
        f"\n[runtime] validation({folds} folds): serial {serial_s:.2f}s, "
        f"parallel({WORKERS}) {parallel_s:.2f}s, cache cold {cold_s:.2f}s "
        f"-> warm {warm_s:.2f}s"
    )


def _graph_clear_validation(dataset, cfg, folds):
    """clear_validation declared as a one-stage PipelineGraph."""
    graph = PipelineGraph(
        "bench_clear",
        [
            Stage(
                "clear",
                lambda ctx, corpus: clear_validation(
                    corpus,
                    cfg,
                    max_folds=folds,
                    executor=ctx.executor,
                    cache_dir=ctx.cache_dir,
                ),
                requires=("corpus",),
                config=cfg,
                seed=cfg.seed,
            )
        ],
    )
    run = graph.run(initial={"corpus": dataset}, seed=cfg.seed)
    return run.value("clear")


def _assert_graph_matches_direct(direct, graphed):
    assert _folds(direct.without_ft) == _folds(graphed.without_ft)
    assert _folds(direct.with_ft) == _folds(graphed.with_ft)
    assert direct.assignments == graphed.assignments


def test_stage_graph_overhead(bench_dataset):
    """Graph-driven vs direct clear_validation: identical results.

    The orchestration layer adds artifact digesting and provenance
    capture per stage; this records what that costs against a direct
    call at bench scale.  Wall times are recorded, not asserted — the
    hard assertion is bit-identity of every fold metric.
    """
    folds = 3
    direct, direct_s = _timed(
        clear_validation, bench_dataset, VALIDATION_CFG, max_folds=folds
    )
    graphed, graph_s = _timed(
        _graph_clear_validation, bench_dataset, VALIDATION_CFG, folds
    )
    _assert_graph_matches_direct(direct, graphed)

    _merge_report(
        "stage_graph",
        {
            "folds": folds,
            "direct_s": round(direct_s, 3),
            "graph_s": round(graph_s, 3),
            "overhead_s": round(graph_s - direct_s, 3),
            "overhead_pct": (
                round(100.0 * (graph_s - direct_s) / direct_s, 2)
                if direct_s
                else None
            ),
            "bit_identical": True,
        },
    )
    print(
        f"\n[runtime] stage graph({folds} folds): direct {direct_s:.2f}s, "
        f"graph-driven {graph_s:.2f}s "
        f"(overhead {graph_s - direct_s:+.2f}s)"
    )


@pytest.mark.smoke
def test_stage_graph_smoke(tmp_path):
    """Tier-1-safe stage-graph variant: tiny corpus, 2 folds, seconds."""
    cfg = WEMACConfig.tiny(seed=0)
    smoke_cfg = CLEARConfig.fast(seed=0)
    dataset = SyntheticWEMAC(cfg).generate()
    direct = clear_validation(dataset, smoke_cfg, max_folds=2)
    graphed = _graph_clear_validation(dataset, smoke_cfg, 2)
    _assert_graph_matches_direct(direct, graphed)


@pytest.mark.smoke
def test_runtime_smoke(tmp_path):
    """Tier-1-safe variant: minimal corpus, 2 LOSO folds, seconds total."""
    cfg = WEMACConfig(
        num_subjects=4,
        trials_per_subject=4,
        windows_per_map=4,
        window_seconds=8.0,
        fs_bvp=32.0,
        seed=0,
    )
    smoke_cfg = CLEARConfig(
        num_clusters=2,
        subclusters_per_cluster=2,
        gc_refinements=2,
        model=ModelConfig(conv_filters=(2, 4), lstm_units=4, dropout=0.0),
        training=TrainingConfig(
            epochs=2, batch_size=8, early_stopping_patience=2
        ),
        fine_tuning=FineTuneConfig(epochs=1),
        seed=0,
    )
    cache_dir = tmp_path / "cache"

    serial = SyntheticWEMAC(cfg).generate()
    parallel = SyntheticWEMAC(cfg).generate(executor=ParallelExecutor(2))
    assert _maps_equal(serial, parallel)

    cold = SyntheticWEMAC(cfg).generate(cache_dir=cache_dir)
    warm = SyntheticWEMAC(cfg).generate(cache_dir=cache_dir)
    map_count = sum(len(s.maps) for s in warm.subjects)
    assert warm.runtime.cache_misses == 0
    assert warm.runtime.cache_hits == map_count
    assert _maps_equal(serial, warm) and _maps_equal(serial, cold)

    base = clear_validation(serial, smoke_cfg, max_folds=2)
    fanned = clear_validation(
        serial, smoke_cfg, max_folds=2, executor=ParallelExecutor(2)
    )
    assert _folds(base.without_ft) == _folds(fanned.without_ft)
    assert base.assignments == fanned.assignments
