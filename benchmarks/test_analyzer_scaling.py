"""Static-analyzer wall-time bench: serial vs parallel file parsing.

``analyze_paths`` fans per-file summary extraction out over the same
sanctioned executor machinery the experiments use.  This bench records
serial vs parallel wall time over ``src/repro`` into
``BENCH_runtime.json`` (section ``analyzer``).  As with the runtime
bench, wall times are recorded, not asserted — the hard assertion is
that the parallel run reports byte-for-byte the same findings as the
serial one.
"""

from pathlib import Path

import pytest

from repro.analysis.dataflow.engine import analyze_paths

from test_runtime_scaling import _merge_report, _timed

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"
WORKERS = 2


def _keyed(result):
    return sorted(
        (f.path, f.code, f.line, f.col, f.message) for f in result.findings
    )


@pytest.mark.smoke
def test_analyzer_scaling():
    serial, serial_s = _timed(analyze_paths, [SRC])
    parallel, parallel_s = _timed(analyze_paths, [SRC], workers=WORKERS)

    assert serial.files == parallel.files
    assert serial.errors == parallel.errors == []
    assert _keyed(serial) == _keyed(parallel)

    _merge_report(
        "analyzer",
        {
            "files": serial.files,
            "findings": len(serial.findings),
            "serial_s": round(serial_s, 3),
            "parallel_s": round(parallel_s, 3),
            "workers": WORKERS,
            "bit_identical": True,
        },
    )
    print(
        f"\n[analyzer] {serial.files} files: serial {serial_s:.2f}s, "
        f"parallel({WORKERS}) {parallel_s:.2f}s"
    )
