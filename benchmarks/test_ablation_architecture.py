"""Ablation: the recurrent cell of the Fig. 2 architecture.

The paper motivates the CNN-LSTM by the LSTM's ability to integrate
sequential context.  This bench swaps the recurrent cell (LSTM / GRU /
plain RNN / none-at-all via a flat dense head is approximated by the
RNN row) and retrains on one cluster to quantify the choice.
"""

import dataclasses

import numpy as np
import pytest

from repro.clustering import GlobalClustering
from repro.core import ModelConfig, build_cnn_lstm, train_on_maps
from repro.edge import profile_model


@pytest.fixture(scope="module")
def cluster_split(bench_dataset, bench_config):
    """Train/test maps from the largest cluster (subject-disjoint)."""
    maps_by = {s.subject_id: list(s.maps) for s in bench_dataset.subjects}
    gc = GlobalClustering(k=bench_config.num_clusters, seed=0).fit(maps_by)
    largest = int(np.argmax(gc.cluster_sizes()))
    members = gc.members(largest)
    test_subjects = members[: max(1, len(members) // 4)]
    train_maps = [
        m for sid in members if sid not in test_subjects for m in maps_by[sid]
    ]
    test_maps = [m for sid in test_subjects for m in maps_by[sid]]
    return train_maps, test_maps


def test_ablation_recurrent_cell(cluster_split, bench_config, benchmark):
    train_maps, test_maps = cluster_split

    def run():
        lines = ["Ablation -- recurrent cell / read-out in the Fig. 2 architecture"]
        lines.append(
            f"{'variant':>10}{'params':>10}{'MACs':>12}{'accuracy':>10}{'f1':>8}"
        )
        results = {}
        variants = {
            "lstm": {"recurrent_cell": "lstm"},
            "gru": {"recurrent_cell": "gru"},
            "rnn": {"recurrent_cell": "rnn"},
            "lstm+attn": {"recurrent_cell": "lstm", "attention_readout": True},
        }
        for name, overrides in variants.items():
            model_cfg = dataclasses.replace(bench_config.model, **overrides)
            trained = train_on_maps(
                train_maps, model_cfg, bench_config.training, seed=0
            )
            metrics = trained.evaluate(test_maps)
            input_shape = (1, train_maps[0].num_features, train_maps[0].num_windows)
            profile = profile_model(build_cnn_lstm(input_shape, model_cfg), input_shape)
            lines.append(
                f"{name:>10}{profile.total_params:>10,}{profile.total_macs:>12,}"
                f"{metrics['accuracy'] * 100:>10.2f}{metrics['f1'] * 100:>8.2f}"
            )
            results[name] = (metrics["accuracy"], profile.total_params)
        return "\n".join(lines), results

    text, results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + text)

    # Gated cells (LSTM/GRU) should not lose badly to the plain RNN,
    # and the GRU must be smaller than the LSTM.
    gated_best = max(results["lstm"][0], results["gru"][0])
    assert gated_best >= results["rnn"][0] - 0.15
    assert results["gru"][1] < results["lstm"][1]
