"""Shared benchmark fixtures: the bench-scale corpus and CLEAR artifacts.

The paper's full scale (44 volunteers, LOSO everywhere, 40-epoch
training) is hours of pure-numpy compute; benches default to a reduced
corpus (20 volunteers, shorter trials) on which every Table I / Table II
ordering still emerges.  Set ``REPRO_BENCH_FOLDS`` to raise the number
of LOSO folds evaluated per protocol (default 5).
"""

import os
from dataclasses import dataclass
from typing import List

import numpy as np
import pytest

from repro.core import CLEAR, CLEARConfig
from repro.core.trainer import TrainedModel, fine_tune
from repro.datasets import SyntheticWEMAC, WEMACConfig, split_maps_by_fraction
from repro.signals.feature_map import FeatureMap

BENCH_FOLDS = int(os.environ.get("REPRO_BENCH_FOLDS", "5"))


def bench_dataset_config(seed: int = 2) -> WEMACConfig:
    return WEMACConfig(
        num_subjects=20,
        trials_per_subject=10,
        windows_per_map=6,
        window_seconds=8.0,
        fs_bvp=32.0,
        seed=seed,
    )


@pytest.fixture(scope="session")
def bench_dataset():
    return SyntheticWEMAC(bench_dataset_config()).generate()


@pytest.fixture(scope="session")
def bench_config():
    return CLEARConfig.fast(seed=0)


@dataclass
class EdgeFold:
    """One LOSO fold prepared for the Table II edge benches."""

    subject_id: int
    cluster: int
    checkpoint: TrainedModel  # the assigned cluster's cloud checkpoint
    tuned: TrainedModel  # checkpoint after user fine-tuning (float)
    calibration_maps: List[FeatureMap]  # for int8 activation calibration
    test_maps: List[FeatureMap]
    ft_examples: int
    other_checkpoints: List[TrainedModel]  # for the RT CLEAR rows


@pytest.fixture(scope="session")
def edge_folds(bench_dataset, bench_config) -> List[EdgeFold]:
    """Prepare LOSO folds once; Table II benches reuse them per platform."""
    rng = np.random.default_rng(bench_config.seed)
    folds: List[EdgeFold] = []
    for record in bench_dataset.subjects[:BENCH_FOLDS]:
        population = {
            s.subject_id: list(s.maps)
            for s in bench_dataset.subjects
            if s.subject_id != record.subject_id
        }
        system = CLEAR(bench_config).fit(population)
        ca_maps, held_back = split_maps_by_fraction(
            record.maps, bench_config.ca_data_fraction, rng, stratified=False
        )
        assignment = system.assign_new_user(ca_maps)
        cluster = assignment.cluster
        checkpoint = system.model_for(cluster)
        ft_fraction = bench_config.ft_label_fraction / (
            1.0 - bench_config.ca_data_fraction
        )
        ft_maps, test_maps = split_maps_by_fraction(
            held_back, ft_fraction, rng, stratified=True
        )
        tuned = fine_tune(
            checkpoint, ft_maps, bench_config.fine_tuning, seed=bench_config.seed
        )
        calibration = [
            m for sid in system.gc.members(cluster) for m in population[sid]
        ][:12]
        others = [
            system.model_for(c)
            for c in range(bench_config.num_clusters)
            if c != cluster
        ]
        folds.append(
            EdgeFold(
                subject_id=record.subject_id,
                cluster=cluster,
                checkpoint=checkpoint,
                tuned=tuned,
                calibration_maps=calibration,
                test_maps=test_maps,
                ft_examples=len(ft_maps),
                other_checkpoints=others,
            )
        )
    return folds
