"""Ablation: fine-tuning label budget and layer freezing.

The paper fixes 20 % labelled data for FT and fine-tunes the whole
small network on-device.  These benches sweep the label fraction and
compare frozen-feature-extractor vs full fine-tuning — the two knobs a
deployment would actually tune.
"""

import numpy as np
import pytest

from repro.core import FineTuneConfig, FoldMetrics, MetricSummary, fine_tune


def _summarize(name, values):
    summary = MetricSummary(name)
    for acc, f1 in values:
        summary.add(FoldMetrics(acc, f1))
    return summary


def test_ablation_label_fraction(edge_folds, bench_config, benchmark):
    """Accuracy after FT vs number of labelled maps from the new user."""

    def run():
        budgets = (1, 2, 4)
        rows = {}
        for budget in budgets:
            values = []
            for fold in edge_folds:
                # Fine-tune from the ORIGINAL checkpoint with a budget-
                # limited labelled set drawn from the user's test pool.
                labeled = fold.test_maps[:budget]
                eval_maps = fold.test_maps[budget:]
                if len(eval_maps) < 2:
                    continue
                tuned = fine_tune(
                    fold.checkpoint,
                    labeled,
                    bench_config.fine_tuning,
                    seed=0,
                )
                m = tuned.evaluate(eval_maps)
                values.append((m["accuracy"], m["f1"]))
            rows[budget] = _summarize(f"{budget} maps", values)
        baseline_vals = []
        for fold in edge_folds:
            m = fold.checkpoint.evaluate(fold.test_maps)
            baseline_vals.append((m["accuracy"], m["f1"]))
        rows[0] = _summarize("no FT", baseline_vals)
        lines = ["Ablation -- labelled maps used for fine-tuning"]
        lines.append(f"{'budget':>8}{'accuracy':>10}{'std':>8}")
        for budget in sorted(rows):
            s = rows[budget]
            lines.append(
                f"{budget:>8}{s.accuracy_mean:>10.2f}{s.accuracy_std:>8.2f}"
            )
        return "\n".join(lines), rows

    text, rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + text)
    # Some budget of labels should beat no fine-tuning at all.
    best = max(s.accuracy_mean for b, s in rows.items() if b > 0)
    assert best >= rows[0].accuracy_mean - 5.0


def test_ablation_freeze_vs_full(edge_folds, benchmark):
    """Frozen conv feature extractor vs fine-tuning everything."""

    def run():
        frozen_vals, full_vals = [], []
        for fold in edge_folds:
            labeled = fold.test_maps[:2]
            eval_maps = fold.test_maps[2:]
            if len(eval_maps) < 2:
                continue
            frozen = fine_tune(
                fold.checkpoint,
                labeled,
                FineTuneConfig(epochs=8, freeze_feature_extractor=True),
                seed=0,
            )
            full = fine_tune(
                fold.checkpoint,
                labeled,
                FineTuneConfig(epochs=8, freeze_feature_extractor=False),
                seed=0,
            )
            frozen_vals.append(
                (frozen.evaluate(eval_maps)["accuracy"],
                 frozen.evaluate(eval_maps)["f1"])
            )
            full_vals.append(
                (full.evaluate(eval_maps)["accuracy"],
                 full.evaluate(eval_maps)["f1"])
            )
        frozen_s = _summarize("frozen", frozen_vals)
        full_s = _summarize("full", full_vals)
        text = (
            "Ablation -- layer freezing during on-device FT\n"
            f"  frozen conv: acc {frozen_s.accuracy_mean:.2f} "
            f"+- {frozen_s.accuracy_std:.2f}\n"
            f"  full FT:     acc {full_s.accuracy_mean:.2f} "
            f"+- {full_s.accuracy_std:.2f}"
        )
        return text, frozen_s, full_s

    text, frozen_s, full_s = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + text)
    # Freezing must stay competitive (it's what makes edge FT feasible).
    assert frozen_s.accuracy_mean >= full_s.accuracy_mean - 15.0
