"""Multi-emotion support: the valence-arousal circumplex.

WEMAC annotates ten emotional labels; the paper collapses them to the
binary fear / non-fear task.  This module models the full label set on
the circumplex (Russell, 1980): each emotion is a (valence, arousal)
point, and the simulator derives physiological response intensity from
arousal with valence modulating response *direction* where physiology
warrants it (e.g. pleasant high-arousal states vasodilate rather than
constrict).  The binary mapping used by the paper's task is provided
by :func:`to_binary_fear`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .stimuli import FEAR, NON_FEAR, StimulusSchedule, Trial
from .subject import PhysiologicalSimulator, SubjectProfile


@dataclass(frozen=True)
class EmotionSpec:
    """One emotion on the valence-arousal circumplex.

    Valence and arousal are in [-1, 1]; arousal drives the magnitude of
    the physiological response (0 = resting state).
    """

    name: str
    valence: float
    arousal: float

    def __post_init__(self) -> None:
        for field_name, value in (("valence", self.valence), ("arousal", self.arousal)):
            if not -1.0 <= value <= 1.0:
                raise ValueError(f"{field_name} must be in [-1, 1], got {value}")


#: The ten-emotion label set (WEMAC-like), placed on the circumplex.
EMOTIONS: Tuple[EmotionSpec, ...] = (
    EmotionSpec("fear", valence=-0.8, arousal=0.9),
    EmotionSpec("anger", valence=-0.7, arousal=0.8),
    EmotionSpec("disgust", valence=-0.7, arousal=0.5),
    EmotionSpec("sadness", valence=-0.8, arousal=0.2),
    EmotionSpec("anguish", valence=-0.6, arousal=0.6),
    EmotionSpec("joy", valence=0.8, arousal=0.7),
    EmotionSpec("amusement", valence=0.7, arousal=0.5),
    EmotionSpec("hope", valence=0.6, arousal=0.4),
    EmotionSpec("tenderness", valence=0.7, arousal=0.2),
    EmotionSpec("calm", valence=0.5, arousal=0.05),
)

EMOTION_NAMES: Tuple[str, ...] = tuple(e.name for e in EMOTIONS)

EMOTION_INDEX: Dict[str, int] = {e.name: i for i, e in enumerate(EMOTIONS)}


def get_emotion(name: str) -> EmotionSpec:
    """Look up an emotion spec by name."""
    try:
        return EMOTIONS[EMOTION_INDEX[name]]
    except KeyError:
        raise ValueError(
            f"unknown emotion {name!r}; options: {', '.join(EMOTION_NAMES)}"
        ) from None


def to_binary_fear(name: str) -> int:
    """The paper's task mapping: fear -> 1, all other emotions -> 0."""
    get_emotion(name)  # validates
    return FEAR if name == "fear" else NON_FEAR


def response_intensity(
    emotion: EmotionSpec, rng: np.random.Generator, spread: float = 0.2
) -> float:
    """Physiological response intensity elicited by an emotion.

    Arousal sets the mean; trial-to-trial variation matches how
    strongly a given video actually lands.  Clamped to [0, 1.3].
    """
    base = max(0.0, emotion.arousal)
    return float(np.clip(rng.normal(base, spread * max(base, 0.2)), 0.0, 1.3))


def valence_sign(emotion: EmotionSpec) -> float:
    """-1 for negative-valence states, +1 for positive, 0 near neutral."""
    if emotion.valence > 0.2:
        return 1.0
    if emotion.valence < -0.2:
        return -1.0
    return 0.0


@dataclass(frozen=True)
class EmotionTrial:
    """One trial with a full emotion annotation."""

    emotion: str
    duration_seconds: float

    def __post_init__(self) -> None:
        get_emotion(self.emotion)
        if self.duration_seconds <= 0:
            raise ValueError("duration must be positive")

    @property
    def binary_label(self) -> int:
        return to_binary_fear(self.emotion)

    @property
    def emotion_id(self) -> int:
        return EMOTION_INDEX[self.emotion]


def emotion_schedule(
    num_trials: int,
    trial_seconds: float,
    rng: np.random.Generator,
    fear_fraction: float = 0.3,
) -> List[EmotionTrial]:
    """A WEMAC-like schedule: some fear videos among diverse others.

    ``fear_fraction`` of trials elicit fear; the rest cycle through the
    remaining nine emotions (WEMAC's neutral-heavy design means fear is
    the minority class in the full corpus).
    """
    if num_trials < 2:
        raise ValueError("need at least 2 trials")
    if not 0.0 < fear_fraction < 1.0:
        raise ValueError("fear_fraction must be in (0, 1)")
    n_fear = max(1, int(round(fear_fraction * num_trials)))
    others = [name for name in EMOTION_NAMES if name != "fear"]
    trials = [EmotionTrial("fear", trial_seconds) for _ in range(n_fear)]
    for i in range(num_trials - n_fear):
        trials.append(EmotionTrial(others[i % len(others)], trial_seconds))
    order = rng.permutation(len(trials))
    return [trials[i] for i in order]


class EmotionSimulator:
    """Physiological simulation driven by circumplex coordinates.

    Wraps :class:`PhysiologicalSimulator`: response intensity comes
    from the emotion's arousal, and for *positive*-valence states the
    skin-temperature response flips sign (pleasant arousal vasodilates)
    while the heart-rate delta is attenuated — the standard valence
    asymmetries reported in the affective-physiology literature.
    """

    def __init__(self, simulator: PhysiologicalSimulator = None):
        self.simulator = simulator or PhysiologicalSimulator()

    def simulate_trial(
        self,
        profile: SubjectProfile,
        trial: EmotionTrial,
        rng: np.random.Generator,
    ) -> Dict[str, np.ndarray]:
        emotion = get_emotion(trial.emotion)
        intensity = response_intensity(emotion, rng)
        sign = valence_sign(emotion)

        params = profile.params
        if sign > 0:
            # Positive valence: milder cardiac response, inverted SKT.
            from dataclasses import replace

            params = replace(
                params,
                fear_hr_delta=0.5 * params.fear_hr_delta,
                fear_skt_slope=-0.5 * params.fear_skt_slope,
                fear_scl_drift=0.6 * params.fear_scl_drift,
            )
        sim = self.simulator
        return {
            "bvp": sim._bvp_trial(params, intensity, trial.duration_seconds, rng),
            "gsr": sim._gsr_trial(params, intensity, trial.duration_seconds, rng),
            "skt": sim._skt_trial(params, intensity, trial.duration_seconds, rng),
        }

    def simulate_schedule(
        self,
        profile: SubjectProfile,
        trials: List[EmotionTrial],
        rng: np.random.Generator,
    ) -> List[Dict[str, np.ndarray]]:
        return [self.simulate_trial(profile, t, rng) for t in trials]


def binary_schedule_from_emotions(trials: List[EmotionTrial]) -> StimulusSchedule:
    """Collapse an emotion schedule into the paper's binary fear task."""
    return StimulusSchedule(
        tuple(Trial(t.binary_label, t.duration_seconds) for t in trials)
    )
