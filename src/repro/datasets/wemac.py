"""Synthetic WEMAC-compatible corpus generation.

WEMAC (Miranda et al., 2022) is request-gated and unavailable offline,
so the reproduction generates a corpus with the same statistical
structure: ~44 volunteers drawn from latent archetypes, multi-modal
physiological recordings (BVP 64 Hz, GSR 4 Hz, SKT 4 Hz) under fear /
non-fear video stimuli, converted into ~800 labelled 2D feature maps
(123 features x W windows), exactly the pipeline input the paper uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..orchestration.graph import PipelineGraph
from ..orchestration.stage import Stage, StageContext
from ..runtime.executor import Executor, RuntimeStats
from ..signals.feature_map import (
    FeatureMap,
    SubjectExtractionUnit,
    extract_subject_maps,
)
from .stimuli import StimulusSchedule, balanced_schedule
from .subject import (
    NUM_ARCHETYPES,
    PhysiologicalSimulator,
    SubjectProfile,
    sample_subject,
)


@dataclass(frozen=True)
class WEMACConfig:
    """Corpus-scale knobs.

    The defaults match the paper's setup (44 volunteers as implied by
    the 17/13/7/7 cluster sizes, ~18 maps each => ~800 feature maps).
    ``tiny()`` and ``small()`` provide fast variants for tests and
    benchmarks.
    """

    num_subjects: int = 44
    trials_per_subject: int = 18
    windows_per_map: int = 8
    window_seconds: float = 10.0
    fs_bvp: float = 64.0
    fs_gsr: float = 4.0
    fs_skt: float = 4.0
    subject_jitter: float = 0.12
    #: Relative archetype mix; normalized to num_subjects.  The default
    #: skew mirrors the paper's uneven 17/13/7/7 cluster sizes.
    archetype_weights: tuple = (0.39, 0.29, 0.16, 0.16)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_subjects < NUM_ARCHETYPES:
            raise ValueError(
                f"need at least {NUM_ARCHETYPES} subjects "
                f"(one per archetype), got {self.num_subjects}"
            )
        if self.trials_per_subject < 2:
            raise ValueError("need at least 2 trials per subject")
        if self.windows_per_map < 1:
            raise ValueError("windows_per_map must be >= 1")
        if len(self.archetype_weights) != NUM_ARCHETYPES:
            raise ValueError(
                f"archetype_weights must have {NUM_ARCHETYPES} entries"
            )

    @property
    def trial_seconds(self) -> float:
        return self.windows_per_map * self.window_seconds

    @staticmethod
    def tiny(seed: int = 0) -> "WEMACConfig":
        """Minutes-scale config for unit tests."""
        return WEMACConfig(
            num_subjects=8,
            trials_per_subject=4,
            windows_per_map=4,
            window_seconds=8.0,
            fs_bvp=32.0,
            seed=seed,
        )

    @staticmethod
    def small(seed: int = 0) -> "WEMACConfig":
        """Benchmark-scale config: all paper orderings emerge, runs fast."""
        return WEMACConfig(
            num_subjects=16,
            trials_per_subject=8,
            windows_per_map=6,
            window_seconds=8.0,
            fs_bvp=32.0,
            seed=seed,
        )


@dataclass
class SubjectRecord:
    """Everything generated for one volunteer."""

    profile: SubjectProfile
    schedule: StimulusSchedule
    maps: List[FeatureMap]

    @property
    def subject_id(self) -> int:
        return self.profile.subject_id

    @property
    def labels(self) -> np.ndarray:
        return np.array([m.label for m in self.maps], dtype=np.int64)


@dataclass
class WEMACDataset:
    """The generated corpus: per-subject feature maps plus ground truth."""

    config: WEMACConfig
    subjects: List[SubjectRecord]
    #: How generation ran (executor shape, extraction cache hits/misses);
    #: None for datasets loaded from disk or built by hand.
    runtime: Optional[RuntimeStats] = None
    #: Lineage of the generation graph (simulate → extract stages);
    #: empty for datasets built by hand.
    provenance: tuple = ()

    def __repro_content__(self):
        # Stable content: the config and every generated feature map.
        # Runtime stats and provenance carry wall times and must never
        # shift the dataset's digest.
        return (
            "WEMACDataset",
            self.config,
            tuple(
                (
                    record.subject_id,
                    record.profile.archetype_id,
                    tuple(
                        (m.values, int(m.label), int(m.subject_id))
                        for m in record.maps
                    ),
                )
                for record in self.subjects
            ),
        )

    @property
    def num_subjects(self) -> int:
        return len(self.subjects)

    @property
    def subject_ids(self) -> List[int]:
        return [s.subject_id for s in self.subjects]

    def subject(self, subject_id: int) -> SubjectRecord:
        for record in self.subjects:
            if record.subject_id == subject_id:
                return record
        raise KeyError(f"no subject with id {subject_id}")

    def all_maps(self) -> List[FeatureMap]:
        return [m for s in self.subjects for m in s.maps]

    def maps_for(self, subject_ids: Sequence[int]) -> List[FeatureMap]:
        wanted = set(subject_ids)
        return [m for s in self.subjects if s.subject_id in wanted for m in s.maps]

    def archetype_of(self, subject_id: int) -> int:
        return self.subject(subject_id).profile.archetype_id

    def archetype_assignment(self) -> Dict[int, int]:
        """Ground-truth latent archetype per subject (for validation only)."""
        return {s.subject_id: s.profile.archetype_id for s in self.subjects}

    def summary(self) -> Dict[str, float]:
        maps = self.all_maps()
        labels = np.array([m.label for m in maps])
        return {
            "num_subjects": float(self.num_subjects),
            "num_maps": float(len(maps)),
            "num_features": float(maps[0].num_features) if maps else 0.0,
            "windows_per_map": float(maps[0].num_windows) if maps else 0.0,
            "fear_fraction": float(labels.mean()) if labels.size else 0.0,
        }


def _archetype_plan(config: WEMACConfig) -> List[int]:
    """Assign archetypes to subjects per the configured weights."""
    weights = np.asarray(config.archetype_weights, dtype=np.float64)
    weights = weights / weights.sum()
    counts = np.floor(weights * config.num_subjects).astype(int)
    counts = np.maximum(counts, 1)  # at least one subject per archetype
    while counts.sum() < config.num_subjects:
        counts[int(np.argmax(weights - counts / config.num_subjects))] += 1
    while counts.sum() > config.num_subjects:
        counts[int(np.argmax(counts))] -= 1
    plan: List[int] = []
    for archetype_id, count in enumerate(counts):
        plan.extend([archetype_id] * int(count))
    return plan[: config.num_subjects]


class SyntheticWEMAC:
    """Generator for the synthetic WEMAC corpus."""

    def __init__(self, config: Optional[WEMACConfig] = None):
        self.config = config or WEMACConfig()

    def generate(
        self,
        executor: Optional[Executor] = None,
        cache_dir: Optional[Union[str, Path]] = None,
    ) -> WEMACDataset:
        """Simulate every volunteer and extract their feature maps.

        Simulation stays serial (every subject draws from the one
        corpus RNG stream), but feature extraction is pure and fans out
        per subject through ``executor``; with ``cache_dir`` set,
        byte-identical trials are loaded from the content-addressed
        cache instead of re-extracted.  Results are bit-identical
        across executors and cache states.
        """
        import time as _time

        cfg = self.config
        t0 = _time.perf_counter()

        def _simulate_stage(ctx: StageContext):
            # Serial by design: every subject draws from the one corpus
            # RNG stream.  Extraction consumes no randomness, so
            # deferring it to the next stage leaves the stream — and
            # thus the corpus — unchanged.
            rng = np.random.default_rng(cfg.seed)
            simulator = PhysiologicalSimulator(cfg.fs_bvp, cfg.fs_gsr, cfg.fs_skt)
            plan = _archetype_plan(cfg)
            profiles = []
            schedules = []
            units: List[SubjectExtractionUnit] = []
            for subject_id, archetype_id in enumerate(plan):
                profile = sample_subject(
                    subject_id, archetype_id, rng, jitter=cfg.subject_jitter
                )
                schedule = balanced_schedule(
                    cfg.trials_per_subject, cfg.trial_seconds, rng
                )
                raw_trials = simulator.simulate_schedule(profile, schedule, rng)
                profiles.append(profile)
                schedules.append(schedule)
                units.append(
                    SubjectExtractionUnit(
                        subject_id=subject_id,
                        trials=list(raw_trials),
                        labels=[t.label for t in schedule.trials],
                        windows_per_map=cfg.windows_per_map,
                        rates=(cfg.fs_bvp, cfg.fs_gsr, cfg.fs_skt),
                        window_seconds=cfg.window_seconds,
                        cache_dir=ctx.cache_dir,
                    )
                )
            ctx.set_units(len(units))
            return profiles, schedules, units

        def _extract_stage(ctx: StageContext, simulated):
            profiles, schedules, units = simulated
            ctx.set_units(len(units))
            results = ctx.executor.map(extract_subject_maps, units)
            for result in results:
                ctx.record_cache(result.cache_hits, result.cache_misses)
            return [
                SubjectRecord(profile, schedule, result.maps)
                for profile, schedule, result in zip(profiles, schedules, results)
            ]

        graph = PipelineGraph(
            "wemac_generate",
            [
                Stage(
                    name="simulated",
                    fn=_simulate_stage,
                    config=cfg,
                    seed=cfg.seed,
                ),
                Stage(
                    name="subjects",
                    fn=_extract_stage,
                    requires=("simulated",),
                    config=cfg,
                    seed=cfg.seed,
                ),
            ],
        )
        run = graph.run(executor=executor, cache_dir=cache_dir, seed=cfg.seed)
        extract_prov = run.provenance("subjects")
        stats = RuntimeStats(
            executor=extract_prov.executor,
            workers=extract_prov.workers,
            units=extract_prov.units,
            wall_time_s=_time.perf_counter() - t0,
            cache_hits=extract_prov.cache_hits,
            cache_misses=extract_prov.cache_misses,
        )
        return WEMACDataset(
            config=cfg,
            subjects=run.value("subjects"),
            runtime=stats,
            provenance=tuple(
                run.provenance(name) for name in ("simulated", "subjects")
            ),
        )
