"""Synthetic WEMAC-compatible corpus: virtual volunteers, stimuli, splits.

The real WEMAC dataset is request-gated; this package generates a
corpus with the same statistical structure (latent archetypes, fear /
non-fear labels, multi-rate physiological channels) so the full CLEAR
pipeline runs end-to-end offline.  See DESIGN.md for the substitution
rationale.
"""

from .emotions import (
    EMOTION_INDEX,
    EMOTION_NAMES,
    EMOTIONS,
    EmotionSimulator,
    EmotionSpec,
    EmotionTrial,
    binary_schedule_from_emotions,
    emotion_schedule,
    get_emotion,
    to_binary_fear,
)
from .loaders import (
    LOSOFold,
    loso_folds,
    random_subject_subset,
    split_maps_by_fraction,
)
from .stimuli import FEAR, NON_FEAR, StimulusSchedule, Trial, balanced_schedule
from .subject import (
    ARCHETYPES,
    NUM_ARCHETYPES,
    ArchetypeParams,
    PhysiologicalSimulator,
    SubjectProfile,
    sample_subject,
)
from .wemac import SubjectRecord, SyntheticWEMAC, WEMACConfig, WEMACDataset

__all__ = [
    "EMOTIONS",
    "EMOTION_NAMES",
    "EMOTION_INDEX",
    "EmotionSpec",
    "EmotionTrial",
    "EmotionSimulator",
    "emotion_schedule",
    "binary_schedule_from_emotions",
    "get_emotion",
    "to_binary_fear",
    "FEAR",
    "NON_FEAR",
    "Trial",
    "StimulusSchedule",
    "balanced_schedule",
    "ARCHETYPES",
    "NUM_ARCHETYPES",
    "ArchetypeParams",
    "SubjectProfile",
    "sample_subject",
    "PhysiologicalSimulator",
    "WEMACConfig",
    "WEMACDataset",
    "SubjectRecord",
    "SyntheticWEMAC",
    "LOSOFold",
    "loso_folds",
    "split_maps_by_fraction",
    "random_subject_subset",
]
