"""Dataset splitting: LOSO iteration and per-subject label-fraction splits."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from ..signals.feature_map import FeatureMap
from .wemac import SubjectRecord, WEMACDataset


@dataclass
class LOSOFold:
    """One leave-one-subject-out fold."""

    held_out_id: int
    train_subjects: List[SubjectRecord]
    test_subject: SubjectRecord

    @property
    def train_maps(self) -> List[FeatureMap]:
        return [m for s in self.train_subjects for m in s.maps]

    @property
    def test_maps(self) -> List[FeatureMap]:
        return list(self.test_subject.maps)


def loso_folds(dataset: WEMACDataset) -> Iterator[LOSOFold]:
    """Yield one fold per volunteer (the paper's LOSO protocol)."""
    for record in dataset.subjects:
        train = [s for s in dataset.subjects if s.subject_id != record.subject_id]
        yield LOSOFold(
            held_out_id=record.subject_id,
            train_subjects=train,
            test_subject=record,
        )


def split_maps_by_fraction(
    maps: Sequence[FeatureMap],
    fraction: float,
    rng: np.random.Generator,
    stratified: bool = True,
) -> Tuple[List[FeatureMap], List[FeatureMap]]:
    """Split one subject's maps into (selected, remainder) by fraction.

    Used for the paper's protocols: 10 % unlabeled data for cluster
    assignment, 20 % labelled data for fine-tuning (remainder is the
    test set).  Stratification keeps both classes represented in the
    selected portion whenever possible.
    """
    if not 0.0 < fraction < 1.0:
        raise ValueError(f"fraction must be in (0, 1), got {fraction}")
    maps = list(maps)
    if len(maps) < 2:
        raise ValueError("need at least 2 maps to split")

    n_select = max(1, int(round(fraction * len(maps))))
    n_select = min(n_select, len(maps) - 1)

    if stratified:
        labels = np.array([m.label for m in maps])
        selected_idx: List[int] = []
        for cls in np.unique(labels):
            cls_idx = np.flatnonzero(labels == cls)
            cls_idx = rng.permutation(cls_idx)
            take = max(1, int(round(fraction * cls_idx.size)))
            selected_idx.extend(cls_idx[:take].tolist())
        selected_idx = selected_idx[:n_select] if len(selected_idx) > n_select else selected_idx
        chosen = set(selected_idx)
    else:
        order = rng.permutation(len(maps))
        chosen = set(order[:n_select].tolist())

    selected = [m for i, m in enumerate(maps) if i in chosen]
    remainder = [m for i, m in enumerate(maps) if i not in chosen]
    if not remainder:
        remainder = [selected.pop()]
    return selected, remainder


def random_subject_subset(
    dataset: WEMACDataset, count: int, rng: np.random.Generator
) -> List[SubjectRecord]:
    """Sample ``count`` distinct volunteers (the paper's General model
    uses x = 11 random volunteers, an average cluster size)."""
    if count < 1 or count > dataset.num_subjects:
        raise ValueError(
            f"count must be in [1, {dataset.num_subjects}], got {count}"
        )
    idx = rng.choice(dataset.num_subjects, size=count, replace=False)
    return [dataset.subjects[i] for i in idx]
