"""Virtual volunteers: physiological archetypes and signal simulation.

The paper's central premise is that a population splits into groups of
users with *similar physiological responses* (clusterable), and that
the fear response differs across groups enough that one general model
underfits.  The simulator realizes exactly that structure:

* Each volunteer is drawn from one of four latent **archetypes** with
  distinct resting physiology (heart rate, skin conductance level,
  temperature) *and* distinct fear-response signatures (cardiac-
  dominant, electrodermal-dominant, blunted/inverted, labile).
* Per-volunteer jitter is added on top so subjects within an archetype
  are similar but not identical.

Because archetypes disagree about *how* fear manifests (e.g. HR up a
lot vs barely; many SCRs vs few), a single population model sees
conflicting input-label mappings, while per-cluster models see
consistent ones — reproducing Table I's General < CL ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from .stimuli import FEAR, StimulusSchedule


@dataclass(frozen=True)
class ArchetypeParams:
    """Latent physiological parameters shared by one archetype."""

    name: str
    # Resting state.
    rest_hr_bpm: float  # resting heart rate
    hrv_std: float  # beat-interval jitter (s)
    scl_base: float  # tonic skin conductance level (uS)
    scr_rate_rest: float  # spontaneous SCRs per minute
    skt_base: float  # baseline skin temperature (degC)
    # Fear response deltas.
    fear_hr_delta: float  # bpm shift under fear (may be negative)
    fear_hrv_scale: float  # multiplicative HRV change under fear
    fear_scr_rate: float  # SCRs per minute under fear
    fear_scr_amp: float  # mean SCR amplitude under fear (uS)
    fear_scl_drift: float  # tonic drift under fear (uS per minute)
    fear_skt_slope: float  # temperature slope under fear (degC per minute)
    # Pulse morphology.
    pulse_amp: float  # BVP pulse amplitude (a.u.)
    fear_pulse_amp_scale: float  # amplitude change under fear


#: The four canonical archetypes.  Resting levels separate them in
#: feature space (clusterable without labels); fear deltas make their
#: label mappings mutually inconsistent for a population model.
ARCHETYPES: Tuple[ArchetypeParams, ...] = (
    ArchetypeParams(
        name="cardiac_responder",
        rest_hr_bpm=62.0,
        hrv_std=0.045,
        scl_base=2.0,
        scr_rate_rest=1.0,
        skt_base=33.5,
        fear_hr_delta=18.0,
        fear_hrv_scale=0.55,
        fear_scr_rate=3.0,
        fear_scr_amp=0.25,
        fear_scl_drift=0.05,
        fear_skt_slope=-0.02,
        pulse_amp=1.0,
        fear_pulse_amp_scale=0.75,
    ),
    ArchetypeParams(
        name="electrodermal_responder",
        rest_hr_bpm=71.0,
        hrv_std=0.035,
        scl_base=5.5,
        scr_rate_rest=2.5,
        skt_base=32.3,
        fear_hr_delta=5.0,
        fear_hrv_scale=0.85,
        fear_scr_rate=11.0,
        fear_scr_amp=0.8,
        fear_scl_drift=0.5,
        fear_skt_slope=-0.05,
        pulse_amp=0.9,
        fear_pulse_amp_scale=0.95,
    ),
    ArchetypeParams(
        name="blunted_responder",
        rest_hr_bpm=80.0,
        hrv_std=0.028,
        scl_base=9.0,
        scr_rate_rest=4.0,
        skt_base=34.4,
        fear_hr_delta=-6.0,  # paradoxical deceleration (freeze response)
        fear_hrv_scale=1.25,
        fear_scr_rate=5.5,
        fear_scr_amp=0.15,
        fear_scl_drift=-0.1,
        fear_skt_slope=0.03,  # vasodilation instead of constriction
        pulse_amp=1.2,
        fear_pulse_amp_scale=1.2,
    ),
    ArchetypeParams(
        name="labile_responder",
        rest_hr_bpm=90.0,
        hrv_std=0.06,
        scl_base=13.0,
        scr_rate_rest=7.0,
        skt_base=31.2,
        fear_hr_delta=10.0,
        fear_hrv_scale=1.6,
        fear_scr_rate=14.0,
        fear_scr_amp=0.45,
        fear_scl_drift=0.3,
        fear_skt_slope=-0.09,
        pulse_amp=0.7,
        fear_pulse_amp_scale=0.6,
    ),
)

NUM_ARCHETYPES = len(ARCHETYPES)


@dataclass(frozen=True)
class SubjectProfile:
    """One virtual volunteer: an archetype plus individual jitter."""

    subject_id: int
    archetype_id: int
    params: ArchetypeParams


def sample_subject(
    subject_id: int,
    archetype_id: int,
    rng: np.random.Generator,
    jitter: float = 0.12,
    base_params: Optional[ArchetypeParams] = None,
) -> SubjectProfile:
    """Draw an individual around an archetype.

    ``jitter`` is the relative std of multiplicative noise applied to
    every archetype parameter (additive for parameters near zero).
    ``base_params`` overrides the canonical archetype parameters —
    scenario population dynamics pass drifted blends here while keeping
    the canonical ``archetype_id`` as ground truth.
    """
    if not 0 <= archetype_id < NUM_ARCHETYPES:
        raise ValueError(
            f"archetype_id must be in [0, {NUM_ARCHETYPES}), got {archetype_id}"
        )
    base = base_params if base_params is not None else ARCHETYPES[archetype_id]

    def jit(value: float, scale: float = 1.0) -> float:
        spread = abs(value) * jitter * scale
        if spread < 1e-9:
            spread = jitter * scale
        return float(value + rng.normal(0.0, spread))

    params = replace(
        base,
        rest_hr_bpm=max(45.0, jit(base.rest_hr_bpm)),
        hrv_std=max(0.005, jit(base.hrv_std)),
        scl_base=max(0.3, jit(base.scl_base)),
        scr_rate_rest=max(0.1, jit(base.scr_rate_rest)),
        skt_base=jit(base.skt_base, scale=0.2),
        fear_hr_delta=jit(base.fear_hr_delta),
        fear_hrv_scale=max(0.2, jit(base.fear_hrv_scale)),
        fear_scr_rate=max(0.2, jit(base.fear_scr_rate)),
        fear_scr_amp=max(0.02, jit(base.fear_scr_amp)),
        fear_scl_drift=jit(base.fear_scl_drift),
        fear_skt_slope=jit(base.fear_skt_slope),
        pulse_amp=max(0.2, jit(base.pulse_amp)),
        fear_pulse_amp_scale=max(0.2, jit(base.fear_pulse_amp_scale)),
    )
    return SubjectProfile(subject_id=subject_id, archetype_id=archetype_id, params=params)


class PhysiologicalSimulator:
    """Generate raw BVP / GSR / SKT traces for a subject and schedule.

    The model is deliberately mechanistic rather than statistical:
    BVP is a pulse train whose instantaneous rate follows the subject's
    HR (label-conditioned); GSR is tonic drift plus discrete SCR events
    with exponential recovery; SKT is a slow thermal trend.  All the
    paper's 123 features respond to these mechanisms.
    """

    def __init__(self, fs_bvp: float = 64.0, fs_gsr: float = 4.0, fs_skt: float = 4.0):
        if min(fs_bvp, fs_gsr, fs_skt) <= 0:
            raise ValueError("sampling rates must be positive")
        self.fs_bvp = float(fs_bvp)
        self.fs_gsr = float(fs_gsr)
        self.fs_skt = float(fs_skt)

    # -- per-channel generators ------------------------------------------
    def _bvp_trial(
        self,
        params: ArchetypeParams,
        intensity: float,
        duration: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        fs = self.fs_bvp
        n = int(duration * fs)
        hr = params.rest_hr_bpm + intensity * params.fear_hr_delta
        hrv = params.hrv_std * (1.0 + intensity * (params.fear_hrv_scale - 1.0))
        amp = params.pulse_amp * (
            1.0 + intensity * (params.fear_pulse_amp_scale - 1.0)
        )
        # Build beat times with jittered inter-beat intervals.
        mean_ibi = 60.0 / hr
        beat_times = []
        t = float(rng.uniform(0, mean_ibi))
        while t < duration + 2 * mean_ibi:
            beat_times.append(t)
            t += max(0.25, mean_ibi + rng.normal(0.0, hrv))
        signal = np.zeros(n)
        ts = np.arange(n) / fs
        # Each beat contributes a systolic upstroke + dicrotic bump,
        # modelled as two Gaussians.
        for bt in beat_times:
            local = ts - bt
            mask = (local > -0.3) & (local < 0.7)
            if not mask.any():
                continue
            lt = local[mask]
            pulse = amp * (
                np.exp(-0.5 * (lt / 0.08) ** 2)
                + 0.35 * np.exp(-0.5 * ((lt - 0.25) / 0.09) ** 2)
            )
            signal[mask] += pulse
        # Respiratory baseline wander + sensor noise.
        resp = 0.12 * amp * np.sin(2 * np.pi * 0.25 * ts + rng.uniform(0, 2 * np.pi))
        noise = 0.07 * amp * rng.normal(size=n)
        return signal + resp + noise

    def _gsr_trial(
        self,
        params: ArchetypeParams,
        intensity: float,
        duration: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        fs = self.fs_gsr
        n = int(duration * fs)
        ts = np.arange(n) / fs
        rest_amp = max(0.03, 0.4 * params.fear_scr_amp)
        scr_rate = params.scr_rate_rest + intensity * (
            params.fear_scr_rate - params.scr_rate_rest
        )
        scr_amp = rest_amp + intensity * (params.fear_scr_amp - rest_amp)
        drift = intensity * params.fear_scl_drift / 60.0
        tonic = params.scl_base + drift * ts + 0.02 * np.sin(2 * np.pi * 0.01 * ts)
        phasic = np.zeros(n)
        # Poisson SCR arrivals; each SCR: 1 s rise, ~3 s exponential decay.
        expected = scr_rate * duration / 60.0
        num_scrs = rng.poisson(expected)
        for _ in range(num_scrs):
            onset = rng.uniform(0, max(duration - 4.0, 0.5))
            amplitude = max(0.01, rng.normal(scr_amp, 0.3 * scr_amp))
            local = ts - onset
            rise = np.clip(local / 1.0, 0.0, 1.0)
            decay = np.exp(-np.clip(local - 1.0, 0.0, None) / 3.0)
            phasic += amplitude * np.where(local > 0, rise * decay, 0.0)
        noise = 0.02 * rng.normal(size=n)
        return tonic + phasic + noise

    def _skt_trial(
        self,
        params: ArchetypeParams,
        intensity: float,
        duration: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        fs = self.fs_skt
        n = int(duration * fs)
        ts = np.arange(n) / fs
        slope = intensity * params.fear_skt_slope / 60.0
        base = params.skt_base + slope * ts
        # Slow thermal oscillation + quantization-scale noise.
        wave = 0.03 * np.sin(2 * np.pi * 0.005 * ts + rng.uniform(0, 2 * np.pi))
        noise = 0.015 * rng.normal(size=n)
        return base + wave + noise

    # -- public API -------------------------------------------------------
    def simulate_trial(
        self,
        profile: SubjectProfile,
        label: int,
        duration: float,
        rng: np.random.Generator,
    ) -> Dict[str, np.ndarray]:
        """Generate one trial's raw traces: keys 'bvp', 'gsr', 'skt'.

        Emotional *intensity* varies per trial: fear videos elicit a
        response of random strength, and some neutral videos still
        produce mild arousal.  This class overlap is what keeps the
        classification task realistically hard (and leaves headroom for
        fine-tuning to exploit subject-specific response styles).
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        if label == FEAR:
            intensity = float(rng.uniform(0.45, 1.25))
        else:
            intensity = float(rng.uniform(0.0, 0.35))
        return {
            "bvp": self._bvp_trial(profile.params, intensity, duration, rng),
            "gsr": self._gsr_trial(profile.params, intensity, duration, rng),
            "skt": self._skt_trial(profile.params, intensity, duration, rng),
        }

    def simulate_schedule(
        self,
        profile: SubjectProfile,
        schedule: StimulusSchedule,
        rng: np.random.Generator,
    ) -> List[Dict[str, np.ndarray]]:
        """Generate raw traces for every trial in a schedule."""
        return [
            self.simulate_trial(profile, trial.label, trial.duration_seconds, rng)
            for trial in schedule.trials
        ]
