"""Corpus persistence: save/load generated datasets as .npz bundles.

Feature extraction dominates corpus generation time, so workflows that
reuse a corpus (the CLI, repeated experiments) save it once and reload.
Raw signal traces are not persisted — feature maps, labels, subject
metadata, and the generating config are sufficient for every
experiment in the repository.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Union

import numpy as np

from ..signals.feature_map import FeatureMap
from .stimuli import StimulusSchedule, Trial
from .subject import ARCHETYPES, SubjectProfile
from .wemac import SubjectRecord, WEMACConfig, WEMACDataset

FORMAT_VERSION = 1


def save_dataset(dataset: WEMACDataset, path: Union[str, Path]) -> Path:
    """Write a dataset to a single .npz file."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)

    meta = {
        "format_version": FORMAT_VERSION,
        "config": dataclasses.asdict(dataset.config),
        "subjects": [],
    }
    arrays = {}
    for record in dataset.subjects:
        sid = record.subject_id
        meta["subjects"].append(
            {
                "subject_id": sid,
                "archetype_id": record.profile.archetype_id,
                "params": dataclasses.asdict(record.profile.params),
                "labels": [int(l) for l in record.labels],
                "durations": [t.duration_seconds for t in record.schedule.trials],
            }
        )
        for i, fmap in enumerate(record.maps):
            arrays[f"maps/{sid}/{i}"] = fmap.values
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)
    return path


def load_dataset(path: Union[str, Path]) -> WEMACDataset:
    """Load a dataset saved by :func:`save_dataset`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        meta = json.loads(bytes(data["__meta__"].tobytes()).decode("utf-8"))
        if meta.get("format_version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported dataset format: {meta.get('format_version')}"
            )
        cfg_data = dict(meta["config"])
        cfg_data["archetype_weights"] = tuple(cfg_data["archetype_weights"])
        config = WEMACConfig(**cfg_data)

        subjects = []
        from .subject import ArchetypeParams

        for entry in meta["subjects"]:
            sid = int(entry["subject_id"])
            profile = SubjectProfile(
                subject_id=sid,
                archetype_id=int(entry["archetype_id"]),
                params=ArchetypeParams(**entry["params"]),
            )
            labels = entry["labels"]
            durations = entry["durations"]
            schedule = StimulusSchedule(
                tuple(
                    Trial(int(label), float(duration))
                    for label, duration in zip(labels, durations)
                )
            )
            maps = [
                FeatureMap(
                    np.asarray(data[f"maps/{sid}/{i}"], dtype=np.float64),
                    label=int(labels[i]),
                    subject_id=sid,
                )
                for i in range(len(labels))
            ]
            subjects.append(SubjectRecord(profile, schedule, maps))
    return WEMACDataset(config=config, subjects=subjects)
