"""Stimulus schedules: the video protocol that elicits emotions.

WEMAC shows each volunteer a sequence of validated emotion-eliciting
video clips.  Here a schedule is a list of trials, each with a binary
label (fear / non-fear, the paper's target task) and a duration that
the simulator turns into raw physiological signal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

#: Binary task labels used throughout the reproduction.
NON_FEAR = 0
FEAR = 1


@dataclass(frozen=True)
class Trial:
    """One video-watching trial."""

    label: int
    duration_seconds: float

    def __post_init__(self) -> None:
        if self.label not in (NON_FEAR, FEAR):
            raise ValueError(f"label must be 0 or 1, got {self.label}")
        if self.duration_seconds <= 0:
            raise ValueError(
                f"duration must be positive, got {self.duration_seconds}"
            )


@dataclass(frozen=True)
class StimulusSchedule:
    """An ordered list of trials one volunteer experiences."""

    trials: tuple

    @property
    def num_trials(self) -> int:
        return len(self.trials)

    @property
    def total_duration(self) -> float:
        return float(sum(t.duration_seconds for t in self.trials))

    def labels(self) -> np.ndarray:
        return np.array([t.label for t in self.trials], dtype=np.int64)


def balanced_schedule(
    num_trials: int,
    trial_seconds: float,
    rng: np.random.Generator,
) -> StimulusSchedule:
    """Half fear / half non-fear trials in randomized order.

    With an odd count the extra trial is non-fear (neutral videos
    outnumber fear videos in WEMAC).
    """
    if num_trials < 2:
        raise ValueError(f"need at least 2 trials, got {num_trials}")
    n_fear = num_trials // 2
    labels = [FEAR] * n_fear + [NON_FEAR] * (num_trials - n_fear)
    order = rng.permutation(num_trials)
    trials = tuple(Trial(labels[i], trial_seconds) for i in order)
    return StimulusSchedule(trials)
