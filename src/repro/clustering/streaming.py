"""Streaming k-means over bounded signature chunks.

Two modes, one interface:

* ``mode="exact"`` accumulates the (N, F) *signature* matrix chunk by
  chunk — the reduced per-subject representation, thousands of times
  smaller than the subjects themselves — and delegates to the batch
  :class:`~repro.clustering.kmeans.KMeans`.  Because row-order
  concatenation of chunks is bytewise identical to stacking the
  materialized population, the result is **bit-identical to the batch
  path** at any chunk size.  Memory is O(N·F) for the signatures only;
  the maps never co-exist.
* ``mode="minibatch"`` is a single-pass Sculley-style online fit:
  k-means++ on a fixed-size init prefix, then deterministic
  count-weighted center updates per chunk.  Memory is O(chunk + k·F)
  — the true bounded-memory path for 100k-subject populations — at the
  cost of chunk-size-dependent (still fully deterministic) centers.

Both modes standardize features with statistics that are a pure
function of the stream prefix they fit on, and both return a
:class:`StreamingKMeansResult` whose ``assign`` maps raw signatures to
cluster labels for the scoring pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

import numpy as np

from ..runtime.executor import Executor
from .kmeans import KMeans, KMeansResult, assign_to_centers, kmeans_plus_plus_init
from .scaling import StandardScaler

MODES = ("exact", "minibatch")


@dataclass
class StreamingKMeansResult:
    """Fitted centers plus the scaling needed to assign new signatures."""

    centers: np.ndarray  # (k, F), in standardized space
    mean: np.ndarray  # (F,) standardization mean
    std: np.ndarray  # (F,) standardization std
    n_samples: int
    n_updates: int
    mode: str
    eps: float = 1e-8
    #: The underlying batch result (exact mode only).
    batch: Optional[KMeansResult] = None

    def scale(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return (x - self.mean) / (self.std + self.eps)

    def assign(self, x: np.ndarray) -> np.ndarray:
        """Nearest-center labels for raw (unscaled) signature rows."""
        return assign_to_centers(self.scale(np.atleast_2d(x)), self.centers)

    def chunk_inertia(self, x: np.ndarray) -> float:
        """Sum of squared scaled distances of a raw chunk to its centers."""
        scaled = self.scale(np.atleast_2d(x))
        labels = assign_to_centers(scaled, self.centers)
        delta = scaled - self.centers[labels]
        return float(np.sum(delta * delta))


class StreamingKMeans:
    """Cluster a signature stream without materializing the population.

    Parameters mirror :class:`~repro.clustering.kmeans.KMeans`;
    ``init_size`` (minibatch only) is how many leading rows seed the
    k-means++ initialization and the standardization statistics.
    """

    def __init__(
        self,
        k: int,
        mode: str = "exact",
        n_init: int = 8,
        max_iter: int = 300,
        tol: float = 1e-6,
        seed: Optional[int] = 0,
        init_size: Optional[int] = None,
        standardize: bool = True,
    ):
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = int(k)
        self.mode = mode
        self.n_init = int(n_init)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.seed = seed
        self.init_size = (
            int(init_size) if init_size is not None else max(64, 8 * self.k)
        )
        if self.init_size < self.k:
            raise ValueError("init_size must be >= k")
        self.standardize = bool(standardize)

    # -- shared ------------------------------------------------------------
    def _stats(self, init: np.ndarray) -> StreamingKMeansResult:
        if self.standardize:
            scaler = StandardScaler()
            scaler.fit(init)
            mean, std, eps = scaler.mean_, scaler.std_, scaler.eps
        else:
            mean = np.zeros(init.shape[1])
            std = np.ones(init.shape[1])
            eps = 0.0  # identity scaling, exactly
        return StreamingKMeansResult(
            centers=np.empty((0, init.shape[1])),
            mean=mean,
            std=std,
            n_samples=0,
            n_updates=0,
            mode=self.mode,
            eps=eps,
        )

    def fit_chunks(
        self,
        chunks: Iterable[np.ndarray],
        executor: Optional[Executor] = None,
    ) -> StreamingKMeansResult:
        """Fit the stream; dispatches on the configured mode."""
        if self.mode == "exact":
            return self._fit_exact(chunks, executor)
        return self._fit_minibatch(chunks)

    @staticmethod
    def _as_rows(chunk: np.ndarray) -> np.ndarray:
        rows = np.asarray(chunk, dtype=np.float64)
        if rows.ndim == 1:
            rows = rows[None, :]
        if rows.ndim != 2:
            raise ValueError(f"expected (n, F) chunk, got shape {rows.shape}")
        return rows

    # -- exact mode --------------------------------------------------------
    def _fit_exact(
        self, chunks: Iterable[np.ndarray], executor: Optional[Executor]
    ) -> StreamingKMeansResult:
        collected: List[np.ndarray] = []
        for chunk in chunks:
            collected.append(self._as_rows(chunk))
        if not collected:
            raise ValueError("cannot fit on an empty stream")
        matrix = np.concatenate(collected, axis=0)
        result = self._stats(matrix)
        scaled = result.scale(matrix)
        batch = KMeans(
            self.k,
            n_init=self.n_init,
            max_iter=self.max_iter,
            tol=self.tol,
            seed=self.seed,
        ).fit(scaled, executor=executor)
        result.centers = batch.centers
        result.n_samples = matrix.shape[0]
        result.n_updates = 1
        result.batch = batch
        return result

    # -- minibatch mode ----------------------------------------------------
    def _fit_minibatch(
        self, chunks: Iterable[np.ndarray]
    ) -> StreamingKMeansResult:
        stream = iter(chunks)
        buffered: List[np.ndarray] = []
        buffered_rows = 0
        for chunk in stream:
            rows = self._as_rows(chunk)
            buffered.append(rows)
            buffered_rows += rows.shape[0]
            if buffered_rows >= self.init_size:
                break
        if buffered_rows == 0:
            raise ValueError("cannot fit on an empty stream")
        if buffered_rows < self.k:
            raise ValueError(
                f"stream has {buffered_rows} rows; need >= k={self.k}"
            )
        prefix = np.concatenate(buffered, axis=0)
        init = prefix[: self.init_size]
        result = self._stats(init)
        rng = np.random.default_rng(np.random.SeedSequence(self.seed))
        centers = kmeans_plus_plus_init(result.scale(init), self.k, rng)
        counts = np.zeros(self.k, dtype=np.int64)
        # The buffered prefix is the first update; the rest of the
        # stream flows through one update per chunk.
        centers, counts, updates, seen = self._update(
            result, centers, counts, prefix
        )
        n_updates = updates
        n_samples = seen
        for chunk in stream:
            centers, counts, updates, seen = self._update(
                result, centers, counts, self._as_rows(chunk)
            )
            n_updates += updates
            n_samples += seen
        result.centers = centers
        result.n_samples = n_samples
        result.n_updates = n_updates
        return result

    @staticmethod
    def _update(
        result: StreamingKMeansResult,
        centers: np.ndarray,
        counts: np.ndarray,
        rows: np.ndarray,
    ):
        """One count-weighted Sculley update; deterministic, RNG-free."""
        scaled = result.scale(rows)
        labels = assign_to_centers(scaled, centers)
        centers = centers.copy()
        for j in np.unique(labels):
            members = scaled[labels == j]
            counts[j] += members.shape[0]
            step = members.shape[0] / counts[j]
            centers[j] += step * (members.mean(axis=0) - centers[j])
        return centers, counts, 1, rows.shape[0]


def fit_signature_matrix(
    matrix: np.ndarray,
    k: int,
    n_init: int = 8,
    max_iter: int = 300,
    tol: float = 1e-6,
    seed: Optional[int] = 0,
    standardize: bool = True,
    executor: Optional[Executor] = None,
) -> StreamingKMeansResult:
    """The materialized batch path, as a one-chunk stream.

    This is the reference the exact streaming mode is bit-identical
    to: scale the whole (N, F) signature matrix, run batch k-means.
    """
    return StreamingKMeans(
        k,
        mode="exact",
        n_init=n_init,
        max_iter=max_iter,
        tol=tol,
        seed=seed,
        standardize=standardize,
    ).fit_chunks([matrix], executor=executor)
