"""Agglomerative (hierarchical) clustering from scratch.

An alternative to k-means for the global clustering stage.  The paper
uses the k-means-style refinement of [19]; hierarchical clustering is
the standard comparator in the personalized-clustering literature, so
it is included for the GC-algorithm ablation.

Supports single / complete / average / Ward linkage via the
Lance-Williams update, O(n^3) — fine for user-level clustering where
n is tens of subjects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .kmeans import pairwise_sq_distances

LINKAGES = ("single", "complete", "average", "ward")


@dataclass
class MergeStep:
    """One agglomeration: clusters a and b merged at a given height."""

    a: int
    b: int
    height: float
    new_id: int
    size: int


@dataclass
class Dendrogram:
    """Full merge history of an agglomerative run."""

    n_leaves: int
    merges: List[MergeStep]

    def cut(self, k: int) -> np.ndarray:
        """Labels for a flat clustering with ``k`` clusters.

        Undoes the last ``k - 1`` merges.  Labels are re-indexed to
        0..k-1 in order of first appearance.
        """
        if not 1 <= k <= self.n_leaves:
            raise ValueError(f"k must be in [1, {self.n_leaves}], got {k}")
        parent = list(range(self.n_leaves + len(self.merges)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        # Apply all merges except the last k-1.
        for step in self.merges[: self.n_leaves - k]:
            parent[find(step.a)] = step.new_id
            parent[find(step.b)] = step.new_id

        roots: Dict[int, int] = {}
        labels = np.empty(self.n_leaves, dtype=np.int64)
        for leaf in range(self.n_leaves):
            root = find(leaf)
            if root not in roots:
                roots[root] = len(roots)
            labels[leaf] = roots[root]
        return labels


def _lance_williams(
    linkage: str,
    d_ai: float,
    d_bi: float,
    d_ab: float,
    size_a: int,
    size_b: int,
    size_i: int,
) -> float:
    """Distance from merged cluster (a+b) to cluster i."""
    if linkage == "single":
        return min(d_ai, d_bi)
    if linkage == "complete":
        return max(d_ai, d_bi)
    if linkage == "average":
        total = size_a + size_b
        return (size_a * d_ai + size_b * d_bi) / total
    # Ward (distances are squared Euclidean here).
    total = size_a + size_b + size_i
    return (
        (size_a + size_i) * d_ai + (size_b + size_i) * d_bi - size_i * d_ab
    ) / total


def agglomerative_cluster(
    x: np.ndarray, linkage: str = "ward"
) -> Dendrogram:
    """Build the full dendrogram of ``x`` (n, F) under a linkage rule."""
    if linkage not in LINKAGES:
        raise ValueError(f"unknown linkage {linkage!r}; options: {LINKAGES}")
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2 or x.shape[0] < 2:
        raise ValueError(f"expected at least 2 samples of shape (n, F), got {x.shape}")
    n = x.shape[0]

    # Ward operates on squared distances; the geometric linkages on
    # plain Euclidean distances.
    dist = pairwise_sq_distances(x, x)
    if linkage != "ward":
        dist = np.sqrt(dist)
    np.fill_diagonal(dist, np.inf)

    active = {i: i for i in range(n)}  # row index -> cluster id
    sizes = {i: 1 for i in range(n)}
    merges: List[MergeStep] = []
    next_id = n
    d = dist.copy()

    for _ in range(n - 1):
        rows = sorted(active)
        sub = d[np.ix_(rows, rows)]
        flat = int(np.argmin(sub))
        i_pos, j_pos = divmod(flat, len(rows))
        ri, rj = rows[i_pos], rows[j_pos]
        height = float(sub[i_pos, j_pos])
        id_a, id_b = active[ri], active[rj]
        size_a, size_b = sizes[id_a], sizes[id_b]

        # Update distances from the merged cluster (stored in row ri).
        for rk in rows:
            if rk in (ri, rj):
                continue
            d_new = _lance_williams(
                linkage,
                float(d[ri, rk]),
                float(d[rj, rk]),
                height,
                size_a,
                size_b,
                sizes[active[rk]],
            )
            d[ri, rk] = d[rk, ri] = d_new
        d[rj, :] = np.inf
        d[:, rj] = np.inf

        merges.append(
            MergeStep(
                a=id_a,
                b=id_b,
                height=height,
                new_id=next_id,
                size=size_a + size_b,
            )
        )
        sizes[next_id] = size_a + size_b
        active[ri] = next_id
        del active[rj]
        next_id += 1

    return Dendrogram(n_leaves=n, merges=merges)


def agglomerative_labels(
    x: np.ndarray, k: int, linkage: str = "ward"
) -> np.ndarray:
    """Convenience: flat k-cluster labels via agglomeration."""
    return agglomerative_cluster(x, linkage).cut(k)


def cophenetic_heights(dendrogram: Dendrogram) -> np.ndarray:
    """Merge heights in order — monotone for well-behaved linkages."""
    return np.array([m.height for m in dendrogram.merges])
