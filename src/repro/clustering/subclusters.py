"""Hierarchical sub-cluster structure within each global cluster.

For cold-start Cluster Assignment (CA, paper §III-B.1) each main
cluster k is subdivided into internal sub-clusters with centroids
C_{k,i}; a new user is compared against these finer centroids rather
than only the main ones, which makes the assignment robust to users
who sit between cluster cores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..orchestration.grouping import member_maps as _member_maps
from ..signals.feature_map import FeatureMap
from .global_clustering import GlobalClusteringResult
from .kmeans import KMeans


@dataclass
class SubClusterModel:
    """Sub-centroids of one main cluster (scaled feature space)."""

    cluster: int
    centroids: np.ndarray  # (I_k, F)

    @property
    def num_subclusters(self) -> int:
        return int(self.centroids.shape[0])


def map_mean_vectors(maps: Sequence[FeatureMap]) -> np.ndarray:
    """Per-map mean feature vectors, shape (num_maps, F).

    Averaging over a map's windows suppresses per-window label noise
    while keeping one point per trial, which is the granularity at
    which within-cluster response modes are visible.
    """
    return np.stack([m.values.mean(axis=1) for m in maps], axis=0)


def build_subclusters(
    gc: GlobalClusteringResult,
    maps_by_subject: Dict[int, Sequence[FeatureMap]],
    subclusters_per_cluster: int = 3,
    seed: int = 0,
) -> Dict[int, SubClusterModel]:
    """Fit sub-cluster centroids inside every main cluster.

    Sub-clustering runs on the per-map mean vectors of the cluster's
    member subjects (scaled with the GC scaler), capturing within-
    cluster response modes.  If a cluster has too few vectors the
    sub-cluster count degrades gracefully.
    """
    if subclusters_per_cluster < 1:
        raise ValueError(
            f"subclusters_per_cluster must be >= 1, got {subclusters_per_cluster}"
        )
    models: Dict[int, SubClusterModel] = {}
    for cluster in range(gc.k):
        member_ids = gc.members(cluster)
        member_maps = _member_maps(maps_by_subject, member_ids)
        if not member_maps:
            # Degenerate cluster: fall back to the main centroid alone.
            models[cluster] = SubClusterModel(
                cluster=cluster, centroids=gc.centroids[cluster : cluster + 1].copy()
            )
            continue
        vectors = gc.scaler.transform(map_mean_vectors(member_maps))
        i_k = min(subclusters_per_cluster, vectors.shape[0])
        result = KMeans(i_k, seed=seed).fit(vectors)
        models[cluster] = SubClusterModel(cluster=cluster, centroids=result.centers)
    return models
