"""Internal clustering quality indices (no external labels needed)."""

from __future__ import annotations

import numpy as np

from .kmeans import pairwise_sq_distances


def _validate(x: np.ndarray, labels: np.ndarray) -> tuple:
    x = np.asarray(x, dtype=np.float64)
    labels = np.asarray(labels)
    if x.shape[0] != labels.shape[0]:
        raise ValueError("x and labels disagree on sample count")
    unique = np.unique(labels)
    if unique.size < 2:
        raise ValueError("need at least 2 clusters for this index")
    return x, labels, unique


def silhouette_score(x: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient over all samples (in [-1, 1])."""
    x, labels, unique = _validate(x, labels)
    n = x.shape[0]
    # Full pairwise distance matrix (corpora here are small: ~10-100 users).
    d = np.sqrt(pairwise_sq_distances(x, x))
    scores = np.zeros(n)
    for i in range(n):
        own = labels[i]
        own_mask = labels == own
        own_count = own_mask.sum()
        if own_count <= 1:
            scores[i] = 0.0
            continue
        a = d[i, own_mask].sum() / (own_count - 1)
        b = np.inf
        for other in unique:
            if other == own:
                continue
            other_mask = labels == other
            b = min(b, d[i, other_mask].mean())
        scores[i] = (b - a) / max(a, b) if max(a, b) > 0 else 0.0
    return float(scores.mean())


def davies_bouldin_index(x: np.ndarray, labels: np.ndarray) -> float:
    """Davies-Bouldin index (lower is better)."""
    x, labels, unique = _validate(x, labels)
    k = unique.size
    centroids = np.stack([x[labels == c].mean(axis=0) for c in unique])
    scatters = np.array(
        [
            np.mean(np.linalg.norm(x[labels == c] - centroids[i], axis=1))
            for i, c in enumerate(unique)
        ]
    )
    center_d = np.sqrt(pairwise_sq_distances(centroids, centroids))
    ratios = np.zeros(k)
    for i in range(k):
        worst = 0.0
        for j in range(k):
            if i == j or center_d[i, j] == 0:
                continue
            worst = max(worst, (scatters[i] + scatters[j]) / center_d[i, j])
        ratios[i] = worst
    return float(ratios.mean())


def calinski_harabasz_index(x: np.ndarray, labels: np.ndarray) -> float:
    """Calinski-Harabasz (variance-ratio) index (higher is better)."""
    x, labels, unique = _validate(x, labels)
    n, k = x.shape[0], unique.size
    if n <= k:
        raise ValueError("need more samples than clusters")
    overall = x.mean(axis=0)
    between = 0.0
    within = 0.0
    for c in unique:
        members = x[labels == c]
        centroid = members.mean(axis=0)
        between += members.shape[0] * float(np.sum((centroid - overall) ** 2))
        within += float(np.sum((members - centroid) ** 2))
    if within == 0:
        return np.inf
    return float((between / (k - 1)) / (within / (n - k)))


def inertia(x: np.ndarray, labels: np.ndarray) -> float:
    """Within-cluster sum of squared distances to centroids."""
    x = np.asarray(x, dtype=np.float64)
    labels = np.asarray(labels)
    total = 0.0
    for c in np.unique(labels):
        members = x[labels == c]
        centroid = members.mean(axis=0)
        total += float(np.sum((members - centroid) ** 2))
    return total


def cluster_sizes(labels: np.ndarray) -> np.ndarray:
    """Sorted (descending) cluster member counts."""
    _, counts = np.unique(np.asarray(labels), return_counts=True)
    return np.sort(counts)[::-1]
