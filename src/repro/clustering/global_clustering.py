"""Global Clustering (GC): iterative user clustering (paper §III-A.2).

Users are represented by their mean feature vector (one column of the
paper's D ∈ R^{F×N}).  After a k-means++ start, centroids are refined
iteratively: each round re-estimates user signatures from a random
subsample of their feature maps, recomputes centroids from current
memberships, and reassigns any user whose nearest centroid changed —
the refinement loop of Gutiérrez-Martín et al. [19].
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..orchestration.grouping import iter_subject_maps
from ..signals.feature_map import FeatureMap
from .kmeans import KMeans, pairwise_sq_distances
from .scaling import StandardScaler


def subject_matrix(
    maps_by_subject: Dict[int, Sequence[FeatureMap]],
    rng: Optional[np.random.Generator] = None,
    subsample_fraction: float = 1.0,
) -> np.ndarray:
    """Stack per-subject signatures into (N, F), optionally subsampled.

    A signature is the mean over a subject's window vectors; with
    ``subsample_fraction < 1`` a random subset of the subject's maps is
    used, which is how GC's refinement rounds resample the data.
    """
    if not maps_by_subject:
        raise ValueError("no subjects provided")
    rows = []
    for subject_id, subject_maps in iter_subject_maps(maps_by_subject):
        maps = list(subject_maps)
        if subsample_fraction < 1.0 and rng is not None and len(maps) > 1:
            count = max(1, int(round(subsample_fraction * len(maps))))
            idx = rng.choice(len(maps), size=count, replace=False)
            maps = [maps[i] for i in idx]
        vectors = np.concatenate([m.values.T for m in maps], axis=0)  # (sumW, F)
        rows.append(vectors.mean(axis=0))
    return np.stack(rows, axis=0)


@dataclass
class GlobalClusteringResult:
    """Fitted GC model: scaler, centroids, and user assignments."""

    k: int
    scaler: StandardScaler
    centroids: np.ndarray  # (k, F) in scaled space
    assignments: Dict[int, int]  # subject_id -> cluster
    n_refinements: int
    converged: bool

    def members(self, cluster: int) -> List[int]:
        return [s for s, c in self.assignments.items() if c == cluster]

    def cluster_sizes(self) -> List[int]:
        return [len(self.members(c)) for c in range(self.k)]

    def assign_signature(self, signature: np.ndarray) -> int:
        """Nearest-centroid cluster for a raw (unscaled) signature."""
        scaled = self.scaler.transform(np.atleast_2d(signature))
        return int(pairwise_sq_distances(scaled, self.centroids).argmin())


class GlobalClustering:
    """The GC fitting procedure.

    Parameters
    ----------
    k:
        Number of clusters (the paper selects K = 4).
    n_refinements:
        Maximum resample-recompute-reassign rounds.
    subsample_fraction:
        Fraction of each subject's maps drawn per refinement round.
    seed:
        RNG seed.
    """

    def __init__(
        self,
        k: int = 4,
        n_refinements: int = 10,
        subsample_fraction: float = 0.8,
        seed: int = 0,
    ):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if not 0.0 < subsample_fraction <= 1.0:
            raise ValueError(
                f"subsample_fraction must be in (0, 1], got {subsample_fraction}"
            )
        self.k = int(k)
        self.n_refinements = int(n_refinements)
        self.subsample_fraction = float(subsample_fraction)
        self.seed = seed

    def fit(
        self, maps_by_subject: Dict[int, Sequence[FeatureMap]]
    ) -> GlobalClusteringResult:
        subject_ids = sorted(maps_by_subject)
        if len(subject_ids) < self.k:
            raise ValueError(
                f"cannot form {self.k} clusters from {len(subject_ids)} subjects"
            )
        rng = np.random.default_rng(self.seed)

        # Initial fit on full-data signatures.
        raw = subject_matrix(maps_by_subject)
        scaler = StandardScaler().fit(raw)
        scaled = scaler.transform(raw)
        km = KMeans(self.k, seed=self.seed).fit(scaled)
        labels = km.labels.copy()
        centroids = km.centers.copy()

        converged = False
        rounds = 0
        for rounds in range(1, self.n_refinements + 1):
            # Re-estimate signatures from a subsample of each user's maps.
            resampled = subject_matrix(
                maps_by_subject, rng=rng, subsample_fraction=self.subsample_fraction
            )
            scaled_rs = scaler.transform(resampled)
            # Recompute centroids from the *current* memberships.
            for c in range(self.k):
                members = scaled_rs[labels == c]
                if members.shape[0] > 0:
                    centroids[c] = members.mean(axis=0)
            # Reassign users whose nearest centroid changed.
            new_labels = pairwise_sq_distances(scaled, centroids).argmin(axis=1)
            # Keep clusters non-empty: a cluster that lost all members
            # retains its closest user.
            for c in range(self.k):
                if not np.any(new_labels == c):
                    dists = pairwise_sq_distances(scaled, centroids[c : c + 1]).ravel()
                    new_labels[int(dists.argmin())] = c
            if np.array_equal(new_labels, labels):
                converged = True
                break
            labels = new_labels

        # Final centroids from the stable assignment on full signatures.
        for c in range(self.k):
            members = scaled[labels == c]
            if members.shape[0] > 0:
                centroids[c] = members.mean(axis=0)

        # Canonicalize cluster labels: order clusters by their smallest
        # member subject id.  k-means labels are an arbitrary permutation
        # of its restart seeding; pinning a canonical order makes every
        # downstream artifact that keys off the cluster index (per-cluster
        # training seeds, checkpoint files, report rows) invariant to the
        # restart scheme.
        order = sorted(
            range(self.k),
            key=lambda c: (
                int(np.flatnonzero(labels == c)[0])
                if np.any(labels == c)
                else len(subject_ids) + c
            ),
        )
        relabel = {old: new for new, old in enumerate(order)}
        labels = np.array([relabel[int(c)] for c in labels], dtype=labels.dtype)
        centroids = centroids[order]

        assignments = {
            subject_id: int(labels[i]) for i, subject_id in enumerate(subject_ids)
        }
        return GlobalClusteringResult(
            k=self.k,
            scaler=scaler,
            centroids=centroids,
            assignments=assignments,
            n_refinements=rounds,
            converged=converged,
        )
