"""k-means clustering from scratch (k-means++ seeding, Lloyd iterations)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..orchestration.context import resolve_executor
from ..runtime.executor import Executor, spawn_seeds


def pairwise_sq_distances(x: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances, shape (n_samples, n_centers)."""
    x = np.asarray(x, dtype=np.float64)
    centers = np.asarray(centers, dtype=np.float64)
    # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2 — one matmul instead of a loop.
    x_sq = np.sum(x * x, axis=1, keepdims=True)
    c_sq = np.sum(centers * centers, axis=1)
    d = x_sq - 2.0 * (x @ centers.T) + c_sq
    return np.maximum(d, 0.0)


def kmeans_plus_plus_init(
    x: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding (Arthur & Vassilvitskii, 2007)."""
    n = x.shape[0]
    centers = np.empty((k, x.shape[1]), dtype=np.float64)
    first = int(rng.integers(n))
    centers[0] = x[first]
    closest_sq = pairwise_sq_distances(x, centers[:1]).ravel()
    for i in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            # All points coincide with chosen centers; pick randomly.
            idx = int(rng.integers(n))
        else:
            probs = closest_sq / total
            idx = int(rng.choice(n, p=probs))
        centers[i] = x[idx]
        new_sq = pairwise_sq_distances(x, centers[i : i + 1]).ravel()
        closest_sq = np.minimum(closest_sq, new_sq)
    return centers


def reseed_empty_clusters(
    x: np.ndarray, centers: np.ndarray, empty: List[int]
) -> np.ndarray:
    """Re-seed each empty cluster at the point farthest from any center.

    Clusters are re-seeded *iteratively*: after each placement the
    distances are recomputed against the partially updated centers and
    the chosen point is excluded, so two clusters that empty in the
    same Lloyd iteration land on two *different* far points instead of
    colliding on the one farthest point of the stale center set.
    """
    centers = centers.copy()
    taken: List[int] = []
    for j in empty:
        nearest = pairwise_sq_distances(x, centers).min(axis=1)
        if taken:
            nearest[taken] = -np.inf  # already claimed by a re-seed
        farthest = int(nearest.argmax())
        centers[j] = x[farthest]
        taken.append(farthest)
    return centers


@dataclass
class KMeansResult:
    """Outcome of one k-means fit."""

    centers: np.ndarray  # (k, F)
    labels: np.ndarray  # (n,)
    inertia: float  # sum of squared distances to assigned centers
    n_iter: int
    converged: bool


def _lloyd_run(
    x: np.ndarray,
    k: int,
    max_iter: int,
    tol: float,
    rng: np.random.Generator,
) -> KMeansResult:
    """One k-means++ initialization followed by Lloyd iterations."""
    centers = kmeans_plus_plus_init(x, k, rng)
    converged = False
    n_iter = 0
    for n_iter in range(1, max_iter + 1):
        dists = pairwise_sq_distances(x, centers)
        labels = dists.argmin(axis=1)
        new_centers = centers.copy()
        empty: List[int] = []
        for j in range(k):
            members = x[labels == j]
            if members.shape[0] > 0:
                new_centers[j] = members.mean(axis=0)
            else:
                empty.append(j)
        if empty:
            new_centers = reseed_empty_clusters(x, new_centers, empty)
        shift = float(np.max(np.linalg.norm(new_centers - centers, axis=1)))
        centers = new_centers
        if shift < tol:
            converged = True
            break
    dists = pairwise_sq_distances(x, centers)
    labels = dists.argmin(axis=1)
    inertia = float(dists[np.arange(x.shape[0]), labels].sum())
    return KMeansResult(centers, labels, inertia, n_iter, converged)


def _restart_unit(args: Tuple) -> KMeansResult:
    """Executor work unit: one restart with its own spawned seed."""
    x, k, max_iter, tol, seed = args
    return _lloyd_run(x, k, max_iter, tol, np.random.default_rng(seed))


class KMeans:
    """Lloyd's algorithm with k-means++ seeding and multiple restarts.

    Parameters
    ----------
    k:
        Number of clusters.
    n_init:
        Independent restarts; the lowest-inertia run wins.
    max_iter, tol:
        Lloyd iteration limits (tol on center movement).
    seed:
        RNG seed for reproducibility.
    """

    def __init__(
        self,
        k: int,
        n_init: int = 8,
        max_iter: int = 300,
        tol: float = 1e-6,
        seed: Optional[int] = 0,
    ):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if n_init < 1:
            raise ValueError(f"n_init must be >= 1, got {n_init}")
        self.k = int(k)
        self.n_init = int(n_init)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.seed = seed

    def _single_run(
        self, x: np.ndarray, rng: np.random.Generator
    ) -> KMeansResult:
        return _lloyd_run(x, self.k, self.max_iter, self.tol, rng)

    def fit(
        self, x: np.ndarray, executor: Optional[Executor] = None
    ) -> KMeansResult:
        """Run ``n_init`` restarts and return the best result.

        Each restart draws from its own ``SeedSequence``-spawned
        generator, so the restarts are independent work units: fanning
        them out through a
        :class:`~repro.runtime.executor.ParallelExecutor` is
        bit-identical to the default serial run.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError(f"expected (n, F) data, got shape {x.shape}")
        if x.shape[0] < self.k:
            raise ValueError(
                f"cannot make {self.k} clusters from {x.shape[0]} samples"
            )
        executor = resolve_executor(executor)
        seeds = spawn_seeds(self.seed, self.n_init)
        units = [
            (x, self.k, self.max_iter, self.tol, seed) for seed in seeds
        ]
        results = executor.map(_restart_unit, units)
        best = results[0]  # n_init >= 1 is enforced at construction
        for result in results[1:]:
            if result.inertia < best.inertia:
                best = result
        return best


def assign_to_centers(x: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Nearest-center labels for new data."""
    return pairwise_sq_distances(np.atleast_2d(x), centers).argmin(axis=1)
