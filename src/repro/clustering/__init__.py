"""Clustering substrate: k-means, quality indices, GC, sub-clusters, CA."""

from .assignment import AssignmentResult, ColdStartAssigner
from .global_clustering import (
    GlobalClustering,
    GlobalClusteringResult,
    subject_matrix,
)
from .hierarchical import (
    Dendrogram,
    agglomerative_cluster,
    agglomerative_labels,
    cophenetic_heights,
)
from .kmeans import (
    KMeans,
    KMeansResult,
    assign_to_centers,
    kmeans_plus_plus_init,
    pairwise_sq_distances,
    reseed_empty_clusters,
)
from .metrics import (
    calinski_harabasz_index,
    cluster_sizes,
    davies_bouldin_index,
    inertia,
    silhouette_score,
)
from .scaling import StandardScaler
from .selection import KSelectionReport, elbow_k, select_k
from .streaming import (
    StreamingKMeans,
    StreamingKMeansResult,
    fit_signature_matrix,
)
from .subclusters import SubClusterModel, build_subclusters

__all__ = [
    "Dendrogram",
    "agglomerative_cluster",
    "agglomerative_labels",
    "cophenetic_heights",
    "KMeans",
    "KMeansResult",
    "kmeans_plus_plus_init",
    "pairwise_sq_distances",
    "reseed_empty_clusters",
    "assign_to_centers",
    "silhouette_score",
    "davies_bouldin_index",
    "calinski_harabasz_index",
    "inertia",
    "cluster_sizes",
    "StandardScaler",
    "StreamingKMeans",
    "StreamingKMeansResult",
    "fit_signature_matrix",
    "select_k",
    "elbow_k",
    "KSelectionReport",
    "GlobalClustering",
    "GlobalClusteringResult",
    "subject_matrix",
    "SubClusterModel",
    "build_subclusters",
    "ColdStartAssigner",
    "AssignmentResult",
]
