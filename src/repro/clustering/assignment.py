"""Cold-start Cluster Assignment (CA) for new, unlabeled users.

Given a small, *unlabeled* slice of a new user's data (the paper uses
10 %), the user is assigned to the main cluster minimizing the summed
distance of their window vectors to that cluster's centroid and its
internal sub-centroids (paper §III-B.1).  No labels are needed — this
is the unsupervised answer to the cold-start problem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..signals.feature_map import FeatureMap
from .global_clustering import GlobalClusteringResult
from .kmeans import pairwise_sq_distances
from .subclusters import SubClusterModel


@dataclass
class AssignmentResult:
    """Outcome of one cold-start assignment."""

    cluster: int
    scores: Dict[int, float]  # summed-distance score per cluster (lower wins)

    def margin(self) -> float:
        """Score gap between best and runner-up (confidence proxy)."""
        ordered = sorted(self.scores.values())
        if len(ordered) < 2:
            return 0.0
        return float(ordered[1] - ordered[0])


class ColdStartAssigner:
    """Assign new users to clusters from unlabeled feature maps."""

    def __init__(
        self,
        gc: GlobalClusteringResult,
        subclusters: Dict[int, SubClusterModel],
        main_weight: float = 1.0,
        sub_weight: float = 1.0,
    ):
        if gc.k != len(subclusters):
            raise ValueError(
                f"sub-cluster models cover {len(subclusters)} clusters, "
                f"GC has {gc.k}"
            )
        if main_weight < 0 or sub_weight < 0:
            raise ValueError("weights must be non-negative")
        if main_weight == 0 and sub_weight == 0:
            raise ValueError("at least one weight must be positive")
        self.gc = gc
        self.subclusters = subclusters
        self.main_weight = float(main_weight)
        self.sub_weight = float(sub_weight)

    def _score_cluster(self, signature: np.ndarray, cluster: int) -> float:
        """Distance of the user signature to main + sub-centroids."""
        main = self.gc.centroids[cluster : cluster + 1]
        d_main = np.sqrt(pairwise_sq_distances(signature, main)).mean()
        subs = self.subclusters[cluster].centroids
        d_sub = np.sqrt(pairwise_sq_distances(signature, subs)).mean()
        return self.main_weight * float(d_main) + self.sub_weight * float(d_sub)

    def assign(self, maps: Sequence[FeatureMap]) -> AssignmentResult:
        """Assign a new user from their (unlabeled) feature maps.

        The user is summarized by a single signature vector (mean over
        all provided window vectors), which averages out per-window
        emotional state and leaves the subject's physiological identity
        — the quantity the clusters were built on.
        """
        maps = list(maps)
        if not maps:
            raise ValueError("need at least one feature map to assign")
        vectors = np.concatenate([m.values.T for m in maps], axis=0)
        signature = vectors.mean(axis=0, keepdims=True)
        signature = self.gc.scaler.transform(signature)
        scores = {
            cluster: self._score_cluster(signature, cluster)
            for cluster in range(self.gc.k)
        }
        best = min(scores, key=scores.get)
        return AssignmentResult(cluster=int(best), scores=scores)
