"""Feature scaling for clustering (z-score with stored statistics)."""

from __future__ import annotations

from typing import Optional

import numpy as np


class StandardScaler:
    """Per-feature z-score scaler with persisted train statistics.

    The 123 physiological features span wildly different scales
    (energies vs. normalized ratios); clustering distances are
    meaningless without standardization.
    """

    def __init__(self, eps: float = 1e-8):
        self.eps = float(eps)
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[0] < 1:
            raise ValueError(f"expected non-empty (n, F) data, got {x.shape}")
        self.mean_ = x.mean(axis=0)
        self.std_ = x.std(axis=0)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.std_ is None:
            raise RuntimeError("scaler must be fitted before transform")
        x = np.asarray(x, dtype=np.float64)
        return (x - self.mean_) / (self.std_ + self.eps)

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)
