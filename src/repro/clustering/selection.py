"""Choosing the number of clusters K (paper §III-A.2, 'standard techniques')."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from .kmeans import KMeans
from .metrics import (
    calinski_harabasz_index,
    davies_bouldin_index,
    silhouette_score,
)


@dataclass
class KSelectionReport:
    """Scores for every candidate K plus the selected value."""

    candidates: List[int]
    inertias: Dict[int, float]
    silhouettes: Dict[int, float]
    davies_bouldin: Dict[int, float]
    calinski_harabasz: Dict[int, float]
    selected_k: int
    method: str


def elbow_k(candidates: List[int], inertias: Dict[int, float]) -> int:
    """Pick K at the elbow: maximum distance to the line joining the
    first and last (K, inertia) points (the 'kneedle' construction)."""
    ks = np.array(candidates, dtype=np.float64)
    ys = np.array([inertias[int(k)] for k in candidates], dtype=np.float64)
    if ks.size < 3:
        return int(candidates[0])
    # Normalize both axes to [0, 1] so the geometry is scale-free.
    kn = (ks - ks[0]) / (ks[-1] - ks[0])
    span = ys[0] - ys[-1]
    yn = (ys - ys[-1]) / span if span > 0 else np.zeros_like(ys)
    # Depth below the descending diagonal y = 1 - x; the knee maximizes it.
    depth = (1.0 - kn) - yn
    return int(candidates[int(np.argmax(depth))])


def select_k(
    x: np.ndarray,
    k_min: int = 2,
    k_max: int = 8,
    method: str = "silhouette",
    seed: int = 0,
) -> KSelectionReport:
    """Fit k-means for each candidate K and score with internal indices.

    ``method`` picks the decision rule: ``'silhouette'`` (max),
    ``'davies_bouldin'`` (min), ``'calinski_harabasz'`` (max) or
    ``'elbow'`` (inertia knee).
    """
    x = np.asarray(x, dtype=np.float64)
    if k_min < 2:
        raise ValueError(f"k_min must be >= 2, got {k_min}")
    k_max = min(k_max, x.shape[0] - 1)
    if k_max < k_min:
        raise ValueError(
            f"not enough samples ({x.shape[0]}) for k_min={k_min}"
        )
    candidates = list(range(k_min, k_max + 1))
    inertias: Dict[int, float] = {}
    silhouettes: Dict[int, float] = {}
    db: Dict[int, float] = {}
    ch: Dict[int, float] = {}
    for k in candidates:
        result = KMeans(k, seed=seed).fit(x)
        inertias[k] = result.inertia
        silhouettes[k] = silhouette_score(x, result.labels)
        db[k] = davies_bouldin_index(x, result.labels)
        try:
            ch[k] = calinski_harabasz_index(x, result.labels)
        except ValueError:
            ch[k] = 0.0

    if method == "silhouette":
        selected = max(candidates, key=lambda k: silhouettes[k])
    elif method == "davies_bouldin":
        selected = min(candidates, key=lambda k: db[k])
    elif method == "calinski_harabasz":
        selected = max(candidates, key=lambda k: ch[k])
    elif method == "elbow":
        selected = elbow_k(candidates, inertias)
    else:
        raise ValueError(f"unknown selection method {method!r}")

    return KSelectionReport(
        candidates=candidates,
        inertias=inertias,
        silhouettes=silhouettes,
        davies_bouldin=db,
        calinski_harabasz=ch,
        selected_k=int(selected),
        method=method,
    )
