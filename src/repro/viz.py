"""Dependency-free ASCII visualization for terminals and logs.

The repository runs in environments without plotting libraries, so the
diagnostics that a paper would put in figures — training curves,
attention maps, cluster score profiles, confusion matrices — render as
text.  Every function returns a string (print it, log it, or snapshot
it in tests).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

#: Eight-level block characters for sparklines and heatmaps.
_BLOCKS = " ▁▂▃▄▅▆▇█"


def _normalize(values: np.ndarray) -> np.ndarray:
    lo, hi = float(np.min(values)), float(np.max(values))
    if hi - lo < 1e-12:
        return np.zeros_like(values, dtype=np.float64)
    return (values - lo) / (hi - lo)


def sparkline(values: Sequence[float]) -> str:
    """One-line block-character trace of a series."""
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        return ""
    levels = np.round(_normalize(values) * (len(_BLOCKS) - 2)).astype(int)
    return "".join(_BLOCKS[1 + level] for level in levels)


def line_plot(
    values: Sequence[float],
    height: int = 8,
    title: str = "",
    y_format: str = "{:.3f}",
) -> str:
    """Multi-row ASCII line plot with a y-axis range annotation."""
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        return title
    if height < 2:
        raise ValueError(f"height must be >= 2, got {height}")
    levels = np.round(_normalize(values) * (height - 1)).astype(int)
    rows: List[str] = []
    for row in range(height - 1, -1, -1):
        cells = ["█" if level >= row else " " for level in levels]
        rows.append("".join(cells))
    lines = []
    if title:
        lines.append(title)
    lines.append(f"max {y_format.format(values.max())}")
    lines.extend(f"| {row}" for row in rows)
    lines.append(f"min {y_format.format(values.min())}  (n={values.size})")
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    value_format: str = "{:.2f}",
) -> str:
    """Horizontal bar chart, one row per label."""
    labels = list(labels)
    values = np.asarray(list(values), dtype=np.float64)
    if len(labels) != values.size:
        raise ValueError("labels and values disagree in length")
    if values.size == 0:
        return ""
    max_value = float(np.max(np.abs(values))) or 1.0
    label_width = max(len(l) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "█" * max(0, int(round(abs(value) / max_value * width)))
        lines.append(
            f"{label:<{label_width}} |{bar:<{width}} {value_format.format(value)}"
        )
    return "\n".join(lines)


def heatmap(
    matrix: np.ndarray,
    row_labels: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Block-character heatmap of a 2D array (rows as lines)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2D matrix, got shape {matrix.shape}")
    normalized = _normalize(matrix)
    levels = np.round(normalized * (len(_BLOCKS) - 2)).astype(int)
    lines = []
    if title:
        lines.append(title)
    label_width = 0
    if row_labels is not None:
        row_labels = list(row_labels)
        if len(row_labels) != matrix.shape[0]:
            raise ValueError("row_labels length mismatch")
        label_width = max(len(l) for l in row_labels)
    for i in range(matrix.shape[0]):
        prefix = f"{row_labels[i]:<{label_width}} " if row_labels else ""
        lines.append(prefix + "".join(_BLOCKS[1 + l] for l in levels[i]))
    return "\n".join(lines)


def confusion_table(
    cm: np.ndarray, class_names: Optional[Sequence[str]] = None
) -> str:
    """Confusion matrix as an aligned table with recall per row."""
    cm = np.asarray(cm)
    if cm.ndim != 2 or cm.shape[0] != cm.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {cm.shape}")
    n = cm.shape[0]
    names = list(class_names) if class_names else [f"class {i}" for i in range(n)]
    if len(names) != n:
        raise ValueError("class_names length mismatch")
    width = max(max(len(x) for x in names), 6)
    header = " " * (width + 2) + "".join(f"{x:>{width + 2}}" for x in names)
    header += f"{'recall':>{width + 2}}"
    lines = [header]
    for i in range(n):
        row = f"{names[i]:<{width + 2}}"
        row += "".join(f"{int(cm[i, j]):>{width + 2}}" for j in range(n))
        support = cm[i].sum()
        recall = cm[i, i] / support if support else 0.0
        row += f"{recall:>{width + 2}.2f}"
        lines.append(row)
    return "\n".join(lines)


def training_curves(history_epochs: List[Dict[str, float]]) -> str:
    """Loss/accuracy sparklines from a Sequential fit history."""
    if not history_epochs:
        return "(no epochs)"
    lines = []
    for key in ("loss", "accuracy", "val_loss", "val_accuracy"):
        series = [e[key] for e in history_epochs if key in e]
        if series:
            lines.append(
                f"{key:<13} {sparkline(series)}  "
                f"{series[0]:.4f} -> {series[-1]:.4f}"
            )
    return "\n".join(lines)


def assignment_scores(scores: Dict[int, float]) -> str:
    """Bar chart of cold-start CA scores (lower bar = better fit)."""
    clusters = sorted(scores)
    return bar_chart(
        [f"cluster {c}" for c in clusters],
        [scores[c] for c in clusters],
    )
