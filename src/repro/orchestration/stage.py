"""Typed pipeline stages and the context they execute in.

A :class:`Stage` wraps a pure function: declared input artifact names
in, one output artifact out.  The function never constructs executors,
caches, or timing machinery itself — it receives a
:class:`StageContext` carrying the runtime injected once by the
:class:`~repro.orchestration.graph.PipelineGraph` at the stage
boundary, and reports its cache traffic / unit count back through it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from ..errors import OrchestrationError
from ..runtime.executor import Executor


@dataclass
class StageContext:
    """Runtime handed to a stage function by the executing graph.

    Attributes
    ----------
    executor:
        The run's executor; stage functions fan work units through it.
    cache_dir:
        Root of the content-addressed runtime cache (``None`` disables
        caching), as a plain string so it pickles into work units.
    seed:
        The run's base seed, if the caller provided one.
    seed_path:
        Seed-sequence path of the executing stage (its topological
        index), recorded into the output artifact's provenance.
    """

    executor: Executor
    cache_dir: Optional[str] = None
    seed: Optional[int] = None
    seed_path: Tuple[int, ...] = ()
    _cache_hits: int = field(default=0, repr=False)
    _cache_misses: int = field(default=0, repr=False)
    _units: int = field(default=0, repr=False)

    def record_cache(self, hits: int, misses: int) -> None:
        """Attribute runtime-cache traffic to the executing stage."""
        self._cache_hits += int(hits)
        self._cache_misses += int(misses)

    def set_units(self, units: int) -> None:
        """Declare how many work units the stage dispatched."""
        self._units = int(units)


@dataclass
class Stage:
    """One named, pure pipeline step.

    Attributes
    ----------
    name:
        Unique stage name within its graph.
    fn:
        ``fn(ctx, **inputs) -> value``; ``ctx`` is the
        :class:`StageContext`, ``inputs`` are the values of the
        artifacts named in ``requires``.
    requires:
        Input artifact names, in the order their digests appear in the
        output artifact's provenance.
    provides:
        Name of the artifact the stage produces.
    config:
        The stage's configuration object; digested into provenance so
        a config change is visible in the lineage.
    seed:
        Stage-specific seed recorded in provenance (defaults to the
        graph run's seed).
    screen_output:
        When true, the resilience feature guard screens the stage's
        output arrays at the boundary (NaN/Inf detection).
    input_specs:
        Optional mapping of required artifact name to an
        :class:`~repro.analysis.dataflow.shapeflow.ArtifactSpec`
        contract; checked against the producer's ``output_spec`` when
        the stage is added to a graph.
    output_spec:
        Optional :class:`ArtifactSpec` contract for the produced
        artifact.
    on_failure:
        What the executing graph does when ``fn`` raises:
        ``"raise"`` (default) propagates the exception and aborts the
        run; ``"skip_with_fallback"`` records the failure on the run,
        produces the stage's ``fallback`` value instead, and marks the
        artifact's health as degraded — the graceful-degradation floor
        (e.g. a :func:`~repro.resilience.degradation.
        population_average_model`-style population average) at the
        stage boundary.
    fallback:
        ``fallback(ctx, **inputs) -> value``, required when
        ``on_failure == "skip_with_fallback"``; must be cheap and
        must not itself depend on whatever broke the primary path.
    """

    name: str
    fn: Callable[..., Any]
    requires: Tuple[str, ...] = ()
    provides: str = ""
    config: Any = None
    seed: Optional[int] = None
    screen_output: bool = False
    input_specs: Optional[Dict[str, Any]] = None
    output_spec: Optional[Any] = None
    on_failure: str = "raise"
    fallback: Optional[Callable[..., Any]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise OrchestrationError("stage needs a non-empty name")
        if not self.provides:
            self.provides = self.name
        self.requires = tuple(self.requires)
        if self.on_failure not in ("raise", "skip_with_fallback"):
            raise OrchestrationError(
                f"stage {self.name!r}: on_failure must be 'raise' or "
                f"'skip_with_fallback', got {self.on_failure!r}"
            )
        if self.on_failure == "skip_with_fallback" and self.fallback is None:
            raise OrchestrationError(
                f"stage {self.name!r} declares on_failure="
                "'skip_with_fallback' but provides no fallback callable"
            )

    def run(self, ctx: StageContext, inputs: Dict[str, Any]) -> Any:
        missing = [name for name in self.requires if name not in inputs]
        if missing:
            raise OrchestrationError(
                f"stage {self.name!r} is missing inputs {missing}"
            )
        return self.fn(ctx, **{name: inputs[name] for name in self.requires})

    def run_fallback(self, ctx: StageContext, inputs: Dict[str, Any]) -> Any:
        if self.fallback is None:
            raise OrchestrationError(
                f"stage {self.name!r} has no fallback to run"
            )
        return self.fallback(
            ctx, **{name: inputs[name] for name in self.requires}
        )
