"""Provenance records and typed artifacts.

An :class:`Artifact` is a value produced by a pipeline stage, bundled
with the :class:`Provenance` record describing *how* it was produced:
the producing stage, a content digest of the value, the digest of the
stage's configuration, the seed and seed-sequence path the stage drew
from, the digests of every upstream artifact it consumed, the runtime
cache traffic, and the stage wall time.  Chained over a whole graph,
these records let any reported number be traced back to config + seeds
+ cache state (``python -m repro.experiments --provenance out.json``).

Digests are content-addressed through the same canonical hashing the
runtime cache uses (:func:`repro.runtime.cache.content_key`), so an
artifact digest matches across processes, executors, and warm/cold
cache states whenever the value's *content* is identical.  Values that
carry volatile fields (wall times, live runtime stats) expose a
``__repro_content__()`` method returning only their stable content;
:func:`artifact_digest` honors it.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..runtime.cache import content_key

#: Digest value used when an artifact's content cannot be hashed at all.
UNHASHABLE = "unhashable"


def artifact_digest(value: Any) -> str:
    """Stable content digest of an artifact value.

    Resolution order:

    1. ``value.__repro_content__()`` — the object's declared stable
       content, hashed canonically (volatile fields excluded).
    2. Canonical hashing of the raw value (ndarray / scalars /
       containers / dataclasses).
    3. Deterministic pickle (fixed protocol) of the value, SHA-256'd.
    4. :data:`UNHASHABLE` when even pickling fails.
    """
    content = value
    hook = getattr(value, "__repro_content__", None)
    if callable(hook):
        content = hook()
    try:
        return content_key("artifact.v1", content)
    except TypeError:
        pass
    try:
        payload = pickle.dumps(content, protocol=4)
    except Exception:
        return UNHASHABLE
    return hashlib.sha256(b"artifact-pickle.v1" + payload).hexdigest()


@dataclass(frozen=True)
class Provenance:
    """How one artifact came to be.

    Attributes
    ----------
    stage:
        Name of the producing stage.
    digest:
        Content digest of the artifact's value.
    config_digest:
        Digest of the stage's configuration object (``None`` when the
        stage is unconfigured).
    seed:
        Integer seed the stage drew from, if any.
    seed_path:
        Path in the seed-sequence tree (e.g. the stage's topological
        index) identifying which spawned stream the stage used.
    inputs:
        ``(artifact_name, digest)`` pairs for every consumed upstream
        artifact, in declaration order.
    cache_hits / cache_misses:
        Runtime-cache traffic attributed to this stage.
    wall_time_s:
        Stage wall time (informational only: never part of any digest).
    executor / workers / units:
        Which runtime executor ran the stage's work units.
    resumed_from:
        Path of the run journal this artifact was rehydrated from on a
        resumed run (``None`` when the stage actually executed).  Like
        wall time, informational only — never part of any digest, so a
        resumed run's digests stay bit-identical to an uninterrupted
        run's.
    """

    stage: str
    digest: str
    config_digest: Optional[str] = None
    seed: Optional[int] = None
    seed_path: Tuple[int, ...] = ()
    inputs: Tuple[Tuple[str, str], ...] = ()
    cache_hits: int = 0
    cache_misses: int = 0
    wall_time_s: float = 0.0
    executor: str = "serial"
    workers: int = 1
    units: int = 0
    resumed_from: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "stage": self.stage,
            "digest": self.digest,
            "config_digest": self.config_digest,
            "seed": self.seed,
            "seed_path": list(self.seed_path),
            "inputs": [[name, digest] for name, digest in self.inputs],
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "wall_time_s": self.wall_time_s,
            "executor": self.executor,
            "workers": self.workers,
            "units": self.units,
            "resumed_from": self.resumed_from,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "Provenance":
        return Provenance(
            stage=str(data["stage"]),
            digest=str(data["digest"]),
            config_digest=data.get("config_digest"),
            seed=data.get("seed"),
            seed_path=tuple(int(i) for i in data.get("seed_path", ())),
            inputs=tuple(
                (str(name), str(digest))
                for name, digest in data.get("inputs", ())
            ),
            cache_hits=int(data.get("cache_hits", 0)),
            cache_misses=int(data.get("cache_misses", 0)),
            wall_time_s=float(data.get("wall_time_s", 0.0)),
            executor=str(data.get("executor", "serial")),
            workers=int(data.get("workers", 1)),
            units=int(data.get("units", 0)),
            resumed_from=data.get("resumed_from"),
        )


@dataclass
class Artifact:
    """A named pipeline value plus the record of how it was produced."""

    name: str
    value: Any
    provenance: Provenance

    @property
    def digest(self) -> str:
        return self.provenance.digest

    def __repro_content__(self) -> Tuple[str, str]:
        # An artifact's identity for hashing purposes is its name plus
        # its value digest — never the (possibly unpicklable) value or
        # the volatile provenance wall time.
        return (self.name, self.provenance.digest)
