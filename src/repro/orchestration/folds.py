"""The shared fold-plan stage behind every validation protocol.

The three Table-I drivers (general / CL / CLEAR) used to each wire the
executor default, cache-dir normalization, wall-clock timing, unit
dispatch, and cache-counter merging by hand.  :func:`run_fold_plan` is
the single implementation: the mode-specific driver builds its work
units and a per-result merge callback, and the plan runs them as one
provenance-carrying stage on a :class:`~repro.orchestration.graph.PipelineGraph`.

Unit construction and RNG derivation stay in the drivers — they are
protocol semantics — so fold results remain bit-identical to the
pre-orchestration code for every executor and cache state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

from ..runtime.executor import Executor, RuntimeStats
from .graph import PipelineGraph
from .provenance import Provenance
from .stage import Stage, StageContext


@dataclass
class FoldPlanResult:
    """Outcome of one fold plan: raw fold results plus runtime evidence."""

    results: List[Any]
    stats: RuntimeStats
    provenance: Provenance


def run_fold_plan(
    name: str,
    units: Sequence[Any],
    fold_fn: Callable[[Any], Any],
    cache_counts: Callable[[Any], Tuple[int, int]],
    executor: Optional[Executor] = None,
    cache_dir: Optional[Union[str, "object"]] = None,
    config: Any = None,
    seed: Optional[int] = None,
) -> FoldPlanResult:
    """Dispatch ``fold_fn`` over ``units`` as one pipeline stage.

    Parameters
    ----------
    name:
        Stage name, surfaced in provenance and logs.
    units:
        Pre-built, picklable work units.  Each already carries its own
        seed / RNG material, so results do not depend on the executor.
    fold_fn:
        The per-unit worker (a module-level function, fork-safe).
    cache_counts:
        Extracts ``(hits, misses)`` from one unit result so cache
        traffic can be attributed to the stage.
    executor / cache_dir / config / seed:
        Runtime wiring and provenance inputs, resolved once here.

    Returns results in unit order (``Executor.map`` preserves order),
    the aggregated :class:`~repro.runtime.executor.RuntimeStats`, and
    the stage's :class:`~repro.orchestration.provenance.Provenance`.
    """
    units = list(units)

    def _stage(ctx: StageContext) -> List[Any]:
        ctx.set_units(len(units))
        results = []
        for result in ctx.executor.map(fold_fn, units):
            hits, misses = cache_counts(result)
            ctx.record_cache(hits, misses)
            results.append(result)
        return results

    graph = PipelineGraph(
        name, [Stage(name=name, fn=_stage, config=config, seed=seed)]
    )
    run = graph.run(executor=executor, cache_dir=cache_dir, seed=seed)
    provenance = run.provenance(name)
    stats = RuntimeStats(
        executor=provenance.executor,
        workers=provenance.workers,
        units=len(units),
        cache_hits=provenance.cache_hits,
        cache_misses=provenance.cache_misses,
        wall_time_s=provenance.wall_time_s,
    )
    return FoldPlanResult(
        results=run.value(name), stats=stats, provenance=provenance
    )
