"""Crash-safe run journal: resumable pipeline graphs.

A :class:`RunJournal` is a write-ahead log of completed stages.  As a
:class:`~repro.orchestration.graph.PipelineGraph` runs, each produced
artifact is first persisted into a content-addressed
:class:`~repro.runtime.cache.ContentCache` next to the journal, and
only *then* is the journal entry appended (atomic temp file +
``os.replace``, like every cache write).  A SIGKILL between the two
steps therefore loses nothing: the entry is absent, the stage simply
re-runs on resume.  A SIGKILL mid-entry cannot happen — the journal
file is replaced atomically, never appended in place.

Resume is a no-code-path-change: ``graph.run(..., journal=path)`` both
records *and* resumes.  Stages whose entries are journaled are skipped
and their artifacts rehydrated from the cache; because every stage's
seed material derives from the run seed and its topological index —
never from how many stages actually executed — the resumed run's
artifact digests are bit-identical to an uninterrupted run's.

The journal is bound to *one* logical run by its ``run_key``: a content
key over the graph topology, every stage's config digest and seed, the
run seed, and the initial artifacts' digests.  Pointing a journal
recorded under a different key at a run raises a typed
:class:`~repro.errors.JournalError` — silently mixing two
configurations' artifacts is exactly the bug this layer exists to
prevent.  Damage, by contrast, is never fatal: unreadable journal
files, malformed entries, and corrupt cached artifact payloads all
degrade to "stage re-runs".
"""

from __future__ import annotations

import dataclasses
import json
import logging
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..errors import CacheError, JournalError
from ..runtime.cache import ContentCache, content_key
from .provenance import Artifact, Provenance, artifact_digest

logger = logging.getLogger("repro.orchestration")

#: Journal file format version; bumped on incompatible layout changes.
JOURNAL_VERSION = 1

#: Keys every journal entry must carry to be trusted on resume.
_ENTRY_KEYS = ("stage", "provides", "value_key", "provenance")


def run_key(
    graph_name: str,
    stages: Sequence[Any],
    seed: Optional[int],
    initial_digests: Dict[str, str],
) -> str:
    """The identity of one logical run: graph + config + seed + inputs.

    Any change to the graph topology, a stage's configuration or seed,
    the run seed, or the initial artifacts produces a different key —
    and therefore refuses to resume from the stale journal.
    """
    stage_identity = [
        (
            s.name,
            s.provides,
            tuple(s.requires),
            None if s.config is None else artifact_digest(s.config),
            s.seed,
        )
        for s in stages
    ]
    return content_key(
        "run-journal.v1",
        graph_name,
        stage_identity,
        seed,
        sorted(initial_digests.items()),
    )


class RunJournal:
    """Write-ahead log of one graph run's completed stages.

    ``path`` names the journal file; artifact payloads live in a
    content-addressed cache directory next to it
    (``<path>.artifacts/``), so a journal is a self-contained pair that
    can be copied or deleted as a unit.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.run_key: Optional[str] = None
        self.graph_name: Optional[str] = None
        self._entries: List[Dict[str, Any]] = []
        self._cache: Optional[ContentCache] = None
        self._load()

    # -- persistence -------------------------------------------------------
    @property
    def artifacts_dir(self) -> Path:
        return self.path.with_name(self.path.name + ".artifacts")

    def _store(self) -> ContentCache:
        if self._cache is None:
            self._cache = ContentCache(self.artifacts_dir)
        return self._cache

    def _load(self) -> None:
        if not self.path.exists():
            return
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError) as exc:
            # A damaged journal means "nothing completed", not a crash:
            # the write-ahead discipline makes re-running always safe.
            logger.warning(
                "journal %s is unreadable (%s); starting fresh", self.path, exc
            )
            return
        if not isinstance(data, dict) or data.get("version") != JOURNAL_VERSION:
            logger.warning(
                "journal %s has unknown format; starting fresh", self.path
            )
            return
        self.run_key = data.get("run_key")
        self.graph_name = data.get("graph")
        for entry in data.get("entries", ()):
            if isinstance(entry, dict) and all(
                key in entry for key in _ENTRY_KEYS
            ):
                self._entries.append(entry)
            else:
                logger.warning(
                    "journal %s: skipping malformed entry %r", self.path, entry
                )

    def _flush(self) -> None:
        """Atomically rewrite the journal file (temp + ``os.replace``)."""
        payload = json.dumps(
            {
                "version": JOURNAL_VERSION,
                "run_key": self.run_key,
                "graph": self.graph_name,
                "entries": self._entries,
            },
            indent=2,
        ).encode("utf-8")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=".tmp-journal-"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
            os.replace(tmp, self.path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    # -- the run protocol --------------------------------------------------
    def begin(self, key: str, graph_name: str) -> None:
        """Bind the journal to one logical run (or verify the binding).

        Raises :class:`~repro.errors.JournalError` when the journal was
        recorded under a *different* run key — a different graph,
        config, seed, or initial input.
        """
        if self.run_key is not None and self.run_key != key:
            raise JournalError(
                f"journal {self.path} was recorded for a different run "
                f"(graph {self.graph_name!r}, key {self.run_key[:12]}…, "
                f"expected {key[:12]}…); delete it or pick another path "
                "to start fresh"
            )
        if self.run_key is None:
            self.run_key = key
            self.graph_name = graph_name
            self._flush()

    def completed_stages(self) -> List[str]:
        return [entry["stage"] for entry in self._entries]

    def has(self, stage_name: str) -> bool:
        return any(entry["stage"] == stage_name for entry in self._entries)

    def load(self, stage_name: str) -> Optional[Artifact]:
        """Rehydrate a journaled stage's artifact, or ``None`` to re-run.

        Every failure mode — missing entry, missing or corrupt cached
        payload, payload whose content no longer matches the recorded
        digest — degrades to ``None``: the stage re-executes and the
        journal heals itself when the fresh result is recorded.
        """
        entry = next(
            (e for e in self._entries if e["stage"] == stage_name), None
        )
        if entry is None:
            return None
        try:
            value = self._store().load_object(str(entry["value_key"]))
        except CacheError as exc:
            logger.warning(
                "journal %s: corrupt artifact for stage %r (%s); re-running",
                self.path,
                stage_name,
                exc,
            )
            return None
        if value is None:
            return None
        try:
            provenance = Provenance.from_dict(entry["provenance"])
        except (KeyError, TypeError, ValueError):
            logger.warning(
                "journal %s: malformed provenance for stage %r; re-running",
                self.path,
                stage_name,
            )
            return None
        if artifact_digest(value) != provenance.digest:
            logger.warning(
                "journal %s: artifact for stage %r no longer matches its "
                "recorded digest; re-running",
                self.path,
                stage_name,
            )
            return None
        provenance = dataclasses.replace(
            provenance, resumed_from=str(self.path)
        )
        return Artifact(
            name=str(entry["provides"]), value=value, provenance=provenance
        )

    def record(self, stage_name: str, artifact: Artifact) -> None:
        """Journal one completed stage: payload first, then the entry.

        The artifact value is persisted into the content-addressed
        store *before* the journal entry lands — a crash between the
        two leaves an orphaned payload (harmless) rather than an entry
        pointing at nothing.
        """
        value_key = self._store().key(
            "journal-artifact.v1", artifact.provenance.digest
        )
        self._store().store_object(value_key, artifact.value)
        provenance = dataclasses.replace(
            artifact.provenance, resumed_from=None
        )
        entry = {
            "stage": stage_name,
            "provides": artifact.name,
            "value_key": value_key,
            "provenance": provenance.as_dict(),
        }
        self._entries = [
            e for e in self._entries if e["stage"] != stage_name
        ] + [entry]
        self._flush()


def resolve_journal(
    journal: Optional[Union[str, Path, RunJournal]]
) -> Optional[RunJournal]:
    """A :class:`RunJournal` from a path or pass-through, or ``None``."""
    if journal is None or isinstance(journal, RunJournal):
        return journal
    return RunJournal(journal)
