"""Shared per-subject grouping of feature maps.

Before this module, `{subject_id: [maps]}` dictionaries were rebuilt
ad hoc in ``core/validation.py``, ``clustering/subclusters.py``,
``core/pipeline.py``, and ``experiments/runner.py``.  These helpers are
the single implementation; they depend only on objects exposing
``subject_id`` / ``maps`` attributes, so they sit below every layer
that groups.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, TypeVar

MapT = TypeVar("MapT")


def group_maps_by_subject(
    subjects: Iterable, exclude: Optional[int] = None
) -> Dict[int, List]:
    """``{subject_id: [maps]}`` over records with ``subject_id``/``maps``.

    Accepts a :class:`~repro.datasets.wemac.WEMACDataset` (via its
    ``subjects`` attribute) or any iterable of subject records.  Map
    lists are fresh copies, so callers may extend or filter them
    without mutating the source.  ``exclude`` drops one subject — the
    LOSO held-out volunteer.
    """
    records = getattr(subjects, "subjects", subjects)
    return {
        record.subject_id: list(record.maps)
        for record in records
        if record.subject_id != exclude
    }


def iter_subject_maps(
    maps_by_subject: Dict[int, Sequence[MapT]]
) -> Iterator[Tuple[int, Sequence[MapT]]]:
    """``(subject_id, maps)`` pairs in ascending subject order.

    Raises ``ValueError`` on a subject with no maps — every consumer
    (signature building, clustering) needs at least one map per
    subject, and a silent skip would desynchronize matrix columns from
    subject ids.
    """
    for subject_id in sorted(maps_by_subject):
        maps = maps_by_subject[subject_id]
        if not maps:
            raise ValueError(f"subject {subject_id} has no feature maps")
        yield subject_id, maps


def member_maps(
    maps_by_subject: Dict[int, Sequence[MapT]],
    member_ids: Iterable[int],
    exclude: Optional[int] = None,
) -> List[MapT]:
    """Maps of every member subject, flattened in membership order.

    Subjects absent from ``maps_by_subject`` contribute nothing (a
    cluster member may have been held out of the population), and
    ``exclude`` additionally drops one member — the LOSO fold's
    held-out volunteer.
    """
    return [
        m
        for sid in member_ids
        if sid != exclude
        for m in maps_by_subject.get(sid, ())
    ]


def outside_maps(
    maps_by_subject: Dict[int, Sequence[MapT]], member_ids: Iterable[int]
) -> List[MapT]:
    """Maps of every subject *not* in ``member_ids`` (robustness tests)."""
    members = set(member_ids)
    return [
        m
        for sid, maps in maps_by_subject.items()
        if sid not in members
        for m in maps
    ]
