"""Topological execution of stage graphs with provenance capture.

A :class:`PipelineGraph` owns a set of :class:`~repro.orchestration.stage.Stage`
declarations whose ``requires``/``provides`` names form a DAG.
:meth:`PipelineGraph.run` resolves a deterministic topological order
(Kahn's algorithm with declaration order as the tie-break), injects the
runtime executor / cache / seed once per stage through a
:class:`~repro.orchestration.stage.StageContext`, optionally screens
stage outputs through the resilience feature guard, and wraps every
produced value in an :class:`~repro.orchestration.provenance.Artifact`
whose :class:`~repro.orchestration.provenance.Provenance` chains the
upstream digests.

Two resilience hooks live at the same boundary:

* ``run(..., journal=path)`` records every completed stage into a
  :class:`~repro.orchestration.journal.RunJournal` and skips stages the
  journal already holds — a SIGKILLed run resumes where it died, with
  digests bit-identical to an uninterrupted run.
* A stage declaring ``on_failure="skip_with_fallback"`` degrades
  instead of aborting: its exception is recorded in
  :attr:`GraphRun.failed_stages`, its ``fallback`` produces the
  artifact, and the stage's :class:`~repro.resilience.degradation.
  HealthStatus` in :attr:`GraphRun.health` says so.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..errors import OrchestrationError
from ..resilience.degradation import FALLBACK, HEALTHY, HealthStatus
from ..runtime.executor import Executor
from .context import normalize_cache_dir, resolve_executor
from .journal import RunJournal, resolve_journal, run_key
from .provenance import Artifact, Provenance, artifact_digest
from .stage import Stage, StageContext

logger = logging.getLogger("repro.orchestration")


@dataclass
class PipelineRun:
    """Every artifact produced by one graph execution.

    Beyond the artifacts themselves, a run carries its resilience
    record: ``failed_stages`` maps each stage that raised but was
    declared ``on_failure="skip_with_fallback"`` to its error message,
    and ``health`` holds a per-stage
    :class:`~repro.resilience.degradation.HealthStatus` — ``HEALTHY``
    for stages that executed (or were resumed from a journal) normally,
    ``FALLBACK`` for stages that degraded to their fallback value.
    """

    artifacts: Dict[str, Artifact] = field(default_factory=dict)
    failed_stages: Dict[str, str] = field(default_factory=dict)
    health: Dict[str, HealthStatus] = field(default_factory=dict)
    resumed_stages: List[str] = field(default_factory=list)

    def __getitem__(self, name: str) -> Artifact:
        return self.artifacts[name]

    def __contains__(self, name: str) -> bool:
        return name in self.artifacts

    def value(self, name: str) -> Any:
        return self.artifacts[name].value

    def provenance(self, name: str) -> Provenance:
        return self.artifacts[name].provenance

    def lineage(self) -> List[Dict[str, Any]]:
        """Provenance records of every artifact, in production order."""
        return [a.provenance.as_dict() for a in self.artifacts.values()]

    def wall_time_s(self, name: str) -> float:
        return self.artifacts[name].provenance.wall_time_s

    @property
    def ok(self) -> bool:
        """True when no stage degraded to its fallback."""
        return not self.failed_stages

    def failure_manifest(self) -> Dict[str, Any]:
        """Machine-readable record of every degraded stage."""
        return {
            "failed_stages": dict(self.failed_stages),
            "health": {
                name: status.to_dict() for name, status in self.health.items()
            },
            "resumed_stages": list(self.resumed_stages),
        }


#: The artifact container a graph run returns (alias: the run *is* the
#: graph-shaped result, failures and health included).
GraphRun = PipelineRun


class PipelineGraph:
    """A named DAG of stages, executed topologically."""

    def __init__(self, name: str, stages: Optional[Sequence[Stage]] = None):
        self.name = name
        self.stages: List[Stage] = []
        for stage in stages or ():
            self.add(stage)

    def add(self, stage: Stage) -> "PipelineGraph":
        """Declare a stage; returns self for chaining.

        Beyond name/artifact uniqueness, every artifact edge with
        declared :class:`ArtifactSpec` contracts on both ends is
        checked immediately — a mismatched graph is rejected at build
        time with an :class:`~repro.analysis.dataflow.shapeflow.
        ArtifactFlowError` naming both stages, before anything runs.
        """
        if any(s.name == stage.name for s in self.stages):
            raise OrchestrationError(
                f"graph {self.name!r} already has a stage named {stage.name!r}"
            )
        if any(s.provides == stage.provides for s in self.stages):
            raise OrchestrationError(
                f"graph {self.name!r} already produces artifact "
                f"{stage.provides!r}"
            )
        if stage.input_specs or stage.output_spec is not None or any(
            s.input_specs or s.output_spec is not None for s in self.stages
        ):
            # Lazy import: analysis depends only on repro.errors, but
            # keeping the checker out of the hot path means graphs with
            # no declared specs never pay for it.
            from ..analysis.dataflow.shapeflow import check_stage_flow

            check_stage_flow(self.stages + [stage])
        self.stages.append(stage)
        return self

    def topological_order(
        self, initial: Sequence[str] = ()
    ) -> List[Stage]:
        """Stages in dependency order (declaration order as tie-break).

        ``initial`` names artifacts supplied by the caller rather than
        produced by a stage.  Unknown requirements and dependency
        cycles raise :class:`~repro.errors.OrchestrationError` naming
        the offender.
        """
        produced = {s.provides: s for s in self.stages}
        available = set(initial)
        for stage in self.stages:
            for req in stage.requires:
                if req not in produced and req not in available:
                    raise OrchestrationError(
                        f"stage {stage.name!r} requires unknown artifact "
                        f"{req!r} (not produced by any stage, not supplied "
                        "as an initial input)"
                    )
        order: List[Stage] = []
        remaining = list(self.stages)
        while remaining:
            ready = [
                s
                for s in remaining
                if all(r in available for r in s.requires)
            ]
            if not ready:
                cycle = ", ".join(s.name for s in remaining)
                raise OrchestrationError(
                    f"graph {self.name!r} has a dependency cycle among: {cycle}"
                )
            stage = ready[0]  # declaration order is the deterministic tie-break
            order.append(stage)
            available.add(stage.provides)
            remaining.remove(stage)
        return order

    def run(
        self,
        initial: Optional[Dict[str, Any]] = None,
        executor: Optional[Executor] = None,
        cache_dir: Optional[Union[str, "object"]] = None,
        seed: Optional[int] = None,
        journal: Optional[Union[str, Path, RunJournal]] = None,
    ) -> PipelineRun:
        """Execute every stage once, in topological order.

        ``initial`` artifacts are wrapped with an ``"input"`` stage
        provenance so downstream lineage is complete.  The executor /
        cache / seed are injected exactly once — stage functions only
        ever see the :class:`StageContext`.

        ``journal`` (a path or :class:`RunJournal`) makes the run
        crash-safe: each completed stage is recorded write-ahead, and
        stages already journaled under the same run key are skipped and
        rehydrated instead of re-executed.  Because a stage's seed
        material depends only on the run seed and its topological
        index, a resumed run's digests are bit-identical to an
        uninterrupted run's.
        """
        executor = resolve_executor(executor)
        cache_dir = normalize_cache_dir(cache_dir)
        journal = resolve_journal(journal)
        run = PipelineRun()
        for name, value in (initial or {}).items():
            run.artifacts[name] = Artifact(
                name=name,
                value=value,
                provenance=Provenance(
                    stage="input", digest=artifact_digest(value)
                ),
            )
        if journal is not None:
            journal.begin(
                run_key(
                    self.name,
                    self.stages,
                    seed,
                    {
                        name: run.artifacts[name].digest
                        for name in (initial or {})
                    },
                ),
                self.name,
            )

        order = self.topological_order(initial=tuple(initial or ()))
        for index, stage in enumerate(order):
            if journal is not None and journal.has(stage.name):
                artifact = journal.load(stage.name)
                if artifact is not None:
                    run.artifacts[artifact.name] = artifact
                    run.resumed_stages.append(stage.name)
                    run.health[stage.name] = HealthStatus(
                        state=HEALTHY,
                        reasons=(f"resumed from journal {journal.path}",),
                    )
                    logger.debug(
                        "graph %s: stage %s resumed from journal (digest %s)",
                        self.name,
                        stage.name,
                        artifact.digest[:12],
                    )
                    continue
            ctx = StageContext(
                executor=executor,
                cache_dir=cache_dir,
                seed=stage.seed if stage.seed is not None else seed,
                seed_path=(index,),
            )
            inputs = {name: run.value(name) for name in stage.requires}
            logger.debug(
                "graph %s: stage %s (%d/%d) starting",
                self.name,
                stage.name,
                index + 1,
                len(order),
            )
            t0 = time.perf_counter()
            degraded: Optional[str] = None
            try:
                value = stage.run(ctx, inputs)
            except Exception as exc:
                if stage.on_failure != "skip_with_fallback":
                    raise
                degraded = f"{type(exc).__name__}: {exc}"
                logger.warning(
                    "graph %s: stage %s failed (%s); using its fallback",
                    self.name,
                    stage.name,
                    degraded,
                )
                value = stage.run_fallback(ctx, inputs)
            wall = time.perf_counter() - t0
            if stage.screen_output:
                _screen_value(stage.name, value)
            provenance = Provenance(
                stage=stage.name,
                digest=artifact_digest(value),
                config_digest=(
                    None
                    if stage.config is None
                    else artifact_digest(stage.config)
                ),
                seed=ctx.seed,
                seed_path=ctx.seed_path,
                inputs=tuple(
                    (name, run.artifacts[name].digest)
                    for name in stage.requires
                ),
                cache_hits=ctx._cache_hits,
                cache_misses=ctx._cache_misses,
                wall_time_s=wall,
                executor=executor.name,
                workers=executor.workers,
                units=ctx._units,
            )
            artifact = Artifact(
                name=stage.provides, value=value, provenance=provenance
            )
            run.artifacts[stage.provides] = artifact
            if degraded is not None:
                run.failed_stages[stage.name] = degraded
                run.health[stage.name] = HealthStatus(
                    state=FALLBACK,
                    used_fallback_model=True,
                    reasons=(degraded,),
                )
            else:
                run.health[stage.name] = HealthStatus(state=HEALTHY)
                # Write-ahead journaling of *healthy* stages only: a
                # fallback value must never masquerade as the real
                # artifact on a later resume.
                if journal is not None:
                    journal.record(stage.name, artifact)
            logger.debug(
                "graph %s: stage %s done in %.3fs (digest %s)",
                self.name,
                stage.name,
                wall,
                provenance.digest[:12],
            )
        return run


def _screen_value(stage_name: str, value: Any) -> None:
    """Run the resilience feature guard over a stage's output arrays."""
    import numpy as np

    from ..resilience.guards import screen_features

    arrays = []
    if isinstance(value, np.ndarray):
        arrays.append(value)
    elif isinstance(value, (list, tuple)):
        arrays.extend(v for v in value if isinstance(v, np.ndarray))
    for arr in arrays:
        report = screen_features(arr)
        if not report.finite:
            raise OrchestrationError(
                f"stage {stage_name!r} produced non-finite features: "
                f"{len(report.bad_indices)}/{report.size} bad entries"
            )
