"""Typed Stage/Artifact orchestration: one pipeline graph, end to end.

The paper's two-stage cloud/edge pipeline (feature maps → global
clustering → per-cluster CNN-LSTM → cold-start assignment → optional
fine-tune) exists here as an explicit, typed graph instead of being
re-assembled by hand at every entry point:

* :class:`Stage` — a pure function with declared input/output artifact
  names, executed inside a :class:`StageContext` that injects the
  :mod:`repro.runtime` executor/cache once at the stage boundary.
* :class:`Artifact` — a produced value plus its :class:`Provenance`
  record (config digest, seed path, upstream digests, cache traffic,
  wall time).
* :class:`PipelineGraph` — deterministic topological execution with
  optional resilience screening of stage outputs, per-stage
  ``on_failure`` degradation, and crash-safe resumable runs through a
  :class:`RunJournal`.
* :func:`run_fold_plan` — the one fold-dispatch implementation shared
  by every Table-I validation protocol.
* :mod:`~repro.orchestration.grouping` — the shared per-subject map
  grouping used by clustering, validation, and the experiment runners.
"""

from .context import (
    executor_for_workers,
    normalize_cache_dir,
    open_checkpoint_cache,
    open_feature_map_cache,
    resolve_executor,
)
from .folds import FoldPlanResult, run_fold_plan
from .graph import GraphRun, PipelineGraph, PipelineRun
from .journal import RunJournal, resolve_journal, run_key
from .grouping import (
    group_maps_by_subject,
    iter_subject_maps,
    member_maps,
    outside_maps,
)
from .provenance import UNHASHABLE, Artifact, Provenance, artifact_digest
from .stage import Stage, StageContext

__all__ = [
    "Artifact",
    "FoldPlanResult",
    "GraphRun",
    "PipelineGraph",
    "PipelineRun",
    "Provenance",
    "RunJournal",
    "Stage",
    "StageContext",
    "UNHASHABLE",
    "artifact_digest",
    "executor_for_workers",
    "group_maps_by_subject",
    "iter_subject_maps",
    "member_maps",
    "normalize_cache_dir",
    "open_checkpoint_cache",
    "open_feature_map_cache",
    "outside_maps",
    "resolve_executor",
    "resolve_journal",
    "run_fold_plan",
    "run_key",
]
