"""Runtime injection at stage boundaries.

This module is the *only* place outside :mod:`repro.runtime` allowed to
construct executors and content caches (lint rule RPR009 enforces
this).  Every other layer receives an executor / cache handle that was
resolved here — either through a :class:`~repro.orchestration.stage.StageContext`
or through these helpers at a public entry point — so runtime wiring
happens once, at stage boundaries, instead of being copy-pasted into
every driver.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from ..runtime.cache import (
    ContentCache,
    checkpoint_cache,
    feature_map_cache,
    serving_model_cache,
)
from ..runtime.executor import Executor, SerialExecutor, make_executor


def resolve_executor(executor: Optional[Executor] = None) -> Executor:
    """The given executor, or the default serial one."""
    return executor if executor is not None else SerialExecutor()


def executor_for_workers(workers: Optional[int] = None) -> Executor:
    """An executor sized for ``workers`` processes (None / <=1: serial)."""
    return make_executor(workers)


def normalize_cache_dir(
    cache_dir: Optional[Union[str, Path]] = None
) -> Optional[str]:
    """Cache directory as a plain string (picklable into work units)."""
    return None if cache_dir is None else str(cache_dir)


def open_feature_map_cache(cache_dir: Union[str, Path]) -> ContentCache:
    """A handle on the feature-map namespace of ``cache_dir``."""
    return feature_map_cache(cache_dir)


def open_checkpoint_cache(cache_dir: Union[str, Path]) -> ContentCache:
    """A handle on the checkpoint namespace of ``cache_dir``."""
    return checkpoint_cache(cache_dir)


def open_serving_model_cache(cache_dir: Union[str, Path]) -> ContentCache:
    """A handle on the serving warm-pool namespace of ``cache_dir``."""
    return serving_model_cache(cache_dir)
