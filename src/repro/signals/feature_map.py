"""2D feature maps M ∈ R^{F×W} and their normalization.

A feature map stacks the per-window 123-feature vectors of W
consecutive windows column-wise, turning a multi-channel physiological
recording into an "image" that the CNN-LSTM consumes (paper §III-A.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .features import NUM_FEATURES


@dataclass
class FeatureMap:
    """One labelled 2D feature map.

    Attributes
    ----------
    values:
        Array of shape (F, W): F features by W time windows.
    label:
        Integer class label (e.g. 1 = fear, 0 = non-fear).
    subject_id:
        Originating volunteer, used by LOSO splitting.
    """

    values: np.ndarray
    label: int
    subject_id: int

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.ndim != 2:
            raise ValueError(
                f"feature map must be 2D (F, W), got shape {self.values.shape}"
            )

    @property
    def num_features(self) -> int:
        return self.values.shape[0]

    @property
    def num_windows(self) -> int:
        return self.values.shape[1]

    def as_nn_input(self) -> np.ndarray:
        """Reshape to the NCHW tensor layout expected by Conv2D: (1, F, W)."""
        return self.values[None, :, :]


def build_feature_map(
    window_vectors: np.ndarray, label: int, subject_id: int
) -> FeatureMap:
    """Stack per-window feature vectors (W, F) into a FeatureMap (F, W)."""
    window_vectors = np.asarray(window_vectors, dtype=np.float64)
    if window_vectors.ndim != 2:
        raise ValueError(
            f"expected (W, F) window vectors, got shape {window_vectors.shape}"
        )
    return FeatureMap(window_vectors.T, label=label, subject_id=subject_id)


class FeatureNormalizer:
    """Per-feature z-score normalization with train-set statistics.

    Fit on training feature maps only, then applied to train and test
    alike — the standard leak-free protocol for LOSO evaluation.
    """

    def __init__(self, eps: float = 1e-8):
        self.eps = float(eps)
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None

    def fit(self, maps: Sequence[FeatureMap]) -> "FeatureNormalizer":
        if not maps:
            raise ValueError("cannot fit normalizer on an empty set")
        stacked = np.concatenate([m.values for m in maps], axis=1)  # (F, sum W)
        self.mean_ = stacked.mean(axis=1, keepdims=True)
        self.std_ = stacked.std(axis=1, keepdims=True)
        return self

    def transform(self, fmap: FeatureMap) -> FeatureMap:
        if self.mean_ is None or self.std_ is None:
            raise RuntimeError("normalizer must be fitted before transform")
        values = (fmap.values - self.mean_) / (self.std_ + self.eps)
        return FeatureMap(values, label=fmap.label, subject_id=fmap.subject_id)

    def transform_all(self, maps: Sequence[FeatureMap]) -> List[FeatureMap]:
        return [self.transform(m) for m in maps]

    def fit_transform(self, maps: Sequence[FeatureMap]) -> List[FeatureMap]:
        return self.fit(maps).transform_all(maps)


def maps_to_arrays(maps: Sequence[FeatureMap]) -> Tuple[np.ndarray, np.ndarray]:
    """Stack maps into (N, 1, F, W) inputs and (N,) labels for the NN.

    All maps must share the same (F, W) shape.
    """
    if not maps:
        return (
            np.empty((0, 1, NUM_FEATURES, 0), dtype=np.float64),
            np.empty((0,), dtype=np.int64),
        )
    shapes = {m.values.shape for m in maps}
    if len(shapes) != 1:
        raise ValueError(f"inconsistent feature-map shapes: {sorted(shapes)}")
    x = np.stack([m.as_nn_input() for m in maps], axis=0)
    y = np.array([m.label for m in maps], dtype=np.int64)
    return x, y


def subject_signature(maps: Sequence[FeatureMap]) -> np.ndarray:
    """Per-subject signature vector: the mean feature vector across maps.

    This is the D ∈ R^{F×N} representation the paper clusters on (one
    column per user).
    """
    if not maps:
        raise ValueError("cannot summarize an empty set of maps")
    per_map_means = np.stack([m.values.mean(axis=1) for m in maps], axis=0)
    return per_map_means.mean(axis=0)
