"""2D feature maps M ∈ R^{F×W} and their normalization.

A feature map stacks the per-window 123-feature vectors of W
consecutive windows column-wise, turning a multi-channel physiological
recording into an "image" that the CNN-LSTM consumes (paper §III-A.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .features import NUM_FEATURES


@dataclass
class FeatureMap:
    """One labelled 2D feature map.

    Attributes
    ----------
    values:
        Array of shape (F, W): F features by W time windows.
    label:
        Integer class label (e.g. 1 = fear, 0 = non-fear).
    subject_id:
        Originating volunteer, used by LOSO splitting.
    """

    values: np.ndarray
    label: int
    subject_id: int

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.ndim != 2:
            raise ValueError(
                f"feature map must be 2D (F, W), got shape {self.values.shape}"
            )

    @property
    def num_features(self) -> int:
        return self.values.shape[0]

    @property
    def num_windows(self) -> int:
        return self.values.shape[1]

    def as_nn_input(self) -> np.ndarray:
        """Reshape to the NCHW tensor layout expected by Conv2D: (1, F, W)."""
        return self.values[None, :, :]


def build_feature_map(
    window_vectors: np.ndarray, label: int, subject_id: int
) -> FeatureMap:
    """Stack per-window feature vectors (W, F) into a FeatureMap (F, W)."""
    window_vectors = np.asarray(window_vectors, dtype=np.float64)
    if window_vectors.ndim != 2:
        raise ValueError(
            f"expected (W, F) window vectors, got shape {window_vectors.shape}"
        )
    return FeatureMap(window_vectors.T, label=label, subject_id=subject_id)


class FeatureNormalizer:
    """Per-feature z-score normalization with train-set statistics.

    Fit on training feature maps only, then applied to train and test
    alike — the standard leak-free protocol for LOSO evaluation.
    """

    def __init__(self, eps: float = 1e-8):
        self.eps = float(eps)
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None

    def fit(self, maps: Sequence[FeatureMap]) -> "FeatureNormalizer":
        if not maps:
            raise ValueError("cannot fit normalizer on an empty set")
        stacked = np.concatenate([m.values for m in maps], axis=1)  # (F, sum W)
        self.mean_ = stacked.mean(axis=1, keepdims=True)
        self.std_ = stacked.std(axis=1, keepdims=True)
        return self

    def transform(self, fmap: FeatureMap) -> FeatureMap:
        if self.mean_ is None or self.std_ is None:
            raise RuntimeError("normalizer must be fitted before transform")
        values = (fmap.values - self.mean_) / (self.std_ + self.eps)
        return FeatureMap(values, label=fmap.label, subject_id=fmap.subject_id)

    def transform_all(self, maps: Sequence[FeatureMap]) -> List[FeatureMap]:
        return [self.transform(m) for m in maps]

    def fit_transform(self, maps: Sequence[FeatureMap]) -> List[FeatureMap]:
        return self.fit(maps).transform_all(maps)


def maps_to_arrays(maps: Sequence[FeatureMap]) -> Tuple[np.ndarray, np.ndarray]:
    """Stack maps into (N, 1, F, W) inputs and (N,) labels for the NN.

    All maps must share the same (F, W) shape.
    """
    if not maps:
        return (
            np.empty((0, 1, NUM_FEATURES, 0), dtype=np.float64),
            np.empty((0,), dtype=np.int64),
        )
    shapes = {m.values.shape for m in maps}
    if len(shapes) != 1:
        raise ValueError(f"inconsistent feature-map shapes: {sorted(shapes)}")
    x = np.stack([m.as_nn_input() for m in maps], axis=0)
    y = np.array([m.label for m in maps], dtype=np.int64)
    return x, y


@dataclass
class SubjectExtractionUnit:
    """One subject's raw recordings, packaged as an executor work unit.

    Extraction is pure — raw bytes + config in, feature maps out — so
    units can run on any process in any order and the result is
    bit-identical to a serial sweep.  ``cache_dir`` (not a live cache
    handle) travels with the unit so each worker process opens its own
    handle on the shared content-addressed store.
    """

    subject_id: int
    trials: List[Dict[str, np.ndarray]]  # keys: bvp / gsr / skt
    labels: List[int]
    windows_per_map: int
    rates: Tuple[float, float, float]  # (bvp, gsr, skt) Hz
    window_seconds: float
    step_seconds: Optional[float] = None
    cache_dir: Optional[str] = None


@dataclass
class SubjectExtractionResult:
    """Extracted maps plus the unit's cache hit/miss counts."""

    subject_id: int
    maps: List[FeatureMap] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0


def extract_subject_maps(unit: SubjectExtractionUnit) -> SubjectExtractionResult:
    """Extract (or cache-load) every feature map for one subject.

    The cache key is SHA-256 over the trial's raw signal bytes plus the
    full extraction configuration, so byte-identical raw data with an
    unchanged config is never re-extracted, while any config change
    (window length, rates, windows_per_map) invalidates transparently.
    """
    from .features import FeatureExtractor, SensorRates

    cache = None
    if unit.cache_dir is not None:
        # Cache handles are opened through the orchestration context —
        # the single injection point for runtime machinery (RPR009) —
        # lazily, so signals stays importable without orchestration.
        from ..orchestration.context import open_feature_map_cache

        cache = open_feature_map_cache(unit.cache_dir)

    extractor = FeatureExtractor(
        rates=SensorRates(*unit.rates),
        window_seconds=unit.window_seconds,
        step_seconds=unit.step_seconds,
    )
    result = SubjectExtractionResult(subject_id=unit.subject_id)
    for raw, label in zip(unit.trials, unit.labels):
        key = None
        if cache is not None:
            key = cache.key(
                "feature_map.v1",
                raw["bvp"],
                raw["gsr"],
                raw["skt"],
                unit.rates,
                unit.window_seconds,
                extractor.step_seconds,
                unit.windows_per_map,
                label,
                unit.subject_id,
            )
            entry = cache.load_arrays(key)
            if entry is not None:
                result.maps.append(
                    FeatureMap(
                        entry["values"],
                        label=int(entry["label"]),
                        subject_id=int(entry["subject_id"]),
                    )
                )
                result.cache_hits += 1
                continue
            result.cache_misses += 1
        vectors = extractor.extract_recording(raw["bvp"], raw["gsr"], raw["skt"])
        if vectors.shape[0] < unit.windows_per_map:
            raise RuntimeError(
                "trial too short for requested windows_per_map: "
                f"{vectors.shape[0]} < {unit.windows_per_map}"
            )
        fmap = build_feature_map(
            vectors[: unit.windows_per_map],
            label=label,
            subject_id=unit.subject_id,
        )
        if cache is not None and key is not None:
            cache.store_arrays(
                key,
                values=fmap.values,
                label=np.int64(label),
                subject_id=np.int64(unit.subject_id),
            )
        result.maps.append(fmap)
    return result


def subject_signature(maps: Sequence[FeatureMap]) -> np.ndarray:
    """Per-subject signature vector: the mean feature vector across maps.

    This is the D ∈ R^{F×N} representation the paper clusters on (one
    column per user).
    """
    if not maps:
        raise ValueError("cannot summarize an empty set of maps")
    per_map_means = np.stack([m.values.mean(axis=1) for m in maps], axis=0)
    return per_map_means.mean(axis=0)


def signature_matrix(records: Sequence) -> np.ndarray:
    """(n, F) stacked signatures for a chunk of subject-like records.

    Accepts anything carrying ``.maps`` (dataset ``SubjectRecord``s,
    streamed ``ScenarioSubject``s).  Each row is computed independently
    per subject, so concatenating chunk matrices row-wise is bitwise
    identical to building one matrix from the materialized population —
    the invariant the streaming clustering path relies on.
    """
    if not records:
        raise ValueError("cannot build a signature matrix from no records")
    return np.stack(
        [subject_signature(record.maps) for record in records], axis=0
    )
