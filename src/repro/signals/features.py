"""The 123-feature extractor combining BVP, GSR and SKT channels.

This is the feature-map generation front end of CLEAR (Section III-A.1
of the paper): 84 BVP + 34 GSR + 5 SKT = 123 features per time window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .bvp import BVP_FEATURE_NAMES, extract_bvp_features
from .gsr import GSR_FEATURE_NAMES, extract_gsr_features
from .skt import SKT_FEATURE_NAMES, extract_skt_features

#: Canonical ordering of all 123 features (BVP, then GSR, then SKT).
ALL_FEATURE_NAMES: List[str] = (
    BVP_FEATURE_NAMES + GSR_FEATURE_NAMES + SKT_FEATURE_NAMES
)

NUM_FEATURES = len(ALL_FEATURE_NAMES)


@dataclass
class SensorRates:
    """Per-channel sampling rates in Hz."""

    bvp: float = 64.0
    gsr: float = 4.0
    skt: float = 4.0

    def validate(self) -> None:
        for name in ("bvp", "gsr", "skt"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} rate must be positive")


@dataclass
class FeatureExtractor:
    """Windowed extractor producing 123-dimensional feature vectors.

    Parameters
    ----------
    rates:
        Sampling rates for the three channels.
    window_seconds:
        Analysis window duration (the paper windows each stimulus
        response; 20 s is a typical choice for fear detection).
    step_seconds:
        Hop between consecutive windows; defaults to non-overlapping.
    """

    rates: SensorRates = field(default_factory=SensorRates)
    window_seconds: float = 20.0
    step_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        self.rates.validate()
        if self.window_seconds <= 0:
            raise ValueError("window_seconds must be positive")
        if self.step_seconds is None:
            self.step_seconds = self.window_seconds
        if self.step_seconds <= 0:
            raise ValueError("step_seconds must be positive")

    @property
    def feature_names(self) -> List[str]:
        return list(ALL_FEATURE_NAMES)

    def extract_window(
        self, bvp: np.ndarray, gsr: np.ndarray, skt: np.ndarray
    ) -> np.ndarray:
        """Extract the 123 features from one aligned window triple."""
        features: Dict[str, float] = {}
        features.update(extract_bvp_features(bvp, self.rates.bvp))
        features.update(extract_gsr_features(gsr, self.rates.gsr))
        features.update(extract_skt_features(skt, self.rates.skt))
        vector = np.array(
            [features[name] for name in ALL_FEATURE_NAMES], dtype=np.float64
        )
        # Guard against numerical blowups (entropies, ratios) so downstream
        # clustering and DL training never see NaN/inf.
        return np.nan_to_num(vector, nan=0.0, posinf=0.0, neginf=0.0)

    def window_counts(self, n_bvp: int, n_gsr: int, n_skt: int) -> int:
        """Number of aligned windows available across the three channels."""
        counts = []
        for n, fs in (
            (n_bvp, self.rates.bvp),
            (n_gsr, self.rates.gsr),
            (n_skt, self.rates.skt),
        ):
            w = int(self.window_seconds * fs)
            s = int(self.step_seconds * fs)
            counts.append(max(0, (n - w) // s + 1) if n >= w else 0)
        return min(counts)

    def extract_recording(
        self, bvp: np.ndarray, gsr: np.ndarray, skt: np.ndarray
    ) -> np.ndarray:
        """Slide over a full recording; returns (num_windows, 123).

        The three channels are segmented over the same wall-clock grid
        so window *i* covers the same time span in each channel.
        """
        bvp = np.asarray(bvp, dtype=np.float64)
        gsr = np.asarray(gsr, dtype=np.float64)
        skt = np.asarray(skt, dtype=np.float64)
        count = self.window_counts(bvp.size, gsr.size, skt.size)
        if count == 0:
            return np.empty((0, NUM_FEATURES), dtype=np.float64)

        rows = []
        for i in range(count):
            segs = []
            for x, fs in ((bvp, self.rates.bvp), (gsr, self.rates.gsr), (skt, self.rates.skt)):
                w = int(self.window_seconds * fs)
                s = int(self.step_seconds * fs)
                segs.append(x[i * s : i * s + w])
            rows.append(self.extract_window(*segs))
        return np.stack(rows, axis=0)
