"""Blood-volume-pulse (BVP) processing: pulse detection and 84 features.

The feature inventory follows the recipe of Sun et al. [18] (time
domain, frequency domain, non-linear), sized to the paper's 84 BVP
features.  All pulse-derived features degrade gracefully to 0.0 when a
window contains too few detected beats.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np
from scipy import signal as sps

from . import spectral
from .filters import butter_bandpass
from .nonlinear import (
    approximate_entropy,
    hjorth_parameters,
    poincare_descriptors,
    sample_entropy,
    zero_crossing_rate,
)
from .stats import basic_stats, iqr, safe_kurtosis, safe_skew

#: Plausible human heart-rate limits used to constrain peak detection.
MIN_HR_BPM = 40.0
MAX_HR_BPM = 180.0


def detect_pulse_peaks(bvp: np.ndarray, fs: float) -> np.ndarray:
    """Detect systolic peaks in a BVP trace.

    The trace is band-passed to the cardiac band (0.5-8 Hz) and peaks
    are required to be at least one maximal-heart-rate period apart,
    with prominence adaptive to the signal's spread.
    Returns sample indices of detected peaks.
    """
    bvp = np.asarray(bvp, dtype=np.float64)
    if bvp.size < int(fs):
        return np.array([], dtype=int)
    filtered = butter_bandpass(bvp, 0.5, 8.0, fs)
    min_distance = max(1, int(fs * 60.0 / MAX_HR_BPM))
    prominence = 0.3 * filtered.std()
    peaks, _ = sps.find_peaks(filtered, distance=min_distance, prominence=prominence)
    return peaks


def ibi_from_peaks(peaks: np.ndarray, fs: float) -> np.ndarray:
    """Inter-beat intervals in seconds, filtered to plausible HR range."""
    if peaks.size < 2:
        return np.array([], dtype=np.float64)
    ibis = np.diff(peaks) / fs
    lo, hi = 60.0 / MAX_HR_BPM, 60.0 / MIN_HR_BPM
    return ibis[(ibis >= lo) & (ibis <= hi)]


def interpolate_ibi(
    peaks: np.ndarray, fs: float, fs_resample: float = 4.0
) -> Tuple[np.ndarray, float]:
    """Evenly resample the IBI tachogram for spectral HRV analysis.

    Returns ``(series, fs_resample)``; empty series if under 4 beats.
    """
    if peaks.size < 4:
        return np.array([], dtype=np.float64), fs_resample
    times = peaks[1:] / fs
    ibis = np.diff(peaks) / fs
    duration = times[-1] - times[0]
    if duration <= 0:
        return np.array([], dtype=np.float64), fs_resample
    grid = np.arange(times[0], times[-1], 1.0 / fs_resample)
    if grid.size < 8:
        return np.array([], dtype=np.float64), fs_resample
    return np.interp(grid, times, ibis), fs_resample


def _pulse_morphology(
    bvp: np.ndarray, peaks: np.ndarray, fs: float
) -> Dict[str, float]:
    """Per-pulse amplitude/width/rise/fall/slope statistics (12 features)."""
    names = [
        "bvp_pulse_amp_mean",
        "bvp_pulse_amp_std",
        "bvp_pulse_amp_min",
        "bvp_pulse_amp_max",
        "bvp_pulse_width_mean",
        "bvp_pulse_width_std",
        "bvp_rise_time_mean",
        "bvp_rise_time_std",
        "bvp_fall_time_mean",
        "bvp_fall_time_std",
        "bvp_pulse_slope_mean",
        "bvp_pulse_slope_std",
    ]
    if peaks.size < 3:
        return {name: 0.0 for name in names}

    amplitudes: List[float] = []
    widths: List[float] = []
    rises: List[float] = []
    falls: List[float] = []
    slopes: List[float] = []
    for i in range(1, peaks.size - 1):
        left, peak, right = peaks[i - 1], peaks[i], peaks[i + 1]
        trough_before = left + int(np.argmin(bvp[left:peak])) if peak > left else left
        trough_after = peak + int(np.argmin(bvp[peak:right])) if right > peak else peak
        amp = bvp[peak] - bvp[trough_before]
        rise = (peak - trough_before) / fs
        fall = (trough_after - peak) / fs
        if amp <= 0 or rise <= 0:
            continue
        amplitudes.append(float(amp))
        widths.append(float(rise + fall))
        rises.append(float(rise))
        falls.append(float(fall))
        slopes.append(float(amp / rise))

    if not amplitudes:
        return {name: 0.0 for name in names}
    amp_arr = np.array(amplitudes)
    return {
        "bvp_pulse_amp_mean": float(amp_arr.mean()),
        "bvp_pulse_amp_std": float(amp_arr.std()),
        "bvp_pulse_amp_min": float(amp_arr.min()),
        "bvp_pulse_amp_max": float(amp_arr.max()),
        "bvp_pulse_width_mean": float(np.mean(widths)),
        "bvp_pulse_width_std": float(np.std(widths)),
        "bvp_rise_time_mean": float(np.mean(rises)),
        "bvp_rise_time_std": float(np.std(rises)),
        "bvp_fall_time_mean": float(np.mean(falls)),
        "bvp_fall_time_std": float(np.std(falls)),
        "bvp_pulse_slope_mean": float(np.mean(slopes)),
        "bvp_pulse_slope_std": float(np.std(slopes)),
    }


def _hr_time_domain(ibis: np.ndarray, peak_count: int) -> Dict[str, float]:
    """Heart-rate and IBI time-domain features (14 + 6 features)."""
    zero_names = {
        "hr_mean": 0.0,
        "hr_std": 0.0,
        "hr_min": 0.0,
        "hr_max": 0.0,
        "hr_range": 0.0,
        "ibi_mean": 0.0,
        "sdnn": 0.0,
        "ibi_median": 0.0,
        "rmssd": 0.0,
        "sdsd": 0.0,
        "pnn20": 0.0,
        "pnn50": 0.0,
        "cvnn": 0.0,
        "peak_count": float(peak_count),
        "ibi_min": 0.0,
        "ibi_max": 0.0,
        "ibi_range": 0.0,
        "ibi_skew": 0.0,
        "ibi_kurtosis": 0.0,
        "ibi_iqr": 0.0,
    }
    if ibis.size < 3:
        return zero_names
    hr = 60.0 / ibis
    diffs = np.diff(ibis)
    features = {
        "hr_mean": float(hr.mean()),
        "hr_std": float(hr.std()),
        "hr_min": float(hr.min()),
        "hr_max": float(hr.max()),
        "hr_range": float(hr.max() - hr.min()),
        "ibi_mean": float(ibis.mean()),
        "sdnn": float(ibis.std()),
        "ibi_median": float(np.median(ibis)),
        "rmssd": float(np.sqrt(np.mean(diffs**2))) if diffs.size else 0.0,
        "sdsd": float(diffs.std()) if diffs.size else 0.0,
        "pnn20": float(np.mean(np.abs(diffs) > 0.02)) if diffs.size else 0.0,
        "pnn50": float(np.mean(np.abs(diffs) > 0.05)) if diffs.size else 0.0,
        "cvnn": float(ibis.std() / ibis.mean()) if ibis.mean() > 0 else 0.0,
        "peak_count": float(peak_count),
        "ibi_min": float(ibis.min()),
        "ibi_max": float(ibis.max()),
        "ibi_range": float(ibis.max() - ibis.min()),
        "ibi_skew": safe_skew(ibis),
        "ibi_kurtosis": safe_kurtosis(ibis),
        "ibi_iqr": iqr(ibis),
    }
    return features


def _bvp_spectral(bvp: np.ndarray, fs: float) -> Dict[str, float]:
    """Spectral-shape features of the raw BVP trace (10 features)."""
    freqs, psd = spectral.welch_psd(bvp, fs)
    total = spectral.total_power(freqs, psd)
    cardiac = spectral.band_power(freqs, psd, 0.5, 4.0)
    resp = spectral.band_power(freqs, psd, 0.1, 0.5)
    return {
        "bvp_total_power": total,
        "bvp_peak_freq": spectral.peak_frequency(freqs, psd),
        "bvp_peak_power": float(psd.max()),
        "bvp_spec_centroid": spectral.spectral_centroid(freqs, psd),
        "bvp_spec_spread": spectral.spectral_spread(freqs, psd),
        "bvp_spec_entropy": spectral.spectral_entropy(psd),
        "bvp_cardiac_power": cardiac,
        "bvp_cardiac_rel": cardiac / total if total > 0 else 0.0,
        "bvp_resp_power": resp,
        "bvp_resp_rel": resp / total if total > 0 else 0.0,
    }


def _hrv_spectral(peaks: np.ndarray, fs: float) -> Dict[str, float]:
    """HRV frequency-domain features from the resampled tachogram (10)."""
    names = {
        "hrv_vlf": 0.0,
        "hrv_lf": 0.0,
        "hrv_hf": 0.0,
        "hrv_total": 0.0,
        "hrv_lf_hf_ratio": 0.0,
        "hrv_lf_norm": 0.0,
        "hrv_hf_norm": 0.0,
        "hrv_peak_lf": 0.0,
        "hrv_peak_hf": 0.0,
        "hrv_vlf_rel": 0.0,
    }
    series, fs_r = interpolate_ibi(peaks, fs)
    if series.size < 16:
        return names
    series = series - series.mean()
    freqs, psd = spectral.welch_psd(series, fs_r, nperseg=min(series.size, 128))
    bands = spectral.hrv_band_powers(freqs, psd)
    lf_mask = (freqs >= 0.04) & (freqs < 0.15)
    hf_mask = (freqs >= 0.15) & (freqs < 0.4)
    names.update(
        {
            "hrv_vlf": bands["vlf"],
            "hrv_lf": bands["lf"],
            "hrv_hf": bands["hf"],
            "hrv_total": bands["total"],
            "hrv_lf_hf_ratio": bands["lf_hf_ratio"],
            "hrv_lf_norm": bands["lf_norm"],
            "hrv_hf_norm": bands["hf_norm"],
            "hrv_peak_lf": float(freqs[lf_mask][np.argmax(psd[lf_mask])])
            if lf_mask.any()
            else 0.0,
            "hrv_peak_hf": float(freqs[hf_mask][np.argmax(psd[hf_mask])])
            if hf_mask.any()
            else 0.0,
            "hrv_vlf_rel": bands["vlf"] / bands["total"]
            if bands["total"] > 0
            else 0.0,
        }
    )
    return names


def extract_bvp_features(bvp: np.ndarray, fs: float) -> Dict[str, float]:
    """Extract the 84 BVP features from one analysis window.

    Parameters
    ----------
    bvp:
        1D raw BVP trace (one window).
    fs:
        Sampling rate in Hz.
    """
    bvp = np.asarray(bvp, dtype=np.float64)
    if bvp.size < int(2 * fs):
        raise ValueError(
            f"BVP window too short: {bvp.size} samples at {fs} Hz "
            "(need at least 2 seconds)"
        )

    features: Dict[str, float] = {}
    # 12 raw statistics.
    features.update(basic_stats(bvp, "bvp"))
    # 6 first-derivative features.
    d1 = np.diff(bvp)
    features["bvp_d1_mean_abs"] = float(np.mean(np.abs(d1)))
    features["bvp_d1_std"] = float(d1.std())
    features["bvp_d1_max"] = float(d1.max())
    features["bvp_d1_min"] = float(d1.min())
    features["bvp_d1_rms"] = float(np.sqrt(np.mean(d1 * d1)))
    features["bvp_zcr"] = zero_crossing_rate(bvp)
    # 4 second-derivative features.
    d2 = np.diff(d1)
    features["bvp_d2_mean_abs"] = float(np.mean(np.abs(d2)))
    features["bvp_d2_std"] = float(d2.std())
    features["bvp_d2_rms"] = float(np.sqrt(np.mean(d2 * d2)))
    features["bvp_d2_max_abs"] = float(np.max(np.abs(d2)))

    peaks = detect_pulse_peaks(bvp, fs)
    ibis = ibi_from_peaks(peaks, fs)
    # 20 HR/IBI time-domain features.
    features.update(_hr_time_domain(ibis, peaks.size))
    # 10 BVP spectral features.
    features.update(_bvp_spectral(bvp, fs))
    # 10 HRV spectral features.
    features.update(_hrv_spectral(peaks, fs))

    # 10 non-linear features.
    poincare = poincare_descriptors(ibis)
    features["sd1"] = poincare["sd1"]
    features["sd2"] = poincare["sd2"]
    features["sd1_sd2_ratio"] = poincare["sd1_sd2_ratio"]
    features["ellipse_area"] = poincare["ellipse_area"]
    # Entropies on a decimated trace keep the window cost bounded.
    decim = bvp[:: max(1, int(fs / 8))]
    features["bvp_sampen"] = sample_entropy(decim) if decim.size >= 8 else 0.0
    features["bvp_apen"] = approximate_entropy(decim) if decim.size >= 8 else 0.0
    features["ibi_sampen"] = sample_entropy(ibis) if ibis.size >= 8 else 0.0
    activity, mobility, complexity = hjorth_parameters(bvp)
    features["bvp_hjorth_activity"] = activity
    features["bvp_hjorth_mobility"] = mobility
    features["bvp_hjorth_complexity"] = complexity

    # 12 pulse-morphology features.
    features.update(_pulse_morphology(bvp, peaks, fs))
    return features


def _feature_names() -> List[str]:
    """Compute the canonical ordering once from a synthetic window."""
    rng = np.random.default_rng(0)
    fs = 64.0
    t = np.arange(0, 20.0, 1.0 / fs)
    demo = np.sin(2 * np.pi * 1.2 * t) + 0.05 * rng.normal(size=t.size)
    return list(extract_bvp_features(demo, fs).keys())


#: Canonical ordered names of the 84 BVP features.
BVP_FEATURE_NAMES: List[str] = _feature_names()

NUM_BVP_FEATURES = len(BVP_FEATURE_NAMES)
