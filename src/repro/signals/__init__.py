"""Physiological signal processing: DSP, per-sensor features, feature maps.

Implements the paper's 123-feature inventory (84 BVP + 34 GSR + 5 SKT)
and the 2D feature-map generation that feeds clustering and the
CNN-LSTM classifier.
"""

from .bvp import (
    BVP_FEATURE_NAMES,
    NUM_BVP_FEATURES,
    detect_pulse_peaks,
    extract_bvp_features,
    ibi_from_peaks,
    interpolate_ibi,
)
from .feature_map import (
    FeatureMap,
    FeatureNormalizer,
    build_feature_map,
    maps_to_arrays,
    subject_signature,
)
from .features import (
    ALL_FEATURE_NAMES,
    NUM_FEATURES,
    FeatureExtractor,
    SensorRates,
)
from .filters import (
    butter_bandpass,
    butter_highpass,
    butter_lowpass,
    detrend,
    interpolate_nans,
    linear_trend,
    moving_average,
    resample_to,
    zscore,
)
from .gsr import (
    GSR_FEATURE_NAMES,
    NUM_GSR_FEATURES,
    decompose_gsr,
    detect_scrs,
    extract_gsr_features,
)
from .nonlinear import (
    approximate_entropy,
    hjorth_parameters,
    poincare_descriptors,
    sample_entropy,
    zero_crossing_rate,
)
from .quality import (
    AggregateQualityReport,
    QualityReport,
    assess_quality,
    clipping_fraction,
    finite_fraction,
    flatline_fraction,
    inject_baseline_wander,
    inject_clipping,
    inject_dropout,
    inject_motion_spikes,
    quality_by_channel,
    quality_report,
    spike_score,
)
from .skt import NUM_SKT_FEATURES, SKT_FEATURE_NAMES, extract_skt_features
from .spectral import (
    band_power,
    hrv_band_powers,
    peak_frequency,
    spectral_centroid,
    spectral_entropy,
    spectral_spread,
    total_power,
    welch_psd,
)
from .windows import num_windows, sliding_windows, window_times

__all__ = [
    "ALL_FEATURE_NAMES",
    "NUM_FEATURES",
    "FeatureExtractor",
    "SensorRates",
    "FeatureMap",
    "FeatureNormalizer",
    "build_feature_map",
    "maps_to_arrays",
    "subject_signature",
    "BVP_FEATURE_NAMES",
    "NUM_BVP_FEATURES",
    "extract_bvp_features",
    "detect_pulse_peaks",
    "ibi_from_peaks",
    "interpolate_ibi",
    "GSR_FEATURE_NAMES",
    "NUM_GSR_FEATURES",
    "extract_gsr_features",
    "decompose_gsr",
    "detect_scrs",
    "SKT_FEATURE_NAMES",
    "NUM_SKT_FEATURES",
    "extract_skt_features",
    "butter_bandpass",
    "butter_highpass",
    "butter_lowpass",
    "detrend",
    "interpolate_nans",
    "linear_trend",
    "moving_average",
    "resample_to",
    "zscore",
    "sample_entropy",
    "approximate_entropy",
    "poincare_descriptors",
    "hjorth_parameters",
    "zero_crossing_rate",
    "welch_psd",
    "band_power",
    "total_power",
    "peak_frequency",
    "spectral_centroid",
    "spectral_spread",
    "spectral_entropy",
    "hrv_band_powers",
    "AggregateQualityReport",
    "QualityReport",
    "assess_quality",
    "finite_fraction",
    "flatline_fraction",
    "clipping_fraction",
    "spike_score",
    "quality_by_channel",
    "quality_report",
    "inject_motion_spikes",
    "inject_dropout",
    "inject_clipping",
    "inject_baseline_wander",
    "num_windows",
    "sliding_windows",
    "window_times",
]
