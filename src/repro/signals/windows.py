"""Sliding-window segmentation of raw recordings."""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np


def num_windows(n_samples: int, window: int, step: int) -> int:
    """Number of full windows of length ``window`` at stride ``step``."""
    if window <= 0 or step <= 0:
        raise ValueError("window and step must be positive")
    if n_samples < window:
        return 0
    return (n_samples - window) // step + 1


def sliding_windows(
    x: np.ndarray, window: int, step: int
) -> np.ndarray:
    """View a 1D signal as a (num_windows, window) array of segments.

    Windows are full-length only; a trailing partial window is dropped,
    matching standard practice in physiological feature extraction.
    """
    x = np.asarray(x)
    if x.ndim != 1:
        raise ValueError(f"expected a 1D signal, got shape {x.shape}")
    count = num_windows(x.size, window, step)
    if count == 0:
        return np.empty((0, window), dtype=x.dtype)
    stride = x.strides[0]
    view = np.lib.stride_tricks.as_strided(
        x, shape=(count, window), strides=(step * stride, stride), writeable=False
    )
    return view.copy()


def window_times(
    n_samples: int, window: int, step: int, fs: float
) -> np.ndarray:
    """Center time (seconds) of each window produced by sliding_windows."""
    if not fs > 0:
        raise ValueError(f"fs must be positive, got {fs}")
    count = num_windows(n_samples, window, step)
    starts = np.arange(count) * step
    return (starts + window / 2.0) / fs


def segment_multichannel(
    channels: List[np.ndarray], windows: List[int], steps: List[int]
) -> Iterator[Tuple[int, List[np.ndarray]]]:
    """Jointly segment channels that share a timeline but differ in rate.

    ``windows[i]``/``steps[i]`` are per-channel sample counts chosen so
    that each channel's window covers the same wall-clock duration.
    Yields ``(window_index, [segment_per_channel])`` for the common
    number of windows across channels.
    """
    if not (len(channels) == len(windows) == len(steps)):
        raise ValueError("channels, windows and steps must align")
    counts = [
        num_windows(len(ch), w, s) for ch, w, s in zip(channels, windows, steps)
    ]
    common = min(counts) if counts else 0
    segmented = [
        sliding_windows(ch, w, s)[:common]
        for ch, w, s in zip(channels, windows, steps)
    ]
    for i in range(common):
        yield i, [seg[i] for seg in segmented]
