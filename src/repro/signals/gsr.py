"""Galvanic skin response (GSR / EDA) processing: 34 features.

The signal is decomposed into a slow tonic component (skin conductance
level, SCL) and a fast phasic component containing skin conductance
responses (SCRs).  Feature groups: 10 raw statistics, 6 derivative
features, 6 tonic features, 12 phasic/SCR features — 34 total, matching
the paper's GSR inventory.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np
from scipy import signal as sps

from .filters import butter_lowpass, linear_trend
from .stats import iqr, safe_kurtosis, safe_skew

#: Cutoff separating tonic (below) from phasic (above) activity, Hz.
TONIC_CUTOFF_HZ = 0.05


def decompose_gsr(gsr: np.ndarray, fs: float) -> Tuple[np.ndarray, np.ndarray]:
    """Split GSR into (tonic, phasic) via low-pass filtering.

    The tonic SCL is the < 0.05 Hz component; the phasic driver is the
    residual.  This is the standard cvxEDA-free approximation and is
    sufficient for SCR counting/amplitude statistics.
    """
    gsr = np.asarray(gsr, dtype=np.float64)
    if gsr.size < int(2 * fs):
        raise ValueError(
            f"GSR window too short: {gsr.size} samples at {fs} Hz"
        )
    tonic = butter_lowpass(gsr, TONIC_CUTOFF_HZ, fs, order=2)
    phasic = gsr - tonic
    return tonic, phasic


def detect_scrs(
    phasic: np.ndarray, fs: float, min_amplitude: float = 0.05
) -> Dict[str, np.ndarray]:
    """Detect skin conductance responses in the phasic component.

    An SCR is a peak in the phasic driver with amplitude above
    ``min_amplitude`` (in the signal's units; 0.05 uS is the standard
    EDA threshold) measured from the preceding onset (local minimum).  Returns peak indices, onset
    indices, amplitudes, and rise times in seconds.
    """
    phasic = np.asarray(phasic, dtype=np.float64)
    # SCRs are 1-5 s events; enforce >= 1 s separation.
    min_distance = max(1, int(fs))
    peaks, _ = sps.find_peaks(phasic, distance=min_distance)
    onsets: List[int] = []
    amplitudes: List[float] = []
    rise_times: List[float] = []
    kept_peaks: List[int] = []
    prev_peak = 0
    for peak in peaks:
        segment_start = prev_peak
        onset = segment_start + int(np.argmin(phasic[segment_start : peak + 1]))
        amp = phasic[peak] - phasic[onset]
        if amp >= min_amplitude and peak > onset:
            kept_peaks.append(int(peak))
            onsets.append(int(onset))
            amplitudes.append(float(amp))
            rise_times.append(float((peak - onset) / fs))
        prev_peak = peak
    return {
        "peaks": np.array(kept_peaks, dtype=int),
        "onsets": np.array(onsets, dtype=int),
        "amplitudes": np.array(amplitudes, dtype=np.float64),
        "rise_times": np.array(rise_times, dtype=np.float64),
    }


def _scr_recovery_times(
    phasic: np.ndarray, scrs: Dict[str, np.ndarray], fs: float
) -> np.ndarray:
    """Half-recovery time per SCR: time to fall to 50 % of amplitude."""
    recoveries: List[float] = []
    peaks = scrs["peaks"]
    amps = scrs["amplitudes"]
    for i, peak in enumerate(peaks):
        target = phasic[peak] - 0.5 * amps[i]
        end = peaks[i + 1] if i + 1 < len(peaks) else phasic.size
        below = np.nonzero(phasic[peak:end] <= target)[0]
        if below.size:
            recoveries.append(float(below[0] / fs))
    return np.array(recoveries, dtype=np.float64)


def extract_gsr_features(gsr: np.ndarray, fs: float) -> Dict[str, float]:
    """Extract the 34 GSR features from one analysis window."""
    gsr = np.asarray(gsr, dtype=np.float64)
    tonic, phasic = decompose_gsr(gsr, fs)
    duration_min = gsr.size / fs / 60.0

    features: Dict[str, float] = {}
    # 10 raw statistics.
    q75, q25 = np.percentile(gsr, [75, 25])
    features["gsr_mean"] = float(gsr.mean())
    features["gsr_std"] = float(gsr.std())
    features["gsr_min"] = float(gsr.min())
    features["gsr_max"] = float(gsr.max())
    features["gsr_range"] = float(gsr.max() - gsr.min())
    features["gsr_median"] = float(np.median(gsr))
    features["gsr_skew"] = safe_skew(gsr)
    features["gsr_kurtosis"] = safe_kurtosis(gsr)
    features["gsr_rms"] = float(np.sqrt(np.mean(gsr * gsr)))
    features["gsr_iqr"] = float(q75 - q25)

    # 6 first-derivative features.
    d1 = np.diff(gsr) * fs  # units per second
    features["gsr_d1_mean"] = float(d1.mean())
    features["gsr_d1_std"] = float(d1.std())
    features["gsr_d1_max"] = float(d1.max())
    features["gsr_d1_min"] = float(d1.min())
    features["gsr_d1_mean_abs"] = float(np.mean(np.abs(d1)))
    features["gsr_d1_neg_prop"] = float(np.mean(d1 < 0))

    # 6 tonic (SCL) features.
    features["gsr_tonic_mean"] = float(tonic.mean())
    features["gsr_tonic_std"] = float(tonic.std())
    features["gsr_tonic_slope"] = linear_trend(tonic, fs)
    features["gsr_tonic_min"] = float(tonic.min())
    features["gsr_tonic_max"] = float(tonic.max())
    features["gsr_tonic_range"] = float(tonic.max() - tonic.min())

    # 12 phasic / SCR features.
    scrs = detect_scrs(phasic, fs)
    amps = scrs["amplitudes"]
    rises = scrs["rise_times"]
    recoveries = _scr_recovery_times(phasic, scrs, fs)
    features["scr_count"] = float(len(amps))
    features["scr_rate"] = float(len(amps) / duration_min) if duration_min > 0 else 0.0
    features["scr_amp_mean"] = float(amps.mean()) if amps.size else 0.0
    features["scr_amp_std"] = float(amps.std()) if amps.size else 0.0
    features["scr_amp_max"] = float(amps.max()) if amps.size else 0.0
    features["scr_amp_sum"] = float(amps.sum()) if amps.size else 0.0
    features["scr_rise_mean"] = float(rises.mean()) if rises.size else 0.0
    features["scr_rise_std"] = float(rises.std()) if rises.size else 0.0
    features["scr_recovery_mean"] = (
        float(recoveries.mean()) if recoveries.size else 0.0
    )
    features["gsr_phasic_mean"] = float(phasic.mean())
    features["gsr_phasic_std"] = float(phasic.std())
    features["gsr_phasic_energy"] = float(np.sum(phasic * phasic) / phasic.size)

    return features


def _feature_names() -> List[str]:
    rng = np.random.default_rng(0)
    fs = 4.0
    t = np.arange(0, 60.0, 1.0 / fs)
    demo = 2.0 + 0.02 * t + 0.1 * rng.normal(size=t.size)
    return list(extract_gsr_features(demo, fs).keys())


#: Canonical ordered names of the 34 GSR features.
GSR_FEATURE_NAMES: List[str] = _feature_names()

NUM_GSR_FEATURES = len(GSR_FEATURE_NAMES)
