"""Shared descriptive-statistics helpers for feature extraction."""

from __future__ import annotations

from typing import Dict

import numpy as np
from scipy import stats as spstats


def basic_stats(x: np.ndarray, prefix: str) -> Dict[str, float]:
    """The 12 descriptive statistics used across all sensor channels."""
    x = np.asarray(x, dtype=np.float64)
    if x.size < 2:
        raise ValueError(f"signal too short for statistics: {x.size}")
    q75, q25 = np.percentile(x, [75, 25])
    std = x.std()
    return {
        f"{prefix}_mean": float(x.mean()),
        f"{prefix}_std": float(std),
        f"{prefix}_min": float(x.min()),
        f"{prefix}_max": float(x.max()),
        f"{prefix}_range": float(x.max() - x.min()),
        f"{prefix}_median": float(np.median(x)),
        f"{prefix}_iqr": float(q75 - q25),
        f"{prefix}_skew": float(spstats.skew(x)) if std > 1e-12 else 0.0,
        f"{prefix}_kurtosis": float(spstats.kurtosis(x)) if std > 1e-12 else 0.0,
        f"{prefix}_rms": float(np.sqrt(np.mean(x * x))),
        f"{prefix}_mad": float(np.mean(np.abs(x - x.mean()))),
        f"{prefix}_energy": float(np.sum(x * x) / x.size),
    }


def safe_skew(x: np.ndarray) -> float:
    """Skewness, zero for (near-)constant inputs."""
    x = np.asarray(x, dtype=np.float64)
    if x.size < 3 or x.std() < 1e-12:
        return 0.0
    return float(spstats.skew(x))


def safe_kurtosis(x: np.ndarray) -> float:
    """Excess kurtosis, zero for (near-)constant inputs."""
    x = np.asarray(x, dtype=np.float64)
    if x.size < 4 or x.std() < 1e-12:
        return 0.0
    return float(spstats.kurtosis(x))


def iqr(x: np.ndarray) -> float:
    """Interquartile range."""
    q75, q25 = np.percentile(np.asarray(x, dtype=np.float64), [75, 25])
    return float(q75 - q25)
