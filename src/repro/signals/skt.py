"""Skin temperature (SKT) processing: the paper's 5 SKT features."""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from .filters import linear_trend


def extract_skt_features(skt: np.ndarray, fs: float) -> Dict[str, float]:
    """Extract the 5 SKT features from one analysis window.

    SKT is a slow signal; the informative content is its level and
    drift: mean, std, slope (deg/s), min and max.
    """
    skt = np.asarray(skt, dtype=np.float64)
    if skt.size < 2:
        raise ValueError(f"SKT window too short: {skt.size} samples")
    return {
        "skt_mean": float(skt.mean()),
        "skt_std": float(skt.std()),
        "skt_slope": linear_trend(skt, fs),
        "skt_min": float(skt.min()),
        "skt_max": float(skt.max()),
    }


#: Canonical ordered names of the 5 SKT features.
SKT_FEATURE_NAMES: List[str] = [
    "skt_mean",
    "skt_std",
    "skt_slope",
    "skt_min",
    "skt_max",
]

NUM_SKT_FEATURES = len(SKT_FEATURE_NAMES)
