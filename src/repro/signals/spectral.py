"""Spectral analysis helpers: Welch PSD, band powers, spectral shape."""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np
from scipy import signal as sps


def welch_psd(
    x: np.ndarray, fs: float, nperseg: int = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Welch power spectral density; ``nperseg`` auto-sized for short windows."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError(f"expected a 1D signal, got shape {x.shape}")
    if x.size < 8:
        raise ValueError(f"signal too short for PSD: {x.size}")
    if nperseg is None:
        nperseg = min(256, x.size)
    nperseg = min(nperseg, x.size)
    freqs, psd = sps.welch(x, fs=fs, nperseg=nperseg)
    return freqs, psd


def band_power(
    freqs: np.ndarray, psd: np.ndarray, low: float, high: float
) -> float:
    """Integrated PSD over [low, high) via the trapezoid rule."""
    if low >= high:
        raise ValueError(f"band bounds inverted: [{low}, {high})")
    mask = (freqs >= low) & (freqs < high)
    if mask.sum() < 2:
        # Fewer than two bins: fall back to the rectangle approximation.
        if mask.sum() == 1:
            df = freqs[1] - freqs[0] if freqs.size > 1 else 1.0
            return float(psd[mask][0] * df)
        return 0.0
    return float(np.trapezoid(psd[mask], freqs[mask]))


def total_power(freqs: np.ndarray, psd: np.ndarray) -> float:
    """Integrated PSD over the full estimated range."""
    return float(np.trapezoid(psd, freqs))


def peak_frequency(freqs: np.ndarray, psd: np.ndarray) -> float:
    """Frequency of the PSD maximum (ignoring DC)."""
    if freqs.size < 2:
        return float(freqs[0]) if freqs.size else 0.0
    idx = int(np.argmax(psd[1:])) + 1
    return float(freqs[idx])


def spectral_centroid(freqs: np.ndarray, psd: np.ndarray) -> float:
    """Power-weighted mean frequency."""
    denom = psd.sum()
    if denom <= 0:
        return 0.0
    return float((freqs * psd).sum() / denom)


def spectral_spread(freqs: np.ndarray, psd: np.ndarray) -> float:
    """Power-weighted standard deviation around the centroid."""
    denom = psd.sum()
    if denom <= 0:
        return 0.0
    centroid = spectral_centroid(freqs, psd)
    return float(np.sqrt(((freqs - centroid) ** 2 * psd).sum() / denom))


def spectral_entropy(psd: np.ndarray, normalize: bool = True) -> float:
    """Shannon entropy of the normalized PSD (optionally in [0, 1])."""
    p = np.asarray(psd, dtype=np.float64)
    total = p.sum()
    if total <= 0 or p.size < 2:
        return 0.0
    p = p / total
    p = p[p > 0]
    h = float(-(p * np.log2(p)).sum())
    if normalize:
        h /= np.log2(psd.size)
    return h


def hrv_band_powers(
    freqs: np.ndarray, psd: np.ndarray
) -> Dict[str, float]:
    """Standard HRV bands: VLF 0.003-0.04, LF 0.04-0.15, HF 0.15-0.4 Hz.

    Returns absolute powers, the LF/HF ratio, and normalized LF/HF
    (each divided by LF+HF, the convention in HRV literature).
    """
    vlf = band_power(freqs, psd, 0.003, 0.04)
    lf = band_power(freqs, psd, 0.04, 0.15)
    hf = band_power(freqs, psd, 0.15, 0.4)
    total = vlf + lf + hf
    lf_hf_sum = lf + hf
    return {
        "vlf": vlf,
        "lf": lf,
        "hf": hf,
        "total": total,
        "lf_hf_ratio": lf / hf if hf > 0 else 0.0,
        "lf_norm": lf / lf_hf_sum if lf_hf_sum > 0 else 0.0,
        "hf_norm": hf / lf_hf_sum if lf_hf_sum > 0 else 0.0,
    }
