"""Signal quality assessment and artifact injection.

Wearable recordings are plagued by motion spikes, sensor dropouts,
clipping, and baseline wander.  This module provides (a) injectors
that synthesize those artifacts — used for failure-injection testing of
the whole CLEAR pipeline — and (b) quality indices that quantify how
corrupted a window is, so deployments can gate feature extraction on
signal quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple, Union

import numpy as np

# ---------------------------------------------------------------------------
# Artifact injection
# ---------------------------------------------------------------------------


def inject_motion_spikes(
    x: np.ndarray,
    rng: np.random.Generator,
    rate_per_minute: float,
    fs: float,
    amplitude_scale: float = 8.0,
) -> np.ndarray:
    """Add sharp biphasic motion spikes at Poisson-distributed times."""
    x = np.asarray(x, dtype=np.float64).copy()
    if rate_per_minute < 0:
        raise ValueError("rate_per_minute must be >= 0")
    duration_min = x.size / fs / 60.0
    num_spikes = rng.poisson(rate_per_minute * duration_min)
    scale = amplitude_scale * (x.std() + 1e-9)
    spike_len = max(2, int(0.1 * fs))
    for _ in range(num_spikes):
        pos = int(rng.integers(0, max(1, x.size - spike_len)))
        shape = np.sin(np.linspace(0, 2 * np.pi, spike_len))
        # Signals shorter than one spike get a truncated spike rather
        # than a broadcast error (the slice clips at the signal end).
        span = x[pos : pos + spike_len].size
        x[pos : pos + spike_len] += (
            scale * rng.choice([-1.0, 1.0]) * shape[:span]
        )
    return x


def inject_dropout(
    x: np.ndarray,
    rng: np.random.Generator,
    fraction: float,
    fs: float,
    hold_value: Optional[float] = None,
) -> np.ndarray:
    """Replace a contiguous fraction of the signal with a flatline.

    Models a sensor losing skin contact; ``hold_value`` defaults to the
    last good sample (typical ADC behaviour).
    """
    x = np.asarray(x, dtype=np.float64).copy()
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    if fraction == 0.0:
        return x
    gap = max(1, int(fraction * x.size))
    start = int(rng.integers(0, max(1, x.size - gap)))
    value = x[start - 1] if (hold_value is None and start > 0) else (
        hold_value if hold_value is not None else x[0]
    )
    x[start : start + gap] = value
    return x


def inject_clipping(
    x: np.ndarray,
    rng: np.random.Generator,
    fraction_of_range: float = 0.7,
    center_jitter: float = 0.05,
) -> np.ndarray:
    """Saturate the signal at a fraction of its dynamic range.

    Like every injector in this module, ``rng`` is explicit — the
    saturation band's center is jittered by up to ``center_jitter`` of
    the range (real ADC rails are rarely symmetric around the median).
    """
    x = np.asarray(x, dtype=np.float64).copy()
    if not 0.0 < fraction_of_range <= 1.0:
        raise ValueError("fraction_of_range must be in (0, 1]")
    full_range = x.max() - x.min()
    center = np.median(x) + rng.uniform(-center_jitter, center_jitter) * full_range
    half_range = 0.5 * full_range * fraction_of_range
    return np.clip(x, center - half_range, center + half_range)


def inject_baseline_wander(
    x: np.ndarray,
    rng: np.random.Generator,
    fs: float,
    amplitude_scale: float = 3.0,
    frequency_hz: float = 0.05,
) -> np.ndarray:
    """Add slow sinusoidal drift (cable sway / respiration coupling)."""
    x = np.asarray(x, dtype=np.float64).copy()
    t = np.arange(x.size) / fs
    amp = amplitude_scale * (x.std() + 1e-9)
    phase = rng.uniform(0, 2 * np.pi)
    return x + amp * np.sin(2 * np.pi * frequency_hz * t + phase)


# ---------------------------------------------------------------------------
# Quality indices
# ---------------------------------------------------------------------------


@dataclass
class QualityReport:
    """Per-window signal quality summary.

    All component indices are in [0, 1], 1 = clean.  ``overall`` is the
    minimum (a window is only as good as its worst failure mode).
    ``finite`` scores the fraction of NaN/Inf samples — a channel that
    emits NaNs (dead sensor, I2C glitch) is scored, not crashed on.
    """

    flatline: float
    clipping: float
    spikes: float
    overall: float
    finite: float = 1.0

    @property
    def acceptable(self) -> bool:
        """Default gate used by quality-aware pipelines."""
        return self.overall >= 0.5


def flatline_fraction(x: np.ndarray, eps: Optional[float] = None) -> float:
    """Fraction of consecutive samples with (near-)zero difference."""
    x = np.asarray(x, dtype=np.float64)
    if x.size < 2:
        raise ValueError("signal too short for flatline detection")
    if eps is None:
        eps = 1e-6 * max(x.std(), 1e-12)
    return float(np.mean(np.abs(np.diff(x)) <= eps))


def clipping_fraction(x: np.ndarray, tol: float = 1e-9) -> float:
    """Fraction of samples sitting exactly at the signal extremes."""
    x = np.asarray(x, dtype=np.float64)
    if x.size < 2:
        raise ValueError("signal too short for clipping detection")
    lo, hi = x.min(), x.max()
    if hi - lo < tol:
        return 1.0  # fully flat counts as fully clipped
    return float(np.mean((np.abs(x - lo) < tol) | (np.abs(x - hi) < tol)))


def spike_score(x: np.ndarray, z_threshold: float = 6.0) -> float:
    """Fraction of samples whose derivative is a >z-sigma outlier.

    Uses the median absolute deviation of the first difference, which
    is robust to the spikes being scored.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.size < 3:
        raise ValueError("signal too short for spike detection")
    d = np.diff(x)
    mad = np.median(np.abs(d - np.median(d)))
    sigma = 1.4826 * mad
    if sigma < 1e-12:
        return 0.0
    return float(np.mean(np.abs(d - np.median(d)) > z_threshold * sigma))


def finite_fraction(x: np.ndarray) -> float:
    """Fraction of samples that are finite (not NaN/Inf)."""
    x = np.asarray(x, dtype=np.float64)
    if x.size == 0:
        raise ValueError("signal too short for finiteness check")
    return float(np.mean(np.isfinite(x)))


def assess_quality(x: np.ndarray) -> QualityReport:
    """Compute the quality report for one signal window.

    NaN/Inf samples never crash the assessment: the indices are
    computed over the finite samples (non-finite runs count against the
    ``finite`` score, and a window with fewer than 3 finite samples is
    scored 0 across the board).
    """
    x = np.asarray(x, dtype=np.float64)
    finite = finite_fraction(x)
    good = x[np.isfinite(x)]
    if good.size < 3:
        return QualityReport(
            flatline=0.0, clipping=0.0, spikes=0.0, overall=0.0, finite=0.0
        )
    flat = flatline_fraction(good)
    clip = clipping_fraction(good)
    spikes = spike_score(good)
    # Map raw fractions onto [0, 1] quality scores.  A clean signal has
    # near-zero fractions; scale so typical corruption drops the score
    # substantially.
    q_flat = float(np.clip(1.0 - 2.0 * flat, 0.0, 1.0))
    q_clip = float(np.clip(1.0 - 5.0 * clip, 0.0, 1.0))
    q_spikes = float(np.clip(1.0 - 20.0 * spikes, 0.0, 1.0))
    q_finite = float(np.clip(1.0 - 5.0 * (1.0 - finite), 0.0, 1.0))
    overall = min(q_flat, q_clip, q_spikes, q_finite)
    return QualityReport(
        flatline=q_flat,
        clipping=q_clip,
        spikes=q_spikes,
        overall=overall,
        finite=q_finite,
    )


def quality_by_channel(
    bvp: np.ndarray, gsr: np.ndarray, skt: np.ndarray
) -> Dict[str, QualityReport]:
    """Quality reports for the three CLEAR channels."""
    return {
        "bvp": assess_quality(bvp),
        "gsr": assess_quality(gsr),
        "skt": assess_quality(skt),
    }


@dataclass
class AggregateQualityReport:
    """Gate decision for one multi-channel window.

    ``channels`` holds the per-channel indices; ``failing`` lists the
    channels whose overall score fell below ``min_overall``;
    ``skewed`` lists channels whose duration (samples / fs) deviates
    from the across-channel median by more than 5 % — the footprint of
    sample loss or clock skew.  ``accept`` is the gate decision
    downstream runtimes key on.
    """

    channels: Dict[str, QualityReport]
    failing: Tuple[str, ...]
    skewed: Tuple[str, ...]
    overall: float
    min_overall: float

    @property
    def accept(self) -> bool:
        """True when no channel fails quality and durations agree."""
        return not self.failing and not self.skewed

    def to_dict(self) -> Dict:
        """Machine-readable form (for logs / HealthStatus payloads)."""
        return {
            "accept": self.accept,
            "overall": self.overall,
            "failing": list(self.failing),
            "skewed": list(self.skewed),
            "channels": {
                name: {
                    "flatline": r.flatline,
                    "clipping": r.clipping,
                    "spikes": r.spikes,
                    "finite": r.finite,
                    "overall": r.overall,
                }
                for name, r in self.channels.items()
            },
        }


def quality_report(
    window_dict: Mapping[str, np.ndarray],
    fs: Union[Mapping[str, float], float],
    min_overall: float = 0.5,
    max_duration_skew: float = 0.05,
) -> AggregateQualityReport:
    """Aggregate quality gate over one window of named channels.

    Parameters
    ----------
    window_dict:
        Channel name -> 1-D sample array for the same wall-clock span.
    fs:
        Sampling rates, either one rate for all channels or a mapping
        per channel; used to compare channel durations (sample loss /
        clock skew shows up as one channel covering less time).
    min_overall:
        A channel with ``overall`` below this lands in ``failing``.
    max_duration_skew:
        Relative duration deviation from the median beyond which a
        channel lands in ``skewed``.
    """
    if not window_dict:
        raise ValueError("window_dict must name at least one channel")
    channels: Dict[str, QualityReport] = {}
    durations: Dict[str, float] = {}
    for name, samples in window_dict.items():
        samples = np.asarray(samples, dtype=np.float64)
        rate = float(fs[name]) if isinstance(fs, Mapping) else float(fs)
        if rate <= 0:
            raise ValueError(f"sampling rate for {name!r} must be positive")
        durations[name] = samples.size / rate
        if samples.size < 3:
            channels[name] = QualityReport(
                flatline=0.0, clipping=0.0, spikes=0.0, overall=0.0, finite=0.0
            )
        else:
            channels[name] = assess_quality(samples)
    failing = tuple(
        name for name, r in channels.items() if r.overall < min_overall
    )
    median_duration = float(np.median(list(durations.values())))
    skewed = tuple(
        name
        for name, d in durations.items()
        if median_duration > 0
        and abs(d - median_duration) / median_duration > max_duration_skew
    )
    overall = min(r.overall for r in channels.values())
    return AggregateQualityReport(
        channels=channels,
        failing=failing,
        skewed=skewed,
        overall=overall,
        min_overall=min_overall,
    )
