"""Signal quality assessment and artifact injection.

Wearable recordings are plagued by motion spikes, sensor dropouts,
clipping, and baseline wander.  This module provides (a) injectors
that synthesize those artifacts — used for failure-injection testing of
the whole CLEAR pipeline — and (b) quality indices that quantify how
corrupted a window is, so deployments can gate feature extraction on
signal quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

# ---------------------------------------------------------------------------
# Artifact injection
# ---------------------------------------------------------------------------


def inject_motion_spikes(
    x: np.ndarray,
    rng: np.random.Generator,
    rate_per_minute: float,
    fs: float,
    amplitude_scale: float = 8.0,
) -> np.ndarray:
    """Add sharp biphasic motion spikes at Poisson-distributed times."""
    x = np.asarray(x, dtype=np.float64).copy()
    if rate_per_minute < 0:
        raise ValueError("rate_per_minute must be >= 0")
    duration_min = x.size / fs / 60.0
    num_spikes = rng.poisson(rate_per_minute * duration_min)
    scale = amplitude_scale * (x.std() + 1e-9)
    spike_len = max(2, int(0.1 * fs))
    for _ in range(num_spikes):
        pos = int(rng.integers(0, max(1, x.size - spike_len)))
        shape = np.sin(np.linspace(0, 2 * np.pi, spike_len))
        x[pos : pos + spike_len] += scale * rng.choice([-1.0, 1.0]) * shape
    return x


def inject_dropout(
    x: np.ndarray,
    rng: np.random.Generator,
    fraction: float,
    fs: float,
    hold_value: Optional[float] = None,
) -> np.ndarray:
    """Replace a contiguous fraction of the signal with a flatline.

    Models a sensor losing skin contact; ``hold_value`` defaults to the
    last good sample (typical ADC behaviour).
    """
    x = np.asarray(x, dtype=np.float64).copy()
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    if fraction == 0.0:
        return x
    gap = max(1, int(fraction * x.size))
    start = int(rng.integers(0, max(1, x.size - gap)))
    value = x[start - 1] if (hold_value is None and start > 0) else (
        hold_value if hold_value is not None else x[0]
    )
    x[start : start + gap] = value
    return x


def inject_clipping(x: np.ndarray, fraction_of_range: float = 0.7) -> np.ndarray:
    """Saturate the signal at a fraction of its dynamic range."""
    x = np.asarray(x, dtype=np.float64).copy()
    if not 0.0 < fraction_of_range <= 1.0:
        raise ValueError("fraction_of_range must be in (0, 1]")
    center = np.median(x)
    half_range = 0.5 * (x.max() - x.min()) * fraction_of_range
    return np.clip(x, center - half_range, center + half_range)


def inject_baseline_wander(
    x: np.ndarray,
    rng: np.random.Generator,
    fs: float,
    amplitude_scale: float = 3.0,
    frequency_hz: float = 0.05,
) -> np.ndarray:
    """Add slow sinusoidal drift (cable sway / respiration coupling)."""
    x = np.asarray(x, dtype=np.float64).copy()
    t = np.arange(x.size) / fs
    amp = amplitude_scale * (x.std() + 1e-9)
    phase = rng.uniform(0, 2 * np.pi)
    return x + amp * np.sin(2 * np.pi * frequency_hz * t + phase)


# ---------------------------------------------------------------------------
# Quality indices
# ---------------------------------------------------------------------------


@dataclass
class QualityReport:
    """Per-window signal quality summary.

    All component indices are in [0, 1], 1 = clean.  ``overall`` is the
    minimum (a window is only as good as its worst failure mode).
    """

    flatline: float
    clipping: float
    spikes: float
    overall: float

    @property
    def acceptable(self) -> bool:
        """Default gate used by quality-aware pipelines."""
        return self.overall >= 0.5


def flatline_fraction(x: np.ndarray, eps: Optional[float] = None) -> float:
    """Fraction of consecutive samples with (near-)zero difference."""
    x = np.asarray(x, dtype=np.float64)
    if x.size < 2:
        raise ValueError("signal too short for flatline detection")
    if eps is None:
        eps = 1e-6 * max(x.std(), 1e-12)
    return float(np.mean(np.abs(np.diff(x)) <= eps))


def clipping_fraction(x: np.ndarray, tol: float = 1e-9) -> float:
    """Fraction of samples sitting exactly at the signal extremes."""
    x = np.asarray(x, dtype=np.float64)
    if x.size < 2:
        raise ValueError("signal too short for clipping detection")
    lo, hi = x.min(), x.max()
    if hi - lo < tol:
        return 1.0  # fully flat counts as fully clipped
    return float(np.mean((np.abs(x - lo) < tol) | (np.abs(x - hi) < tol)))


def spike_score(x: np.ndarray, z_threshold: float = 6.0) -> float:
    """Fraction of samples whose derivative is a >z-sigma outlier.

    Uses the median absolute deviation of the first difference, which
    is robust to the spikes being scored.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.size < 3:
        raise ValueError("signal too short for spike detection")
    d = np.diff(x)
    mad = np.median(np.abs(d - np.median(d)))
    sigma = 1.4826 * mad
    if sigma < 1e-12:
        return 0.0
    return float(np.mean(np.abs(d - np.median(d)) > z_threshold * sigma))


def assess_quality(x: np.ndarray) -> QualityReport:
    """Compute the quality report for one signal window."""
    flat = flatline_fraction(x)
    clip = clipping_fraction(x)
    spikes = spike_score(x)
    # Map raw fractions onto [0, 1] quality scores.  A clean signal has
    # near-zero fractions; scale so typical corruption drops the score
    # substantially.
    q_flat = float(np.clip(1.0 - 2.0 * flat, 0.0, 1.0))
    q_clip = float(np.clip(1.0 - 5.0 * clip, 0.0, 1.0))
    q_spikes = float(np.clip(1.0 - 20.0 * spikes, 0.0, 1.0))
    overall = min(q_flat, q_clip, q_spikes)
    return QualityReport(
        flatline=q_flat, clipping=q_clip, spikes=q_spikes, overall=overall
    )


def quality_by_channel(
    bvp: np.ndarray, gsr: np.ndarray, skt: np.ndarray
) -> Dict[str, QualityReport]:
    """Quality reports for the three CLEAR channels."""
    return {
        "bvp": assess_quality(bvp),
        "gsr": assess_quality(gsr),
        "skt": assess_quality(skt),
    }
