"""Filtering and conditioning primitives for physiological signals."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy import signal as sps


def _validate_signal(x: np.ndarray, min_len: int = 2) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError(f"expected a 1D signal, got shape {x.shape}")
    if x.size < min_len:
        raise ValueError(f"signal too short: {x.size} < {min_len}")
    return x


def moving_average(x: np.ndarray, window: int) -> np.ndarray:
    """Centered moving average with edge-padded boundaries."""
    x = _validate_signal(x)
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if window == 1:
        return x.copy()
    window = min(window, x.size)
    kernel = np.ones(window) / window
    padded = np.pad(x, (window // 2, window - 1 - window // 2), mode="edge")
    return np.convolve(padded, kernel, mode="valid")


def detrend(x: np.ndarray) -> np.ndarray:
    """Remove the least-squares linear trend."""
    x = _validate_signal(x)
    t = np.arange(x.size, dtype=np.float64)
    slope, intercept = np.polyfit(t, x, 1)
    return x - (slope * t + intercept)


def linear_trend(x: np.ndarray, fs: float = 1.0) -> float:
    """Least-squares slope of the signal in units per second."""
    x = _validate_signal(x)
    t = np.arange(x.size, dtype=np.float64) / fs
    slope, _ = np.polyfit(t, x, 1)
    return float(slope)


def _nyquist_clamped(cutoff: float, fs: float) -> float:
    """Clamp a cutoff just below the Nyquist frequency."""
    nyq = fs / 2.0
    return min(cutoff, 0.99 * nyq)


def butter_lowpass(
    x: np.ndarray, cutoff: float, fs: float, order: int = 4
) -> np.ndarray:
    """Zero-phase Butterworth low-pass filter."""
    x = _validate_signal(x, min_len=8)
    cutoff = _nyquist_clamped(cutoff, fs)
    sos = sps.butter(order, cutoff, btype="low", fs=fs, output="sos")
    return sps.sosfiltfilt(sos, x)


def butter_highpass(
    x: np.ndarray, cutoff: float, fs: float, order: int = 4
) -> np.ndarray:
    """Zero-phase Butterworth high-pass filter."""
    x = _validate_signal(x, min_len=8)
    cutoff = _nyquist_clamped(cutoff, fs)
    sos = sps.butter(order, cutoff, btype="high", fs=fs, output="sos")
    return sps.sosfiltfilt(sos, x)


def butter_bandpass(
    x: np.ndarray, low: float, high: float, fs: float, order: int = 3
) -> np.ndarray:
    """Zero-phase Butterworth band-pass filter."""
    x = _validate_signal(x, min_len=16)
    if low <= 0:
        raise ValueError(f"low cutoff must be positive, got {low}")
    high = _nyquist_clamped(high, fs)
    if low >= high:
        raise ValueError(f"low cutoff {low} must be below high cutoff {high}")
    sos = sps.butter(order, [low, high], btype="band", fs=fs, output="sos")
    return sps.sosfiltfilt(sos, x)


def resample_to(x: np.ndarray, fs_in: float, fs_out: float) -> np.ndarray:
    """Resample a uniformly-sampled signal to a new rate (polyphase)."""
    x = _validate_signal(x)
    if fs_in <= 0 or fs_out <= 0:
        raise ValueError("sampling rates must be positive")
    if fs_in == fs_out:
        return x.copy()
    # Rational approximation of the rate ratio keeps resample_poly exact.
    from fractions import Fraction

    frac = Fraction(fs_out / fs_in).limit_denominator(1000)
    return sps.resample_poly(x, frac.numerator, frac.denominator)


def zscore(x: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Standardize to zero mean / unit variance (eps guards flat signals)."""
    x = _validate_signal(x)
    return (x - x.mean()) / (x.std() + eps)


def interpolate_nans(x: np.ndarray) -> np.ndarray:
    """Linearly interpolate interior NaNs; edge NaNs take nearest value."""
    x = np.asarray(x, dtype=np.float64).copy()
    nans = np.isnan(x)
    if not nans.any():
        return x
    if nans.all():
        raise ValueError("signal is all NaN")
    idx = np.arange(x.size)
    x[nans] = np.interp(idx[nans], idx[~nans], x[~nans])
    return x
