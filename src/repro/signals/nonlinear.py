"""Non-linear / complexity features: entropies, Poincaré, Hjorth.

These are the "non-linear features" the paper's feature-map recipe
(after Sun et al. [18]) extracts alongside time- and frequency-domain
statistics.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np


def _embed(x: np.ndarray, m: int) -> np.ndarray:
    """Time-delay embedding with lag 1: rows are length-m subsequences."""
    n = x.size - m + 1
    if n <= 0:
        raise ValueError(f"signal of length {x.size} too short for m={m}")
    idx = np.arange(m)[None, :] + np.arange(n)[:, None]
    return x[idx]


def sample_entropy(x: np.ndarray, m: int = 2, r: float = None) -> float:
    """Sample entropy (Richman & Moorman, 2000), lag-1 embedding.

    ``r`` defaults to 0.2 * std(x).  Returns 0.0 for degenerate flat
    signals and caps at a large finite value when no matches exist at
    m+1 (instead of returning inf), keeping feature maps finite.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.size < m + 2:
        raise ValueError(f"signal too short for sample entropy: {x.size}")
    std = x.std()
    if std < 1e-12:
        return 0.0
    if r is None:
        r = 0.2 * std

    def count_matches(mm: int) -> int:
        emb = _embed(x, mm)
        count = 0
        # Chebyshev distance template matching, excluding self-matches.
        for i in range(emb.shape[0] - 1):
            dist = np.max(np.abs(emb[i + 1 :] - emb[i]), axis=1)
            count += int(np.sum(dist <= r))
        return count

    b = count_matches(m)
    a = count_matches(m + 1)
    if b == 0:
        return 0.0
    if a == 0:
        return 10.0  # finite cap: no (m+1)-matches found
    return float(-np.log(a / b))


def approximate_entropy(x: np.ndarray, m: int = 2, r: float = None) -> float:
    """Approximate entropy (Pincus, 1991), lag-1 embedding."""
    x = np.asarray(x, dtype=np.float64)
    if x.size < m + 2:
        raise ValueError(f"signal too short for approximate entropy: {x.size}")
    std = x.std()
    if std < 1e-12:
        return 0.0
    if r is None:
        r = 0.2 * std

    def phi(mm: int) -> float:
        emb = _embed(x, mm)
        n = emb.shape[0]
        counts = np.zeros(n)
        for i in range(n):
            dist = np.max(np.abs(emb - emb[i]), axis=1)
            counts[i] = np.sum(dist <= r) / n  # includes self-match
        return float(np.mean(np.log(counts)))

    return float(phi(m) - phi(m + 1))


def poincare_descriptors(intervals: np.ndarray) -> Dict[str, float]:
    """Poincaré plot descriptors of an interval series (e.g. IBIs).

    SD1 captures short-term variability, SD2 long-term; also returns
    their ratio and the fitted ellipse area (pi * SD1 * SD2).
    """
    intervals = np.asarray(intervals, dtype=np.float64)
    if intervals.size < 3:
        return {"sd1": 0.0, "sd2": 0.0, "sd1_sd2_ratio": 0.0, "ellipse_area": 0.0}
    x1 = intervals[:-1]
    x2 = intervals[1:]
    diff = (x2 - x1) / np.sqrt(2.0)
    summ = (x2 + x1) / np.sqrt(2.0)
    sd1 = float(diff.std())
    sd2 = float(summ.std())
    return {
        "sd1": sd1,
        "sd2": sd2,
        "sd1_sd2_ratio": sd1 / sd2 if sd2 > 0 else 0.0,
        "ellipse_area": float(np.pi * sd1 * sd2),
    }


def hjorth_parameters(x: np.ndarray) -> Tuple[float, float, float]:
    """Hjorth activity, mobility and complexity of a signal."""
    x = np.asarray(x, dtype=np.float64)
    if x.size < 3:
        raise ValueError(f"signal too short for Hjorth parameters: {x.size}")
    dx = np.diff(x)
    ddx = np.diff(dx)
    var_x = x.var()
    var_dx = dx.var()
    var_ddx = ddx.var()
    activity = float(var_x)
    mobility = float(np.sqrt(var_dx / var_x)) if var_x > 0 else 0.0
    if var_dx > 0 and mobility > 0:
        complexity = float(np.sqrt(var_ddx / var_dx) / mobility)
    else:
        complexity = 0.0
    return activity, mobility, complexity


def zero_crossing_rate(x: np.ndarray) -> float:
    """Fraction of consecutive sample pairs that change sign (mean removed)."""
    x = np.asarray(x, dtype=np.float64)
    if x.size < 2:
        raise ValueError("signal too short for zero-crossing rate")
    centered = x - x.mean()
    signs = np.sign(centered)
    # Treat exact zeros as positive so runs of zeros don't inflate the count.
    signs[signs == 0] = 1.0
    return float(np.mean(signs[:-1] != signs[1:]))
