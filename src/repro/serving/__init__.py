"""Fleet-scale online inference: warm pools, micro-batching, admission.

The paper deploys one checkpoint per cluster and personalizes it per
user; this package is the serving side of that story at fleet scale —
thousands of concurrent edge users sharing a handful of warm cluster
checkpoints:

* :mod:`registry` — warm LRU-bounded model pool backed by the
  content-addressed serving cache; models load once per group and
  rehydrate transparently after eviction.
* :mod:`sessions` — per-user session state (rolling map, smoothing,
  personalization status) sharded by a deterministic user hash.
* :mod:`batching` — the micro-batcher: coalesces concurrent
  same-group requests into single ``predict_many`` calls on canonical
  fixed-row slabs, so batched results are **bit-identical** to
  sequential per-user predicts (lint rule RPR020 keeps it the only
  inference entry point of this package).
* :mod:`admission` — load shedding and hard rejection: overload below
  the hard limit degrades to the population-average fallback (recorded
  in the decision's HealthStatus), past it raises a typed
  :class:`~repro.errors.AdmissionError`.
* :mod:`service` — :class:`~repro.serving.service.InferenceService`,
  the facade wiring all of the above to a fitted
  :class:`~repro.core.pipeline.CLEARSystem`.
* :mod:`loadgen` — deterministic synthetic-fleet load generation on
  the injectable clock, for benchmarks and golden-fingerprint tests.
"""

from .admission import (
    ACCEPT,
    REJECT,
    SHED,
    AdmissionController,
    AdmissionPolicy,
)
from .batching import BatchPolicy, MicroBatcher, PendingRequest
from .registry import ClusterModelRegistry, RegistryStats, WarmModelPool
from .service import InferenceService, ServingResult, results_fingerprint
from .sessions import ShardedSessions, UserSession
from .loadgen import LoadReport, LoadScenario, run_load, scenario_events

__all__ = [
    "ACCEPT",
    "SHED",
    "REJECT",
    "AdmissionPolicy",
    "AdmissionController",
    "BatchPolicy",
    "MicroBatcher",
    "PendingRequest",
    "ClusterModelRegistry",
    "RegistryStats",
    "WarmModelPool",
    "InferenceService",
    "ServingResult",
    "results_fingerprint",
    "ShardedSessions",
    "UserSession",
    "LoadScenario",
    "LoadReport",
    "run_load",
    "scenario_events",
]
