"""Admission control: accept, shed to the fallback, or reject — typed.

Overload handling reuses the resilience layer's degradation ladder
instead of inventing a new one.  Below ``max_pending`` requests are
served normally; between ``max_pending`` and ``hard_limit`` they are
*shed* — answered by the pinned population-average fallback model with
a FALLBACK :class:`~repro.resilience.degradation.HealthStatus` (see
:func:`~repro.resilience.degradation.overload_shed_status`), exactly
the rung a low-confidence cold start lands on, reached here for a
capacity reason.  Past ``hard_limit`` the request is rejected with a
typed :class:`~repro.errors.AdmissionError` carrying the queue depth
and the limit, never a silent drop.

Shedding to a *shared* fallback is also a throughput move: all shed
traffic coalesces into one population bucket, so the overloaded server
serves its excess load in the largest, best-amortized batches it has.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import AdmissionError

#: Admission decisions, from best to worst.
ACCEPT = "accept"
SHED = "shed"
REJECT = "reject"


@dataclass(frozen=True)
class AdmissionPolicy:
    """Queue-depth thresholds for the three admission outcomes.

    Attributes
    ----------
    max_pending:
        Pending-request depth at which new requests start shedding to
        the population fallback.
    hard_limit:
        Depth at which new requests are rejected outright
        (:class:`~repro.errors.AdmissionError`).
    max_sessions:
        Optional cap on concurrently connected users; ``connect`` past
        it raises :class:`~repro.errors.AdmissionError`.
    """

    max_pending: int = 256
    hard_limit: int = 1024
    max_sessions: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if self.hard_limit < self.max_pending:
            raise ValueError("hard_limit must be >= max_pending")
        if self.max_sessions is not None and self.max_sessions < 1:
            raise ValueError("max_sessions must be >= 1 when set")


class AdmissionController:
    """Applies an :class:`AdmissionPolicy`, counting every outcome."""

    def __init__(self, policy: Optional[AdmissionPolicy] = None):
        self.policy = policy or AdmissionPolicy()
        self.accepted = 0
        self.shed = 0
        self.rejected = 0

    def admit(self, queue_depth: int) -> str:
        """Decide one request's fate given the current pending depth."""
        if queue_depth >= self.policy.hard_limit:
            self.rejected += 1
            return REJECT
        if queue_depth >= self.policy.max_pending:
            self.shed += 1
            return SHED
        self.accepted += 1
        return ACCEPT

    def admit_session(self, current_sessions: int) -> None:
        """Gate a new connection against ``max_sessions`` (typed reject)."""
        limit = self.policy.max_sessions
        if limit is not None and current_sessions >= limit:
            raise AdmissionError(
                f"session limit reached: {current_sessions} connected, "
                f"policy allows {limit}",
                queue_depth=current_sessions,
                limit=limit,
            )

    @property
    def total(self) -> int:
        return self.accepted + self.shed + self.rejected

    @property
    def shed_rate(self) -> float:
        return self.shed / self.total if self.total else 0.0

    @property
    def reject_rate(self) -> float:
        return self.rejected / self.total if self.total else 0.0

    def to_dict(self) -> Dict:
        return {
            "accepted": self.accepted,
            "shed": self.shed,
            "rejected": self.rejected,
            "shed_rate": self.shed_rate,
            "reject_rate": self.reject_rate,
        }
