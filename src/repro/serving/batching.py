"""The micro-batcher: coalesce same-group requests, run canonical slabs.

This module is the serving layer's **only** inference entry point (lint
rule RPR020 enforces it): requests are bucketed by ``(group key,
feature shape)`` — same model, stackable inputs — and each flush runs
one :meth:`~repro.nn.model.Sequential.predict_many` call on canonical
``canonical_rows``-row slabs.  Fixed-shape execution is what upgrades
micro-batching from "approximately equal" to **bit-identical**: BLAS
selects kernels (and therefore last-ulp rounding) by operand shape, so
at one fixed shape a request's logits cannot depend on which other
requests shared its batch.  A sequential server (``max_batch=1``) and
a fully coalesced one produce byte-identical logits.

Flush policy is the classic pair: a bucket flushes when it holds
``max_batch`` requests (amortization bound) or when its oldest request
has waited ``max_wait_s`` on the injectable clock (latency bound).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.trainer import TrainedModel
from ..signals.feature_map import FeatureMap, maps_to_arrays
from .registry import GroupKey

#: Bucket key: the model group plus the request feature shape — two
#: requests coalesce iff they share both.
BucketKey = Tuple[GroupKey, Tuple[int, ...]]


@dataclass(frozen=True)
class BatchPolicy:
    """When buckets flush and at what canonical execution shape.

    Attributes
    ----------
    max_batch:
        Flush a bucket as soon as it holds this many requests.
        ``1`` degenerates to sequential serving — the bit-identity
        reference the benchmarks compare against.
    max_wait_s:
        Latency bound: flush a bucket once its oldest request has
        waited this long (on the injected clock), full or not.
    canonical_rows:
        The fixed slab height every forward runs at (last slab
        zero-padded).  Must be identical between the batched server and
        its sequential reference for their outputs to be bit-identical.
    """

    max_batch: int = 32
    max_wait_s: float = 0.05
    canonical_rows: int = 32

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s must be non-negative")
        if self.canonical_rows < 1:
            raise ValueError("canonical_rows must be >= 1")


@dataclass
class PendingRequest:
    """One enqueued inference request."""

    user_id: int
    request_index: int
    fmap: FeatureMap
    enqueued_at: float  # injected-clock time at submit
    wall_enqueued: Optional[float] = None  # wall_timer() at submit, if any
    shed: bool = False  # admission routed this to the population fallback
    shed_depth: int = 0  # queue depth that triggered the shed


@dataclass
class FlushResult:
    """One flushed bucket: per-request logits plus batch accounting."""

    key: BucketKey
    completed: List[Tuple[PendingRequest, np.ndarray]] = field(
        default_factory=list
    )
    batch_size: int = 0


class MicroBatcher:
    """Shape-bucketed request coalescing over an injectable clock."""

    def __init__(self, policy: BatchPolicy, clock):
        self.policy = policy
        self.clock = clock
        self._buckets: Dict[BucketKey, List[PendingRequest]] = {}
        self.batches_flushed = 0
        self.rows_flushed = 0

    # -- enqueue -----------------------------------------------------------
    def submit(self, group: GroupKey, request: PendingRequest) -> BucketKey:
        """Bucket a request by (group, feature shape); returns its bucket."""
        key = (tuple(group), tuple(request.fmap.values.shape))
        self._buckets.setdefault(key, []).append(request)
        return key

    def depth(self) -> int:
        """Total requests currently pending across all buckets."""
        return sum(len(bucket) for bucket in self._buckets.values())

    def keys(self) -> List[BucketKey]:
        """Non-empty buckets, oldest-created first (dict insertion order)."""
        return list(self._buckets)

    def due_keys(self, now: Optional[float] = None) -> List[BucketKey]:
        """Buckets that must flush now: full, or oldest past max_wait_s."""
        if now is None:
            now = self.clock.now()
        due: List[BucketKey] = []
        for key, bucket in self._buckets.items():
            if len(bucket) >= self.policy.max_batch:
                due.append(key)
            elif bucket and now - bucket[0].enqueued_at >= self.policy.max_wait_s:
                due.append(key)
        return due

    def oldest_wait(self, now: Optional[float] = None) -> float:
        """How long the oldest pending request has waited (0 if empty)."""
        if now is None:
            now = self.clock.now()
        oldest = [
            bucket[0].enqueued_at
            for bucket in self._buckets.values()
            if bucket
        ]
        return max(0.0, now - min(oldest)) if oldest else 0.0

    # -- flush -------------------------------------------------------------
    def pop_batch(self, key: BucketKey) -> List[PendingRequest]:
        """Dequeue up to ``max_batch`` requests from a bucket, FIFO."""
        bucket = self._buckets.get(key)
        if not bucket:
            self._buckets.pop(key, None)
            return []
        batch = bucket[: self.policy.max_batch]
        remaining = bucket[self.policy.max_batch :]
        if remaining:
            self._buckets[key] = remaining
        else:
            del self._buckets[key]
        return batch

    def flush(self, key: BucketKey, model: TrainedModel) -> FlushResult:
        """Run one coalesced forward for a bucket's next batch.

        Normalization (elementwise, hence grouping-invariant) uses the
        group model's own normalizer; the stacked batch then runs on
        canonical ``canonical_rows`` slabs via ``predict_many`` — the
        single sanctioned inference call of the serving layer.
        """
        batch = self.pop_batch(key)
        result = FlushResult(key=key, batch_size=len(batch))
        if not batch:
            return result
        normalized = model.normalizer.transform_all([r.fmap for r in batch])
        x, _ = maps_to_arrays(normalized)
        logits = model.model.predict_many(
            [x], pad_rows=self.policy.canonical_rows
        )[0]
        result.completed = [
            (request, logits[row]) for row, request in enumerate(batch)
        ]
        self.batches_flushed += 1
        self.rows_flushed += len(batch)
        return result
