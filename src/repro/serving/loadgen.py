"""Deterministic fleet load generation on the injectable clock.

Synthesizes thousands of users from a small base corpus (each simulated
user is a seeded perturbation of a real subject's feature maps — cheap,
shape-correct, and physiologically plausible enough to exercise the
cold-start assigner), schedules their arrivals, decision streams, and
fine-tuning events on virtual time, and drives an
:class:`~repro.serving.service.InferenceService` through the schedule.

Everything is a pure function of ``(scenario, base corpus)``: arrival
times, user/subject pairings, perturbations, and fine-tune selections
all come from one seeded generator, and the clock is injected — so two
runs of the same scenario produce byte-identical event schedules, and
(with the same service configuration) byte-identical decision streams.
That is what lets the benchmark pin a golden results fingerprint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import AdmissionError
from ..signals.feature_map import FeatureMap
from .service import InferenceService, ServingResult

#: Event kinds, in the order they tie-break at equal timestamps.
CONNECT = "connect"
SUBMIT = "submit"
PERSONALIZE = "personalize"
_KIND_ORDER = {CONNECT: 0, PERSONALIZE: 1, SUBMIT: 2}


@dataclass(frozen=True)
class LoadScenario:
    """One deterministic fleet workload.

    Attributes
    ----------
    num_users:
        Simulated users; each arrives once and streams decisions.
    seed:
        Master seed for arrivals, pairings, perturbations, selections.
    arrival_span_s:
        Users arrive uniformly over this many virtual seconds.
    decisions_per_user / decision_interval_s:
        Each user submits this many feature maps, one per interval
        after arrival.
    cold_start_maps:
        Unlabeled maps presented at connect for cluster assignment.
    fine_tune_fraction / fine_tune_after / fine_tune_maps:
        This fraction of users personalizes with ``fine_tune_maps``
        labelled maps after their ``fine_tune_after``-th decision.
    perturbation:
        Relative noise scale applied to the base subject's maps when
        synthesizing a user (0 clones the subject exactly).
    name:
        Population scenario the base corpus was drawn from (e.g. a
        :mod:`repro.scenarios` name — see
        :func:`repro.scenarios.base_corpus`).  Folded into the results
        fingerprint so golden digests pinned for one population can
        never silently collide with another's.  Empty (the legacy
        anonymous corpus) leaves digests exactly as before.
    """

    num_users: int = 1000
    seed: int = 0
    arrival_span_s: float = 60.0
    decisions_per_user: int = 4
    decision_interval_s: float = 5.0
    cold_start_maps: int = 2
    fine_tune_fraction: float = 0.0
    fine_tune_after: int = 2
    fine_tune_maps: int = 2
    perturbation: float = 0.05
    name: str = ""

    def __post_init__(self) -> None:
        if self.num_users < 1:
            raise ValueError("num_users must be >= 1")
        if self.arrival_span_s < 0 or self.decision_interval_s <= 0:
            raise ValueError("time parameters must be positive")
        if self.decisions_per_user < 1 or self.cold_start_maps < 1:
            raise ValueError("decisions_per_user/cold_start_maps must be >= 1")
        if not 0.0 <= self.fine_tune_fraction <= 1.0:
            raise ValueError("fine_tune_fraction must be in [0, 1]")
        if not 0 <= self.fine_tune_after <= self.decisions_per_user:
            raise ValueError(
                "fine_tune_after must be within decisions_per_user"
            )


@dataclass(frozen=True)
class LoadEvent:
    """One scheduled action: ``(time, user, kind, payload maps)``."""

    time: float
    user_id: int
    kind: str
    maps: Tuple[FeatureMap, ...] = ()


def _perturbed(
    fmap: FeatureMap, rng: np.random.Generator, scale: float, user_id: int
) -> FeatureMap:
    """A noisy copy of a base map, stamped with the synthetic user's id."""
    values = fmap.values
    if scale > 0:
        spread = np.std(values) + 1e-9
        values = values + rng.standard_normal(values.shape) * scale * spread
    return FeatureMap(values, label=fmap.label, subject_id=user_id)


def scenario_events(
    scenario: LoadScenario,
    base_maps: Dict[int, Sequence[FeatureMap]],
) -> List[LoadEvent]:
    """The fully materialized, deterministic event schedule.

    Pure function of ``(scenario, base corpus)``; the returned list is
    sorted by ``(time, kind order, user)`` so replaying it is
    unambiguous even at identical timestamps.
    """
    if not base_maps:
        raise ValueError("need a non-empty base corpus to synthesize users")
    rng = np.random.default_rng(scenario.seed)
    subjects = sorted(base_maps)
    events: List[LoadEvent] = []
    arrivals = rng.uniform(0.0, scenario.arrival_span_s, scenario.num_users)
    for user_id in range(scenario.num_users):
        arrival = float(arrivals[user_id])
        base = list(base_maps[subjects[int(rng.integers(len(subjects)))]])
        fine_tunes = rng.random() < scenario.fine_tune_fraction
        picks = rng.integers(
            len(base),
            size=scenario.cold_start_maps
            + scenario.decisions_per_user
            + scenario.fine_tune_maps,
        )
        cursor = 0

        def take(count: int) -> Tuple[FeatureMap, ...]:
            nonlocal cursor
            chosen = picks[cursor : cursor + count]
            cursor += count
            return tuple(
                _perturbed(base[int(i)], rng, scenario.perturbation, user_id)
                for i in chosen
            )

        events.append(
            LoadEvent(
                time=arrival,
                user_id=user_id,
                kind=CONNECT,
                maps=take(scenario.cold_start_maps),
            )
        )
        decision_maps = take(scenario.decisions_per_user)
        for k, fmap in enumerate(decision_maps):
            events.append(
                LoadEvent(
                    time=arrival + (k + 1) * scenario.decision_interval_s,
                    user_id=user_id,
                    kind=SUBMIT,
                    maps=(fmap,),
                )
            )
        tune_maps = take(scenario.fine_tune_maps)
        if fine_tunes and scenario.fine_tune_maps:
            events.append(
                LoadEvent(
                    time=arrival
                    + (scenario.fine_tune_after + 0.5)
                    * scenario.decision_interval_s,
                    user_id=user_id,
                    kind=PERSONALIZE,
                    maps=tune_maps,
                )
            )
    events.sort(key=lambda e: (e.time, _KIND_ORDER[e.kind], e.user_id))
    return events


@dataclass
class LoadReport:
    """Outcome of one driven scenario."""

    results: List[ServingResult] = field(default_factory=list)
    connects: int = 0
    submits: int = 0
    rejections: int = 0
    personalizations: int = 0
    virtual_duration_s: float = 0.0
    scenario: str = ""

    def fingerprint(self) -> str:
        from .service import results_fingerprint

        return results_fingerprint(self.results, scenario=self.scenario or None)

    def latency_percentiles(
        self, percentiles: Sequence[float] = (50.0, 99.0), wall: bool = False
    ) -> Dict[str, float]:
        """p50/p99 (etc.) of per-decision latency, virtual or wall."""
        if wall:
            values = [
                r.wall_latency_s
                for r in self.results
                if r.wall_latency_s is not None
            ]
        else:
            values = [r.latency_s for r in self.results]
        if not values:
            return {f"p{p:g}": 0.0 for p in percentiles}
        return {
            f"p{p:g}": float(np.percentile(values, p)) for p in percentiles
        }

    def shed_count(self) -> int:
        return sum(1 for r in self.results if r.health.used_fallback_model)

    def summary(self) -> Dict:
        return {
            "scenario": self.scenario,
            "decisions": len(self.results),
            "connects": self.connects,
            "submits": self.submits,
            "rejections": self.rejections,
            "personalizations": self.personalizations,
            "shed": self.shed_count(),
            "virtual_duration_s": self.virtual_duration_s,
            "latency_virtual": self.latency_percentiles(),
            "fingerprint": self.fingerprint(),
        }


def run_load(
    service: InferenceService,
    scenario: LoadScenario,
    base_maps: Dict[int, Sequence[FeatureMap]],
    events: Optional[List[LoadEvent]] = None,
) -> LoadReport:
    """Drive a service through a scenario's event schedule.

    The service's (injected) clock is advanced to each event's
    timestamp, the event dispatched, and the batcher pumped — an
    open-loop generator: hard-rejected submits are counted, not
    retried.  Returns the report with every released result.
    """
    if events is None:
        events = scenario_events(scenario, base_maps)
    report = LoadReport(scenario=scenario.name)
    clock = service.clock
    advance = getattr(clock, "advance", None)  # FakeClock virtual time
    start = clock.now()
    already_released = len(service.results)
    for event in events:
        gap = (start + event.time) - clock.now()
        if gap > 0 and advance is not None:
            advance(gap)
        if event.kind == CONNECT:
            service.connect(event.user_id, list(event.maps))
            report.connects += 1
        elif event.kind == SUBMIT:
            report.submits += 1
            try:
                service.submit(event.user_id, event.maps[0])
            except AdmissionError:
                report.rejections += 1
        elif event.kind == PERSONALIZE:
            service.personalize(event.user_id, list(event.maps))
            report.personalizations += 1
        else:  # pragma: no cover - schedule construction controls kinds
            raise ValueError(f"unknown event kind {event.kind!r}")
        service.pump()
    service.drain()
    # The service's own log is the source of truth: personalize()
    # quiesces the batcher internally, and those drained results never
    # pass through pump()'s return value.
    report.results = list(service.results[already_released:])
    report.virtual_duration_s = clock.now() - start
    return report
