"""The serving facade: sessions + registry + batcher + admission.

:class:`InferenceService` wires a fitted
:class:`~repro.core.pipeline.CLEARSystem` into an online server:
``connect`` runs the unsupervised cold-start assignment, ``submit``
enqueues a feature map through admission control, ``pump`` flushes the
micro-batcher's due buckets, and ``personalize`` fine-tunes a private
checkpoint and re-routes the user to it.

Results are released through a per-user reorder buffer in request
order, because temporal smoothing is order-dependent — this is what
makes a fully coalesced server's decision stream **bit-identical** to
a sequential one (``sequential=True``), whatever order buckets flushed
in.  :func:`results_fingerprint` condenses a result set into one
SHA-256 hex digest over the order-independent decision content, the
quantity benchmarks and golden tests pin.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from ..core.pipeline import CLEARSystem
from ..core.trainer import TrainedModel
from ..errors import AdmissionError, ServingError
from ..resilience.degradation import (
    DEGRADED,
    HEALTHY,
    HealthStatus,
    overload_shed_status,
    safe_probabilities,
)
from ..resilience.retry import Clock, MonotonicClock
from ..signals.feature_map import FeatureMap
from .admission import REJECT, SHED, AdmissionController, AdmissionPolicy
from .batching import BatchPolicy, BucketKey, MicroBatcher, PendingRequest
from .registry import ClusterModelRegistry, GroupKey
from .sessions import ShardedSessions, UserSession

POPULATION_GROUP: GroupKey = ("population",)


@dataclass
class ServingResult:
    """One released decision with its health and serving accounting."""

    user_id: int
    request_index: int
    raw: int
    smoothed: int
    probabilities: np.ndarray
    health: HealthStatus
    batch_size: int = 1
    latency_s: float = 0.0  # injected-clock submit-to-release latency
    wall_latency_s: Optional[float] = None  # wall_timer latency, if timed


def results_fingerprint(
    results: Sequence[ServingResult], scenario: Optional[str] = None
) -> str:
    """SHA-256 over the order-independent decision content.

    Covers ``(user, request, raw, smoothed, probabilities, fallback?)``
    sorted by ``(user, request)`` — so two servers that made the same
    decisions fingerprint identically no matter how their batches were
    coalesced or interleaved.  Batch sizes and latencies are serving
    accounting, not decisions, and are deliberately excluded.

    ``scenario`` domain-separates the digest: golden fingerprints pinned
    for one named population can never silently collide with another
    scenario's decision stream.  ``None`` (the legacy anonymous corpus)
    hashes exactly as before, so existing pinned digests are unchanged.
    """
    h = hashlib.sha256()
    if scenario:
        h.update(b"scenario\x00")
        h.update(str(scenario).encode())
        h.update(b"\x00")
    ordered = sorted(
        results, key=lambda r: (int(r.user_id), int(r.request_index))
    )
    for r in ordered:
        h.update(f"{int(r.user_id)}:{int(r.request_index)}:".encode())
        h.update(f"{int(r.raw)}:{int(r.smoothed)}:".encode())
        h.update(b"f" if r.health.used_fallback_model else b"h")
        probs = np.ascontiguousarray(
            np.asarray(r.probabilities, dtype=np.float64)
        )
        h.update(probs.tobytes())
    return h.hexdigest()


class InferenceService:
    """Fleet-scale micro-batched online inference over a fitted system.

    Parameters
    ----------
    system:
        The fitted CLEAR deployment (clusters, assigner, checkpoints).
    batch_policy / admission:
        Micro-batching and overload policies (defaults are sensible).
    clock:
        Injectable time source; benchmarks and tests pass a
        :class:`~repro.resilience.retry.FakeClock` so arrival schedules
        are virtual and deterministic.
    cache_dir:
        Optional runtime-cache root; enables warm-pool eviction of
        registered models into the serving cache namespace.
    registry_capacity:
        Warm-pool size.  Defaults to all cluster models plus a margin
        for personalized checkpoints.
    backend:
        Compute backend name for file-backed checkpoint loads in the
        registry (None = each checkpoint's saved backend).
    sequential:
        Force ``max_batch=1``: every request runs in its own flush on
        the same canonical slabs.  This is the bit-identity reference
        the micro-batched mode is compared against.
    wall_timer:
        Optional zero-argument callable returning wall seconds (pass
        ``time.perf_counter`` from benchmark code) used *only* to
        annotate results with wall latencies; library code itself
        stays wall-clock-free.
    """

    def __init__(
        self,
        system: CLEARSystem,
        batch_policy: Optional[BatchPolicy] = None,
        admission: Optional[AdmissionPolicy] = None,
        clock: Optional[Clock] = None,
        registry: Optional[ClusterModelRegistry] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        registry_capacity: Optional[int] = None,
        backend: Optional[str] = None,
        num_shards: int = 8,
        smoothing: int = 3,
        sequential: bool = False,
        wall_timer: Optional[Callable[[], float]] = None,
    ):
        self.system = system
        self.clock = clock if clock is not None else MonotonicClock()
        policy = batch_policy or BatchPolicy()
        if sequential:
            policy = replace(policy, max_batch=1)
        self.sequential = bool(sequential)
        self.batcher = MicroBatcher(policy, self.clock)
        self.admission = AdmissionController(admission)
        self.sessions = ShardedSessions(num_shards)
        self.smoothing = int(smoothing)
        self.wall_timer = wall_timer
        if registry is None:
            if registry_capacity is None:
                registry_capacity = len(system.cluster_models) + 8
            registry = ClusterModelRegistry(
                cache_dir=cache_dir,
                capacity=registry_capacity,
                backend=backend,
            )
            for cluster in sorted(system.cluster_models):
                registry.register(
                    ("cluster", cluster), system.cluster_models[cluster]
                )
            registry.set_population(system.population_model())
        self.registry = registry
        self.results: List[ServingResult] = []
        self.personalizations = 0

    # -- lifecycle ---------------------------------------------------------
    def connect(
        self, user_id: int, cold_maps: Sequence[FeatureMap]
    ) -> UserSession:
        """Cold-start a new user: assign a cluster, open a session."""
        self.admission.admit_session(len(self.sessions))
        assignment = self.system.assign_new_user(cold_maps)
        session = UserSession(
            user_id=user_id,
            cluster=assignment.cluster,
            margin=assignment.margin(),
            smoothing=self.smoothing,
        )
        self.sessions.add(session)
        return session

    def personalize(
        self,
        user_id: int,
        labeled_maps: Sequence[FeatureMap],
        seed: Optional[int] = None,
    ) -> TrainedModel:
        """Fine-tune a private checkpoint and re-route the user to it.

        Pending work is drained first so every request the user
        submitted *before* personalizing is still answered by the
        cluster checkpoint — the swap happens at a quiesced boundary,
        keeping the decision stream independent of flush timing.
        """
        self.drain()
        session = self.sessions.get(user_id)
        if seed is None:
            seed = self.system.config.seed + int(user_id)
        tuned = self.system.personalize(
            labeled_maps, cluster=session.cluster, seed=seed
        )
        self.registry.register(("user", session.user_id), tuned)
        session.mark_personalized()
        self.personalizations += 1
        return tuned

    # -- request path ------------------------------------------------------
    def submit(self, user_id: int, fmap: FeatureMap) -> int:
        """Enqueue one feature map through admission control.

        Returns the per-user request index.  Overload below the hard
        limit sheds the request to the population fallback (recorded in
        its HealthStatus); past the hard limit raises
        :class:`~repro.errors.AdmissionError`.
        """
        session = self.sessions.get(user_id)
        depth = self.batcher.depth()
        decision = self.admission.admit(depth)
        if decision == REJECT:
            raise AdmissionError(
                f"rejecting request from user {user_id}: {depth} pending "
                f">= hard limit {self.admission.policy.hard_limit}",
                queue_depth=depth,
                limit=self.admission.policy.hard_limit,
            )
        shed = decision == SHED
        request = PendingRequest(
            user_id=session.user_id,
            request_index=session.next_request_index(),
            fmap=fmap,
            enqueued_at=self.clock.now(),
            wall_enqueued=self.wall_timer() if self.wall_timer else None,
            shed=shed,
            shed_depth=depth,
        )
        group = POPULATION_GROUP if shed else session.group_key()
        self.batcher.submit(group, request)
        return request.request_index

    def pump(self) -> List[ServingResult]:
        """Flush every due bucket; returns the newly released results."""
        now = self.clock.now()
        released: List[ServingResult] = []
        for key in self.batcher.due_keys(now):
            released.extend(self._flush(key))
        return released

    def drain(self) -> List[ServingResult]:
        """Flush everything pending, due or not (shutdown / quiesce)."""
        released: List[ServingResult] = []
        while self.batcher.depth():
            for key in self.batcher.keys():
                released.extend(self._flush(key))
        return released

    # -- internals ---------------------------------------------------------
    def _model_for_group(self, group: GroupKey) -> TrainedModel:
        if tuple(group) == POPULATION_GROUP:
            return self.registry.population()
        return self.registry.model_for(group)

    def _flush(self, key: BucketKey) -> List[ServingResult]:
        group, _ = key
        flush = self.batcher.flush(key, self._model_for_group(group))
        touched: List[UserSession] = []
        for request, logits in flush.completed:
            session = self.sessions.get(request.user_id)
            session.hold(
                request.request_index, (request, logits, flush.batch_size)
            )
            touched.append(session)
        released: List[ServingResult] = []
        for session in touched:
            for _, payload in session.release_ready():
                released.append(self._emit(session, *payload))
        self.results.extend(released)
        return released

    def _emit(
        self,
        session: UserSession,
        request: PendingRequest,
        logits: np.ndarray,
        batch_size: int,
    ) -> ServingResult:
        probs_rows, trustworthy = safe_probabilities(
            np.asarray(logits, dtype=np.float64).reshape(1, -1)
        )
        probs = probs_rows[0]
        raw = int(np.argmax(probs))
        smoothed = session.smooth(raw)
        if request.shed:
            health = overload_shed_status(
                request.shed_depth, self.admission.policy.max_pending
            )
        elif not trustworthy:
            health = HealthStatus(
                state=DEGRADED,
                assignment_margin=session.margin,
                checkpoint_ok=False,
                reasons=("non_finite_model_output",),
            )
        else:
            health = HealthStatus(
                state=HEALTHY, assignment_margin=session.margin
            )
        wall_latency = None
        if self.wall_timer is not None and request.wall_enqueued is not None:
            wall_latency = self.wall_timer() - request.wall_enqueued
        return ServingResult(
            user_id=session.user_id,
            request_index=request.request_index,
            raw=raw,
            smoothed=smoothed,
            probabilities=probs,
            health=health,
            batch_size=batch_size,
            latency_s=self.clock.now() - request.enqueued_at,
            wall_latency_s=wall_latency,
        )

    # -- introspection -----------------------------------------------------
    def metrics(self) -> Dict:
        """Serving counters: admission, batching, registry, sessions."""
        sizes = [r.batch_size for r in self.results]
        return {
            "decisions": len(self.results),
            "sessions": len(self.sessions),
            "personalizations": self.personalizations,
            "pending": self.batcher.depth(),
            "batches_flushed": self.batcher.batches_flushed,
            "rows_flushed": self.batcher.rows_flushed,
            "mean_batch_size": float(np.mean(sizes)) if sizes else 0.0,
            "admission": self.admission.to_dict(),
            "registry": self.registry.stats.to_dict(),
            "shard_sizes": self.sessions.shard_sizes(),
        }
