"""Per-user serving sessions, sharded by a deterministic user hash.

A session is the server-side mirror of one wearable: which cluster the
cold-start assignment picked (and with what confidence margin), whether
the user has been personalized yet, the rolling feature-map state when
raw windows stream in, and the temporal-smoothing vote that turns raw
predictions into stable decisions.  Sessions are grouped into shards by
a *seed-independent* SHA-256 hash of the user id, so any fleet node —
or any rerun of a benchmark — places every user identically.
"""

from __future__ import annotations

import hashlib
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..edge.streaming import RollingWindowMap, StreamingFeatureExtractor
from ..errors import ServingError
from ..signals.feature_map import FeatureMap
from .registry import GroupKey


class UserSession:
    """Server-side state for one connected user.

    ``group_key()`` is the micro-batcher's coalescing key: before
    personalization every user of a cluster shares ``("cluster", c)``
    (their requests batch together against the shared checkpoint);
    after :meth:`mark_personalized` the user gets a private
    ``("user", uid)`` group served by their fine-tuned model.
    """

    def __init__(
        self,
        user_id: int,
        cluster: int,
        margin: float,
        smoothing: int = 3,
        windows_per_map: Optional[int] = None,
        extractor: Optional[StreamingFeatureExtractor] = None,
    ):
        if smoothing < 1:
            raise ValueError("smoothing must be >= 1")
        self.user_id = int(user_id)
        self.cluster = int(cluster)
        self.margin = float(margin)
        self.personalized = False
        self.extractor = extractor
        self.rolling = (
            RollingWindowMap(windows_per_map)
            if windows_per_map is not None
            else None
        )
        self._recent_raw: Deque[int] = deque(maxlen=int(smoothing))
        self._issued = 0  # request indices handed out
        self._next_emit = 0  # next request index the reorder buffer releases
        self._held: Dict[int, Tuple] = {}

    # -- request bookkeeping ----------------------------------------------
    def next_request_index(self) -> int:
        index = self._issued
        self._issued += 1
        return index

    def group_key(self) -> GroupKey:
        if self.personalized:
            return ("user", self.user_id)
        return ("cluster", self.cluster)

    def mark_personalized(self) -> None:
        self.personalized = True

    # -- decision smoothing (mirrors OnlineDetector._smooth) ---------------
    def smooth(self, raw: int) -> int:
        """Majority vote over the last ``smoothing`` raw predictions."""
        self._recent_raw.append(int(raw))
        votes = np.bincount(list(self._recent_raw), minlength=2)
        return int(np.argmax(votes))

    # -- reorder buffer ----------------------------------------------------
    # Smoothing is order-dependent, so results must be released in
    # request order even when a user's requests finish out of order
    # (e.g. one shed to the population bucket while the next rode the
    # cluster bucket).  Completed work parks here until contiguous.
    def hold(self, request_index: int, payload: Tuple) -> None:
        if request_index in self._held or request_index < self._next_emit:
            raise ServingError(
                f"user {self.user_id} request {request_index} completed twice"
            )
        self._held[int(request_index)] = payload

    def release_ready(self) -> List[Tuple[int, Tuple]]:
        """Pop ``(request_index, payload)`` pairs now contiguous, in order."""
        ready: List[Tuple[int, Tuple]] = []
        while self._next_emit in self._held:
            ready.append((self._next_emit, self._held.pop(self._next_emit)))
            self._next_emit += 1
        return ready

    @property
    def pending_results(self) -> int:
        return len(self._held)

    # -- streaming ingestion ----------------------------------------------
    def push_samples(
        self,
        bvp: Sequence[float] = (),
        gsr: Sequence[float] = (),
        skt: Sequence[float] = (),
    ) -> List[FeatureMap]:
        """Feed raw samples; returns any rolling maps that became ready.

        Only available when the session was built with an extractor and
        ``windows_per_map`` — fleet benchmarks that synthesize feature
        maps directly skip this layer entirely.
        """
        if self.extractor is None or self.rolling is None:
            raise ServingError(
                f"user {self.user_id} session has no streaming extractor; "
                f"submit feature maps directly"
            )
        maps: List[FeatureMap] = []
        for event in self.extractor.push(bvp=bvp, gsr=gsr, skt=skt):
            if self.rolling.push(event.features):
                maps.append(self.rolling.current_map())
        return maps


def shard_for(user_id: int, num_shards: int) -> int:
    """Deterministic user-to-shard assignment.

    SHA-256 rather than ``hash()``: python's string hash is randomized
    per process (PYTHONHASHSEED), which would scatter users differently
    on every run and break run-to-run comparability of shard metrics.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    digest = hashlib.sha256(str(int(user_id)).encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big") % int(num_shards)


class ShardedSessions:
    """All connected sessions, bucketed into deterministic shards."""

    def __init__(self, num_shards: int = 8):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = int(num_shards)
        self._shards: List[Dict[int, UserSession]] = [
            {} for _ in range(self.num_shards)
        ]

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, user_id: int) -> bool:
        return int(user_id) in self._shards[shard_for(user_id, self.num_shards)]

    def add(self, session: UserSession) -> int:
        """Place a session; returns its shard.  Duplicate connect is typed."""
        shard = shard_for(session.user_id, self.num_shards)
        if session.user_id in self._shards[shard]:
            raise ServingError(
                f"user {session.user_id} is already connected"
            )
        self._shards[shard][session.user_id] = session
        return shard

    def get(self, user_id: int) -> UserSession:
        shard = shard_for(user_id, self.num_shards)
        session = self._shards[shard].get(int(user_id))
        if session is None:
            raise ServingError(
                f"no session for user {user_id}; call connect() first"
            )
        return session

    def shard_sizes(self) -> List[int]:
        return [len(shard) for shard in self._shards]

    def all_sessions(self) -> List[UserSession]:
        """Every session, in (shard, user id) order — deterministic."""
        out: List[UserSession] = []
        for shard in self._shards:
            out.extend(shard[uid] for uid in sorted(shard))
        return out
