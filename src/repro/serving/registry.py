"""Warm model registry: LRU-bounded pool with cache/file rehydration.

A fleet server cannot hold every personalized checkpoint in memory, but
reloading a model on every request would erase the point of serving.
The registry keeps an LRU-bounded *warm pool* of loaded
:class:`~repro.core.trainer.TrainedModel` entries keyed by group —
``("cluster", c)`` for shared cluster checkpoints, ``("user", uid)``
for personalized ones — and spills evicted entries into the
content-addressed serving cache namespace (or reloads file-backed
checkpoints), so eviction is a latency event, never a correctness one.

The population-average fallback model is *pinned*: admission-control
shedding routes overload traffic to it, so it must never be evicted.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Hashable, List, Optional, Tuple, Union

from ..core.trainer import TrainedModel
from ..errors import ServingError

#: Model group key: ``("cluster", c)``, ``("user", uid)``, ``("population",)``.
GroupKey = Tuple


@dataclass
class RegistryStats:
    """Warm-pool traffic counters for one registry."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    rehydrations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> Dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "rehydrations": self.rehydrations,
            "hit_rate": self.hit_rate,
        }


class WarmModelPool:
    """LRU-bounded mapping of group key to loaded model.

    Pure bookkeeping: eviction policy lives here, rehydration policy in
    :class:`ClusterModelRegistry` (which must ensure a durable source
    exists *before* letting an entry fall off the end).
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[GroupKey, TrainedModel]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: GroupKey) -> bool:
        return key in self._entries

    def keys(self) -> List[GroupKey]:
        """Keys from least- to most-recently used."""
        return list(self._entries)

    def peek_lru(self) -> Optional[GroupKey]:
        """The key next in line for eviction (no recency update)."""
        return next(iter(self._entries), None)

    def get(self, key: GroupKey) -> Optional[TrainedModel]:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key: GroupKey, model: TrainedModel) -> List[GroupKey]:
        """Insert (or refresh) an entry; returns the evicted keys."""
        self._entries[key] = model
        self._entries.move_to_end(key)
        evicted: List[GroupKey] = []
        while len(self._entries) > self.capacity:
            victim, _ = self._entries.popitem(last=False)
            evicted.append(victim)
        return evicted


class ClusterModelRegistry:
    """Group-keyed model registry with a warm pool and durable sources.

    Parameters
    ----------
    cache_dir:
        Root of the content-addressed runtime cache.  When given,
        registered models are pickled into the ``serving_models``
        namespace so warm-pool eviction is safe; without it, the pool
        refuses to evict an in-memory-only entry (typed
        :class:`~repro.errors.ServingError`) rather than silently
        dropping a model.
    capacity:
        Warm-pool size (the population fallback is pinned outside it).
    backend:
        Compute backend name for *file-backed* checkpoint loads.
        ``None`` defers to the backend recorded in each checkpoint
        (see :func:`repro.nn.checkpoint.load_model`); pass e.g.
        ``"optimized"`` to override the whole fleet explicitly.
    """

    def __init__(
        self,
        cache_dir: Optional[Union[str, Path]] = None,
        capacity: int = 8,
        backend: Optional[str] = None,
    ):
        self.backend = backend
        self._pool = WarmModelPool(capacity)
        self._cache = None
        if cache_dir is not None:
            from ..orchestration.context import open_serving_model_cache

            self._cache = open_serving_model_cache(cache_dir)
        # key -> ("cache", content_key) | ("file", path, normalizer)
        self._sources: Dict[GroupKey, Tuple] = {}
        self._population: Optional[TrainedModel] = None
        self.stats = RegistryStats()

    # -- registration ------------------------------------------------------
    def register(self, key: GroupKey, trained: TrainedModel) -> None:
        """Add a loaded model to the warm pool (spilling to cache if set)."""
        key = tuple(key)
        if self._cache is not None:
            content_key = self._cache.key("serving_model.v1", list(key))
            self._cache.store_object(content_key, trained)
            self._sources[key] = ("cache", content_key)
        self._admit(key, trained)

    def register_checkpoint(
        self,
        key: GroupKey,
        path: Union[str, Path],
        normalizer,
    ) -> None:
        """Register a file-backed checkpoint, loaded lazily on first use.

        The checkpoint file itself is the durable source, so these
        entries are always safely evictable.  The model loads on the
        backend recorded in the checkpoint unless the registry was
        built with an explicit ``backend`` override.
        """
        self._sources[tuple(key)] = ("file", str(path), normalizer)

    def set_population(self, trained: TrainedModel) -> None:
        """Pin the population-average fallback (never pooled, never evicted)."""
        self._population = trained

    def population(self) -> TrainedModel:
        if self._population is None:
            raise ServingError(
                "no population fallback model registered; call "
                "set_population() before serving under load shedding"
            )
        return self._population

    # -- lookup ------------------------------------------------------------
    def model_for(self, key: GroupKey) -> TrainedModel:
        """The warm model for ``key``, rehydrating on a pool miss."""
        key = tuple(key)
        entry = self._pool.get(key)
        if entry is not None:
            self.stats.hits += 1
            return entry
        source = self._sources.get(key)
        if source is None:
            raise ServingError(f"no model registered for group {key!r}")
        self.stats.misses += 1
        entry = self._rehydrate(key, source)
        self.stats.rehydrations += 1
        self._admit(key, entry)
        return entry

    def registered(self, key: GroupKey) -> bool:
        key = tuple(key)
        return key in self._pool or key in self._sources

    def warm_keys(self) -> List[GroupKey]:
        return self._pool.keys()

    # -- internals ---------------------------------------------------------
    def _rehydrate(self, key: GroupKey, source: Tuple) -> TrainedModel:
        if source[0] == "cache":
            obj = self._cache.load_object(source[1])
            if obj is None:
                raise ServingError(
                    f"serving cache entry for group {key!r} has vanished; "
                    f"re-register the model"
                )
            return obj
        _, path, normalizer = source
        from ..nn.checkpoint import load_model

        return TrainedModel(
            model=load_model(path, backend=self.backend),
            normalizer=normalizer,
        )

    def _admit(self, key: GroupKey, entry: TrainedModel) -> None:
        # Refuse to evict a model that has no durable source — losing a
        # trained checkpoint to LRU pressure would be a silent data
        # loss, the opposite of a latency tradeoff.
        if len(self._pool) >= self._pool.capacity and key not in self._pool:
            victim = self._pool.peek_lru()
            if victim not in self._sources:
                raise ServingError(
                    f"warm pool is full (capacity {self._pool.capacity}) and "
                    f"the LRU entry {victim!r} has no cache/file source to "
                    f"evict into; raise capacity or construct the registry "
                    f"with a cache_dir"
                )
        self.stats.evictions += len(self._pool.put(key, entry))
