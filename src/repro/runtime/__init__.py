"""repro.runtime: deterministic parallel execution + content-addressed caching.

The repo's horizontal-scaling layer.  Two primitives:

* :class:`Executor` (:class:`SerialExecutor` /
  :class:`ParallelExecutor`) — fans independent work units (LOSO
  folds, per-cluster pre-training, k-means restarts, per-subject
  feature extraction) across processes with results **bit-identical**
  to serial execution, because every unit carries its own
  ``SeedSequence``-spawned RNG seed.
* :class:`ContentCache` — SHA-256 content-addressed on-disk cache for
  extracted feature maps and trained fold checkpoints, with typed
  :class:`~repro.errors.CacheError` failures and hit/miss counters
  surfaced on results objects via :class:`RuntimeStats`.

Lint rule RPR008 keeps all ``multiprocessing`` / ``concurrent.futures``
imports inside this package, so every fan-out in the codebase is
forced through the executor abstraction.
"""

from .cache import (
    CacheStats,
    ContentCache,
    checkpoint_cache,
    content_key,
    feature_map_cache,
)
from .executor import (
    Executor,
    ParallelExecutor,
    RuntimeStats,
    SerialExecutor,
    make_executor,
    resolve_mp_context,
    spawn_seeds,
)
from .supervision import (
    FAILURE_CRASH,
    FAILURE_EXCEPTION,
    FAILURE_TIMEOUT,
    SupervisedExecutor,
    SupervisedOutcome,
    SupervisionPolicy,
    UnitFailure,
    supervised_map,
)

__all__ = [
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "make_executor",
    "resolve_mp_context",
    "spawn_seeds",
    "RuntimeStats",
    "SupervisedExecutor",
    "SupervisionPolicy",
    "SupervisedOutcome",
    "UnitFailure",
    "supervised_map",
    "FAILURE_EXCEPTION",
    "FAILURE_CRASH",
    "FAILURE_TIMEOUT",
    "ContentCache",
    "CacheStats",
    "content_key",
    "feature_map_cache",
    "checkpoint_cache",
]
