"""Content-addressed on-disk cache for feature maps and fold checkpoints.

Entries are keyed by SHA-256 over the *content* that produced them —
raw signal bytes plus the extraction configuration for feature maps,
training-map bytes plus model/training config for checkpoints — so a
warm cache is hit if and only if the inputs are byte-identical and the
config unchanged.  Changing any knob (window length, sampling rate,
epochs, seed) changes the key and transparently invalidates the entry.

Writes are atomic (temp file + ``os.replace``) so concurrent workers
forked by the :class:`~repro.runtime.executor.ParallelExecutor` can
share one cache directory without torn entries; whichever process
finishes first wins and the others' identical bytes replace it
harmlessly.

Corrupt or unreadable entries raise the typed
:class:`~repro.errors.CacheError` naming the offending file — never a
bare ``zipfile.BadZipFile`` or ``pickle.UnpicklingError``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

from ..errors import CacheError


@dataclass
class CacheStats:
    """Hit/miss/write counters for one cache handle."""

    hits: int = 0
    misses: int = 0
    writes: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def _update_hash(h: "hashlib._Hash", obj: Any) -> None:
    """Feed one python/numpy object into the hash, canonically.

    Every value is prefixed with a type tag so e.g. the int ``1`` and
    the string ``"1"`` cannot collide, and containers hash their
    structure as well as their leaves.

    Objects may define ``__repro_content__()`` returning their *stable*
    content (volatile fields such as wall times excluded); the hook
    takes precedence over structural traversal so provenance digests
    stay invariant across warm/cold cache and serial/parallel runs.
    """
    hook = getattr(obj, "__repro_content__", None)
    if callable(hook) and not isinstance(obj, type):
        h.update(b"rc:" + type(obj).__name__.encode())
        _update_hash(h, hook())
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        h.update(b"nd:")
        h.update(str(arr.dtype).encode())
        h.update(repr(arr.shape).encode())
        h.update(arr.tobytes())
    elif isinstance(obj, bytes):
        h.update(b"by:")
        h.update(obj)
    elif isinstance(obj, str):
        h.update(b"st:")
        h.update(obj.encode("utf-8"))
    elif isinstance(obj, bool):
        h.update(b"bo:" + (b"1" if obj else b"0"))
    elif isinstance(obj, (int, np.integer)):
        h.update(b"in:" + repr(int(obj)).encode())
    elif isinstance(obj, (float, np.floating)):
        h.update(b"fl:" + np.float64(obj).tobytes())
    elif obj is None:
        h.update(b"no:")
    elif isinstance(obj, (list, tuple)):
        h.update(b"sq:" + repr(len(obj)).encode())
        for item in obj:
            _update_hash(h, item)
    elif isinstance(obj, dict):
        h.update(b"ma:" + repr(len(obj)).encode())
        for key in sorted(obj, key=repr):
            _update_hash(h, key)
            _update_hash(h, obj[key])
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        h.update(b"dc:" + type(obj).__name__.encode())
        for f in dataclasses.fields(obj):
            _update_hash(h, f.name)
            _update_hash(h, getattr(obj, f.name))
    else:
        raise TypeError(
            f"cannot build a content-addressed key from {type(obj).__name__}"
        )


def content_key(*parts: Any) -> str:
    """SHA-256 hex digest over the canonical encoding of ``parts``."""
    h = hashlib.sha256()
    for part in parts:
        _update_hash(h, part)
    return h.hexdigest()


class ContentCache:
    """One cache directory holding ``<sha256>.<kind>`` entries.

    ``namespace`` partitions entry families (``feature_maps``,
    ``checkpoints``) into subdirectories so a selective wipe is a
    single ``rm -r``.
    """

    def __init__(
        self, root: Union[str, Path], namespace: str = ""
    ) -> None:
        self.root = Path(root) / namespace if namespace else Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise CacheError(
                f"cannot create cache directory {self.root}: {exc}"
            ) from exc
        self.stats = CacheStats()

    # -- key construction --------------------------------------------------
    def key(self, *parts: Any) -> str:
        return content_key(*parts)

    def _path(self, key: str, kind: str) -> Path:
        return self.root / f"{key}.{kind}"

    def _atomic_write(self, path: Path, payload: bytes) -> None:
        try:
            fd, tmp = tempfile.mkstemp(
                dir=str(self.root), prefix=".tmp-", suffix=path.suffix
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(payload)
                os.replace(tmp, path)
            except BaseException:
                if os.path.exists(tmp):
                    os.unlink(tmp)
                raise
        except OSError as exc:
            raise CacheError(f"cannot write cache entry {path}: {exc}") from exc
        self.stats.writes += 1

    # -- array entries (feature maps) --------------------------------------
    def store_arrays(self, key: str, **arrays: np.ndarray) -> Path:
        """Persist named arrays under ``key`` as one ``.npz`` entry."""
        buffer = io.BytesIO()
        np.savez(buffer, **arrays)
        path = self._path(key, "npz")
        self._atomic_write(path, buffer.getvalue())
        return path

    def load_arrays(self, key: str) -> Optional[Dict[str, np.ndarray]]:
        """Arrays stored under ``key``, or None on a miss (counted)."""
        path = self._path(key, "npz")
        if not path.exists():
            self.stats.misses += 1
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                out = {name: data[name] for name in data.files}
        except Exception as exc:
            raise CacheError(
                f"corrupt cache entry {path} (delete it to re-extract): {exc}"
            ) from exc
        self.stats.hits += 1
        return out

    # -- object entries (trained-fold checkpoints) -------------------------
    def store_object(self, key: str, obj: Any) -> Path:
        """Persist an arbitrary picklable object (e.g. a TrainedModel)."""
        try:
            payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise CacheError(
                f"cannot serialize object for cache key {key[:12]}…: {exc}"
            ) from exc
        path = self._path(key, "pkl")
        self._atomic_write(path, payload)
        return path

    def load_object(self, key: str) -> Optional[Any]:
        """Object stored under ``key``, or None on a miss (counted)."""
        path = self._path(key, "pkl")
        if not path.exists():
            self.stats.misses += 1
            return None
        try:
            with open(path, "rb") as fh:
                obj = pickle.load(fh)
        except Exception as exc:
            raise CacheError(
                f"corrupt cache entry {path} (delete it to re-train): {exc}"
            ) from exc
        self.stats.hits += 1
        return obj

    # -- maintenance -------------------------------------------------------
    def __len__(self) -> int:
        return sum(
            1
            for p in self.root.iterdir()
            if p.is_file() and not p.name.startswith(".tmp-")
        )

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in list(self.root.iterdir()):
            if path.is_file():
                path.unlink()
                removed += 1
        return removed


def feature_map_cache(root: Union[str, Path]) -> ContentCache:
    """The feature-map namespace of a cache directory."""
    return ContentCache(root, namespace="feature_maps")


def checkpoint_cache(root: Union[str, Path]) -> ContentCache:
    """The trained-fold-checkpoint namespace of a cache directory."""
    return ContentCache(root, namespace="checkpoints")


def serving_model_cache(root: Union[str, Path]) -> ContentCache:
    """The serving warm-pool namespace of a cache directory.

    Holds the pickled :class:`~repro.core.trainer.TrainedModel` entries
    the serving registry evicts from its LRU warm pool and rehydrates
    on demand; a separate namespace so fleet-serving churn never mixes
    with (or wipes) the training-pipeline checkpoint entries.
    """
    return ContentCache(root, namespace="serving_models")
