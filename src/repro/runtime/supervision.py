"""Supervised process execution: deadlines, retries, quarantine, survivors.

:class:`~repro.runtime.executor.ParallelExecutor` assumes every work
unit is well-behaved: one poisoned unit (raises), one crashed worker
(``os._exit`` / OOM-kill), or one wedged unit (deadlock) aborts the
whole fan-out with no partial results.  At fleet scale — 100k-subject
sweeps, federated rounds where client dropout is the *norm* — that
contract is wrong.  :class:`SupervisedExecutor` runs each unit attempt
in its **own** child process and supervises it:

* **per-unit deadline** (:class:`SupervisionPolicy.unit_timeout_s`) on
  an injectable :class:`~repro.resilience.retry.Clock` — a hung worker
  is detected, SIGKILLed, and its slot replaced with a fresh process,
  so one wedged unit can never brown-out the pool;
* **unit-level retry** reusing
  :class:`~repro.resilience.retry.RetryPolicy` (attempts, exponential
  backoff, optional seeded jitter).  Work units carry their own
  pre-spawned ``SeedSequence`` material, so a retried attempt re-runs
  the *same* RNG stream — results after a transient failure are
  bit-identical to an unfailed run;
* **quarantine**: a unit that exhausts its attempts becomes a typed
  :class:`UnitFailure` instead of an exception in someone else's
  stack, and the sweep keeps going;
* **partial results**: :meth:`SupervisedExecutor.map_supervised`
  always returns a :class:`SupervisedOutcome` — survivors in unit
  order plus a machine-readable failure manifest.  Plain ``map()``
  raises a typed :class:`~repro.errors.SupervisionError` on quarantine
  unless the policy opts into partial mode.

Chaos testing hooks straight in: executor-level
:class:`~repro.resilience.faults.FaultPlan` faults (``UnitRaise`` /
``WorkerCrash`` / ``UnitHang``) are injected at the top of each worker
attempt via ``fault_plan=``, deterministically in (unit, attempt).

Process-per-attempt is deliberately chosen over a shared pool: a
long-lived pool cannot kill one hung member without tearing down its
siblings, while a per-attempt child makes kill-and-replace exact — and
with ``fork`` on Linux the spawn cost is far below the unit cost of
any fold-sized work this layer supervises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..errors import ExecutorError, SupervisionError
from ..resilience.retry import Clock, MonotonicClock, RetryPolicy
from .executor import Executor, resolve_mp_context

#: Failure kinds recorded in a :class:`UnitFailure`.
FAILURE_EXCEPTION = "exception"  # the worker function raised
FAILURE_CRASH = "crash"  # the worker process died without reporting
FAILURE_TIMEOUT = "timeout"  # the unit blew its deadline and was killed

#: How long (s) to wait for a child that already sent its result to exit
#: before escalating to SIGKILL — generous, since a healthy child exits
#: immediately after its final ``send``.
_REAP_GRACE_S = 30.0


@dataclass(frozen=True)
class UnitFailure:
    """One quarantined work unit, machine-readable.

    Attributes
    ----------
    index:
        The unit's position in the submitted work list.
    kind:
        ``"exception"`` (worker raised), ``"crash"`` (process died with
        no result on the wire), or ``"timeout"`` (deadline exceeded,
        worker killed).
    attempts:
        Attempts consumed before quarantine (== the policy budget).
    error_type / message:
        Exception class name + message for ``exception`` failures; the
        exit code / deadline description otherwise.
    """

    index: int
    kind: str
    attempts: int
    error_type: str = ""
    message: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "kind": self.kind,
            "attempts": self.attempts,
            "error_type": self.error_type,
            "message": self.message,
        }


@dataclass(frozen=True)
class SupervisionPolicy:
    """How a supervised fan-out treats misbehaving units.

    Attributes
    ----------
    retry:
        Attempt budget + backoff schedule per unit (a unit is
        quarantined after ``retry.max_attempts`` failed attempts).
        ``retry.jitter`` desynchronizes fleet backoff; it requires an
        explicit ``rng`` on the executor.
    unit_timeout_s:
        Per-unit deadline measured from the attempt's process launch;
        ``None`` disables hang detection.
    partial_results:
        When true, :meth:`SupervisedExecutor.map` returns survivors
        (with ``None`` at quarantined slots) instead of raising
        :class:`~repro.errors.SupervisionError`; the full manifest is
        on :attr:`SupervisedExecutor.last_outcome`.
    """

    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(max_attempts=2, base_delay_s=0.0)
    )
    unit_timeout_s: Optional[float] = None
    partial_results: bool = False

    def __post_init__(self) -> None:
        if self.unit_timeout_s is not None and self.unit_timeout_s <= 0:
            raise ValueError("unit_timeout_s must be positive when set")


@dataclass
class SupervisedOutcome:
    """Survivors plus the failure manifest of one supervised fan-out.

    ``results`` is in unit order with ``None`` placeholders at
    quarantined indices (consult ``failures`` to distinguish a failed
    unit from a unit that legitimately returned ``None``).
    """

    results: List[Any]
    failures: Tuple[UnitFailure, ...] = ()
    attempts: Tuple[int, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.failures

    def failed_indices(self) -> Tuple[int, ...]:
        return tuple(f.index for f in self.failures)

    def survivors(self) -> List[Tuple[int, Any]]:
        """``(index, result)`` pairs of every non-quarantined unit."""
        failed = set(self.failed_indices())
        return [
            (i, r) for i, r in enumerate(self.results) if i not in failed
        ]

    def manifest(self) -> Dict[str, Any]:
        """The machine-readable record a caller can persist or report."""
        return {
            "units": len(self.results),
            "succeeded": len(self.results) - len(self.failures),
            "quarantined": [f.as_dict() for f in self.failures],
            "attempts": list(self.attempts),
        }


def _supervised_worker(conn, fn, item, index, attempt, fault_plan) -> None:
    """Child-process entry: inject faults, run the unit, report once.

    Every outcome is reported on ``conn`` — except a hard crash
    (``os._exit`` / SIGKILL), which the parent detects as EOF with a
    dead process, exactly like a real worker death.
    """
    try:
        if fault_plan is not None:
            fault_plan.apply_to_unit(index, attempt)
        payload = ("ok", fn(item))
    except BaseException as exc:  # report, then die quietly
        payload = ("error", type(exc).__name__, str(exc))
    try:
        conn.send(payload)
    except Exception as exc:  # e.g. unpicklable result object
        conn.send(("error", type(exc).__name__, f"unsendable result: {exc}"))
    finally:
        conn.close()


@dataclass
class _Attempt:
    """One in-flight child process executing one unit attempt."""

    index: int
    attempt: int  # 1-based
    process: Any
    conn: Any
    deadline: Optional[float]  # on the supervisor's clock


class _UnitState:
    """Supervisor-side bookkeeping for one work unit."""

    def __init__(self, index: int, delays: Iterable[float]):
        self.index = index
        self.attempts = 0
        self.eligible_at = 0.0  # clock time before which we must not launch
        self._delays = iter(delays)
        self.last_failure: Optional[UnitFailure] = None

    def next_delay(self) -> Optional[float]:
        """Backoff before the next retry, or None when out of attempts."""
        return next(self._delays, None)


class SupervisedExecutor(Executor):
    """Deadline-supervised, retrying, quarantining process executor.

    Parameters
    ----------
    workers:
        Maximum concurrently running unit attempts (default: CPU count).
    policy:
        The :class:`SupervisionPolicy` (default: 2 attempts, no
        deadline, strict mode).
    clock:
        Injectable time source for deadlines and backoff sleeps.
    rng:
        Explicit generator for seeded backoff jitter (mandatory when
        ``policy.retry.jitter > 0``).
    fault_plan:
        Executor-level :class:`~repro.resilience.faults.FaultPlan`
        injected at the top of every worker attempt (chaos testing).
    mp_context:
        Multiprocessing start method (default ``fork``; see
        :func:`~repro.runtime.executor.resolve_mp_context`).
    """

    name = "supervised"

    def __init__(
        self,
        workers: Optional[int] = None,
        policy: Optional[SupervisionPolicy] = None,
        clock: Optional[Clock] = None,
        rng: Optional[np.random.Generator] = None,
        fault_plan: Any = None,
        mp_context: Optional[str] = None,
    ):
        import os

        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.policy = policy or SupervisionPolicy()
        self.clock = clock or MonotonicClock()
        self.rng = rng
        self.fault_plan = fault_plan
        self.mp_context = mp_context
        if self.policy.retry.jitter > 0.0 and rng is None:
            raise ValueError(
                "a jittered SupervisionPolicy needs an explicit rng "
                "(no OS entropy in library code)"
            )
        self.last_outcome: Optional[SupervisedOutcome] = None

    # -- Executor contract -------------------------------------------------
    def map(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        """Ordered results; behaviour on quarantine follows the policy.

        Strict mode (default) raises
        :class:`~repro.errors.SupervisionError` carrying the failure
        manifest.  ``partial_results`` mode returns survivors with
        ``None`` placeholders; the manifest is on ``last_outcome``.
        """
        outcome = self.map_supervised(fn, items)
        if outcome.failures and not self.policy.partial_results:
            names = ", ".join(
                f"unit {f.index} ({f.kind} after {f.attempts} attempt(s): "
                f"{f.error_type or f.message})"
                for f in outcome.failures
            )
            raise SupervisionError(
                f"{len(outcome.failures)} work unit(s) quarantined: {names}",
                failures=outcome.failures,
            )
        return outcome.results

    # -- the supervisor ----------------------------------------------------
    def map_supervised(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> SupervisedOutcome:
        """Run every unit under supervision; never raises for unit failures."""
        items = list(items)
        n = len(items)
        if n == 0:
            self.last_outcome = SupervisedOutcome(results=[])
            return self.last_outcome

        context = resolve_mp_context(self.mp_context)
        results: List[Any] = [None] * n
        units = [
            _UnitState(i, self.policy.retry.delays(self.rng)) for i in range(n)
        ]
        pending: List[_UnitState] = list(units)  # FIFO launch order
        running: List[_Attempt] = []
        quarantined: Dict[int, UnitFailure] = {}

        def _launch(unit: _UnitState) -> None:
            unit.attempts += 1
            recv, send = context.Pipe(duplex=False)
            process = context.Process(
                target=_supervised_worker,
                args=(
                    send,
                    fn,
                    items[unit.index],
                    unit.index,
                    unit.attempts,
                    self.fault_plan,
                ),
            )
            process.daemon = True
            process.start()
            send.close()  # parent keeps only the read end
            deadline = (
                None
                if self.policy.unit_timeout_s is None
                else self.clock.now() + self.policy.unit_timeout_s
            )
            running.append(
                _Attempt(unit.index, unit.attempts, process, recv, deadline)
            )

        def _reap(attempt: _Attempt) -> None:
            attempt.conn.close()
            attempt.process.join(_REAP_GRACE_S)
            if attempt.process.is_alive():  # pathological: refuse to exit
                attempt.process.kill()
                attempt.process.join()
            running.remove(attempt)

        def _fail(attempt: _Attempt, failure: UnitFailure) -> None:
            unit = units[attempt.index]
            unit.last_failure = failure
            delay = unit.next_delay()
            if delay is None:  # retry budget exhausted -> quarantine
                quarantined[unit.index] = failure
            else:
                unit.eligible_at = self.clock.now() + delay
                pending.append(unit)

        while pending or running:
            now = self.clock.now()
            # Fill free slots with eligible units, in unit order.
            launchable = [
                u
                for u in pending
                if u.eligible_at <= now and u.index not in quarantined
            ]
            while launchable and len(running) < self.workers:
                unit = launchable.pop(0)
                pending.remove(unit)
                _launch(unit)

            if not running:
                # Everything waits on backoff: sleep to the next horizon.
                wake = min(u.eligible_at for u in pending)
                self.clock.sleep(max(0.0, wake - self.clock.now()))
                continue

            # Wait until a worker reports / dies, a deadline expires, or
            # a backed-off unit becomes launchable.
            horizons = [
                a.deadline - now for a in running if a.deadline is not None
            ]
            if pending and len(running) < self.workers:
                horizons.extend(u.eligible_at - now for u in pending)
            timeout = max(0.0, min(horizons)) if horizons else None
            ready = _wait_on([a.conn for a in running], timeout)

            for attempt in list(running):
                if attempt.conn in ready:
                    self._handle_report(attempt, results, _reap, _fail)
                elif (
                    attempt.deadline is not None
                    and self.clock.now() >= attempt.deadline
                ):
                    # Hung worker: SIGKILL and replace the slot.
                    attempt.process.kill()
                    attempt.process.join()
                    _reap(attempt)
                    _fail(
                        attempt,
                        UnitFailure(
                            index=attempt.index,
                            kind=FAILURE_TIMEOUT,
                            attempts=attempt.attempt,
                            message=(
                                f"unit exceeded its "
                                f"{self.policy.unit_timeout_s}s deadline "
                                f"and was killed"
                            ),
                        ),
                    )

        failures = tuple(quarantined[i] for i in sorted(quarantined))
        self.last_outcome = SupervisedOutcome(
            results=results,
            failures=failures,
            attempts=tuple(u.attempts for u in units),
        )
        return self.last_outcome

    def _handle_report(self, attempt, results, reap, fail) -> None:
        """One readable connection: a result, an error, or a dead worker."""
        try:
            message = attempt.conn.recv()
        except (EOFError, OSError):
            # No payload and the pipe is gone: the process hard-died.
            reap(attempt)
            exit_code = attempt.process.exitcode
            fail(
                attempt,
                UnitFailure(
                    index=attempt.index,
                    kind=FAILURE_CRASH,
                    attempts=attempt.attempt,
                    message=f"worker died without a result "
                    f"(exit code {exit_code})",
                ),
            )
            return
        reap(attempt)
        if message[0] == "ok":
            results[attempt.index] = message[1]
        else:
            _, error_type, error_message = message
            fail(
                attempt,
                UnitFailure(
                    index=attempt.index,
                    kind=FAILURE_EXCEPTION,
                    attempts=attempt.attempt,
                    error_type=error_type,
                    message=error_message,
                ),
            )


def _wait_on(connections: List[Any], timeout: Optional[float]) -> List[Any]:
    """``multiprocessing.connection.wait`` behind one seam (testable)."""
    from multiprocessing.connection import wait

    return list(wait(connections, timeout=timeout))


def supervised_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    workers: Optional[int] = None,
    policy: Optional[SupervisionPolicy] = None,
    clock: Optional[Clock] = None,
    rng: Optional[np.random.Generator] = None,
    fault_plan: Any = None,
    mp_context: Optional[str] = None,
) -> SupervisedOutcome:
    """One-shot supervised fan-out returning the full outcome.

    The convenience entry point for sweeps that want survivors + a
    failure manifest without keeping an executor around.
    """
    executor = SupervisedExecutor(
        workers=workers,
        policy=policy,
        clock=clock,
        rng=rng,
        fault_plan=fault_plan,
        mp_context=mp_context,
    )
    return executor.map_supervised(fn, items)
