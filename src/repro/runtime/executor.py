"""Deterministic execution layer: serial and process-parallel executors.

The repo's horizontal-scaling primitive.  Every fan-out in the codebase
— LOSO folds, per-cluster pre-training, k-means restarts, per-subject
feature extraction — goes through an :class:`Executor` so that the same
work list runs serially or across processes with **bit-identical**
results.

Determinism contract
--------------------
A work unit never shares a live ``np.random.Generator`` with its
siblings.  Callers derive one independent seed per unit with
:func:`spawn_seeds` (NumPy ``SeedSequence.spawn``, the collision-safe
stream-splitting API) *before* dispatch, so the RNG stream a unit sees
does not depend on which process runs it or in which order units
finish.  ``Executor.map`` always returns results in submission order.

This module is the only place in ``src/repro`` allowed to import
``concurrent.futures`` / ``multiprocessing`` (lint rule RPR008): all
other code expresses parallelism as data (a work list + a worker
function) and lets the executor decide where it runs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, TypeVar

import numpy as np

from ..errors import ExecutorError

T = TypeVar("T")
R = TypeVar("R")


def resolve_mp_context(mp_context: Optional[str] = None):
    """Resolve a multiprocessing start method into a context, typed-ly.

    ``None`` selects ``fork`` (cheap on Linux: children share the
    already-imported interpreter state).  On platforms without fork the
    caller must choose explicitly — a silent fallback to ``spawn``
    would change worker startup semantics behind the caller's back —
    so we raise an :class:`~repro.errors.ExecutorError` that says
    exactly what to pass instead of crashing deep inside the pool.
    """
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    if mp_context is not None:
        if mp_context not in methods:
            raise ExecutorError(
                f"multiprocessing start method {mp_context!r} is not "
                f"available on this platform (have: {sorted(methods)})"
            )
        return multiprocessing.get_context(mp_context)
    if "fork" not in methods:
        raise ExecutorError(
            "this platform has no 'fork' start method; construct the "
            "executor with an explicit mp_context='spawn' (worker "
            "functions must be importable module-level callables)"
        )
    return multiprocessing.get_context("fork")


def spawn_seeds(
    seed: Optional[int], n: int
) -> List[np.random.SeedSequence]:
    """Derive ``n`` independent child seed sequences from one root seed.

    Both :class:`SerialExecutor` and :class:`ParallelExecutor` consume
    the same spawned children in the same unit order, which is what
    makes parallel runs bit-identical to serial ones.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} seeds")
    return np.random.SeedSequence(seed).spawn(n)


@dataclass
class RuntimeStats:
    """How a fanned-out computation actually ran.

    Surfaced on results objects (validation results, generated
    datasets) so experiments can report executor shape and cache
    effectiveness next to accuracy numbers.
    """

    executor: str = "serial"
    workers: int = 1
    units: int = 0
    wall_time_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def merge_counts(self, hits: int, misses: int) -> None:
        """Fold a work unit's cache counters into the aggregate."""
        self.cache_hits += int(hits)
        self.cache_misses += int(misses)

    def as_dict(self) -> dict:
        return {
            "executor": self.executor,
            "workers": self.workers,
            "units": self.units,
            "wall_time_s": self.wall_time_s,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
        }


class Executor:
    """Maps a worker function over independent work units, in order."""

    name = "base"
    workers = 1

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        raise NotImplementedError

    def describe(self) -> str:
        return f"{self.name}(workers={self.workers})"


class SerialExecutor(Executor):
    """In-process, in-order execution — the reference semantics."""

    name = "serial"
    workers = 1

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        return [fn(item) for item in items]


class ParallelExecutor(Executor):
    """``ProcessPoolExecutor``-backed fan-out with ordered results.

    Worker functions must be module-level (picklable) and work units
    must carry their own pre-spawned seeds; under those rules the
    output is bit-identical to :class:`SerialExecutor` on the same
    work list.  Falls back to in-process execution for zero or one
    unit, where a pool would only add overhead.

    ``mp_context`` names the multiprocessing start method (``"fork"``,
    ``"spawn"``, ``"forkserver"``); the default requires fork and
    raises a typed :class:`~repro.errors.ExecutorError` on platforms
    that lack it (see :func:`resolve_mp_context`).
    """

    name = "parallel"

    def __init__(
        self, workers: Optional[int] = None, mp_context: Optional[str] = None
    ):
        if workers is None:
            workers = os.cpu_count() or 1
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.mp_context = mp_context

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        items = list(items)
        if len(items) <= 1 or self.workers == 1:
            return [fn(item) for item in items]
        from concurrent.futures import ProcessPoolExecutor

        context = resolve_mp_context(self.mp_context)
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(items)), mp_context=context
        ) as pool:
            futures = [pool.submit(fn, item) for item in items]
            return [f.result() for f in futures]


def make_executor(
    workers: Optional[int] = None, mp_context: Optional[str] = None
) -> Executor:
    """``workers`` ∈ {None, 0, 1} → serial; otherwise a process pool."""
    if workers is None or workers <= 1:
        return SerialExecutor()
    return ParallelExecutor(workers, mp_context=mp_context)
