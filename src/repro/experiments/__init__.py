"""Programmatic regeneration of every table and figure in the paper.

Each ``run_*`` function executes one experiment end-to-end and returns
a :class:`~repro.experiments.report.ExperimentReport` carrying the
formatted text, the raw measurements, and the paper's reference values.
``python -m repro.experiments`` runs them from the command line.
"""

from .report import ExperimentReport, ReportRegistry
from .runner import (
    ExperimentScale,
    run_all,
    run_fig1_pipeline,
    run_fig2_architecture,
    run_setup_statistics,
    run_table1,
    run_table2_lower,
    run_table2_upper,
)

__all__ = [
    "ExperimentReport",
    "ReportRegistry",
    "ExperimentScale",
    "run_table1",
    "run_table2_upper",
    "run_table2_lower",
    "run_fig1_pipeline",
    "run_fig2_architecture",
    "run_setup_statistics",
    "run_all",
]
