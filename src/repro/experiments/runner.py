"""Experiment runners: one function per paper table / figure."""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from ..clustering import GlobalClustering
from ..core import (
    CLEAR,
    CLEARConfig,
    FineTuneConfig,
    ModelConfig,
    TrainingConfig,
    PAPER_TABLE1_REFERENCES,
    PAPER_TABLE1_RESULTS,
    architecture_summary,
    build_cnn_lstm,
    cl_validation,
    clear_validation,
    evaluate_general_model,
    fine_tune,
    render_table,
)
from ..core.trainer import train_on_maps
from ..datasets import SyntheticWEMAC, WEMACConfig, split_maps_by_fraction
from ..edge import ALL_DEVICES, EdgeDeployment, profile_model
from ..orchestration import (
    PipelineGraph,
    Stage,
    executor_for_workers,
    group_maps_by_subject,
    member_maps,
)
from ..runtime import Executor
from ..signals import (
    BVP_FEATURE_NAMES,
    GSR_FEATURE_NAMES,
    NUM_FEATURES,
    SKT_FEATURE_NAMES,
)
from .report import ExperimentReport, ReportRegistry


@dataclass(frozen=True)
class ExperimentScale:
    """How big the corpus / fold counts are for a run.

    ``bench()`` (the default) finishes in minutes on a laptop;
    ``paper()`` uses the full 44-volunteer corpus and full LOSO and
    takes hours of pure-numpy compute.

    ``workers`` > 1 fans LOSO folds / cluster pre-training / feature
    extraction across processes (bit-identical results); ``cache_dir``
    points the content-addressed runtime cache at a directory so warm
    re-runs skip extraction and training.

    ``journal_dir`` makes every experiment's pipeline graph crash-safe:
    each graph records its completed stages into a
    :class:`~repro.orchestration.journal.RunJournal` under that
    directory (one journal per graph), and a re-run with the same
    directory — including after a SIGKILL — resumes from the journaled
    stages with bit-identical digests.
    """

    dataset: WEMACConfig
    clear: CLEARConfig
    max_folds: Optional[int]
    workers: Optional[int] = None
    cache_dir: Optional[str] = None
    journal_dir: Optional[str] = None

    def executor(self) -> Executor:
        # Built through the orchestration context — the single injection
        # point for runtime machinery (RPR009).
        return executor_for_workers(self.workers)

    def journal_path(self, graph_name: str) -> Optional[str]:
        """Journal file for one experiment graph, or None when disabled."""
        if self.journal_dir is None:
            return None
        return str(Path(self.journal_dir) / f"{graph_name}.json")

    @staticmethod
    def tiny(seed: int = 0) -> "ExperimentScale":
        """Seconds-scale config for unit / chaos tests."""
        return ExperimentScale(
            dataset=WEMACConfig.tiny(seed=seed),
            clear=CLEARConfig(
                num_clusters=4,
                subclusters_per_cluster=2,
                gc_refinements=2,
                model=ModelConfig(
                    conv_filters=(4, 8), lstm_units=8, dropout=0.0
                ),
                training=TrainingConfig(
                    epochs=6, batch_size=8, early_stopping_patience=2
                ),
                fine_tuning=FineTuneConfig(epochs=3),
                seed=0,
            ),
            max_folds=2,
        )

    @staticmethod
    def bench(seed: int = 2) -> "ExperimentScale":
        return ExperimentScale(
            dataset=WEMACConfig(
                num_subjects=20,
                trials_per_subject=10,
                windows_per_map=6,
                window_seconds=8.0,
                fs_bvp=32.0,
                seed=seed,
            ),
            clear=CLEARConfig.fast(seed=0),
            max_folds=5,
        )

    @staticmethod
    def paper(seed: int = 0) -> "ExperimentScale":
        return ExperimentScale(
            dataset=WEMACConfig(seed=seed),
            clear=CLEARConfig.paper(seed=0),
            max_folds=None,
        )


def _generate(scale: ExperimentScale):
    return SyntheticWEMAC(scale.dataset).generate(
        executor=scale.executor(), cache_dir=scale.cache_dir
    )


def run_table1(
    scale: Optional[ExperimentScale] = None, dataset=None
) -> ExperimentReport:
    """Table I: all six measured validation rows + orderings.

    The three validation protocols are declared as stages of one
    :class:`~repro.orchestration.graph.PipelineGraph` over the shared
    ``corpus`` artifact: the executor / cache are injected once at the
    stage boundary and every row's lineage lands in the report's
    ``provenance``.
    """
    scale = scale or ExperimentScale.bench()
    dataset = dataset if dataset is not None else _generate(scale)

    def _general_stage(ctx, corpus):
        return evaluate_general_model(
            corpus,
            scale.clear,
            group_size=max(2, corpus.num_subjects // scale.clear.num_clusters),
            max_folds=scale.max_folds,
            executor=ctx.executor,
            cache_dir=ctx.cache_dir,
        )

    def _cl_stage(ctx, corpus):
        return cl_validation(
            corpus,
            scale.clear,
            max_folds=None if scale.max_folds is None else 2 * scale.max_folds,
            executor=ctx.executor,
            cache_dir=ctx.cache_dir,
        )

    def _clear_stage(ctx, corpus):
        return clear_validation(
            corpus,
            scale.clear,
            max_folds=scale.max_folds,
            executor=ctx.executor,
            cache_dir=ctx.cache_dir,
        )

    graph = PipelineGraph(
        "table1",
        [
            Stage(
                "general",
                _general_stage,
                requires=("corpus",),
                config=scale.clear,
                seed=scale.clear.seed,
            ),
            Stage(
                "cl",
                _cl_stage,
                requires=("corpus",),
                config=scale.clear,
                seed=scale.clear.seed,
            ),
            Stage(
                "clear",
                _clear_stage,
                requires=("corpus",),
                config=scale.clear,
                seed=scale.clear.seed,
            ),
        ],
    )
    run = graph.run(
        initial={"corpus": dataset},
        executor=scale.executor(),
        cache_dir=scale.cache_dir,
        seed=scale.clear.seed,
        journal=scale.journal_path("table1"),
    )
    general = run.value("general")
    cl = run.value("cl")
    clear = run.value("clear")

    rows = [general, cl.rt_cl, cl.cl, clear.rt_clear, clear.without_ft, clear.with_ft]
    text = render_table(
        rows,
        title="Table I -- fear / non-fear (synthetic WEMAC)",
        paper_rows={**PAPER_TABLE1_RESULTS, **PAPER_TABLE1_REFERENCES},
    )
    checks = {
        "cl_beats_general": cl.cl.accuracy_mean > general.accuracy_mean,
        "rt_cl_collapses": cl.rt_cl.accuracy_mean < cl.cl.accuracy_mean,
        "wo_ft_beats_rt": clear.without_ft.accuracy_mean
        > clear.rt_clear.accuracy_mean,
        "ft_improves": clear.with_ft.accuracy_mean > clear.without_ft.accuracy_mean,
    }
    measured = {s.name: s.as_row() for s in rows}
    measured["cluster_sizes"] = cl.cluster_sizes
    measured["runtime"] = {
        "general": general.runtime.as_dict() if general.runtime else None,
        "cl": cl.runtime.as_dict() if cl.runtime else None,
        "clear": clear.runtime.as_dict() if clear.runtime else None,
    }
    return ExperimentReport(
        experiment_id="table1",
        title="CLEAR validation vs references (paper Table I)",
        text=text,
        measured=measured,
        paper={**PAPER_TABLE1_RESULTS, **PAPER_TABLE1_REFERENCES},
        checks=checks,
        provenance=run.lineage(),
    )


def _edge_folds(scale: ExperimentScale, dataset):
    """LOSO folds prepared for the Table II experiments."""
    rng = np.random.default_rng(scale.clear.seed)
    folds = []
    subjects = (
        dataset.subjects
        if scale.max_folds is None
        else dataset.subjects[: scale.max_folds]
    )
    for record in subjects:
        population = group_maps_by_subject(dataset, exclude=record.subject_id)
        system = CLEAR(scale.clear, cache_dir=scale.cache_dir).fit(population)
        ca_maps, held_back = split_maps_by_fraction(
            record.maps, scale.clear.ca_data_fraction, rng, stratified=False
        )
        assignment = system.assign_new_user(ca_maps)
        checkpoint = system.model_for(assignment.cluster)
        ft_fraction = scale.clear.ft_label_fraction / (
            1.0 - scale.clear.ca_data_fraction
        )
        ft_maps, test_maps = split_maps_by_fraction(
            held_back, ft_fraction, rng, stratified=True
        )
        tuned = fine_tune(
            checkpoint, ft_maps, scale.clear.fine_tuning, seed=scale.clear.seed
        )
        calibration = member_maps(
            population, system.gc.members(assignment.cluster)
        )[:12]
        folds.append(
            {
                "checkpoint": checkpoint,
                "tuned": tuned,
                "calibration": calibration,
                "test_maps": test_maps,
                "ft_examples": len(ft_maps),
            }
        )
    return folds


def _platform_accuracy(folds, use_tuned: bool) -> Dict[str, Dict[str, float]]:
    results = {}
    for key, device in ALL_DEVICES.items():
        accs, f1s = [], []
        for fold in folds:
            model = fold["tuned"] if use_tuned else fold["checkpoint"]
            deployment = EdgeDeployment(
                model, device, calibration_maps=fold["calibration"]
            )
            m = deployment.evaluate(fold["test_maps"])
            accs.append(m["accuracy"] * 100)
            f1s.append(m["f1"] * 100)
        results[key] = {
            "name": device.name,
            "accuracy": float(np.mean(accs)),
            "std_acc": float(np.std(accs)),
            "f1": float(np.mean(f1s)),
            "std_f1": float(np.std(f1s)),
        }
    return results


def run_table2_upper(
    scale: Optional[ExperimentScale] = None, dataset=None, folds=None
) -> ExperimentReport:
    """Table II upper: platform accuracy without fine-tuning."""
    scale = scale or ExperimentScale.bench()
    dataset = dataset if dataset is not None else _generate(scale)
    folds = folds if folds is not None else _edge_folds(scale, dataset)

    graph = PipelineGraph(
        "table2_upper",
        [
            Stage(
                "platform_accuracy",
                lambda ctx, edge_folds: _platform_accuracy(
                    edge_folds, use_tuned=False
                ),
                requires=("edge_folds",),
                config=scale.clear,
                seed=scale.clear.seed,
            )
        ],
    )
    run = graph.run(
        initial={"edge_folds": folds},
        executor=scale.executor(),
        cache_dir=scale.cache_dir,
        seed=scale.clear.seed,
        journal=scale.journal_path("table2_upper"),
    )
    results = run.value("platform_accuracy")
    paper = {
        "gpu": {"accuracy": 80.63, "f1": 79.97},
        "coral_tpu": {"accuracy": 74.17, "f1": 73.57},
        "pi_ncs2": {"accuracy": 79.03, "f1": 78.48},
    }
    lines = ["Table II (upper) -- platform accuracy, CLEAR w/o FT"]
    for key in ("gpu", "coral_tpu", "pi_ncs2"):
        r = results[key]
        p = paper[key]
        lines.append(
            f"  {r['name']:<16} acc {r['accuracy']:6.2f} +- {r['std_acc']:5.2f} "
            f"f1 {r['f1']:6.2f}   (paper {p['accuracy']:.2f} / {p['f1']:.2f})"
        )
    checks = {
        "int8_not_better": results["coral_tpu"]["accuracy"]
        <= results["gpu"]["accuracy"] + 5.0,
        "fp16_tracks_gpu": abs(
            results["pi_ncs2"]["accuracy"] - results["gpu"]["accuracy"]
        )
        < 10.0,
    }
    return ExperimentReport(
        experiment_id="table2_upper",
        title="Edge platform accuracy before FT (paper Table II upper)",
        text="\n".join(lines),
        measured=results,
        paper=paper,
        checks=checks,
        provenance=run.lineage(),
    )


def run_table2_lower(
    scale: Optional[ExperimentScale] = None, dataset=None, folds=None
) -> ExperimentReport:
    """Table II lower: post-FT accuracy + MTC/MPC cost rows."""
    scale = scale or ExperimentScale.bench()
    dataset = dataset if dataset is not None else _generate(scale)
    folds = folds if folds is not None else _edge_folds(scale, dataset)

    def _cost_stage(ctx, edge_folds):
        # Cost model rows (identical across folds up to ft_examples).
        costs = {}
        for key, device in ALL_DEVICES.items():
            fold = edge_folds[0]
            deployment = EdgeDeployment(
                fold["tuned"], device, calibration_maps=fold["calibration"]
            )
            report = deployment.cost_report(
                fold["test_maps"],
                ft_examples=fold["ft_examples"],
                ft_epochs=scale.clear.fine_tuning.epochs,
            )
            costs[key] = {
                "test_ms": report.test_time_s * 1e3,
                "retrain_s": report.retrain_time_s,
                "p_idle": report.power_idle_w,
                "p_test": report.power_test_w,
                "p_retrain": report.power_retrain_w,
            }
        return costs

    graph = PipelineGraph(
        "table2_lower",
        [
            Stage(
                "ft_accuracy",
                lambda ctx, edge_folds: _platform_accuracy(
                    edge_folds, use_tuned=True
                ),
                requires=("edge_folds",),
                config=scale.clear,
                seed=scale.clear.seed,
            ),
            Stage(
                "cost_model",
                _cost_stage,
                requires=("edge_folds",),
                config=scale.clear,
                seed=scale.clear.seed,
            ),
        ],
    )
    run = graph.run(
        initial={"edge_folds": folds},
        executor=scale.executor(),
        cache_dir=scale.cache_dir,
        seed=scale.clear.seed,
        journal=scale.journal_path("table2_lower"),
    )
    results = run.value("ft_accuracy")
    costs = run.value("cost_model")
    paper = {
        "gpu": {"accuracy": 86.34, "f1": 86.03},
        "coral_tpu": {
            "accuracy": 79.40,
            "f1": 79.14,
            "retrain_s": 32.48,
            "test_ms": 47.31,
        },
        "pi_ncs2": {
            "accuracy": 84.49,
            "f1": 84.07,
            "retrain_s": 78.52,
            "test_ms": 239.70,
        },
    }
    lines = ["Table II (lower) -- after on-device fine-tuning"]
    for key in ("gpu", "coral_tpu", "pi_ncs2"):
        r, c = results[key], costs[key]
        lines.append(
            f"  {r['name']:<16} acc {r['accuracy']:6.2f} "
            f"(paper {paper[key]['accuracy']:.2f})  "
            f"test {c['test_ms']:7.2f} ms  retrain {c['retrain_s']:6.2f} s  "
            f"P {c['p_idle']:.2f}/{c['p_test']:.2f}/{c['p_retrain']:.2f} W"
        )
    checks = {
        "tpu_faster_test": costs["coral_tpu"]["test_ms"]
        < costs["pi_ncs2"]["test_ms"],
        "tpu_faster_retrain": costs["coral_tpu"]["retrain_s"]
        < costs["pi_ncs2"]["retrain_s"],
        "tpu_lower_power": costs["coral_tpu"]["p_retrain"]
        < costs["pi_ncs2"]["p_retrain"],
        "gpu_not_worse_than_tpu": results["gpu"]["accuracy"]
        >= results["coral_tpu"]["accuracy"] - 5.0,
    }
    return ExperimentReport(
        experiment_id="table2_lower",
        title="Edge FT accuracy + time/power (paper Table II lower)",
        text="\n".join(lines),
        measured={"accuracy": results, "costs": costs},
        paper=paper,
        checks=checks,
        provenance=run.lineage(),
    )


@dataclass
class _Fig1Walkthrough:
    """Fig. 1 stage output: measured timings + the deterministic outcome.

    Wall-clock timings vary run to run, so the provenance digest covers
    only the deterministic outcome — same seed, same digest.
    """

    timings: Dict[str, float]
    cluster: int
    metrics: Dict[str, float]

    def __repro_content__(self):
        return (
            "Fig1Walkthrough",
            self.cluster,
            tuple(sorted(self.metrics.items())),
        )


def run_fig1_pipeline(
    scale: Optional[ExperimentScale] = None, dataset=None
) -> ExperimentReport:
    """Fig. 1: stage-by-stage walkthrough with wall-clock asymmetry."""
    scale = scale or ExperimentScale.bench()
    dataset = dataset if dataset is not None else _generate(scale)

    def _walkthrough_stage(ctx, corpus):
        record = corpus.subjects[0]
        population = group_maps_by_subject(corpus, exclude=record.subject_id)
        timings: Dict[str, float] = {}

        t0 = time.perf_counter()
        system = CLEAR(
            scale.clear, executor=ctx.executor, cache_dir=ctx.cache_dir
        ).fit(population)
        timings["cloud_fit_s"] = time.perf_counter() - t0

        rng = np.random.default_rng(scale.clear.seed)
        ca_maps, held_back = split_maps_by_fraction(
            record.maps, scale.clear.ca_data_fraction, rng, stratified=False
        )
        t0 = time.perf_counter()
        assignment = system.assign_new_user(ca_maps)
        timings["edge_assignment_s"] = time.perf_counter() - t0

        ft_maps, test_maps = split_maps_by_fraction(held_back, 0.25, rng)
        t0 = time.perf_counter()
        tuned = system.personalize(ft_maps, cluster=assignment.cluster)
        timings["edge_finetune_s"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        metrics = tuned.evaluate(test_maps)
        timings["edge_inference_s"] = time.perf_counter() - t0
        return _Fig1Walkthrough(
            timings=timings, cluster=assignment.cluster, metrics=metrics
        )

    graph = PipelineGraph(
        "fig1",
        [
            Stage(
                "walkthrough",
                _walkthrough_stage,
                requires=("corpus",),
                config=scale.clear,
                seed=scale.clear.seed,
            )
        ],
    )
    run = graph.run(
        initial={"corpus": dataset},
        executor=scale.executor(),
        cache_dir=scale.cache_dir,
        seed=scale.clear.seed,
        journal=scale.journal_path("fig1"),
    )
    walk = run.value("walkthrough")
    timings, metrics = walk.timings, walk.metrics

    lines = ["Fig. 1 -- CLEAR two-stage pipeline walkthrough"]
    lines.append(f"  cloud: clustering + pre-training  {timings['cloud_fit_s']:8.2f} s")
    lines.append(
        f"  edge: cold-start assignment       {timings['edge_assignment_s'] * 1e3:8.2f} ms"
    )
    lines.append(f"  edge: fine-tuning                 {timings['edge_finetune_s']:8.2f} s")
    lines.append(
        f"  edge: inference                   {timings['edge_inference_s'] * 1e3:8.2f} ms"
    )
    lines.append(
        f"  result: cluster {walk.cluster}, accuracy {metrics['accuracy']:.2%}"
    )
    checks = {
        "cloud_dominates": timings["cloud_fit_s"] > timings["edge_finetune_s"],
        "assignment_instant": timings["edge_assignment_s"] < 1.0,
    }
    return ExperimentReport(
        experiment_id="fig1",
        title="Two-stage cloud/edge pipeline (paper Fig. 1)",
        text="\n".join(lines),
        measured=timings,
        checks=checks,
        provenance=run.lineage(),
    )


def run_fig2_architecture(
    scale: Optional[ExperimentScale] = None,
) -> ExperimentReport:
    """Fig. 2: the CNN-LSTM at paper input scale."""
    input_shape = (1, 123, 8)

    def _profile_stage(ctx):
        model = build_cnn_lstm(input_shape, seed=0)
        return model, profile_model(model, input_shape)

    graph = PipelineGraph(
        "fig2", [Stage("architecture_profile", _profile_stage, seed=0)]
    )
    run = graph.run(
        seed=0,
        journal=None if scale is None else scale.journal_path("fig2"),
    )
    model, profile = run.value("architecture_profile")
    text = (
        "Fig. 2 -- CNN-LSTM architecture (123 x 8 feature maps)\n"
        + architecture_summary(input_shape)
        + f"\n\ntotal MACs per map: {profile.total_macs:,}"
        + f"\nint8 weights: {profile.memory_bytes(1) / 1024:.1f} KiB"
    )
    checks = {
        "fits_edge_memory": profile.memory_bytes(1) < 1 << 20,
        "two_convs_one_lstm": [type(l).__name__ for l in model.layers].count(
            "Conv2D"
        )
        == 2,
    }
    return ExperimentReport(
        experiment_id="fig2",
        title="CNN-LSTM classifier (paper Fig. 2)",
        text=text,
        measured={
            "params": profile.total_params,
            "macs": profile.total_macs,
            "int8_kib": profile.memory_bytes(1) / 1024,
        },
        checks=checks,
        provenance=run.lineage(),
    )


def run_setup_statistics(
    scale: Optional[ExperimentScale] = None, dataset=None
) -> ExperimentReport:
    """Section IV-A: corpus statistics and K = 4 cluster sizes."""
    scale = scale or ExperimentScale.bench()
    dataset = dataset if dataset is not None else _generate(scale)

    def _stats_stage(ctx, corpus):
        gc = GlobalClustering(k=scale.clear.num_clusters, seed=0).fit(
            group_maps_by_subject(corpus)
        )
        return corpus.summary(), sorted(gc.cluster_sizes(), reverse=True)

    graph = PipelineGraph(
        "setup",
        [
            Stage(
                "setup_statistics",
                _stats_stage,
                requires=("corpus",),
                config=scale.clear,
                seed=0,
            )
        ],
    )
    run = graph.run(
        initial={"corpus": dataset},
        executor=scale.executor(),
        cache_dir=scale.cache_dir,
        seed=0,
        journal=scale.journal_path("setup"),
    )
    summary, sizes = run.value("setup_statistics")
    text = (
        "Section IV-A -- setup statistics\n"
        f"  volunteers: {int(summary['num_subjects'])}\n"
        f"  feature maps: {int(summary['num_maps'])}\n"
        f"  features: {int(summary['num_features'])} "
        f"= {len(BVP_FEATURE_NAMES)} BVP + {len(GSR_FEATURE_NAMES)} GSR "
        f"+ {len(SKT_FEATURE_NAMES)} SKT\n"
        f"  K = {scale.clear.num_clusters}, cluster sizes {sizes} "
        "(paper: [17, 13, 7, 7])"
    )
    checks = {
        "feature_inventory": NUM_FEATURES == 123
        and len(BVP_FEATURE_NAMES) == 84
        and len(GSR_FEATURE_NAMES) == 34
        and len(SKT_FEATURE_NAMES) == 5,
        "balanced_task": abs(summary["fear_fraction"] - 0.5) < 0.1,
    }
    return ExperimentReport(
        experiment_id="setup",
        title="Experimental setup statistics (paper §IV-A)",
        text=text,
        measured={**summary, "cluster_sizes": sizes},
        checks=checks,
        provenance=run.lineage(),
    )


def run_all(scale: Optional[ExperimentScale] = None) -> ReportRegistry:
    """Run every experiment once, sharing the corpus and edge folds."""
    scale = scale or ExperimentScale.bench()
    dataset = _generate(scale)
    folds = _edge_folds(scale, dataset)
    registry = ReportRegistry()
    registry.add(run_setup_statistics(scale, dataset))
    registry.add(run_fig2_architecture(scale))
    registry.add(run_fig1_pipeline(scale, dataset))
    registry.add(run_table1(scale, dataset))
    registry.add(run_table2_upper(scale, dataset, folds))
    registry.add(run_table2_lower(scale, dataset, folds))
    return registry
