"""CLI entry point: ``python -m repro.experiments [options]``.

Regenerates the paper's tables and figures and optionally saves a JSON
report.  ``--scale paper`` runs the full 44-volunteer corpus (hours);
the default bench scale finishes in minutes.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from .report import ReportRegistry
from .runner import (
    ExperimentScale,
    run_all,
    run_fig1_pipeline,
    run_fig2_architecture,
    run_setup_statistics,
    run_table1,
    run_table2_lower,
    run_table2_upper,
)

RUNNERS = {
    "setup": run_setup_statistics,
    "fig1": run_fig1_pipeline,
    "fig2": run_fig2_architecture,
    "table1": run_table1,
    "table2_upper": run_table2_upper,
    "table2_lower": run_table2_lower,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the CLEAR paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=(
            "which experiments to run: "
            + ", ".join([*RUNNERS, "all"])
            + " (default: all)"
        ),
    )
    parser.add_argument(
        "--scale",
        choices=["tiny", "bench", "paper"],
        default="bench",
        help=(
            "corpus / fold scale (default: bench; tiny is the "
            "seconds-scale config used by the test suite)"
        ),
    )
    parser.add_argument(
        "--json", metavar="PATH", help="write the reports to a JSON file"
    )
    parser.add_argument(
        "--provenance",
        metavar="PATH",
        help=(
            "write every experiment's pipeline lineage (stage digests, "
            "seeds, executor shape, cache traffic) to a JSON file; "
            "digests are reproducible across same-seed re-runs"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help=(
            "fan LOSO folds / cluster pre-training / feature extraction "
            "across N worker processes (results are bit-identical to the "
            "serial default)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help=(
            "content-addressed runtime cache directory; warm re-runs skip "
            "feature extraction and fold training whose inputs are unchanged"
        ),
    )
    parser.add_argument(
        "--journal",
        default=None,
        metavar="DIR",
        help=(
            "record each experiment graph's completed stages into "
            "write-ahead run journals under DIR; a crashed (even "
            "SIGKILLed) run re-invoked with the same DIR resumes from "
            "the journaled stages with bit-identical digests"
        ),
    )
    parser.add_argument(
        "--resume",
        dest="journal",
        metavar="DIR",
        help=(
            "resume from the run journals under DIR (synonym of "
            "--journal: journaling and resuming are the same mechanism)"
        ),
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    scales = {
        "tiny": ExperimentScale.tiny,
        "bench": ExperimentScale.bench,
        "paper": ExperimentScale.paper,
    }
    scale = scales[args.scale]()
    if args.workers is not None and args.workers < 1:
        print(f"--workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    scale = dataclasses.replace(
        scale,
        workers=args.workers,
        cache_dir=args.cache_dir,
        journal_dir=args.journal,
    )

    wanted = list(args.experiments) if args.experiments else ["all"]
    unknown = [name for name in wanted if name != "all" and name not in RUNNERS]
    if unknown:
        print(
            f"unknown experiments: {', '.join(unknown)} "
            f"(choose from {', '.join([*RUNNERS, 'all'])})",
            file=sys.stderr,
        )
        return 2
    if "all" in wanted:
        registry = run_all(scale)
    else:
        registry = ReportRegistry()
        for name in wanted:
            registry.add(RUNNERS[name](scale))

    print(registry.render())
    if args.json:
        path = registry.save_json(args.json)
        print(f"\nreports written to {path}")
    if args.provenance:
        path = registry.save_provenance(args.provenance)
        print(f"\nprovenance written to {path}")
    return 0 if registry.all_checks_pass else 1


if __name__ == "__main__":
    sys.exit(main())
