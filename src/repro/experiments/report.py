"""Experiment report containers and JSON export."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union


@dataclass
class ExperimentReport:
    """One regenerated table or figure.

    Attributes
    ----------
    experiment_id:
        Stable identifier, e.g. ``'table1'`` or ``'fig2'``.
    title:
        Human-readable description.
    text:
        The formatted report (what the paper's table would print).
    measured:
        Raw measured values, JSON-serializable.
    paper:
        The paper's reference values for the same quantities (where
        they exist), for side-by-side comparison.
    checks:
        Name -> bool for each reproduction ordering verified.
    provenance:
        Lineage of the pipeline graph that produced the report: one
        :meth:`~repro.orchestration.provenance.Provenance.as_dict`
        record per artifact, in production order (content digests,
        seeds, executor shape, cache traffic).
    """

    experiment_id: str
    title: str
    text: str
    measured: Dict = field(default_factory=dict)
    paper: Dict = field(default_factory=dict)
    checks: Dict[str, bool] = field(default_factory=dict)
    provenance: List[Dict] = field(default_factory=list)

    @property
    def all_checks_pass(self) -> bool:
        return all(self.checks.values()) if self.checks else True

    def failed_checks(self) -> List[str]:
        return [name for name, ok in self.checks.items() if not ok]

    def to_dict(self) -> Dict:
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "text": self.text,
            "measured": self.measured,
            "paper": self.paper,
            "checks": self.checks,
            "provenance": self.provenance,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ExperimentReport":
        return cls(
            experiment_id=data["experiment_id"],
            title=data["title"],
            text=data["text"],
            measured=data.get("measured", {}),
            paper=data.get("paper", {}),
            checks=data.get("checks", {}),
            provenance=data.get("provenance", []),
        )

    def save_json(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(self.to_dict(), f, indent=2)
        return path


@dataclass
class ReportRegistry:
    """An ordered collection of experiment reports."""

    reports: List[ExperimentReport] = field(default_factory=list)

    def add(self, report: ExperimentReport) -> None:
        self.reports.append(report)

    def get(self, experiment_id: str) -> ExperimentReport:
        for report in self.reports:
            if report.experiment_id == experiment_id:
                return report
        raise KeyError(f"no report with id {experiment_id!r}")

    @property
    def all_checks_pass(self) -> bool:
        return all(r.all_checks_pass for r in self.reports)

    def render(self) -> str:
        blocks = []
        for report in self.reports:
            status = "OK" if report.all_checks_pass else "CHECKS FAILED"
            blocks.append(
                f"===== {report.experiment_id}: {report.title} [{status}] =====\n"
                f"{report.text}"
            )
        return "\n\n".join(blocks)

    def save_json(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            json.dump([r.to_dict() for r in self.reports], f, indent=2)
        return path

    @classmethod
    def load_json(cls, path: Union[str, Path]) -> "ReportRegistry":
        """Reload a registry previously written by :meth:`save_json`."""
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
        return cls(reports=[ExperimentReport.from_dict(d) for d in data])

    def save_provenance(self, path: Union[str, Path]) -> Path:
        """Write only the lineage: ``{experiment_id: [provenance, ...]}``.

        The digests are content-addressed and exclude wall times and
        cache hit/miss counts, so a same-seed re-run of the same code
        reproduces every digest even though its timing fields differ.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        lineage = {r.experiment_id: r.provenance for r in self.reports}
        with open(path, "w", encoding="utf-8") as f:
            json.dump(lineage, f, indent=2)
        return path
