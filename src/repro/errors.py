"""Typed error hierarchy for the resilience layer.

These live at the package root (not under :mod:`repro.resilience`) so
that low-level modules — :mod:`repro.nn.checkpoint` in particular — can
raise typed resilience errors without importing the resilience package,
which itself depends on ``nn`` and ``signals`` (a cycle otherwise).

The contract these types encode: when the edge runtime hits a realistic
fault (dead sensor, truncated checkpoint, flaky federated client), it
either raises one of these — never a bare ``KeyError`` or
``zipfile.BadZipFile`` — or degrades gracefully and reports how in a
:class:`~repro.resilience.degradation.HealthStatus`.
"""

from __future__ import annotations


class ResilienceError(RuntimeError):
    """Base class for every typed failure the resilience layer raises."""


class PaddingError(ValueError):
    """A padding spec cannot be resolved to static symmetric pads.

    Raised by :func:`repro.nn.layers.conv.resolve_padding` for
    ``'same'`` with an even kernel: ceil-mode output there needs
    input-size-dependent *asymmetric* pads, which :class:`Conv2D`
    computes per batch but a static ``(ph, pw)`` pair cannot express.
    A ``ValueError`` subclass so pre-existing callers that caught
    ``ValueError`` keep working.
    """


class CheckpointError(ResilienceError):
    """A checkpoint file is missing, truncated, corrupt, or fails its checksum."""


class SignalQualityError(ResilienceError):
    """A signal window was rejected by the quality gate in strict mode."""


class FeatureGuardError(ResilienceError):
    """A feature vector contained NaN/Inf and imputation was disabled."""


class RetryError(ResilienceError):
    """A retried operation exhausted its attempts or deadline.

    Attributes
    ----------
    attempts:
        How many times the operation was tried before giving up.
    last_error:
        The exception raised by the final attempt (also chained as
        ``__cause__``).
    """

    def __init__(
        self,
        message: str,
        attempts: int = 0,
        last_error: Exception | None = None,
    ):
        super().__init__(message)
        self.attempts = int(attempts)
        self.last_error = last_error


class FederatedRoundError(ResilienceError):
    """Every client in a federated round failed, even after retries."""


class CacheError(ResilienceError):
    """A runtime cache entry cannot be read, written, or deserialized.

    Raised by :mod:`repro.runtime.cache` with the offending file path in
    the message; a *miss* is never an error (it returns ``None``), only
    corruption or an unusable cache directory is.
    """


class OrchestrationError(ResilienceError):
    """A pipeline graph is malformed or a stage broke its contract.

    Raised by :mod:`repro.orchestration` when a graph declares duplicate
    or missing artifacts, contains a dependency cycle, or a stage's
    output fails its boundary guard.  The message always names the
    offending stage or artifact.
    """


class ExecutorError(ResilienceError):
    """The execution layer cannot run work units at all.

    Raised for platform-level problems — e.g. requesting the default
    ``fork`` start method on an OS that does not support it — as opposed
    to individual work units failing (see :class:`SupervisionError`).
    The message always says what to pass instead.
    """


class WorkUnitPoisonError(ExecutorError):
    """An injected poison work unit raised (executor-level fault plans).

    The exception type the :class:`~repro.resilience.faults.UnitRaise`
    fault throws inside a worker, so chaos tests can distinguish the
    injected failure from a genuine bug in the worker function.
    """


class SupervisionError(ExecutorError):
    """Work units were quarantined after exhausting their retry budget.

    Raised by the supervised executor in strict (non-partial) mode;
    carries the machine-readable failure manifest.

    Attributes
    ----------
    failures:
        One :class:`~repro.runtime.supervision.UnitFailure` per
        quarantined unit, in unit order.
    """

    def __init__(self, message: str, failures: tuple = ()):
        super().__init__(message)
        self.failures = tuple(failures)


class ServingError(ResilienceError):
    """The serving layer rejected a request or cannot serve a model.

    Raised by :mod:`repro.serving` for *hard* failures — admission
    control past its reject limit, a session for an unknown user, a
    registry entry that cannot be rehydrated.  Overload below the hard
    limit never raises: it sheds to the population-average fallback and
    records the shed in the decision's
    :class:`~repro.resilience.degradation.HealthStatus` instead.
    """


class AdmissionError(ServingError):
    """Admission control rejected the request outright (hard limit).

    Attributes
    ----------
    queue_depth:
        Pending request count at rejection time.
    limit:
        The policy limit that was exceeded.
    """

    def __init__(self, message: str, queue_depth: int = 0, limit: int = 0):
        super().__init__(message)
        self.queue_depth = int(queue_depth)
        self.limit = int(limit)


class JournalError(OrchestrationError):
    """A run journal is unreadable or does not match the graph run.

    Raised when ``--resume`` points at a journal written by a different
    graph / config / seed / input set — silently mixing two runs'
    artifacts would be worse than failing.  A *corrupt* journaled
    artifact is never fatal: the stage simply re-runs.
    """
