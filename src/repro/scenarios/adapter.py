"""Adapters between streamed scenarios and record-oriented consumers.

The Table-I validation drivers and the serving load generator were
written against :class:`~repro.datasets.wemac.WEMACDataset` — an
eagerly materialized population with ``.subjects`` /
``.num_subjects``.  :func:`population_records` normalizes any
population source onto that surface, materializing scenarios *here*,
inside the scenarios package, which is the one place the streaming
contract sanctions whole-population views (lint rule RPR021).
Validation-scale populations are tens of subjects, so this is the
right trade; the 100k streaming path never goes through this adapter.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..runtime.executor import Executor
from ..signals.feature_map import FeatureMap
from .base import MaterializedPopulation, Scenario


def population_records(
    source,
    executor: Optional[Executor] = None,
    cache_dir: Optional[Union[str, Path]] = None,
):
    """Any population source, normalized to ``.subjects``/``.num_subjects``.

    * A :class:`Scenario` is materialized (sanctioned, small-scale).
    * Anything already carrying ``.subjects`` (``WEMACDataset``,
      ``MaterializedPopulation``) passes through untouched.
    * A plain sequence of subject-like records is wrapped.
    """
    if isinstance(source, Scenario):
        return source.materialize(executor=executor, cache_dir=cache_dir)
    if hasattr(source, "subjects"):
        return source
    records = list(source)
    if not records:
        raise ValueError("cannot build a population from no records")
    return MaterializedPopulation(
        name=type(records[0]).__name__.lower(), subjects=records
    )


def base_corpus(
    source,
    max_subjects: Optional[int] = None,
    executor: Optional[Executor] = None,
    cache_dir: Optional[Union[str, Path]] = None,
) -> Dict[int, List[FeatureMap]]:
    """A ``{subject_id: maps}`` corpus for the serving load generator.

    Scenarios stream: only the first ``max_subjects`` subjects are ever
    generated (the load generator synthesizes its fleet from a small
    base corpus, so there is no reason to realize the full population).
    """
    if isinstance(source, Scenario):
        corpus: Dict[int, List[FeatureMap]] = {}
        for subject in source.iter_subjects(
            executor=executor, cache_dir=cache_dir
        ):
            corpus[subject.subject_id] = list(subject.maps)
            if max_subjects is not None and len(corpus) >= max_subjects:
                break
        return corpus
    records: Sequence = population_records(source).subjects
    if max_subjects is not None:
        records = records[:max_subjects]
    return {r.subject_id: list(r.maps) for r in records}
