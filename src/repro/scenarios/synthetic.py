"""Feature-space scenario family: cheap populations at 100k scale.

The WEMAC scenario simulates raw physiology and extracts features —
faithful but expensive (tens of milliseconds per subject).  For
scale-out benchmarks and alternative label spaces the feature-space
family generates :class:`~repro.signals.feature_map.FeatureMap` values
directly from an archetype-structured distribution over the same
123-feature space:

* Each archetype owns a mean vector (drawn once from the scenario's
  population stream), separated enough to be clusterable.
* Each label class owns a direction the class shifts features along.
  ``label_geometry="independent"`` draws per-class directions
  independently; ``"circumplex"`` places classes at angles on a 2D
  valence/arousal plane spanned by two latent axes (arXiv 2308.09013's
  label space).
* ``archetype_gain_spread`` scales how strongly each archetype
  expresses its labels (blunted vs reactive responders) — the
  "one general model underfits" structure, archetype-conditioned.

Generation is a pure function of ``(config, subject_id, generation)``,
so the family streams with O(1) random access like every Scenario.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Tuple

import numpy as np

from ..signals.feature_map import build_feature_map
from ..signals.features import NUM_FEATURES
from .base import (
    REFERENCE_DEVICE,
    STATIONARY,
    DeviceProfile,
    LabelSpace,
    PopulationDynamics,
    Scenario,
    ScenarioSubject,
    archetype_for_slot,
    drift_alpha,
    pick_device,
    population_rng,
    subject_rng,
)
from .devices import screen_subject_maps

#: Population-stream tags (spawn-key second component) for the banks.
_ARCHETYPE_TAG = 1
_LABEL_TAG = 2
_GAIN_TAG = 3


@dataclass(frozen=True)
class FeatureSpaceConfig:
    """Picklable per-subject build config for the feature-space family."""

    name: str
    label_space: LabelSpace
    num_subjects: int
    num_archetypes: int = 4
    maps_per_subject: int = 6
    windows_per_map: int = 4
    num_features: int = NUM_FEATURES
    #: Distance between archetype means, in noise units.
    separation: float = 6.0
    #: How strongly a label shifts features along its class direction.
    label_effect: float = 3.0
    #: Per-subject spread around the archetype mean.
    subject_jitter: float = 0.8
    #: Per-window observation noise.
    noise: float = 1.0
    #: "independent" per-class directions, or "circumplex" (classes at
    #: angles on a 2D valence/arousal plane).
    label_geometry: str = "independent"
    #: Relative spread of per-archetype label-expression gains
    #: (0 = every archetype expresses labels identically).
    archetype_gain_spread: float = 0.0
    dynamics: PopulationDynamics = STATIONARY
    devices: Tuple[DeviceProfile, ...] = (REFERENCE_DEVICE,)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_archetypes < 2:
            raise ValueError("need >= 2 archetypes for cluster structure")
        if self.num_subjects < self.num_archetypes:
            raise ValueError("need at least one subject per archetype")
        if self.maps_per_subject < 2 or self.windows_per_map < 1:
            raise ValueError("need >= 2 maps and >= 1 window per map")
        if self.num_features < 3:
            raise ValueError("need >= 3 features")
        if self.label_geometry not in ("independent", "circumplex"):
            raise ValueError(
                f"unknown label_geometry {self.label_geometry!r}"
            )
        if self.archetype_gain_spread < 0:
            raise ValueError("archetype_gain_spread must be >= 0")


@lru_cache(maxsize=16)
def archetype_means(config: FeatureSpaceConfig) -> np.ndarray:
    """(A, F) archetype mean bank — a pure function of the config.

    Memoized per process (configs are frozen/hashable and the bank is
    read-only), so streaming 100k subjects re-derives it once, not
    100k times.
    """
    rng = population_rng(config.seed, tag=_ARCHETYPE_TAG)
    directions = rng.standard_normal(
        (config.num_archetypes, config.num_features)
    )
    norms = np.linalg.norm(directions, axis=1, keepdims=True)
    return config.separation * directions / np.maximum(norms, 1e-12)


@lru_cache(maxsize=16)
def label_directions(config: FeatureSpaceConfig) -> np.ndarray:
    """(C, F) unit class directions under the configured geometry."""
    rng = population_rng(config.seed, tag=_LABEL_TAG)
    num_classes = config.label_space.num_classes
    if config.label_geometry == "circumplex":
        # Two latent axes span the valence/arousal plane; class c sits
        # at angle 2*pi*c/C, so opposite quadrants shift features in
        # opposite directions — the circumplex structure itself.
        axes = rng.standard_normal((2, config.num_features))
        axes /= np.maximum(
            np.linalg.norm(axes, axis=1, keepdims=True), 1e-12
        )
        angles = 2.0 * np.pi * np.arange(num_classes) / num_classes
        directions = (
            np.cos(angles)[:, None] * axes[0][None, :]
            + np.sin(angles)[:, None] * axes[1][None, :]
        )
    else:
        directions = rng.standard_normal((num_classes, config.num_features))
    norms = np.linalg.norm(directions, axis=1, keepdims=True)
    return directions / np.maximum(norms, 1e-12)


@lru_cache(maxsize=16)
def archetype_gains(config: FeatureSpaceConfig) -> np.ndarray:
    """(A,) label-expression gain per archetype (>= 0.1)."""
    if config.archetype_gain_spread == 0.0:
        return np.ones(config.num_archetypes)
    rng = population_rng(config.seed, tag=_GAIN_TAG)
    gains = 1.0 + config.archetype_gain_spread * rng.standard_normal(
        config.num_archetypes
    )
    return np.maximum(gains, 0.1)


class FeatureSpaceScenario(Scenario):
    """Archetype-structured population generated directly in feature space."""

    def __init__(self, config: FeatureSpaceConfig, chunk_size: int = 256):
        self.config = config
        super().__init__(
            name=config.name,
            label_space=config.label_space,
            num_subjects=config.num_subjects,
            seed=config.seed,
            chunk_size=chunk_size,
            num_archetypes=config.num_archetypes,
            num_features=config.num_features,
            dynamics=config.dynamics,
            devices=config.devices,
        )

    def build_config(self) -> FeatureSpaceConfig:
        return self.config

    @classmethod
    def build_subject(
        cls,
        config: FeatureSpaceConfig,
        subject_id: int,
        cache_dir: Optional[str] = None,
    ) -> ScenarioSubject:
        # Feature-space generation is cheap enough that the content
        # cache would cost more than it saves; cache_dir is accepted
        # for contract uniformity and ignored.
        del cache_dir
        dynamics = config.dynamics
        rng = subject_rng(config.seed, subject_id, generation=0)
        generation = 0
        if dynamics.churn_rate > 0.0 and rng.uniform() < dynamics.churn_rate:
            generation = 1
            rng = subject_rng(config.seed, subject_id, generation=generation)
        weights = tuple([1.0] * config.num_archetypes)
        archetype_id = archetype_for_slot(
            weights, config.num_subjects, subject_id
        )
        means = archetype_means(config)
        alpha = drift_alpha(dynamics, config.num_subjects, subject_id)
        mean = (1.0 - alpha) * means[archetype_id] + alpha * means[
            (archetype_id + 1) % config.num_archetypes
        ]
        directions = label_directions(config)
        gain = float(archetype_gains(config)[archetype_id])
        device = pick_device(config.devices, rng)

        subject_mean = mean + config.subject_jitter * rng.standard_normal(
            config.num_features
        )
        num_classes = config.label_space.num_classes
        labels = rng.permutation(
            np.tile(
                np.arange(num_classes),
                -(-config.maps_per_subject // num_classes),
            )[: config.maps_per_subject]
        )
        maps = []
        for label in labels:
            intensity = gain * float(rng.uniform(0.6, 1.4))
            windows = (
                subject_mean[None, :]
                + config.label_effect * intensity * directions[int(label)]
                + config.noise
                * rng.standard_normal(
                    (config.windows_per_map, config.num_features)
                )
            )
            maps.append(
                build_feature_map(
                    windows, label=int(label), subject_id=subject_id
                )
            )
        screened, imputed = screen_subject_maps(maps, device)
        return ScenarioSubject(
            subject_id=subject_id,
            archetype_id=archetype_id,
            maps=screened,
            device=device,
            generation=generation,
            imputed_features=imputed,
        )
