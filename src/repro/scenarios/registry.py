"""Named scenario registry: one string names a full population spec.

Benchmarks, CI smoke jobs, and the serving load generator select
populations by name + scale instead of constructing configs by hand,
so "run the cross-scenario matrix" is a loop over
:func:`available_scenarios`.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .base import Scenario
from .circumplex import circumplex_scenario
from .stress import stress_scenario
from .wemac import wemac_scenario

#: Subject counts per symbolic scale, for the feature-space scenarios.
#: (WEMAC interprets scales through its own config variants.)
SCALES: Dict[str, int] = {
    "tiny": 12,
    "small": 48,
    "bench": 400,
    "scale": 100_000,
}


def _wemac(scale: str, seed: int, **overrides) -> Scenario:
    wemac_scale = {"tiny": "tiny", "small": "small"}.get(scale, "small")
    num_subjects = overrides.pop("num_subjects", None)
    if num_subjects is None and scale in ("bench", "scale"):
        # Mechanistic simulation is too expensive at 100k; the bench
        # scale caps WEMAC at a population where full physiological
        # simulation still finishes in seconds.
        num_subjects = 48
    return wemac_scenario(
        scale=wemac_scale, seed=seed, num_subjects=num_subjects, **overrides
    )


def _circumplex(scale: str, seed: int, **overrides) -> Scenario:
    return circumplex_scenario(
        num_subjects=SCALES[scale], seed=seed, **overrides
    )


def _stress(scale: str, seed: int, **overrides) -> Scenario:
    return stress_scenario(num_subjects=SCALES[scale], seed=seed, **overrides)


SCENARIO_FACTORIES: Dict[str, Callable[..., Scenario]] = {
    "wemac": _wemac,
    "circumplex": _circumplex,
    "stress": _stress,
}


def available_scenarios() -> List[str]:
    """Registered scenario names, in deterministic order."""
    return sorted(SCENARIO_FACTORIES)


def get_scenario(name: str, scale: str = "tiny", seed: int = 0, **overrides):
    """Build a registered scenario at a symbolic scale."""
    if name not in SCENARIO_FACTORIES:
        raise KeyError(
            f"unknown scenario {name!r}; available: {available_scenarios()}"
        )
    if scale not in SCALES:
        raise KeyError(f"unknown scale {scale!r}; available: {sorted(SCALES)}")
    return SCENARIO_FACTORIES[name](scale, seed, **overrides)
