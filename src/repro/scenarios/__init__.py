"""Streamed population scenarios: typed specs, lazy subjects, dynamics.

The :class:`~repro.scenarios.base.Scenario` protocol is the population
interface the rest of the stack consumes: WEMAC fear/no-fear, circumplex
valence/arousal, and wearable stress detection are all one protocol
implementation apart, and every consumer — extraction, clustering,
validation, serving load generation — streams subjects in bounded
chunks instead of materializing populations (lint rule RPR021 keeps
whole-population views confined to this package).
"""

from .adapter import base_corpus, population_records
from .base import (
    FEATURE_BLOCKS,
    MODALITIES,
    REFERENCE_DEVICE,
    STATIONARY,
    DeviceProfile,
    LabelSpace,
    MaterializedPopulation,
    PopulationDynamics,
    Scenario,
    ScenarioSubject,
    archetype_counts,
    archetype_for_slot,
    scenario_fingerprint,
    subject_rng,
)
from .circumplex import CIRCUMPLEX_LABELS, circumplex_scenario
from .devices import mask_missing_modalities, screen_subject_maps
from .pipeline import (
    ScenarioScore,
    ScenarioStreamReport,
    nmi_from_contingency,
    purity_from_contingency,
    run_scenario_stream,
)
from .registry import (
    SCALES,
    SCENARIO_FACTORIES,
    available_scenarios,
    get_scenario,
)
from .stress import MIXED_WEARABLES, STRESS_LABELS, stress_scenario
from .synthetic import FeatureSpaceConfig, FeatureSpaceScenario
from .wemac import (
    FEAR_LABELS,
    WEMACScenario,
    WEMACScenarioConfig,
    blend_archetypes,
    wemac_scenario,
)

__all__ = [
    "FEATURE_BLOCKS",
    "MODALITIES",
    "REFERENCE_DEVICE",
    "STATIONARY",
    "DeviceProfile",
    "LabelSpace",
    "MaterializedPopulation",
    "PopulationDynamics",
    "Scenario",
    "ScenarioSubject",
    "archetype_counts",
    "archetype_for_slot",
    "scenario_fingerprint",
    "subject_rng",
    "mask_missing_modalities",
    "screen_subject_maps",
    "population_records",
    "base_corpus",
    "ScenarioScore",
    "ScenarioStreamReport",
    "run_scenario_stream",
    "purity_from_contingency",
    "nmi_from_contingency",
    "SCALES",
    "SCENARIO_FACTORIES",
    "available_scenarios",
    "get_scenario",
    "CIRCUMPLEX_LABELS",
    "circumplex_scenario",
    "MIXED_WEARABLES",
    "STRESS_LABELS",
    "stress_scenario",
    "FeatureSpaceConfig",
    "FeatureSpaceScenario",
    "FEAR_LABELS",
    "WEMACScenario",
    "WEMACScenarioConfig",
    "blend_archetypes",
    "wemac_scenario",
]
