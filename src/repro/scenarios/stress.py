"""On-device stress-detection scenario (binary baseline/stress).

Woodward et al. (arXiv 2004.01603) run the cluster-then-personalize
recipe for wearable stress detection.  This scenario mirrors that
setting: a binary label space, three response archetypes (reactive,
resilient, anxious) whose *label expression strength* differs
(``archetype_gain_spread``) — resilient responders barely separate
baseline from stress while anxious responders over-express it — which
is exactly the structure that makes one general model underfit and
per-cluster models win.  Device heterogeneity defaults to a mixed
wearable fleet with a GSR-less band in the mix.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .base import (
    STATIONARY,
    DeviceProfile,
    LabelSpace,
    PopulationDynamics,
)
from .synthetic import FeatureSpaceConfig, FeatureSpaceScenario

STRESS_LABELS = LabelSpace(name="stress", classes=("baseline", "stress"))

#: A mixed wearable fleet: a reference chest strap, a wristband at half
#: BVP rate, and a budget band with no electrodermal channel at all.
MIXED_WEARABLES: Tuple[DeviceProfile, ...] = (
    DeviceProfile(name="chest_reference", weight=2.0),
    DeviceProfile(
        name="wristband", rate_scales=(0.5, 1.0, 1.0), weight=2.0
    ),
    DeviceProfile(
        name="budget_band",
        rate_scales=(0.5, 1.0, 0.5),
        missing_modalities=("gsr",),
        weight=1.0,
    ),
)


def stress_scenario(
    num_subjects: int = 48,
    seed: int = 0,
    maps_per_subject: int = 8,
    windows_per_map: int = 4,
    chunk_size: int = 256,
    dynamics: Optional[PopulationDynamics] = None,
    devices: Optional[Tuple[DeviceProfile, ...]] = None,
    name: Optional[str] = None,
) -> FeatureSpaceScenario:
    """A streamed binary stress population on a heterogeneous fleet.

    ``devices=None`` selects the mixed wearable fleet; pass
    ``(REFERENCE_DEVICE,)`` for a homogeneous population.
    """
    if dynamics is None:
        dynamics = STATIONARY
    config = FeatureSpaceConfig(
        name=name if name is not None else "stress",
        label_space=STRESS_LABELS,
        num_subjects=num_subjects,
        num_archetypes=3,
        maps_per_subject=maps_per_subject,
        windows_per_map=windows_per_map,
        label_effect=2.5,
        archetype_gain_spread=0.45,
        dynamics=dynamics,
        devices=devices if devices is not None else MIXED_WEARABLES,
        seed=seed,
    )
    return FeatureSpaceScenario(config, chunk_size=chunk_size)
