"""Circumplex valence/arousal scenario (four affect quadrants).

The deep-seeded clustering line of work (arXiv 2308.09013) runs the
same cluster-then-adapt recipe on circumplex affect labels instead of
binary fear.  This scenario reproduces that label space: four classes
at the quadrants of the valence/arousal plane, realized as angles on a
2D latent plane embedded in the 123-feature space (see
``label_geometry="circumplex"`` in :mod:`.synthetic`), with archetype
cluster structure orthogonal to the label plane.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .base import (
    REFERENCE_DEVICE,
    STATIONARY,
    DeviceProfile,
    LabelSpace,
    PopulationDynamics,
)
from .synthetic import FeatureSpaceConfig, FeatureSpaceScenario

#: Quadrants of the valence/arousal plane, counter-clockwise from
#: high-valence/high-arousal (excited) to low-valence/low-arousal (sad).
CIRCUMPLEX_LABELS = LabelSpace(
    name="circumplex",
    classes=(
        "high_valence_high_arousal",
        "low_valence_high_arousal",
        "low_valence_low_arousal",
        "high_valence_low_arousal",
    ),
)


def circumplex_scenario(
    num_subjects: int = 64,
    seed: int = 0,
    maps_per_subject: int = 8,
    windows_per_map: int = 4,
    num_archetypes: int = 4,
    chunk_size: int = 256,
    dynamics: Optional[PopulationDynamics] = None,
    devices: Optional[Tuple[DeviceProfile, ...]] = None,
    name: Optional[str] = None,
) -> FeatureSpaceScenario:
    """A streamed circumplex valence/arousal population."""
    if dynamics is None:
        dynamics = STATIONARY
    if devices is None:
        devices = (REFERENCE_DEVICE,)
    config = FeatureSpaceConfig(
        name=name if name is not None else "circumplex",
        label_space=CIRCUMPLEX_LABELS,
        num_subjects=num_subjects,
        num_archetypes=num_archetypes,
        maps_per_subject=maps_per_subject,
        windows_per_map=windows_per_map,
        label_geometry="circumplex",
        dynamics=dynamics,
        devices=devices,
        seed=seed,
    )
    return FeatureSpaceScenario(config, chunk_size=chunk_size)
