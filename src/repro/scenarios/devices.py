"""Device-heterogeneity screening for streamed subjects.

A :class:`~repro.scenarios.base.DeviceProfile` with missing modalities
produces feature maps whose dead blocks are non-finite.  Rather than
silently zeroing them, the screen routes every map through the
resilience guards — :func:`~repro.resilience.guards.screen_features`
locates the dead entries and
:func:`~repro.resilience.guards.impute_features` fills them — so device
gaps flow through the exact machinery a production fault would, and the
imputation count is recorded on the subject.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..resilience.guards import impute_features, screen_features
from ..signals.feature_map import FeatureMap
from .base import FEATURE_BLOCKS, DeviceProfile


def mask_missing_modalities(
    values: np.ndarray, device: DeviceProfile
) -> np.ndarray:
    """NaN out the feature blocks of modalities the device lacks."""
    masked = np.asarray(values, dtype=np.float64).copy()
    for modality in device.missing_modalities:
        masked[FEATURE_BLOCKS[modality], :] = np.nan
    return masked


def screen_subject_maps(
    maps: Sequence[FeatureMap], device: DeviceProfile, fill: float = 0.0
) -> Tuple[List[FeatureMap], int]:
    """Screen + impute every map for a device; returns (maps, imputed).

    With a fully-equipped device this is the identity (zero copies of
    the guard path are spent on the common case).  Otherwise each map's
    dead blocks are masked, located by the feature screen, and imputed
    with ``fill`` — mirroring the degradation policy's "impute a dead
    modality" arm — and the total imputed entry count is returned for
    the subject's accounting.
    """
    if not device.missing_modalities:
        return list(maps), 0
    screened: List[FeatureMap] = []
    imputed = 0
    for fmap in maps:
        masked = mask_missing_modalities(fmap.values, device)
        flat = masked.ravel()
        report = screen_features(flat)
        clean = impute_features(flat, report.bad_indices, fill=fill)
        imputed += len(report.bad_indices)
        screened.append(
            FeatureMap(
                clean.reshape(masked.shape),
                label=fmap.label,
                subject_id=fmap.subject_id,
            )
        )
    return screened, imputed
