"""Typed scenario protocol: lazily streamed synthetic populations.

A :class:`Scenario` describes a *population*, not a dataset: a label
space, a modality/sampling-rate profile, device heterogeneity, and
population dynamics (archetype drift, churn), plus a pure per-subject
generator.  Subjects are produced on demand — ``subject(i)`` is O(1)
random access because every subject draws from its own
``SeedSequence(seed, spawn_key=(subject_id, generation))`` stream — so
a 100k-subject population can flow through extraction, clustering, and
scoring in bounded chunks without ever existing in memory at once.

The streaming contract is load-bearing: downstream layers consume
``iter_subjects()`` / ``iter_chunks()`` and must not materialize the
whole population (lint rule RPR021 confines ``list(iter_subjects())``-
style calls to this package).  :meth:`Scenario.materialize` is the one
sanctioned whole-population view, for small corpora and for the
bit-identity tests that pin streamed ≡ materialized.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..orchestration.context import normalize_cache_dir, resolve_executor
from ..runtime.executor import Executor
from ..signals.feature_map import FeatureMap, subject_signature
from ..signals.features import NUM_FEATURES

#: Modalities every scenario speaks, in feature-block order.
MODALITIES: Tuple[str, ...] = ("bvp", "gsr", "skt")

#: Contiguous slices of the 123-feature vector owned by each modality
#: (84 BVP + 34 GSR + 5 SKT; see ``repro.signals.features``).
FEATURE_BLOCKS: Dict[str, slice] = {
    "bvp": slice(0, 84),
    "gsr": slice(84, 118),
    "skt": slice(118, NUM_FEATURES),
}

#: Spawn-key tag reserved for population-level (non-subject) streams.
#: Subject ids are always < 2**31, so the tag can never collide.
POPULATION_KEY = 1 << 31


@dataclass(frozen=True)
class LabelSpace:
    """The classes a scenario labels its feature maps with."""

    name: str
    classes: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.classes) < 2:
            raise ValueError(
                f"label space {self.name!r} needs >= 2 classes, "
                f"got {self.classes!r}"
            )
        if len(set(self.classes)) != len(self.classes):
            raise ValueError(f"duplicate classes in {self.classes!r}")

    @property
    def num_classes(self) -> int:
        return len(self.classes)


@dataclass(frozen=True)
class DeviceProfile:
    """One device population: sampling-rate scales + dead modalities.

    ``rate_scales`` multiplies the scenario's reference (BVP, GSR, SKT)
    sampling rates — a cheap wristband might sample BVP at half rate.
    ``missing_modalities`` lists channels the device does not record at
    all; their feature blocks are screened and imputed by
    ``repro.resilience.guards`` rather than silently zeroed.
    """

    name: str = "reference"
    rate_scales: Tuple[float, float, float] = (1.0, 1.0, 1.0)
    missing_modalities: Tuple[str, ...] = ()
    weight: float = 1.0

    def __post_init__(self) -> None:
        if len(self.rate_scales) != len(MODALITIES):
            raise ValueError("rate_scales must have one entry per modality")
        if min(self.rate_scales) <= 0:
            raise ValueError("rate_scales must be positive")
        unknown = set(self.missing_modalities) - set(MODALITIES)
        if unknown:
            raise ValueError(f"unknown modalities {sorted(unknown)}")
        if len(self.missing_modalities) >= len(MODALITIES):
            raise ValueError("a device must record at least one modality")
        if self.weight <= 0:
            raise ValueError("device weight must be positive")


#: The default single-device fleet: every subject on reference hardware.
REFERENCE_DEVICE = DeviceProfile()


@dataclass(frozen=True)
class PopulationDynamics:
    """Non-stationarity knobs for a streamed population.

    ``archetype_drift`` linearly interpolates late-population subjects
    toward the *next* archetype's parameters (0 = stationary, 1 = the
    final subject sits fully on the neighbouring archetype) — the slow
    population-composition shift a long-lived deployment sees.
    ``churn_rate`` is the probability that a subject slot has been
    vacated and re-occupied by a new individual (generation > 0), drawn
    from the slot's own stream so the decision is pure per subject.
    """

    archetype_drift: float = 0.0
    churn_rate: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.archetype_drift <= 1.0:
            raise ValueError("archetype_drift must be in [0, 1]")
        if not 0.0 <= self.churn_rate < 1.0:
            raise ValueError("churn_rate must be in [0, 1)")

    @property
    def stationary(self) -> bool:
        return self.archetype_drift == 0.0 and self.churn_rate == 0.0


#: Stationary, churn-free population (the default).
STATIONARY = PopulationDynamics()


@dataclass
class ScenarioSubject:
    """One streamed subject: labelled maps plus generation ground truth."""

    subject_id: int
    archetype_id: int
    maps: List[FeatureMap]
    device: DeviceProfile = REFERENCE_DEVICE
    #: 0 for the slot's original occupant; >0 after churn replacement.
    generation: int = 0
    #: Feature entries the device screen imputed (missing modalities).
    imputed_features: int = 0

    @property
    def labels(self) -> np.ndarray:
        return np.array([m.label for m in self.maps], dtype=np.int64)

    def signature(self) -> np.ndarray:
        """The subject's clustering signature (mean feature vector)."""
        return subject_signature(self.maps)


def subject_rng(
    seed: int, subject_id: int, generation: int = 0
) -> np.random.Generator:
    """The subject's own RNG stream — pure O(1) random access.

    ``SeedSequence(seed, spawn_key=(subject_id, generation))`` gives
    every (slot, generation) pair a statistically independent stream
    that does not depend on how many other subjects were generated
    before it, which is what makes streamed generation bit-identical to
    materialized generation at any chunk size.
    """
    key = (int(subject_id), int(generation))
    return np.random.default_rng(np.random.SeedSequence(seed, spawn_key=key))


def population_rng(seed: int, tag: int = 0) -> np.random.Generator:
    """A population-level stream (archetype banks, label geometry)."""
    return np.random.default_rng(
        np.random.SeedSequence(seed, spawn_key=(POPULATION_KEY, int(tag)))
    )


def archetype_counts(weights: Sequence[float], num_subjects: int) -> np.ndarray:
    """Archetype slot counts for a weighted plan (>=1 slot each).

    Mirrors the WEMAC corpus plan arithmetic so a contiguous-block
    assignment can be computed in O(num_archetypes) per subject instead
    of building the whole plan list.
    """
    w = np.asarray(weights, dtype=np.float64)
    if w.size < 1 or np.min(w) <= 0:
        raise ValueError("archetype weights must be positive")
    if num_subjects < w.size:
        raise ValueError(
            f"need at least {w.size} subjects (one per archetype), "
            f"got {num_subjects}"
        )
    w = w / w.sum()
    counts = np.floor(w * num_subjects).astype(int)
    counts = np.maximum(counts, 1)
    while counts.sum() < num_subjects:
        counts[int(np.argmax(w - counts / num_subjects))] += 1
    while counts.sum() > num_subjects:
        counts[int(np.argmax(counts))] -= 1
    return counts


def archetype_for_slot(
    weights: Sequence[float], num_subjects: int, subject_id: int
) -> int:
    """The archetype owning a population slot under a contiguous plan."""
    if not 0 <= subject_id < num_subjects:
        raise ValueError(
            f"subject_id {subject_id} outside population [0, {num_subjects})"
        )
    bounds = np.cumsum(archetype_counts(weights, num_subjects))
    return int(np.searchsorted(bounds, subject_id, side="right"))


def drift_alpha(
    dynamics: PopulationDynamics, num_subjects: int, subject_id: int
) -> float:
    """How far this slot has drifted toward the next archetype, in [0, 1]."""
    if dynamics.archetype_drift == 0.0 or num_subjects <= 1:
        return 0.0
    position = subject_id / (num_subjects - 1)
    return float(dynamics.archetype_drift * position)


def _generate_unit(args: Tuple) -> ScenarioSubject:
    """Executor work unit: build one subject from (class, config, id, cache).

    Module-level by construction (RPR016): the scenario *class* travels
    with the unit (classes pickle by reference), so chunk generation
    fans out across processes while staying bit-identical to serial.
    """
    scenario_cls, config, subject_id, cache_dir = args
    return scenario_cls.build_subject(config, subject_id, cache_dir=cache_dir)


@dataclass
class MaterializedPopulation:
    """The sanctioned whole-population view of a (small) scenario."""

    name: str
    subjects: List[ScenarioSubject] = field(default_factory=list)

    def __repro_content__(self) -> Tuple:
        return (
            "MaterializedPopulation",
            self.name,
            tuple(
                (
                    s.subject_id,
                    s.archetype_id,
                    s.generation,
                    s.device.name,
                    tuple(
                        (m.values, int(m.label), int(m.subject_id))
                        for m in s.maps
                    ),
                )
                for s in self.subjects
            ),
        )

    @property
    def num_subjects(self) -> int:
        return len(self.subjects)

    @property
    def subject_ids(self) -> List[int]:
        return [s.subject_id for s in self.subjects]

    def all_maps(self) -> List[FeatureMap]:
        return [m for s in self.subjects for m in s.maps]

    def maps_by_subject(self) -> Dict[int, List[FeatureMap]]:
        return {s.subject_id: list(s.maps) for s in self.subjects}

    def archetype_assignment(self) -> Dict[int, int]:
        """Ground-truth latent archetype per subject (validation only)."""
        return {s.subject_id: s.archetype_id for s in self.subjects}

    def summary(self) -> Dict[str, float]:
        maps = self.all_maps()
        labels = np.array([m.label for m in maps])
        return {
            "num_subjects": float(self.num_subjects),
            "num_maps": float(len(maps)),
            "num_features": float(maps[0].num_features) if maps else 0.0,
            "churned": float(sum(1 for s in self.subjects if s.generation)),
            "imputed_features": float(
                sum(s.imputed_features for s in self.subjects)
            ),
            "positive_fraction": float(labels.mean()) if labels.size else 0.0,
        }


class Scenario(ABC):
    """A lazily streamed population with typed structure.

    Subclasses provide a picklable per-subject build configuration
    (:meth:`build_config`) and a *pure* classmethod
    (:meth:`build_subject`) mapping ``(config, subject_id)`` to one
    :class:`ScenarioSubject`.  Everything else — chunked iteration,
    executor fan-out, materialization — is shared here.
    """

    def __init__(
        self,
        name: str,
        label_space: LabelSpace,
        num_subjects: int,
        seed: int = 0,
        chunk_size: int = 64,
        num_archetypes: int = 4,
        num_features: int = NUM_FEATURES,
        dynamics: PopulationDynamics = STATIONARY,
        devices: Tuple[DeviceProfile, ...] = (REFERENCE_DEVICE,),
    ):
        if num_subjects < 1:
            raise ValueError("num_subjects must be >= 1")
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if num_archetypes < 1 or num_features < 1:
            raise ValueError("num_archetypes/num_features must be >= 1")
        if not devices:
            raise ValueError("need at least one device profile")
        self.name = str(name)
        self.label_space = label_space
        self.num_subjects = int(num_subjects)
        self.seed = int(seed)
        self.chunk_size = int(chunk_size)
        self.num_archetypes = int(num_archetypes)
        self.num_features = int(num_features)
        self.dynamics = dynamics
        self.devices = tuple(devices)

    # -- the per-subject contract ------------------------------------------
    @abstractmethod
    def build_config(self) -> Any:
        """The picklable config ``build_subject`` consumes."""

    @classmethod
    @abstractmethod
    def build_subject(
        cls, config: Any, subject_id: int, cache_dir: Optional[str] = None
    ) -> ScenarioSubject:
        """Pure: one subject from its own spawned stream."""

    # -- streaming access --------------------------------------------------
    def subject(
        self, subject_id: int, cache_dir: Optional[Union[str, Path]] = None
    ) -> ScenarioSubject:
        """O(1) random access to any population slot."""
        if not 0 <= subject_id < self.num_subjects:
            raise ValueError(
                f"subject_id {subject_id} outside population "
                f"[0, {self.num_subjects})"
            )
        return type(self).build_subject(
            self.build_config(),
            subject_id,
            cache_dir=normalize_cache_dir(cache_dir),
        )

    def iter_chunks(
        self,
        chunk_size: Optional[int] = None,
        executor: Optional[Executor] = None,
        cache_dir: Optional[Union[str, Path]] = None,
    ) -> Iterator[List[ScenarioSubject]]:
        """Bounded subject chunks, generated through the executor.

        Peak memory is O(chunk_size) subjects; per-subject work units
        fan out through ``executor`` (order-preserving, so parallel
        chunks are bit-identical to serial ones).
        """
        chunk = int(chunk_size) if chunk_size is not None else self.chunk_size
        if chunk < 1:
            raise ValueError("chunk_size must be >= 1")
        executor = resolve_executor(executor)
        cache_dir = normalize_cache_dir(cache_dir)
        config = self.build_config()
        cls = type(self)
        for start in range(0, self.num_subjects, chunk):
            stop = min(start + chunk, self.num_subjects)
            units = [
                (cls, config, subject_id, cache_dir)
                for subject_id in range(start, stop)
            ]
            yield executor.map(_generate_unit, units)

    def iter_subjects(
        self,
        chunk_size: Optional[int] = None,
        executor: Optional[Executor] = None,
        cache_dir: Optional[Union[str, Path]] = None,
    ) -> Iterator[ScenarioSubject]:
        """The lazy population stream, in subject-id order."""
        for chunk in self.iter_chunks(
            chunk_size=chunk_size, executor=executor, cache_dir=cache_dir
        ):
            for subject in chunk:
                yield subject

    def materialize(
        self,
        executor: Optional[Executor] = None,
        cache_dir: Optional[Union[str, Path]] = None,
    ) -> MaterializedPopulation:
        """The sanctioned whole-population view (small scenarios only)."""
        subjects = [
            subject
            for subject in self.iter_subjects(
                executor=executor, cache_dir=cache_dir
            )
        ]
        return MaterializedPopulation(name=self.name, subjects=subjects)

    # -- bookkeeping -------------------------------------------------------
    @property
    def num_classes(self) -> int:
        return self.label_space.num_classes

    def __repro_content__(self) -> Tuple:
        return (
            "Scenario",
            type(self).__name__,
            self.name,
            self.label_space,
            self.num_subjects,
            self.seed,
            self.dynamics,
            self.devices,
        )

    def describe(self) -> Dict[str, Any]:
        """Static structure (no generation): what this population *is*."""
        return {
            "name": self.name,
            "type": type(self).__name__,
            "label_space": self.label_space.name,
            "classes": list(self.label_space.classes),
            "num_subjects": self.num_subjects,
            "num_archetypes": self.num_archetypes,
            "num_features": self.num_features,
            "chunk_size": self.chunk_size,
            "seed": self.seed,
            "archetype_drift": self.dynamics.archetype_drift,
            "churn_rate": self.dynamics.churn_rate,
            "devices": [d.name for d in self.devices],
        }


def pick_device(
    devices: Tuple[DeviceProfile, ...], rng: np.random.Generator
) -> DeviceProfile:
    """Weighted device draw from the subject's own stream."""
    if len(devices) == 1:
        return devices[0]
    weights = np.array([d.weight for d in devices], dtype=np.float64)
    probs = weights / weights.sum()
    return devices[int(rng.choice(len(devices), p=probs))]


def scenario_fingerprint(subjects) -> str:
    """SHA-256 over a subject stream's full generated content.

    Consumes the stream one subject at a time (O(1) memory), covering
    ids, archetypes, generations, devices, and every feature-map byte —
    the digest two generation paths must share to count as
    bit-identical.
    """
    import hashlib

    h = hashlib.sha256()
    for s in subjects:
        h.update(
            f"{int(s.subject_id)}:{int(s.archetype_id)}:"
            f"{int(s.generation)}:{s.device.name}:"
            f"{int(s.imputed_features)}:".encode()
        )
        for m in s.maps:
            h.update(f"{int(m.label)}:{int(m.subject_id)}:".encode())
            values = np.ascontiguousarray(
                np.asarray(m.values, dtype=np.float64)
            )
            h.update(str(values.shape).encode())
            h.update(values.tobytes())
    return h.hexdigest()
