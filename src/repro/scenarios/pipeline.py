"""Streamed generate → extract → cluster → score as a Stage graph.

Three stages with :class:`~repro.analysis.dataflow.shapeflow.ArtifactSpec`
contracts on the array edges:

* ``signature_model`` — pass 1 over the scenario stream: bounded
  signature chunks feed :class:`~repro.clustering.streaming.StreamingKMeans`
  (exact or minibatch).
* ``centers`` — the typed (k, F) center matrix projected from the
  fitted model; its spec is checked against the scoring stage's
  declared input at graph build time.
* ``scores`` — pass 2 over the (re-iterated, pure) stream: per-chunk
  assignment accumulates the archetype × cluster contingency, label
  counts, scaled inertia, and a bounded head sample for the silhouette
  — every accumulator is O(k · A + sample), never O(N).

Peak memory is bounded by the chunk size in minibatch mode and by the
(N, F) signature matrix — not the maps — in exact mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..analysis.dataflow.shapeflow import ArtifactSpec
from ..clustering.kmeans import assign_to_centers
from ..clustering.metrics import silhouette_score
from ..clustering.streaming import StreamingKMeans, StreamingKMeansResult
from ..orchestration.graph import PipelineGraph
from ..orchestration.provenance import Provenance
from ..orchestration.stage import Stage, StageContext
from ..runtime.executor import Executor
from ..signals.feature_map import signature_matrix
from .base import Scenario


def purity_from_contingency(contingency: np.ndarray) -> float:
    """Fraction of subjects whose cluster is dominated by their archetype."""
    c = np.asarray(contingency, dtype=np.float64)
    total = c.sum()
    if total == 0:
        return 0.0
    return float(c.max(axis=0).sum() / total)


def nmi_from_contingency(contingency: np.ndarray) -> float:
    """Normalized mutual information (sqrt normalization) from counts."""
    c = np.asarray(contingency, dtype=np.float64)
    total = c.sum()
    if total == 0:
        return 0.0
    p = c / total
    pa = p.sum(axis=1)
    pb = p.sum(axis=0)
    nonzero = p > 0
    outer = np.outer(pa, pb)
    mi = float(np.sum(p[nonzero] * np.log(p[nonzero] / outer[nonzero])))
    ha = float(-np.sum(pa[pa > 0] * np.log(pa[pa > 0])))
    hb = float(-np.sum(pb[pb > 0] * np.log(pb[pb > 0])))
    denom = float(np.sqrt(ha * hb))
    return mi / denom if denom > 0 else 0.0


@dataclass
class ScenarioScore:
    """Streaming accuracy/structure metrics for one scenario run."""

    scenario: str
    num_subjects: int
    k: int
    mode: str
    chunk_size: int
    contingency: np.ndarray  # (num_archetypes, k) subject counts
    label_counts: np.ndarray  # (num_classes,) map counts
    cluster_sizes: np.ndarray  # (k,) subject counts
    inertia: float  # scaled-space, summed over the stream
    archetype_purity: float
    nmi: float
    silhouette: float  # on the bounded head sample
    silhouette_sample: int
    churned_subjects: int
    imputed_features: int

    def __repro_content__(self) -> Tuple:
        return (
            "ScenarioScore",
            self.scenario,
            self.num_subjects,
            self.k,
            self.mode,
            self.chunk_size,
            self.contingency,
            self.label_counts,
            self.cluster_sizes,
        )

    def to_dict(self) -> Dict:
        """JSON-ready record for the cross-scenario accuracy matrix."""
        return {
            "scenario": self.scenario,
            "num_subjects": int(self.num_subjects),
            "k": int(self.k),
            "mode": self.mode,
            "chunk_size": int(self.chunk_size),
            "archetype_purity": round(float(self.archetype_purity), 6),
            "nmi": round(float(self.nmi), 6),
            "silhouette": round(float(self.silhouette), 6),
            "silhouette_sample": int(self.silhouette_sample),
            "inertia": round(float(self.inertia), 6),
            "cluster_sizes": [int(n) for n in self.cluster_sizes],
            "label_counts": [int(n) for n in self.label_counts],
            "churned_subjects": int(self.churned_subjects),
            "imputed_features": int(self.imputed_features),
        }


@dataclass
class ScenarioStreamReport:
    """Outcome of one streamed scenario clustering run."""

    scenario: Dict
    model: StreamingKMeansResult
    score: ScenarioScore
    provenance: Tuple[Provenance, ...] = ()
    graph: str = ""

    def __repro_content__(self) -> Tuple:
        return ("ScenarioStreamReport", self.score, self.model.centers)


def run_scenario_stream(
    scenario: Scenario,
    k: Optional[int] = None,
    mode: str = "exact",
    chunk_size: Optional[int] = None,
    n_init: int = 8,
    sample_size: int = 256,
    executor: Optional[Executor] = None,
    cache_dir: Optional[Union[str, Path]] = None,
) -> ScenarioStreamReport:
    """Generate → extract → cluster → score one scenario, streamed.

    ``k`` defaults to the scenario's archetype count.  The scenario is
    iterated twice (fit, then score); both passes re-derive subjects
    from their spawned streams, so the two passes see byte-identical
    data without either ever holding the population.
    """
    k_clusters = int(k) if k is not None else scenario.num_archetypes
    chunk = int(chunk_size) if chunk_size is not None else scenario.chunk_size
    if sample_size < 0:
        raise ValueError("sample_size must be >= 0")
    num_features = scenario.num_features
    centers_spec = ArtifactSpec(
        shape=(k_clusters, num_features), dtype="float64"
    )

    def _fit_stage(ctx: StageContext) -> StreamingKMeansResult:
        streamer = StreamingKMeans(
            k_clusters, mode=mode, n_init=n_init, seed=scenario.seed
        )
        chunks = (
            signature_matrix(subjects)
            for subjects in scenario.iter_chunks(
                chunk_size=chunk,
                executor=ctx.executor,
                cache_dir=ctx.cache_dir,
            )
        )
        fitted = streamer.fit_chunks(chunks, executor=ctx.executor)
        ctx.set_units(-(-scenario.num_subjects // chunk))
        return fitted

    def _centers_stage(
        ctx: StageContext, signature_model: StreamingKMeansResult
    ) -> np.ndarray:
        del ctx
        return np.ascontiguousarray(
            np.asarray(signature_model.centers, dtype=np.float64)
        )

    def _score_stage(
        ctx: StageContext,
        signature_model: StreamingKMeansResult,
        centers: np.ndarray,
    ) -> ScenarioScore:
        contingency = np.zeros(
            (scenario.num_archetypes, k_clusters), dtype=np.int64
        )
        label_counts = np.zeros(scenario.num_classes, dtype=np.int64)
        cluster_sizes = np.zeros(k_clusters, dtype=np.int64)
        inertia = 0.0
        churned = 0
        imputed = 0
        sample_rows: List[np.ndarray] = []
        sample_labels: List[int] = []
        sampled = 0
        for subjects in scenario.iter_chunks(
            chunk_size=chunk, executor=ctx.executor, cache_dir=ctx.cache_dir
        ):
            rows = signature_matrix(subjects)
            scaled = signature_model.scale(rows)
            labels = assign_to_centers(scaled, centers)
            delta = scaled - centers[labels]
            inertia += float(np.sum(delta * delta))
            for subject, cluster in zip(subjects, labels):
                contingency[subject.archetype_id, int(cluster)] += 1
                cluster_sizes[int(cluster)] += 1
                churned += 1 if subject.generation else 0
                imputed += subject.imputed_features
                for label in subject.labels:
                    label_counts[int(label)] += 1
            if sampled < sample_size:
                take = min(sample_size - sampled, rows.shape[0])
                sample_rows.append(scaled[:take])
                sample_labels.extend(int(c) for c in labels[:take])
                sampled += take
        silhouette = 0.0
        if sample_rows and len(set(sample_labels)) >= 2:
            silhouette = silhouette_score(
                np.concatenate(sample_rows, axis=0),
                np.asarray(sample_labels),
            )
        return ScenarioScore(
            scenario=scenario.name,
            num_subjects=scenario.num_subjects,
            k=k_clusters,
            mode=mode,
            chunk_size=chunk,
            contingency=contingency,
            label_counts=label_counts,
            cluster_sizes=cluster_sizes,
            inertia=inertia,
            archetype_purity=purity_from_contingency(contingency),
            nmi=nmi_from_contingency(contingency),
            silhouette=float(silhouette),
            silhouette_sample=sampled,
            churned_subjects=churned,
            imputed_features=imputed,
        )

    graph = PipelineGraph(
        f"scenario_stream_{scenario.name}",
        [
            Stage(
                name="signature_model",
                fn=_fit_stage,
                config=scenario.describe(),
                seed=scenario.seed,
            ),
            Stage(
                name="centers",
                fn=_centers_stage,
                requires=("signature_model",),
                config=scenario.describe(),
                seed=scenario.seed,
                output_spec=centers_spec,
            ),
            Stage(
                name="scores",
                fn=_score_stage,
                requires=("signature_model", "centers"),
                input_specs={"centers": centers_spec},
                config=scenario.describe(),
                seed=scenario.seed,
            ),
        ],
    )
    run = graph.run(executor=executor, cache_dir=cache_dir, seed=scenario.seed)
    return ScenarioStreamReport(
        scenario=scenario.describe(),
        model=run.value("signature_model"),
        score=run.value("scores"),
        provenance=tuple(
            run.provenance(name)
            for name in ("signature_model", "centers", "scores")
        ),
        graph=graph.name,
    )
