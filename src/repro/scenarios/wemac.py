"""The WEMAC corpus as one Scenario implementation.

Same mechanistic simulator, stimuli, and extraction as
:mod:`repro.datasets.wemac` — but re-keyed for streaming: every subject
draws from its own ``SeedSequence(seed, spawn_key=(subject_id,
generation))`` stream instead of one serial corpus stream, so slot *i*
is a pure O(1) function of the config.  (The legacy
:class:`~repro.datasets.wemac.SyntheticWEMAC` generator keeps its
serial stream untouched — its corpus bytes are pinned by golden
fingerprints — which means the streamed corpus is a *different, equally
valid* draw of the same population model.)

On top of the legacy structure the scenario adds population dynamics
(archetype drift toward the neighbouring archetype, churned slots) and
device heterogeneity (scaled sampling rates, missing modalities
screened by the resilience guards).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Optional, Tuple

from ..datasets.stimuli import balanced_schedule
from ..datasets.subject import (
    ARCHETYPES,
    NUM_ARCHETYPES,
    ArchetypeParams,
    PhysiologicalSimulator,
    sample_subject,
)
from ..datasets.wemac import WEMACConfig
from ..signals.feature_map import SubjectExtractionUnit, extract_subject_maps
from .base import (
    REFERENCE_DEVICE,
    STATIONARY,
    DeviceProfile,
    LabelSpace,
    PopulationDynamics,
    Scenario,
    ScenarioSubject,
    archetype_for_slot,
    drift_alpha,
    pick_device,
    subject_rng,
)
from .devices import screen_subject_maps

#: Binary fear / non-fear labels, as in the paper.
FEAR_LABELS = LabelSpace(name="fear", classes=("non_fear", "fear"))


def blend_archetypes(
    base: ArchetypeParams, toward: ArchetypeParams, alpha: float
) -> ArchetypeParams:
    """Linear interpolation of every physiological parameter."""
    if alpha <= 0.0:
        return base
    updates = {}
    for f in fields(ArchetypeParams):
        value = getattr(base, f.name)
        if isinstance(value, float):
            other = float(getattr(toward, f.name))
            updates[f.name] = (1.0 - alpha) * value + alpha * other
    return replace(base, **updates)


@dataclass(frozen=True)
class WEMACScenarioConfig:
    """Everything one subject build needs, picklable into work units."""

    base: WEMACConfig
    dynamics: PopulationDynamics = STATIONARY
    devices: Tuple[DeviceProfile, ...] = (REFERENCE_DEVICE,)


class WEMACScenario(Scenario):
    """Streamed WEMAC-compatible population (fear / non-fear)."""

    def __init__(
        self,
        config: Optional[WEMACConfig] = None,
        name: str = "wemac",
        chunk_size: int = 16,
        dynamics: PopulationDynamics = STATIONARY,
        devices: Tuple[DeviceProfile, ...] = (REFERENCE_DEVICE,),
    ):
        self.config = config if config is not None else WEMACConfig()
        super().__init__(
            name=name,
            label_space=FEAR_LABELS,
            num_subjects=self.config.num_subjects,
            seed=self.config.seed,
            chunk_size=chunk_size,
            num_archetypes=NUM_ARCHETYPES,
            dynamics=dynamics,
            devices=devices,
        )

    def build_config(self) -> WEMACScenarioConfig:
        return WEMACScenarioConfig(
            base=self.config, dynamics=self.dynamics, devices=self.devices
        )

    @classmethod
    def build_subject(
        cls,
        config: WEMACScenarioConfig,
        subject_id: int,
        cache_dir: Optional[str] = None,
    ) -> ScenarioSubject:
        base = config.base
        dynamics = config.dynamics
        rng = subject_rng(base.seed, subject_id, generation=0)
        generation = 0
        if dynamics.churn_rate > 0.0 and rng.uniform() < dynamics.churn_rate:
            # The slot was vacated; its new occupant draws from a fresh
            # stream so the replacement is a genuinely different person.
            generation = 1
            rng = subject_rng(base.seed, subject_id, generation=generation)
        archetype_id = archetype_for_slot(
            base.archetype_weights, base.num_subjects, subject_id
        )
        alpha = drift_alpha(dynamics, base.num_subjects, subject_id)
        params = blend_archetypes(
            ARCHETYPES[archetype_id],
            ARCHETYPES[(archetype_id + 1) % NUM_ARCHETYPES],
            alpha,
        )
        device = pick_device(config.devices, rng)
        rates = (
            base.fs_bvp * device.rate_scales[0],
            base.fs_gsr * device.rate_scales[1],
            base.fs_skt * device.rate_scales[2],
        )
        profile = sample_subject(
            subject_id,
            archetype_id,
            rng,
            jitter=base.subject_jitter,
            base_params=params,
        )
        schedule = balanced_schedule(
            base.trials_per_subject, base.trial_seconds, rng
        )
        simulator = PhysiologicalSimulator(*rates)
        raw_trials = simulator.simulate_schedule(profile, schedule, rng)
        result = extract_subject_maps(
            SubjectExtractionUnit(
                subject_id=subject_id,
                trials=list(raw_trials),
                labels=[t.label for t in schedule.trials],
                windows_per_map=base.windows_per_map,
                rates=rates,
                window_seconds=base.window_seconds,
                cache_dir=cache_dir,
            )
        )
        maps, imputed = screen_subject_maps(result.maps, device)
        return ScenarioSubject(
            subject_id=subject_id,
            archetype_id=archetype_id,
            maps=maps,
            device=device,
            generation=generation,
            imputed_features=imputed,
        )


def wemac_scenario(
    scale: str = "tiny",
    seed: int = 0,
    num_subjects: Optional[int] = None,
    chunk_size: int = 16,
    dynamics: Optional[PopulationDynamics] = None,
    devices: Optional[Tuple[DeviceProfile, ...]] = None,
) -> WEMACScenario:
    """Registry factory for the streamed WEMAC population."""
    if dynamics is None:
        dynamics = STATIONARY
    if devices is None:
        devices = (REFERENCE_DEVICE,)
    if scale == "tiny":
        config = WEMACConfig.tiny(seed=seed)
    elif scale == "small":
        config = WEMACConfig.small(seed=seed)
    elif scale == "full":
        config = WEMACConfig(seed=seed)
    else:
        raise ValueError(f"unknown WEMAC scale {scale!r}")
    if num_subjects is not None:
        config = replace(config, num_subjects=int(num_subjects))
    return WEMACScenario(
        config,
        chunk_size=chunk_size,
        dynamics=dynamics,
        devices=devices,
    )
