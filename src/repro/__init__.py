"""repro: reproduction of "Solving the Cold-Start Problem for the Edge:
Clustering and Adaptive Deep Learning for Emotion Detection" (DATE 2025).

Subpackages
-----------
``repro.nn``
    From-scratch numpy deep-learning framework (Conv2D, LSTM, Adam, ...).
``repro.signals``
    Physiological DSP and the 123-feature / feature-map front end.
``repro.datasets``
    Synthetic WEMAC-compatible corpus (archetype-structured volunteers).
``repro.clustering``
    k-means, internal indices, global clustering (GC), cold-start CA.
``repro.core``
    The CLEAR methodology: pipeline, CNN-LSTM, Table-I validation harness.
``repro.edge``
    Quantization + device cost models for the Table-II edge experiments.
``repro.analysis``
    Static model/graph validator + repo-invariant lint engine.
``repro.resilience``
    Fault-injection harness + graceful-degradation runtime (typed
    errors in :mod:`repro.errors`).
``repro.runtime``
    Deterministic serial/parallel executors + content-addressed cache
    for feature maps and trained-fold checkpoints.
``repro.orchestration``
    Typed Stage/Artifact pipeline graphs with provenance capture; the
    single injection point for executors and caches.
``repro.scenarios``
    Streamed populations: lazy chunked subject generation (bit-identical
    to materialized), population dynamics, device fleets, streaming
    k-means over scenario signature streams.
``repro.serving``
    Fleet-scale micro-batched online inference with a deterministic
    load generator (imported lazily; see :mod:`repro.serving`).
"""

__version__ = "1.0.0"

from . import (
    analysis,
    clustering,
    core,
    datasets,
    edge,
    errors,
    experiments,
    nn,
    orchestration,
    resilience,
    runtime,
    scenarios,
    signals,
    viz,
)

__all__ = [
    "analysis",
    "nn",
    "signals",
    "datasets",
    "clustering",
    "core",
    "edge",
    "errors",
    "experiments",
    "orchestration",
    "resilience",
    "runtime",
    "scenarios",
    "viz",
    "__version__",
]
