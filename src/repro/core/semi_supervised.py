"""Semi-supervised personalization: pseudo-label fine-tuning.

The paper's future-work section targets "further optimizing ... model
personalisation processes to reduce the need for labelled data".  This
module implements the natural next step: after cold-start assignment,
the cluster checkpoint *pseudo-labels* the new user's unlabeled maps;
confident predictions become a synthetic training set (optionally mixed
with any real labels available) and the checkpoint is fine-tuned on it.
Zero or near-zero labelling effort from the user.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..nn.activations import softmax
from ..signals.feature_map import FeatureMap, maps_to_arrays
from .config import FineTuneConfig
from .trainer import TrainedModel, fine_tune


@dataclass(frozen=True)
class PseudoLabelConfig:
    """Knobs for pseudo-label fine-tuning.

    Attributes
    ----------
    confidence_threshold:
        Minimum softmax probability for a prediction to become a
        pseudo-label.  Below it, the map is discarded (training on
        uncertain labels amplifies errors).  The compact CNN-LSTM is
        trained with early stopping and produces conservative softmax
        scores, so the default sits just above the binary chance level.
    max_fraction_per_class:
        Cap on how much of the pseudo-labelled set one class may
        occupy, guarding against the collapse failure mode where the
        checkpoint confidently predicts a single class.
    fine_tuning:
        The underlying fine-tuning schedule.
    """

    confidence_threshold: float = 0.6
    max_fraction_per_class: float = 0.8
    fine_tuning: FineTuneConfig = FineTuneConfig()

    def __post_init__(self) -> None:
        if not 0.5 <= self.confidence_threshold < 1.0:
            raise ValueError(
                "confidence_threshold must be in [0.5, 1.0), got "
                f"{self.confidence_threshold}"
            )
        if not 0.5 <= self.max_fraction_per_class <= 1.0:
            raise ValueError(
                "max_fraction_per_class must be in [0.5, 1.0], got "
                f"{self.max_fraction_per_class}"
            )


@dataclass
class PseudoLabelReport:
    """What pseudo-labelling selected (for diagnostics)."""

    num_candidates: int
    num_selected: int
    mean_confidence: float
    class_counts: Tuple[int, ...]


def pseudo_label_maps(
    model: TrainedModel,
    unlabeled_maps: Sequence[FeatureMap],
    config: Optional[PseudoLabelConfig] = None,
) -> Tuple[List[FeatureMap], PseudoLabelReport]:
    """Select confidently-predicted maps and attach predicted labels."""
    config = config or PseudoLabelConfig()
    unlabeled_maps = list(unlabeled_maps)
    if not unlabeled_maps:
        raise ValueError("need at least one unlabeled map")

    x, _ = maps_to_arrays(model.normalizer.transform_all(unlabeled_maps))
    probs = softmax(model.model.predict(x), axis=1)
    confidences = probs.max(axis=1)
    predictions = probs.argmax(axis=1)

    order = np.argsort(-confidences)
    num_classes = probs.shape[1]
    cap = max(1, int(np.ceil(config.max_fraction_per_class * len(unlabeled_maps))))
    selected: List[FeatureMap] = []
    class_counts = [0] * num_classes
    kept_conf: List[float] = []
    for idx in order:
        if confidences[idx] < config.confidence_threshold:
            break
        label = int(predictions[idx])
        if class_counts[label] >= cap:
            continue
        source = unlabeled_maps[int(idx)]
        selected.append(
            FeatureMap(source.values.copy(), label=label, subject_id=source.subject_id)
        )
        class_counts[label] += 1
        kept_conf.append(float(confidences[idx]))

    report = PseudoLabelReport(
        num_candidates=len(unlabeled_maps),
        num_selected=len(selected),
        mean_confidence=float(np.mean(kept_conf)) if kept_conf else 0.0,
        class_counts=tuple(class_counts),
    )
    return selected, report


def pseudo_label_fine_tune(
    model: TrainedModel,
    unlabeled_maps: Sequence[FeatureMap],
    labeled_maps: Sequence[FeatureMap] = (),
    config: Optional[PseudoLabelConfig] = None,
    seed: int = 0,
) -> Tuple[TrainedModel, PseudoLabelReport]:
    """Personalize with pseudo-labels (plus any real labels available).

    Returns ``(tuned_model, report)``.  If nothing clears the confidence
    threshold and no real labels were given, the original model is
    returned unchanged — fine-tuning on nothing is a no-op, not an
    error, so callers can always invoke this opportunistically.
    """
    config = config or PseudoLabelConfig()
    pseudo, report = pseudo_label_maps(model, unlabeled_maps, config)
    training_set = list(labeled_maps) + pseudo
    if not training_set:
        return model, report
    tuned = fine_tune(model, training_set, config.fine_tuning, seed=seed)
    return tuned, report
