"""Drift detection and adaptive re-assignment for deployed users.

The paper motivates *adaptive* deep learning: user physiology is not
stationary (stress phases, medication, seasons).  A deployed CLEAR
system should notice when a user's signal distribution drifts away
from their assigned cluster and react — re-assign, or re-personalize.
This module provides that loop:

* :class:`DriftDetector` — tracks the user's rolling feature signature
  and scores its distance to the assigned cluster against the other
  clusters.
* :func:`monitor_and_adapt` — the policy: if another cluster has been
  closer for ``patience`` consecutive checks, recommend re-assignment.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

import numpy as np

from ..clustering.assignment import ColdStartAssigner
from ..signals.feature_map import FeatureMap
from .pipeline import CLEARSystem


@dataclass
class DriftObservation:
    """One drift check."""

    check_index: int
    assigned_score: float
    best_other_cluster: int
    best_other_score: float

    @property
    def drifted(self) -> bool:
        """True when some other cluster fits the user better."""
        return self.best_other_score < self.assigned_score


class DriftDetector:
    """Rolling drift monitor for one deployed user.

    Feed recent (unlabeled) feature maps via :meth:`update`; the
    detector maintains a window of the user's newest maps, recomputes
    the CA scores, and reports whether the assigned cluster is still
    the best fit.

    Parameters
    ----------
    assigner:
        The deployment's cold-start assigner (same centroids as CA).
    assigned_cluster:
        The cluster the user currently uses.
    window_maps:
        How many recent maps form the rolling signature.
    patience:
        Consecutive drifted checks required before recommending a
        re-assignment (suppresses transient excursions).
    """

    def __init__(
        self,
        assigner: ColdStartAssigner,
        assigned_cluster: int,
        window_maps: int = 5,
        patience: int = 3,
    ):
        if window_maps < 1:
            raise ValueError("window_maps must be >= 1")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        if not 0 <= assigned_cluster < assigner.gc.k:
            raise ValueError(f"assigned_cluster {assigned_cluster} out of range")
        self.assigner = assigner
        self.assigned_cluster = int(assigned_cluster)
        self.window_maps = int(window_maps)
        self.patience = int(patience)
        self._recent: Deque[FeatureMap] = deque(maxlen=self.window_maps)
        self._consecutive_drift = 0
        self.observations: List[DriftObservation] = []

    def update(self, new_maps: Sequence[FeatureMap]) -> Optional[DriftObservation]:
        """Add maps and run one drift check (None until window fills)."""
        for fmap in new_maps:
            self._recent.append(fmap)
        if len(self._recent) < self.window_maps:
            return None
        result = self.assigner.assign(list(self._recent))
        assigned_score = result.scores[self.assigned_cluster]
        others = {
            c: s for c, s in result.scores.items() if c != self.assigned_cluster
        }
        best_other = min(others, key=others.get)
        obs = DriftObservation(
            check_index=len(self.observations),
            assigned_score=float(assigned_score),
            best_other_cluster=int(best_other),
            best_other_score=float(others[best_other]),
        )
        self.observations.append(obs)
        if obs.drifted:
            self._consecutive_drift += 1
        else:
            self._consecutive_drift = 0
        return obs

    @property
    def reassignment_recommended(self) -> bool:
        return self._consecutive_drift >= self.patience

    def recommended_cluster(self) -> Optional[int]:
        """The drift target, if re-assignment is recommended."""
        if not self.reassignment_recommended:
            return None
        return self.observations[-1].best_other_cluster

    def reset(self, new_cluster: Optional[int] = None) -> None:
        """Clear drift state (call after acting on a recommendation)."""
        if new_cluster is not None:
            if not 0 <= new_cluster < self.assigner.gc.k:
                raise ValueError(f"new_cluster {new_cluster} out of range")
            self.assigned_cluster = int(new_cluster)
        self._consecutive_drift = 0


@dataclass
class AdaptationEvent:
    """One adaptation performed by :func:`monitor_and_adapt`."""

    at_batch: int
    from_cluster: int
    to_cluster: int


def monitor_and_adapt(
    system: CLEARSystem,
    initial_cluster: int,
    map_batches: Sequence[Sequence[FeatureMap]],
    window_maps: int = 5,
    patience: int = 3,
) -> tuple:
    """Run the adaptive loop over a stream of map batches.

    Returns ``(final_cluster, events)`` where ``events`` lists every
    re-assignment performed.  Each batch is one monitoring period (e.g.
    a day of wear).
    """
    detector = DriftDetector(
        system.assigner, initial_cluster, window_maps=window_maps, patience=patience
    )
    current = initial_cluster
    events: List[AdaptationEvent] = []
    for batch_idx, batch in enumerate(map_batches):
        detector.update(list(batch))
        if detector.reassignment_recommended:
            target = detector.recommended_cluster()
            events.append(
                AdaptationEvent(
                    at_batch=batch_idx, from_cluster=current, to_cluster=target
                )
            )
            current = target
            detector.reset(new_cluster=target)
    return current, events
