"""The paper's CNN-LSTM architecture (Fig. 2) built on the nn substrate.

Two convolutional blocks extract spatial structure from the 2D feature
map (features x windows); pooling shrinks only the feature axis so the
window axis survives as the LSTM's sequence dimension; the LSTM
integrates sequential context and a dense softmax head classifies.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .. import nn
from .config import ModelConfig


def cnn_lstm_layers(
    config: Optional[ModelConfig] = None, seed: int = 0
) -> List[nn.Layer]:
    """The CLEAR CNN-LSTM layer stack, unbuilt (no parameters allocated).

    Constructing layers is cheap and side-effect free, so this is the
    entry point for *static* validation (``repro check-model``, the
    trainer/pipeline pre-flight hooks): the stack can be traced
    symbolically without ever running a forward pass.
    """
    cfg = config or ModelConfig()
    recurrent_cls = {"lstm": nn.LSTM, "gru": nn.GRU, "rnn": nn.SimpleRNN}[
        cfg.recurrent_cell
    ]
    layers: List[nn.Layer] = [
        nn.Conv2D(cfg.conv_filters[0], cfg.kernel_size, padding="same", name="conv1"),
        nn.ReLU(name="relu1"),
        nn.MaxPool2D(cfg.pool_size, name="pool1"),
        nn.Conv2D(cfg.conv_filters[1], cfg.kernel_size, padding="same", name="conv2"),
        nn.ReLU(name="relu2"),
        nn.MaxPool2D(cfg.pool_size, name="pool2"),
        nn.ToSequence(name="to_sequence"),
    ]
    if cfg.attention_readout:
        layers.append(
            recurrent_cls(cfg.lstm_units, return_sequences=True, name="lstm")
        )
        layers.append(
            nn.TemporalAttention(max(4, cfg.lstm_units // 2), name="attention")
        )
    else:
        layers.append(recurrent_cls(cfg.lstm_units, name="lstm"))
    layers.append(nn.Dropout(cfg.dropout, seed=seed, name="dropout"))
    layers.append(nn.Dense(cfg.num_classes, name="head"))
    return layers


def build_cnn_lstm(
    input_shape: Tuple[int, int, int],
    config: Optional[ModelConfig] = None,
    seed: int = 0,
) -> nn.Sequential:
    """Construct (and eagerly build) the CLEAR CNN-LSTM.

    Parameters
    ----------
    input_shape:
        ``(channels, F, W)`` — channels is 1 for a single feature map.
    config:
        Architecture hyper-parameters; paper defaults if omitted.
    seed:
        Weight initialization seed.
    """
    cfg = config or ModelConfig()
    if len(input_shape) != 3:
        raise ValueError(f"input_shape must be (C, F, W), got {input_shape}")
    _, num_features, num_windows = input_shape
    if num_windows < 1 or num_features < cfg.pool_size[0] ** 2:
        raise ValueError(
            f"feature map {num_features}x{num_windows} too small for the "
            f"architecture's pooling {cfg.pool_size}"
        )

    model = nn.Sequential(
        cnn_lstm_layers(cfg, seed=seed), seed=seed, backend=cfg.backend
    )
    model.build(tuple(input_shape))
    return model


#: Names of the convolutional feature-extractor layers, frozen during
#: on-device fine-tuning.
FEATURE_EXTRACTOR_LAYERS = ("conv1", "conv2")


def freeze_feature_extractor(model: nn.Sequential) -> None:
    """Freeze the conv layers for the cheap fine-tuning stage."""
    model.freeze_layers(list(FEATURE_EXTRACTOR_LAYERS))


def architecture_summary(
    input_shape: Tuple[int, int, int], config: Optional[ModelConfig] = None
) -> str:
    """Printable Fig. 2-style description with parameter counts."""
    model = build_cnn_lstm(input_shape, config)
    return model.summary(tuple(input_shape))
