"""Validation harness reproducing the paper's Table I protocols.

Protocols (paper §IV-B):

* **General model** — x random volunteers (x = average cluster size),
  one population model, intra-group LOSO.  No clustering.
* **CL validation** — GC on all N users, per-cluster intra-cluster
  LOSO.  **RT CL** tests each cluster's model on volunteers from the
  *other* clusters (robustness test).
* **CLEAR validation** — full-pipeline LOSO: volunteer V_x is held out
  of clustering and pre-training; CA assigns V_x from 10 % unlabeled
  data; the assigned cluster's checkpoint is evaluated on V_x's
  remaining data (**CLEAR w/o FT**), other clusters' checkpoints give
  **RT CLEAR**, and fine-tuning with 20 % labels gives **CLEAR w FT**.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..datasets.loaders import split_maps_by_fraction
from ..datasets.wemac import WEMACDataset
from ..signals.feature_map import FeatureMap
from .config import CLEARConfig
from .pipeline import CLEAR, CLEARSystem
from .results import FoldMetrics, MetricSummary
from .trainer import TrainedModel, fine_tune, train_on_maps


def _maps_by_subject(
    dataset: WEMACDataset, exclude: Optional[int] = None
) -> Dict[int, List[FeatureMap]]:
    return {
        s.subject_id: list(s.maps)
        for s in dataset.subjects
        if s.subject_id != exclude
    }


def evaluate_general_model(
    dataset: WEMACDataset,
    config: Optional[CLEARConfig] = None,
    group_size: Optional[int] = None,
    max_folds: Optional[int] = None,
) -> MetricSummary:
    """The no-clustering baseline: one model for a random group.

    ``group_size`` defaults to the average cluster size N / K, which is
    how the paper chose x = 11 for fair comparison.
    """
    config = config or CLEARConfig()
    rng = np.random.default_rng(config.seed)
    if group_size is None:
        group_size = max(2, dataset.num_subjects // config.num_clusters)
    if group_size > dataset.num_subjects:
        raise ValueError(
            f"group_size {group_size} exceeds population {dataset.num_subjects}"
        )
    idx = rng.choice(dataset.num_subjects, size=group_size, replace=False)
    group = [dataset.subjects[i] for i in idx]

    summary = MetricSummary("General Model")
    folds = group if max_folds is None else group[:max_folds]
    for held_out in folds:
        train_maps = [
            m for s in group if s.subject_id != held_out.subject_id for m in s.maps
        ]
        model = train_on_maps(
            train_maps, config.model, config.training, seed=config.seed
        )
        metrics = model.evaluate(held_out.maps)
        summary.add(
            FoldMetrics(
                metrics["accuracy"], metrics["f1"], fold_id=held_out.subject_id
            )
        )
    return summary


@dataclass
class CLValidationResult:
    """Outcome of CL validation: in-cluster LOSO plus the robustness test."""

    cl: MetricSummary
    rt_cl: MetricSummary
    cluster_sizes: List[int] = field(default_factory=list)


def cl_validation(
    dataset: WEMACDataset,
    config: Optional[CLEARConfig] = None,
    max_folds: Optional[int] = None,
) -> CLValidationResult:
    """Cluster the full population, then intra-cluster LOSO per cluster.

    For the robustness test (RT CL), each fold's model is also
    evaluated on all volunteers *outside* its cluster — showing that
    cluster models do not transfer across clusters, i.e. GC found real
    structure.
    """
    config = config or CLEARConfig()
    maps_by = _maps_by_subject(dataset)

    from ..clustering.global_clustering import GlobalClustering

    gc = GlobalClustering(
        k=config.num_clusters,
        n_refinements=config.gc_refinements,
        subsample_fraction=config.gc_subsample_fraction,
        seed=config.seed,
    ).fit(maps_by)

    cl_summary = MetricSummary("CL validation")
    rt_summary = MetricSummary("RT CL")
    folds_done = 0
    for cluster in range(config.num_clusters):
        member_ids = gc.members(cluster)
        outside_maps = [
            m
            for sid, maps in maps_by.items()
            if sid not in member_ids
            for m in maps
        ]
        for held_out in member_ids:
            if max_folds is not None and folds_done >= max_folds:
                break
            train_maps = [
                m for sid in member_ids if sid != held_out for m in maps_by[sid]
            ]
            if len(train_maps) < 2:
                continue  # singleton cluster: no intra-cluster LOSO possible
            model = train_on_maps(
                train_maps, config.model, config.training, seed=config.seed
            )
            metrics = model.evaluate(maps_by[held_out])
            cl_summary.add(
                FoldMetrics(metrics["accuracy"], metrics["f1"], fold_id=held_out)
            )
            if outside_maps:
                rt = model.evaluate(outside_maps)
                rt_summary.add(
                    FoldMetrics(rt["accuracy"], rt["f1"], fold_id=held_out)
                )
            folds_done += 1
    return CLValidationResult(
        cl=cl_summary, rt_cl=rt_summary, cluster_sizes=gc.cluster_sizes()
    )


@dataclass
class CLEARValidationResult:
    """Outcome of the full-pipeline CLEAR validation."""

    without_ft: MetricSummary
    rt_clear: MetricSummary
    with_ft: Optional[MetricSummary]
    assignments: Dict[int, int] = field(default_factory=dict)
    assignment_matches_gc: Dict[int, bool] = field(default_factory=dict)


def clear_validation(
    dataset: WEMACDataset,
    config: Optional[CLEARConfig] = None,
    with_fine_tuning: bool = True,
    max_folds: Optional[int] = None,
) -> CLEARValidationResult:
    """Full CLEAR LOSO: cold-start assignment + optional fine-tuning.

    Per fold (one per volunteer V_x):

    1. Fit the CLEAR cloud stage on the other N-1 volunteers.
    2. CA assigns V_x from ``ca_data_fraction`` (10 %) of their maps,
       *unlabeled*.
    3. The assigned checkpoint is evaluated on the held-back maps
       (CLEAR w/o FT); every other cluster's checkpoint on the same
       maps gives RT CLEAR.
    4. ``ft_label_fraction`` (20 %) of maps fine-tune the checkpoint;
       evaluation on the remainder gives CLEAR w FT.
    """
    config = config or CLEARConfig()
    rng = np.random.default_rng(config.seed)

    wo_ft = MetricSummary("CLEAR w/o FT")
    rt = MetricSummary("RT CLEAR")
    w_ft = MetricSummary("CLEAR w FT") if with_fine_tuning else None
    assignments: Dict[int, int] = {}
    matches: Dict[int, bool] = {}

    subjects = dataset.subjects if max_folds is None else dataset.subjects[:max_folds]
    for record in subjects:
        v_x = record.subject_id
        maps_by = _maps_by_subject(dataset, exclude=v_x)
        system = CLEAR(config).fit(maps_by)

        # Step 2: unsupervised cold-start assignment from 10 % of data.
        ca_maps, held_back = split_maps_by_fraction(
            record.maps, config.ca_data_fraction, rng, stratified=False
        )
        assignment = system.assign_new_user(ca_maps)
        cluster = assignment.cluster
        assignments[v_x] = cluster
        # Diagnostic: does CA match where GC would place this user with
        # full data?  (Not used by the pipeline; reported for analysis.)
        from ..signals.feature_map import subject_signature

        matches[v_x] = cluster == system.gc.assign_signature(
            subject_signature(record.maps)
        )

        # Step 3: evaluate without fine-tuning + robustness test.
        metrics = system.model_for(cluster).evaluate(held_back)
        wo_ft.add(FoldMetrics(metrics["accuracy"], metrics["f1"], fold_id=v_x))
        other_metrics = []
        for other in range(config.num_clusters):
            if other == cluster:
                continue
            other_metrics.append(system.model_for(other).evaluate(held_back))
        if other_metrics:
            rt.add(
                FoldMetrics(
                    float(np.mean([m["accuracy"] for m in other_metrics])),
                    float(np.mean([m["f1"] for m in other_metrics])),
                    fold_id=v_x,
                )
            )

        # Step 4: fine-tune with 20 % labels, test on the rest.
        if with_fine_tuning:
            ft_fraction = config.ft_label_fraction / (1.0 - config.ca_data_fraction)
            ft_maps, test_maps = split_maps_by_fraction(
                held_back, ft_fraction, rng, stratified=True
            )
            tuned = fine_tune(
                system.model_for(cluster),
                ft_maps,
                config.fine_tuning,
                seed=config.seed,
            )
            ft_metrics = tuned.evaluate(test_maps)
            w_ft.add(
                FoldMetrics(ft_metrics["accuracy"], ft_metrics["f1"], fold_id=v_x)
            )

    return CLEARValidationResult(
        without_ft=wo_ft,
        rt_clear=rt,
        with_ft=w_ft,
        assignments=assignments,
        assignment_matches_gc=matches,
    )
