"""Validation harness reproducing the paper's Table I protocols.

Protocols (paper §IV-B):

* **General model** — x random volunteers (x = average cluster size),
  one population model, intra-group LOSO.  No clustering.
* **CL validation** — GC on all N users, per-cluster intra-cluster
  LOSO.  **RT CL** tests each cluster's model on volunteers from the
  *other* clusters (robustness test).
* **CLEAR validation** — full-pipeline LOSO: volunteer V_x is held out
  of clustering and pre-training; CA assigns V_x from 10 % unlabeled
  data; the assigned cluster's checkpoint is evaluated on V_x's
  remaining data (**CLEAR w/o FT**), other clusters' checkpoints give
  **RT CLEAR**, and fine-tuning with 20 % labels gives **CLEAR w FT**.

Each protocol driver builds its work units — that part is protocol
semantics: which maps train, which test, which RNG stream each fold
consumes — and hands them to the one shared
:func:`~repro.orchestration.folds.run_fold_plan` stage, which injects
the :mod:`repro.runtime` executor/cache, times the dispatch, merges
cache counters, and emits the :class:`~repro.orchestration.provenance.Provenance`
record surfaced on every result.  Because units carry pre-spawned
seeds, a parallel run is bit-identical to the default serial one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..datasets.loaders import split_maps_by_fraction
from ..datasets.wemac import WEMACDataset
from ..orchestration.context import normalize_cache_dir
from ..orchestration.folds import run_fold_plan
from ..orchestration.grouping import (
    group_maps_by_subject,
    member_maps,
    outside_maps,
)
from ..orchestration.provenance import Provenance
from ..runtime.executor import Executor, RuntimeStats, spawn_seeds
from ..scenarios.adapter import population_records
from ..scenarios.base import Scenario
from .config import CLEARConfig

#: Any population the Table-I drivers accept: the eager WEMAC corpus, a
#: streamed Scenario (materialized through the sanctioned adapter), or
#: any object exposing ``.subjects`` / ``.num_subjects``.
PopulationSource = Union[WEMACDataset, Scenario, object]
from .pipeline import CLEAR
from .results import FoldMetrics, MetricSummary
from .trainer import fine_tune, train_on_maps_cached


# -- general model --------------------------------------------------------

def _general_fold_unit(args: Tuple) -> Tuple[FoldMetrics, int, int]:
    """One intra-group LOSO fold of the no-clustering baseline."""
    fold_id, train_maps, test_maps, config, cache_dir = args
    model, hits, misses = train_on_maps_cached(
        train_maps,
        model_config=config.model,
        training=config.training,
        seed=config.seed,
        cache_dir=cache_dir,
    )
    metrics = model.evaluate(test_maps)
    return (
        FoldMetrics(metrics["accuracy"], metrics["f1"], fold_id=fold_id),
        hits,
        misses,
    )


def evaluate_general_model(
    dataset: PopulationSource,
    config: Optional[CLEARConfig] = None,
    group_size: Optional[int] = None,
    max_folds: Optional[int] = None,
    executor: Optional[Executor] = None,
    cache_dir: Optional[Union[str, Path]] = None,
) -> MetricSummary:
    """The no-clustering baseline: one model for a random group.

    ``group_size`` defaults to the average cluster size N / K, which is
    how the paper chose x = 11 for fair comparison.
    """
    config = config or CLEARConfig()
    cache_dir = normalize_cache_dir(cache_dir)
    dataset = population_records(dataset, executor=executor, cache_dir=cache_dir)
    rng = np.random.default_rng(config.seed)
    if group_size is None:
        group_size = max(2, dataset.num_subjects // config.num_clusters)
    if group_size > dataset.num_subjects:
        raise ValueError(
            f"group_size {group_size} exceeds population {dataset.num_subjects}"
        )
    idx = rng.choice(dataset.num_subjects, size=group_size, replace=False)
    group = [dataset.subjects[i] for i in idx]

    folds = group if max_folds is None else group[:max_folds]
    units = []
    for held_out in folds:
        train_maps = [
            m for s in group if s.subject_id != held_out.subject_id for m in s.maps
        ]
        units.append(
            (held_out.subject_id, train_maps, list(held_out.maps), config, cache_dir)
        )

    plan = run_fold_plan(
        "general_model_folds",
        units,
        _general_fold_unit,
        cache_counts=lambda result: (result[1], result[2]),
        executor=executor,
        cache_dir=cache_dir,
        config=config,
        seed=config.seed,
    )
    summary = MetricSummary(
        "General Model", runtime=plan.stats, provenance=plan.provenance
    )
    for fold, _, _ in plan.results:
        summary.add(fold)
    return summary


# -- CL validation --------------------------------------------------------

@dataclass
class CLValidationResult:
    """Outcome of CL validation: in-cluster LOSO plus the robustness test."""

    cl: MetricSummary
    rt_cl: MetricSummary
    cluster_sizes: List[int] = field(default_factory=list)
    runtime: Optional[RuntimeStats] = None
    provenance: Optional[Provenance] = None

    def __repro_content__(self) -> Tuple:
        return ("CLValidationResult", self.cl, self.rt_cl, tuple(self.cluster_sizes))


def _cl_fold_unit(
    args: Tuple,
) -> Tuple[FoldMetrics, Optional[FoldMetrics], int, int]:
    """One intra-cluster LOSO fold plus its cross-cluster RT evaluation."""
    held_out, train_maps, test_maps, rt_maps, config, cache_dir = args
    model, hits, misses = train_on_maps_cached(
        train_maps,
        model_config=config.model,
        training=config.training,
        seed=config.seed,
        cache_dir=cache_dir,
    )
    metrics = model.evaluate(test_maps)
    cl_fold = FoldMetrics(metrics["accuracy"], metrics["f1"], fold_id=held_out)
    rt_fold = None
    if rt_maps:
        rt = model.evaluate(rt_maps)
        rt_fold = FoldMetrics(rt["accuracy"], rt["f1"], fold_id=held_out)
    return cl_fold, rt_fold, hits, misses


def cl_validation(
    dataset: PopulationSource,
    config: Optional[CLEARConfig] = None,
    max_folds: Optional[int] = None,
    executor: Optional[Executor] = None,
    cache_dir: Optional[Union[str, Path]] = None,
) -> CLValidationResult:
    """Cluster the full population, then intra-cluster LOSO per cluster.

    For the robustness test (RT CL), each fold's model is also
    evaluated on all volunteers *outside* its cluster — showing that
    cluster models do not transfer across clusters, i.e. GC found real
    structure.
    """
    config = config or CLEARConfig()
    cache_dir = normalize_cache_dir(cache_dir)
    dataset = population_records(dataset, executor=executor, cache_dir=cache_dir)
    maps_by = group_maps_by_subject(dataset)

    from ..clustering.global_clustering import GlobalClustering

    gc = GlobalClustering(
        k=config.num_clusters,
        n_refinements=config.gc_refinements,
        subsample_fraction=config.gc_subsample_fraction,
        seed=config.seed,
    ).fit(maps_by)

    units = []
    for cluster in range(config.num_clusters):
        member_ids = gc.members(cluster)
        rt_maps = outside_maps(maps_by, member_ids)
        for held_out in member_ids:
            if max_folds is not None and len(units) >= max_folds:
                break
            train_maps = member_maps(maps_by, member_ids, exclude=held_out)
            if len(train_maps) < 2:
                continue  # singleton cluster: no intra-cluster LOSO possible
            units.append(
                (held_out, train_maps, maps_by[held_out], rt_maps, config, cache_dir)
            )

    plan = run_fold_plan(
        "cl_validation_folds",
        units,
        _cl_fold_unit,
        cache_counts=lambda result: (result[2], result[3]),
        executor=executor,
        cache_dir=cache_dir,
        config=config,
        seed=config.seed,
    )
    cl_summary = MetricSummary(
        "CL validation", runtime=plan.stats, provenance=plan.provenance
    )
    rt_summary = MetricSummary(
        "RT CL", runtime=plan.stats, provenance=plan.provenance
    )
    for cl_fold, rt_fold, _, _ in plan.results:
        cl_summary.add(cl_fold)
        if rt_fold is not None:
            rt_summary.add(rt_fold)
    return CLValidationResult(
        cl=cl_summary,
        rt_cl=rt_summary,
        cluster_sizes=gc.cluster_sizes(),
        runtime=plan.stats,
        provenance=plan.provenance,
    )


# -- CLEAR validation -----------------------------------------------------

@dataclass
class CLEARValidationResult:
    """Outcome of the full-pipeline CLEAR validation."""

    without_ft: MetricSummary
    rt_clear: MetricSummary
    with_ft: Optional[MetricSummary]
    assignments: Dict[int, int] = field(default_factory=dict)
    assignment_matches_gc: Dict[int, bool] = field(default_factory=dict)
    runtime: Optional[RuntimeStats] = None
    provenance: Optional[Provenance] = None

    def __repro_content__(self) -> Tuple:
        return (
            "CLEARValidationResult",
            self.without_ft,
            self.rt_clear,
            self.with_ft,
            tuple(sorted(self.assignments.items())),
            tuple(sorted(self.assignment_matches_gc.items())),
        )


def _clear_fold_unit(args: Tuple) -> Dict[str, object]:
    """One full-pipeline CLEAR LOSO fold (steps 1-4 for volunteer V_x)."""
    v_x, record_maps, maps_by, config, seed, with_ft, cache_dir = args
    rng = np.random.default_rng(seed)
    system = CLEAR(config, cache_dir=cache_dir).fit(maps_by)

    # Step 2: unsupervised cold-start assignment from 10 % of data.
    ca_maps, held_back = split_maps_by_fraction(
        record_maps, config.ca_data_fraction, rng, stratified=False
    )
    assignment = system.assign_new_user(ca_maps)
    cluster = assignment.cluster
    # Diagnostic: does CA match where GC would place this user with
    # full data?  (Not used by the pipeline; reported for analysis.)
    from ..signals.feature_map import subject_signature

    match = cluster == system.gc.assign_signature(subject_signature(record_maps))

    # Step 3: evaluate without fine-tuning + robustness test.
    metrics = system.model_for(cluster).evaluate(held_back)
    wo_fold = FoldMetrics(metrics["accuracy"], metrics["f1"], fold_id=v_x)
    rt_fold = None
    other_metrics = []
    for other in range(config.num_clusters):
        if other == cluster:
            continue
        other_metrics.append(system.model_for(other).evaluate(held_back))
    if other_metrics:
        rt_fold = FoldMetrics(
            float(np.mean([m["accuracy"] for m in other_metrics])),
            float(np.mean([m["f1"] for m in other_metrics])),
            fold_id=v_x,
        )

    # Step 4: fine-tune with 20 % labels, test on the rest.
    ft_fold = None
    if with_ft:
        ft_fraction = config.ft_label_fraction / (1.0 - config.ca_data_fraction)
        ft_maps, test_maps = split_maps_by_fraction(
            held_back, ft_fraction, rng, stratified=True
        )
        tuned = fine_tune(
            system.model_for(cluster),
            ft_maps,
            config.fine_tuning,
            seed=config.seed,
        )
        ft_metrics = tuned.evaluate(test_maps)
        ft_fold = FoldMetrics(
            ft_metrics["accuracy"], ft_metrics["f1"], fold_id=v_x
        )

    fit_stats = system.runtime
    return {
        "v_x": v_x,
        "cluster": cluster,
        "match": match,
        "wo": wo_fold,
        "rt": rt_fold,
        "ft": ft_fold,
        "hits": 0 if fit_stats is None else fit_stats.cache_hits,
        "misses": 0 if fit_stats is None else fit_stats.cache_misses,
    }


def clear_validation(
    dataset: PopulationSource,
    config: Optional[CLEARConfig] = None,
    with_fine_tuning: bool = True,
    max_folds: Optional[int] = None,
    executor: Optional[Executor] = None,
    cache_dir: Optional[Union[str, Path]] = None,
) -> CLEARValidationResult:
    """Full CLEAR LOSO: cold-start assignment + optional fine-tuning.

    Per fold (one per volunteer V_x):

    1. Fit the CLEAR cloud stage on the other N-1 volunteers.
    2. CA assigns V_x from ``ca_data_fraction`` (10 %) of their maps,
       *unlabeled*.
    3. The assigned checkpoint is evaluated on the held-back maps
       (CLEAR w/o FT); every other cluster's checkpoint on the same
       maps gives RT CLEAR.
    4. ``ft_label_fraction`` (20 %) of maps fine-tune the checkpoint;
       evaluation on the remainder gives CLEAR w FT.

    Each fold draws from its own spawned RNG (fold *i* always sees the
    same stream, whatever executor runs it and whatever ``max_folds``
    prefix is selected), so results are bit-identical serial vs
    parallel.  With ``cache_dir`` the per-fold cluster pre-training
    goes through the checkpoint cache, which makes warm re-validation
    orders of magnitude faster.
    """
    config = config or CLEARConfig()
    cache_dir = normalize_cache_dir(cache_dir)
    dataset = population_records(dataset, executor=executor, cache_dir=cache_dir)

    subjects = dataset.subjects if max_folds is None else dataset.subjects[:max_folds]
    seeds = spawn_seeds(config.seed, len(subjects))
    units = []
    for record, seed in zip(subjects, seeds):
        units.append(
            (
                record.subject_id,
                list(record.maps),
                group_maps_by_subject(dataset, exclude=record.subject_id),
                config,
                seed,
                with_fine_tuning,
                cache_dir,
            )
        )

    plan = run_fold_plan(
        "clear_validation_folds",
        units,
        _clear_fold_unit,
        cache_counts=lambda fold: (fold["hits"], fold["misses"]),
        executor=executor,
        cache_dir=cache_dir,
        config=config,
        seed=config.seed,
    )
    wo_ft = MetricSummary(
        "CLEAR w/o FT", runtime=plan.stats, provenance=plan.provenance
    )
    rt = MetricSummary("RT CLEAR", runtime=plan.stats, provenance=plan.provenance)
    w_ft = (
        MetricSummary("CLEAR w FT", runtime=plan.stats, provenance=plan.provenance)
        if with_fine_tuning
        else None
    )
    assignments: Dict[int, int] = {}
    matches: Dict[int, bool] = {}
    for fold in plan.results:
        assignments[fold["v_x"]] = fold["cluster"]
        matches[fold["v_x"]] = fold["match"]
        wo_ft.add(fold["wo"])
        if fold["rt"] is not None:
            rt.add(fold["rt"])
        if w_ft is not None and fold["ft"] is not None:
            w_ft.add(fold["ft"])

    return CLEARValidationResult(
        without_ft=wo_ft,
        rt_clear=rt,
        with_ft=w_ft,
        assignments=assignments,
        assignment_matches_gc=matches,
        runtime=plan.stats,
        provenance=plan.provenance,
    )
