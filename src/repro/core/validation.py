"""Validation harness reproducing the paper's Table I protocols.

Protocols (paper §IV-B):

* **General model** — x random volunteers (x = average cluster size),
  one population model, intra-group LOSO.  No clustering.
* **CL validation** — GC on all N users, per-cluster intra-cluster
  LOSO.  **RT CL** tests each cluster's model on volunteers from the
  *other* clusters (robustness test).
* **CLEAR validation** — full-pipeline LOSO: volunteer V_x is held out
  of clustering and pre-training; CA assigns V_x from 10 % unlabeled
  data; the assigned cluster's checkpoint is evaluated on V_x's
  remaining data (**CLEAR w/o FT**), other clusters' checkpoints give
  **RT CLEAR**, and fine-tuning with 20 % labels gives **CLEAR w FT**.

Every protocol's folds are independent work units dispatched through a
:class:`~repro.runtime.executor.Executor`: each fold carries its own
``SeedSequence``-spawned RNG, so a parallel run is bit-identical to the
default serial one, and a ``cache_dir`` routes fold training through
the content-addressed checkpoint cache (counters surfaced on the
result's ``runtime`` stats).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..datasets.loaders import split_maps_by_fraction
from ..datasets.wemac import WEMACDataset
from ..runtime.executor import Executor, RuntimeStats, SerialExecutor, spawn_seeds
from ..signals.feature_map import FeatureMap
from .config import CLEARConfig
from .pipeline import CLEAR, CLEARSystem
from .results import FoldMetrics, MetricSummary
from .trainer import fine_tune, train_on_maps_cached


def _maps_by_subject(
    dataset: WEMACDataset, exclude: Optional[int] = None
) -> Dict[int, List[FeatureMap]]:
    return {
        s.subject_id: list(s.maps)
        for s in dataset.subjects
        if s.subject_id != exclude
    }


def _runtime_stats(executor: Executor, units: int) -> RuntimeStats:
    return RuntimeStats(
        executor=executor.name, workers=executor.workers, units=units
    )


# -- general model --------------------------------------------------------

def _general_fold_unit(args: Tuple) -> Tuple[FoldMetrics, int, int]:
    """One intra-group LOSO fold of the no-clustering baseline."""
    fold_id, train_maps, test_maps, config, cache_dir = args
    model, hits, misses = train_on_maps_cached(
        train_maps,
        model_config=config.model,
        training=config.training,
        seed=config.seed,
        cache_dir=cache_dir,
    )
    metrics = model.evaluate(test_maps)
    return (
        FoldMetrics(metrics["accuracy"], metrics["f1"], fold_id=fold_id),
        hits,
        misses,
    )


def evaluate_general_model(
    dataset: WEMACDataset,
    config: Optional[CLEARConfig] = None,
    group_size: Optional[int] = None,
    max_folds: Optional[int] = None,
    executor: Optional[Executor] = None,
    cache_dir: Optional[Union[str, Path]] = None,
) -> MetricSummary:
    """The no-clustering baseline: one model for a random group.

    ``group_size`` defaults to the average cluster size N / K, which is
    how the paper chose x = 11 for fair comparison.
    """
    config = config or CLEARConfig()
    executor = executor or SerialExecutor()
    cache_dir = None if cache_dir is None else str(cache_dir)
    rng = np.random.default_rng(config.seed)
    if group_size is None:
        group_size = max(2, dataset.num_subjects // config.num_clusters)
    if group_size > dataset.num_subjects:
        raise ValueError(
            f"group_size {group_size} exceeds population {dataset.num_subjects}"
        )
    idx = rng.choice(dataset.num_subjects, size=group_size, replace=False)
    group = [dataset.subjects[i] for i in idx]

    folds = group if max_folds is None else group[:max_folds]
    units = []
    for held_out in folds:
        train_maps = [
            m for s in group if s.subject_id != held_out.subject_id for m in s.maps
        ]
        units.append(
            (held_out.subject_id, train_maps, list(held_out.maps), config, cache_dir)
        )

    t0 = _time.perf_counter()
    stats = _runtime_stats(executor, len(units))
    summary = MetricSummary("General Model", runtime=stats)
    for fold, hits, misses in executor.map(_general_fold_unit, units):
        summary.add(fold)
        stats.merge_counts(hits, misses)
    stats.wall_time_s = _time.perf_counter() - t0
    return summary


# -- CL validation --------------------------------------------------------

@dataclass
class CLValidationResult:
    """Outcome of CL validation: in-cluster LOSO plus the robustness test."""

    cl: MetricSummary
    rt_cl: MetricSummary
    cluster_sizes: List[int] = field(default_factory=list)
    runtime: Optional[RuntimeStats] = None


def _cl_fold_unit(
    args: Tuple,
) -> Tuple[FoldMetrics, Optional[FoldMetrics], int, int]:
    """One intra-cluster LOSO fold plus its cross-cluster RT evaluation."""
    held_out, train_maps, test_maps, outside_maps, config, cache_dir = args
    model, hits, misses = train_on_maps_cached(
        train_maps,
        model_config=config.model,
        training=config.training,
        seed=config.seed,
        cache_dir=cache_dir,
    )
    metrics = model.evaluate(test_maps)
    cl_fold = FoldMetrics(metrics["accuracy"], metrics["f1"], fold_id=held_out)
    rt_fold = None
    if outside_maps:
        rt = model.evaluate(outside_maps)
        rt_fold = FoldMetrics(rt["accuracy"], rt["f1"], fold_id=held_out)
    return cl_fold, rt_fold, hits, misses


def cl_validation(
    dataset: WEMACDataset,
    config: Optional[CLEARConfig] = None,
    max_folds: Optional[int] = None,
    executor: Optional[Executor] = None,
    cache_dir: Optional[Union[str, Path]] = None,
) -> CLValidationResult:
    """Cluster the full population, then intra-cluster LOSO per cluster.

    For the robustness test (RT CL), each fold's model is also
    evaluated on all volunteers *outside* its cluster — showing that
    cluster models do not transfer across clusters, i.e. GC found real
    structure.
    """
    config = config or CLEARConfig()
    executor = executor or SerialExecutor()
    cache_dir = None if cache_dir is None else str(cache_dir)
    maps_by = _maps_by_subject(dataset)

    from ..clustering.global_clustering import GlobalClustering

    gc = GlobalClustering(
        k=config.num_clusters,
        n_refinements=config.gc_refinements,
        subsample_fraction=config.gc_subsample_fraction,
        seed=config.seed,
    ).fit(maps_by)

    units = []
    for cluster in range(config.num_clusters):
        member_ids = gc.members(cluster)
        outside_maps = [
            m
            for sid, maps in maps_by.items()
            if sid not in member_ids
            for m in maps
        ]
        for held_out in member_ids:
            if max_folds is not None and len(units) >= max_folds:
                break
            train_maps = [
                m for sid in member_ids if sid != held_out for m in maps_by[sid]
            ]
            if len(train_maps) < 2:
                continue  # singleton cluster: no intra-cluster LOSO possible
            units.append(
                (held_out, train_maps, maps_by[held_out], outside_maps, config, cache_dir)
            )

    t0 = _time.perf_counter()
    stats = _runtime_stats(executor, len(units))
    cl_summary = MetricSummary("CL validation", runtime=stats)
    rt_summary = MetricSummary("RT CL", runtime=stats)
    for cl_fold, rt_fold, hits, misses in executor.map(_cl_fold_unit, units):
        cl_summary.add(cl_fold)
        if rt_fold is not None:
            rt_summary.add(rt_fold)
        stats.merge_counts(hits, misses)
    stats.wall_time_s = _time.perf_counter() - t0
    return CLValidationResult(
        cl=cl_summary,
        rt_cl=rt_summary,
        cluster_sizes=gc.cluster_sizes(),
        runtime=stats,
    )


# -- CLEAR validation -----------------------------------------------------

@dataclass
class CLEARValidationResult:
    """Outcome of the full-pipeline CLEAR validation."""

    without_ft: MetricSummary
    rt_clear: MetricSummary
    with_ft: Optional[MetricSummary]
    assignments: Dict[int, int] = field(default_factory=dict)
    assignment_matches_gc: Dict[int, bool] = field(default_factory=dict)
    runtime: Optional[RuntimeStats] = None


def _clear_fold_unit(args: Tuple) -> Dict[str, object]:
    """One full-pipeline CLEAR LOSO fold (steps 1-4 for volunteer V_x)."""
    v_x, record_maps, maps_by, config, seed, with_ft, cache_dir = args
    rng = np.random.default_rng(seed)
    system = CLEAR(config, cache_dir=cache_dir).fit(maps_by)

    # Step 2: unsupervised cold-start assignment from 10 % of data.
    ca_maps, held_back = split_maps_by_fraction(
        record_maps, config.ca_data_fraction, rng, stratified=False
    )
    assignment = system.assign_new_user(ca_maps)
    cluster = assignment.cluster
    # Diagnostic: does CA match where GC would place this user with
    # full data?  (Not used by the pipeline; reported for analysis.)
    from ..signals.feature_map import subject_signature

    match = cluster == system.gc.assign_signature(subject_signature(record_maps))

    # Step 3: evaluate without fine-tuning + robustness test.
    metrics = system.model_for(cluster).evaluate(held_back)
    wo_fold = FoldMetrics(metrics["accuracy"], metrics["f1"], fold_id=v_x)
    rt_fold = None
    other_metrics = []
    for other in range(config.num_clusters):
        if other == cluster:
            continue
        other_metrics.append(system.model_for(other).evaluate(held_back))
    if other_metrics:
        rt_fold = FoldMetrics(
            float(np.mean([m["accuracy"] for m in other_metrics])),
            float(np.mean([m["f1"] for m in other_metrics])),
            fold_id=v_x,
        )

    # Step 4: fine-tune with 20 % labels, test on the rest.
    ft_fold = None
    if with_ft:
        ft_fraction = config.ft_label_fraction / (1.0 - config.ca_data_fraction)
        ft_maps, test_maps = split_maps_by_fraction(
            held_back, ft_fraction, rng, stratified=True
        )
        tuned = fine_tune(
            system.model_for(cluster),
            ft_maps,
            config.fine_tuning,
            seed=config.seed,
        )
        ft_metrics = tuned.evaluate(test_maps)
        ft_fold = FoldMetrics(
            ft_metrics["accuracy"], ft_metrics["f1"], fold_id=v_x
        )

    fit_stats = system.runtime
    return {
        "v_x": v_x,
        "cluster": cluster,
        "match": match,
        "wo": wo_fold,
        "rt": rt_fold,
        "ft": ft_fold,
        "hits": 0 if fit_stats is None else fit_stats.cache_hits,
        "misses": 0 if fit_stats is None else fit_stats.cache_misses,
    }


def clear_validation(
    dataset: WEMACDataset,
    config: Optional[CLEARConfig] = None,
    with_fine_tuning: bool = True,
    max_folds: Optional[int] = None,
    executor: Optional[Executor] = None,
    cache_dir: Optional[Union[str, Path]] = None,
) -> CLEARValidationResult:
    """Full CLEAR LOSO: cold-start assignment + optional fine-tuning.

    Per fold (one per volunteer V_x):

    1. Fit the CLEAR cloud stage on the other N-1 volunteers.
    2. CA assigns V_x from ``ca_data_fraction`` (10 %) of their maps,
       *unlabeled*.
    3. The assigned checkpoint is evaluated on the held-back maps
       (CLEAR w/o FT); every other cluster's checkpoint on the same
       maps gives RT CLEAR.
    4. ``ft_label_fraction`` (20 %) of maps fine-tune the checkpoint;
       evaluation on the remainder gives CLEAR w FT.

    Each fold draws from its own spawned RNG (fold *i* always sees the
    same stream, whatever executor runs it and whatever ``max_folds``
    prefix is selected), so results are bit-identical serial vs
    parallel.  With ``cache_dir`` the per-fold cluster pre-training
    goes through the checkpoint cache, which makes warm re-validation
    orders of magnitude faster.
    """
    config = config or CLEARConfig()
    executor = executor or SerialExecutor()
    cache_dir = None if cache_dir is None else str(cache_dir)

    subjects = dataset.subjects if max_folds is None else dataset.subjects[:max_folds]
    seeds = spawn_seeds(config.seed, len(subjects))
    units = []
    for record, seed in zip(subjects, seeds):
        units.append(
            (
                record.subject_id,
                list(record.maps),
                _maps_by_subject(dataset, exclude=record.subject_id),
                config,
                seed,
                with_fine_tuning,
                cache_dir,
            )
        )

    t0 = _time.perf_counter()
    stats = _runtime_stats(executor, len(units))
    wo_ft = MetricSummary("CLEAR w/o FT", runtime=stats)
    rt = MetricSummary("RT CLEAR", runtime=stats)
    w_ft = (
        MetricSummary("CLEAR w FT", runtime=stats) if with_fine_tuning else None
    )
    assignments: Dict[int, int] = {}
    matches: Dict[int, bool] = {}

    for fold in executor.map(_clear_fold_unit, units):
        assignments[fold["v_x"]] = fold["cluster"]
        matches[fold["v_x"]] = fold["match"]
        wo_ft.add(fold["wo"])
        if fold["rt"] is not None:
            rt.add(fold["rt"])
        if w_ft is not None and fold["ft"] is not None:
            w_ft.add(fold["ft"])
        stats.merge_counts(fold["hits"], fold["misses"])
    stats.wall_time_s = _time.perf_counter() - t0

    return CLEARValidationResult(
        without_ft=wo_ft,
        rt_clear=rt,
        with_ft=w_ft,
        assignments=assignments,
        assignment_matches_gc=matches,
        runtime=stats,
    )
