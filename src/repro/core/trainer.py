"""Training / evaluation on feature maps: the bridge between data and nn."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..analysis.graph import validate_architecture
from ..signals.feature_map import FeatureMap, FeatureNormalizer, maps_to_arrays
from .architecture import build_cnn_lstm, freeze_feature_extractor
from .config import CLEARConfig, FineTuneConfig, ModelConfig, TrainingConfig


@dataclass
class TrainedModel:
    """A trained classifier bundled with its input normalizer."""

    model: nn.Sequential
    normalizer: FeatureNormalizer

    def _prepare(self, maps: Sequence[FeatureMap]) -> Tuple[np.ndarray, np.ndarray]:
        normalized = self.normalizer.transform_all(list(maps))
        return maps_to_arrays(normalized)

    def predict_classes(self, maps: Sequence[FeatureMap]) -> np.ndarray:
        x, _ = self._prepare(maps)
        return self.model.predict_classes(x)

    def evaluate(self, maps: Sequence[FeatureMap]) -> Dict[str, float]:
        """Accuracy and binary F1 (fear = positive class) on maps."""
        if not maps:
            raise ValueError("cannot evaluate on an empty map set")
        x, y = self._prepare(maps)
        preds = self.model.predict_classes(x)
        return {
            "accuracy": nn.accuracy(y, preds),
            "f1": nn.f1_score(y, preds, positive_class=1),
        }

    def clone_weights(self) -> List[Dict[str, np.ndarray]]:
        return self.model.get_weights()


def train_on_maps(
    train_maps: Sequence[FeatureMap],
    model_config: Optional[ModelConfig] = None,
    training: Optional[TrainingConfig] = None,
    seed: int = 0,
) -> TrainedModel:
    """Train a fresh CNN-LSTM on labelled feature maps.

    The normalizer is fitted on the training maps only (leak-free), the
    optimizer is Adam with gradient clipping, and the best epoch by
    training accuracy is restored at the end (the paper keeps the
    best-performing checkpoint per cluster).
    """
    train_maps = list(train_maps)
    if len(train_maps) < 2:
        raise ValueError(f"need at least 2 training maps, got {len(train_maps)}")
    model_config = model_config or ModelConfig()
    training = training or TrainingConfig()

    normalizer = FeatureNormalizer().fit(train_maps)
    x, y = maps_to_arrays(normalizer.transform_all(train_maps))
    input_shape = x.shape[1:]

    # Pre-flight: reject a mis-shaped architecture statically, before any
    # parameter is allocated or epoch runs (GraphValidationError names the
    # offending layer).
    validate_architecture(input_shape, model_config)

    model = build_cnn_lstm(input_shape, model_config, seed=seed)
    model.compile(
        nn.SoftmaxCrossEntropy(),
        nn.Adam(lr=training.learning_rate, clipnorm=training.clipnorm),
    )

    callbacks: List[nn.Callback] = [
        nn.BestWeights(monitor="accuracy", mode="max"),
        nn.EarlyStopping(
            monitor="loss",
            patience=training.early_stopping_patience,
            mode="min",
            restore_best=False,
        ),
    ]

    validation_data = None
    if training.validation_fraction > 0 and len(train_maps) >= 5:
        rng = np.random.default_rng(seed)
        n_val = max(1, int(round(training.validation_fraction * x.shape[0])))
        order = rng.permutation(x.shape[0])
        val_idx, tr_idx = order[:n_val], order[n_val:]
        validation_data = (x[val_idx], y[val_idx])
        x, y = x[tr_idx], y[tr_idx]

    model.fit(
        x,
        y,
        epochs=training.epochs,
        batch_size=training.batch_size,
        validation_data=validation_data,
        callbacks=callbacks,
    )
    return TrainedModel(model=model, normalizer=normalizer)


def maps_content(maps: Sequence[FeatureMap]) -> List[Tuple]:
    """Canonical content tuple per map, for content-addressed cache keys."""
    return [(m.values, int(m.label), int(m.subject_id)) for m in maps]


def train_on_maps_cached(
    train_maps: Sequence[FeatureMap],
    model_config: Optional[ModelConfig] = None,
    training: Optional[TrainingConfig] = None,
    seed: int = 0,
    cache_dir: Optional[str] = None,
) -> Tuple[TrainedModel, int, int]:
    """:func:`train_on_maps` behind the content-addressed checkpoint cache.

    Returns ``(model, cache_hits, cache_misses)``.  The key is SHA-256
    over the training-map bytes plus the full model/training config and
    seed, so a warm cache returns the *identical* trained checkpoint
    and any config or data change re-trains transparently.  With
    ``cache_dir=None`` this is plain training with zeroed counters.
    """
    if cache_dir is None:
        return train_on_maps(train_maps, model_config, training, seed=seed), 0, 0

    # Opened through the orchestration context (the single injection
    # point for runtime machinery, RPR009); lazy so a forked worker
    # builds its own handle on the shared store.
    from ..orchestration.context import open_checkpoint_cache

    cache = open_checkpoint_cache(cache_dir)
    key = cache.key(
        "trained_fold.v1",
        maps_content(list(train_maps)),
        model_config or ModelConfig(),
        training or TrainingConfig(),
        seed,
    )
    cached = cache.load_object(key)
    if cached is not None:
        return cached, 1, 0
    model = train_on_maps(train_maps, model_config, training, seed=seed)
    cache.store_object(key, model)
    return model, 0, 1


def fine_tune(
    base: TrainedModel,
    labeled_maps: Sequence[FeatureMap],
    config: Optional[FineTuneConfig] = None,
    seed: int = 0,
) -> TrainedModel:
    """Personalize a trained cluster model with a user's labelled maps.

    The base model's weights are copied (the cluster checkpoint stays
    intact for other users); the conv feature extractor is frozen per
    the config; training runs a short, low-learning-rate schedule.
    The cluster normalizer is reused so the new user's inputs live in
    the same space the checkpoint was trained in.
    """
    labeled_maps = list(labeled_maps)
    if not labeled_maps:
        raise ValueError("fine-tuning needs at least one labelled map")
    config = config or FineTuneConfig()

    x, y = maps_to_arrays(base.normalizer.transform_all(labeled_maps))

    from ..nn.checkpoint import model_from_config, model_to_config

    tuned = model_from_config(model_to_config(base.model), seed=seed)
    tuned.validate(x.shape[1:])  # pre-flight: fail before any fine-tuning step
    tuned.forward(x[:1])  # build
    tuned.set_weights(base.model.get_weights())
    if config.freeze_feature_extractor:
        freeze_feature_extractor(tuned)
    tuned.compile(
        nn.SoftmaxCrossEntropy(),
        nn.Adam(lr=config.learning_rate, clipnorm=5.0),
    )
    tuned.fit(
        x,
        y,
        epochs=config.epochs,
        batch_size=min(config.batch_size, x.shape[0]),
        callbacks=[nn.BestWeights(monitor="accuracy", mode="max")],
    )
    return TrainedModel(model=tuned, normalizer=base.normalizer)
