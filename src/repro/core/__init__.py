"""CLEAR core: the paper's methodology (clustering + adaptive DL).

Public entry points:

* :class:`CLEAR` / :class:`CLEARSystem` — cloud-stage training and
  edge-stage cold-start + fine-tuning.
* :func:`build_cnn_lstm` — the paper's Fig. 2 architecture.
* Validation harness — :func:`evaluate_general_model`,
  :func:`cl_validation`, :func:`clear_validation` (Table I).
"""

from .adaptation import (
    AdaptationEvent,
    DriftDetector,
    DriftObservation,
    monitor_and_adapt,
)
from .architecture import (
    FEATURE_EXTRACTOR_LAYERS,
    architecture_summary,
    build_cnn_lstm,
    freeze_feature_extractor,
)
from .config import CLEARConfig, FineTuneConfig, ModelConfig, TrainingConfig
from .federated import (
    FederatedConfig,
    FederatedHistory,
    aggregate_normalizer,
    federated_train_cluster,
)
from .persistence import load_system, save_system
from .pipeline import CLEAR, CLEARSystem
from .semi_supervised import (
    PseudoLabelConfig,
    PseudoLabelReport,
    pseudo_label_fine_tune,
    pseudo_label_maps,
)
from .results import (
    PAPER_TABLE1_REFERENCES,
    PAPER_TABLE1_RESULTS,
    FoldMetrics,
    MetricSummary,
    render_table,
)
from .trainer import TrainedModel, fine_tune, train_on_maps
from .tuning import GridSearchResult, TrialResult, grid_search, subject_holdout_folds
from .validation import (
    CLEARValidationResult,
    CLValidationResult,
    cl_validation,
    clear_validation,
    evaluate_general_model,
)

__all__ = [
    "DriftDetector",
    "DriftObservation",
    "AdaptationEvent",
    "monitor_and_adapt",
    "CLEAR",
    "CLEARSystem",
    "save_system",
    "load_system",
    "FederatedConfig",
    "FederatedHistory",
    "federated_train_cluster",
    "aggregate_normalizer",
    "PseudoLabelConfig",
    "PseudoLabelReport",
    "pseudo_label_maps",
    "pseudo_label_fine_tune",
    "CLEARConfig",
    "ModelConfig",
    "TrainingConfig",
    "FineTuneConfig",
    "build_cnn_lstm",
    "architecture_summary",
    "freeze_feature_extractor",
    "FEATURE_EXTRACTOR_LAYERS",
    "GridSearchResult",
    "TrialResult",
    "grid_search",
    "subject_holdout_folds",
    "TrainedModel",
    "train_on_maps",
    "fine_tune",
    "FoldMetrics",
    "MetricSummary",
    "render_table",
    "PAPER_TABLE1_REFERENCES",
    "PAPER_TABLE1_RESULTS",
    "evaluate_general_model",
    "cl_validation",
    "clear_validation",
    "CLValidationResult",
    "CLEARValidationResult",
]
