"""Subject-aware hyper-parameter search for the cluster models.

Tuning emotion-recognition models with random splits leaks subject
identity into validation; the correct protocol is subject-held-out
evaluation.  This module provides a grid search whose inner evaluation
holds out whole subjects — the same discipline as the paper's LOSO.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..signals.feature_map import FeatureMap
from .config import ModelConfig, TrainingConfig
from .trainer import train_on_maps


@dataclass
class TrialResult:
    """One evaluated hyper-parameter combination."""

    params: Dict[str, object]
    fold_accuracies: List[float]

    @property
    def mean_accuracy(self) -> float:
        return float(np.mean(self.fold_accuracies))

    @property
    def std_accuracy(self) -> float:
        return float(np.std(self.fold_accuracies))


@dataclass
class GridSearchResult:
    """All trials plus the winner."""

    trials: List[TrialResult] = field(default_factory=list)

    @property
    def best(self) -> TrialResult:
        if not self.trials:
            raise ValueError("no trials recorded")
        return max(self.trials, key=lambda t: t.mean_accuracy)

    def ranking(self) -> List[TrialResult]:
        return sorted(self.trials, key=lambda t: -t.mean_accuracy)

    def render(self) -> str:
        lines = [f"{'rank':>5}  {'mean acc':>9}  params"]
        for rank, trial in enumerate(self.ranking(), 1):
            lines.append(
                f"{rank:>5}  {trial.mean_accuracy * 100:>8.2f}%  {trial.params}"
            )
        return "\n".join(lines)


def _expand_grid(grid: Dict[str, Sequence]) -> Iterable[Dict[str, object]]:
    keys = sorted(grid)
    for combo in itertools.product(*(grid[k] for k in keys)):
        yield dict(zip(keys, combo))


def _split_config(
    params: Dict[str, object],
    base_model: ModelConfig,
    base_training: TrainingConfig,
) -> Tuple[ModelConfig, TrainingConfig]:
    """Route grid keys to whichever config owns the field."""
    model_fields = {f.name for f in dataclasses.fields(ModelConfig)}
    training_fields = {f.name for f in dataclasses.fields(TrainingConfig)}
    model_over = {}
    training_over = {}
    for key, value in params.items():
        if key in model_fields:
            model_over[key] = value
        elif key in training_fields:
            training_over[key] = value
        else:
            raise ValueError(
                f"unknown hyper-parameter {key!r} "
                f"(not a ModelConfig or TrainingConfig field)"
            )
    return (
        dataclasses.replace(base_model, **model_over),
        dataclasses.replace(base_training, **training_over),
    )


def subject_holdout_folds(
    maps_by_subject: Dict[int, Sequence[FeatureMap]], n_folds: int
) -> List[Tuple[List[FeatureMap], List[FeatureMap]]]:
    """Round-robin subject-held-out folds: each fold holds out one
    subject (cycling if n_folds exceeds the subject count)."""
    subject_ids = sorted(maps_by_subject)
    if len(subject_ids) < 2:
        raise ValueError("need at least 2 subjects for subject hold-out")
    folds = []
    for i in range(n_folds):
        held = subject_ids[i % len(subject_ids)]
        train = [
            m for sid in subject_ids if sid != held for m in maps_by_subject[sid]
        ]
        test = list(maps_by_subject[held])
        folds.append((train, test))
    return folds


def grid_search(
    maps_by_subject: Dict[int, Sequence[FeatureMap]],
    grid: Dict[str, Sequence],
    base_model: ModelConfig = None,
    base_training: TrainingConfig = None,
    n_folds: int = 3,
    seed: int = 0,
) -> GridSearchResult:
    """Exhaustive grid search with subject-held-out evaluation.

    Parameters
    ----------
    maps_by_subject:
        The tuning population (e.g. one cluster's members).
    grid:
        Field name -> candidate values; fields may belong to either
        :class:`ModelConfig` or :class:`TrainingConfig`.
    n_folds:
        Subject-held-out folds per combination.
    """
    if not grid:
        raise ValueError("grid is empty")
    base_model = base_model or ModelConfig()
    base_training = base_training or TrainingConfig()
    folds = subject_holdout_folds(maps_by_subject, n_folds)

    result = GridSearchResult()
    for params in _expand_grid(grid):
        model_cfg, training_cfg = _split_config(params, base_model, base_training)
        accuracies = []
        for train_maps, test_maps in folds:
            trained = train_on_maps(train_maps, model_cfg, training_cfg, seed=seed)
            accuracies.append(trained.evaluate(test_maps)["accuracy"])
        result.trials.append(TrialResult(params=params, fold_accuracies=accuracies))
    return result
