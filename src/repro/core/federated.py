"""Federated per-cluster pre-training (privacy-preserving cloud stage).

The paper emphasizes that CLEAR preserves privacy at the *edge* stage
(new users never upload data).  The pre-deployment stage, however,
still pools the initial volunteers' data on the cloud.  Inspired by the
clustered federated learning of Huang et al. [8] (the paper's related
work), this module closes that gap: each cluster's CNN-LSTM is trained
by **federated averaging** across its member subjects — raw feature
maps never leave a member's device; only weight updates and count-
weighted normalization statistics are shared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..errors import FederatedRoundError, RetryError
from ..resilience.retry import Clock, RetryPolicy, retry_call
from ..signals.feature_map import FeatureMap, FeatureNormalizer, maps_to_arrays
from .architecture import build_cnn_lstm
from .config import ModelConfig
from .trainer import TrainedModel


@dataclass(frozen=True)
class FederatedConfig:
    """Federated-averaging hyper-parameters.

    Attributes
    ----------
    rounds:
        Global aggregation rounds.
    local_epochs:
        Epochs each client trains per round.
    batch_size, learning_rate:
        Client-side optimization settings.
    client_fraction:
        Fraction of clients sampled per round (1.0 = all).
    """

    rounds: int = 10
    local_epochs: int = 2
    batch_size: int = 8
    learning_rate: float = 1e-3
    client_fraction: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rounds < 1 or self.local_epochs < 1:
            raise ValueError("rounds and local_epochs must be >= 1")
        if not 0.0 < self.client_fraction <= 1.0:
            raise ValueError("client_fraction must be in (0, 1]")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")


def aggregate_normalizer(
    client_stats: Sequence[Tuple[int, np.ndarray, np.ndarray]],
) -> FeatureNormalizer:
    """Pool per-client (count, mean, var) into one normalizer.

    Uses the exact pooled-moments identity, so the result equals a
    normalizer fitted on the union of the clients' data — without any
    client revealing its raw windows.
    """
    if not client_stats:
        raise ValueError("need at least one client")
    total = sum(count for count, _, _ in client_stats)
    if total <= 0:
        raise ValueError("clients contributed no data")
    pooled_mean = (
        sum(count * mean for count, mean, _ in client_stats) / total
    )
    pooled_var = (
        sum(count * (var + mean**2) for count, mean, var in client_stats) / total
        - pooled_mean**2
    )
    normalizer = FeatureNormalizer()
    normalizer.mean_ = pooled_mean.reshape(-1, 1)
    normalizer.std_ = np.sqrt(np.maximum(pooled_var, 0.0)).reshape(-1, 1)
    return normalizer


def client_statistics(maps: Sequence[FeatureMap]) -> Tuple[int, np.ndarray, np.ndarray]:
    """The (count, mean, var) a client shares for normalizer pooling."""
    stacked = np.concatenate([m.values for m in maps], axis=1)  # (F, sum W)
    return stacked.shape[1], stacked.mean(axis=1), stacked.var(axis=1)


def _fedavg(
    updates: List[Tuple[int, List[Dict[str, np.ndarray]]]],
) -> List[Dict[str, np.ndarray]]:
    """Count-weighted average of client weight lists."""
    total = sum(count for count, _ in updates)
    averaged: List[Dict[str, np.ndarray]] = []
    for layer_idx in range(len(updates[0][1])):
        layer_avg: Dict[str, np.ndarray] = {}
        for key in updates[0][1][layer_idx]:
            layer_avg[key] = (
                sum(count * weights[layer_idx][key] for count, weights in updates)
                / total
            )
        averaged.append(layer_avg)
    return averaged


@dataclass
class FederatedHistory:
    """Per-round diagnostics of a federated run."""

    round_losses: List[float]
    clients_per_round: List[int]
    failed_clients_per_round: List[List[int]] = field(default_factory=list)


def federated_train_cluster(
    maps_by_client: Dict[int, Sequence[FeatureMap]],
    model_config: ModelConfig = None,
    config: FederatedConfig = None,
    client_runner: Optional[Callable[[int, np.ndarray, np.ndarray], None]] = None,
    retry_policy: Optional[RetryPolicy] = None,
    clock: Optional[Clock] = None,
) -> Tuple[TrainedModel, FederatedHistory]:
    """Train one cluster's model with FedAvg across its member subjects.

    Parameters
    ----------
    maps_by_client:
        Subject id -> that subject's labelled feature maps (each subject
        is one federated client; data stays in this mapping, only
        weights are aggregated).
    client_runner:
        Failure-injection hook called as ``client_runner(client_id,
        x, y)`` before each client's local training; raising simulates
        a crashed / unreachable client.
    retry_policy / clock:
        When a retry policy is given, a failing client is retried on
        the injectable clock; a client that still fails is *skipped*
        for the round (graceful degradation — FedAvg proceeds with the
        survivors, and the skip is recorded in
        ``history.failed_clients_per_round``).  Without a policy any
        client exception propagates unchanged.  A round where every
        sampled client fails raises
        :class:`~repro.errors.FederatedRoundError`.
    """
    if not maps_by_client:
        raise ValueError("need at least one client")
    model_config = model_config or ModelConfig()
    config = config or FederatedConfig()
    rng = np.random.default_rng(config.seed)

    # Phase 1: privacy-preserving normalizer via pooled moments.
    stats = [client_statistics(maps) for maps in maps_by_client.values()]
    normalizer = aggregate_normalizer(stats)

    # Pre-normalize every client's data locally.
    client_arrays: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
    for client_id, maps in maps_by_client.items():
        x, y = maps_to_arrays(normalizer.transform_all(list(maps)))
        client_arrays[client_id] = (x, y)

    input_shape = next(iter(client_arrays.values()))[0].shape[1:]
    global_model = build_cnn_lstm(input_shape, model_config, seed=config.seed)
    global_weights = global_model.get_weights()

    client_ids = sorted(client_arrays)
    n_sampled = max(1, int(round(config.client_fraction * len(client_ids))))
    history = FederatedHistory(round_losses=[], clients_per_round=[])

    for round_idx in range(config.rounds):
        sampled = rng.choice(client_ids, size=n_sampled, replace=False)
        updates: List[Tuple[int, List[Dict[str, np.ndarray]]]] = []
        losses: List[float] = []
        failed: List[int] = []
        for client_id in sampled:
            x, y = client_arrays[client_id]

            def train_client(client_id=client_id, x=x, y=y):
                if client_runner is not None:
                    client_runner(client_id, x, y)
                local = build_cnn_lstm(
                    input_shape, model_config, seed=config.seed + round_idx
                )
                local.set_weights(global_weights)
                local.compile(
                    nn.SoftmaxCrossEntropy(),
                    nn.Adam(lr=config.learning_rate, clipnorm=5.0),
                )
                local_history = local.fit(
                    x,
                    y,
                    epochs=config.local_epochs,
                    batch_size=min(config.batch_size, x.shape[0]),
                )
                return local_history.epochs[-1]["loss"], local.get_weights()

            if retry_policy is None:
                loss, weights = train_client()
            else:
                try:
                    loss, weights = retry_call(
                        train_client,
                        policy=retry_policy,
                        clock=clock,
                        description=f"client {client_id} round {round_idx}",
                    )
                except RetryError:
                    failed.append(int(client_id))
                    continue
            losses.append(loss)
            updates.append((x.shape[0], weights))
        if not updates:
            raise FederatedRoundError(
                f"round {round_idx}: all {len(sampled)} sampled client(s) "
                f"failed after retries ({sorted(failed)})"
            )
        global_weights = _fedavg(updates)
        history.round_losses.append(float(np.mean(losses)))
        history.clients_per_round.append(len(updates))
        history.failed_clients_per_round.append(failed)

    global_model.set_weights(global_weights)
    return TrainedModel(model=global_model, normalizer=normalizer), history
