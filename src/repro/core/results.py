"""Result containers and Table-I-style rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..orchestration.provenance import Provenance
from ..runtime.executor import RuntimeStats


@dataclass
class FoldMetrics:
    """Accuracy/F1 of one evaluation fold."""

    accuracy: float
    f1: float
    fold_id: Optional[int] = None

    def __post_init__(self) -> None:
        for name, value in (("accuracy", self.accuracy), ("f1", self.f1)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass
class MetricSummary:
    """Mean and std of accuracy/F1 across folds, in percent (paper units)."""

    name: str
    folds: List[FoldMetrics] = field(default_factory=list)
    #: How the folds behind this summary ran (executor shape, cache
    #: hit/miss counters); None when the producer predates the runtime
    #: layer or the summary was assembled by hand.
    runtime: Optional[RuntimeStats] = None
    #: Lineage of the fold-plan stage that produced these folds; None
    #: when assembled by hand.
    provenance: Optional[Provenance] = None

    def add(self, fold: FoldMetrics) -> None:
        self.folds.append(fold)

    def __repro_content__(self) -> Tuple:
        # Stable content: the fold metrics only.  Runtime stats and
        # provenance carry wall times, which must never shift a digest.
        return (
            "MetricSummary",
            self.name,
            tuple((f.fold_id, f.accuracy, f.f1) for f in self.folds),
        )

    @property
    def num_folds(self) -> int:
        return len(self.folds)

    def _series(self, attr: str) -> np.ndarray:
        if not self.folds:
            raise ValueError(f"no folds recorded for {self.name!r}")
        return np.array([getattr(f, attr) for f in self.folds]) * 100.0

    @property
    def accuracy_mean(self) -> float:
        return float(self._series("accuracy").mean())

    @property
    def accuracy_std(self) -> float:
        return float(self._series("accuracy").std())

    @property
    def f1_mean(self) -> float:
        return float(self._series("f1").mean())

    @property
    def f1_std(self) -> float:
        return float(self._series("f1").std())

    def as_row(self) -> Dict[str, float]:
        return {
            "accuracy": round(self.accuracy_mean, 2),
            "std_acc": round(self.accuracy_std, 2),
            "f1": round(self.f1_mean, 2),
            "std_f1": round(self.f1_std, 2),
        }

    def __repr__(self) -> str:
        if not self.folds:
            return f"MetricSummary({self.name!r}, empty)"
        return (
            f"MetricSummary({self.name!r}, acc={self.accuracy_mean:.2f}"
            f"±{self.accuracy_std:.2f}, f1={self.f1_mean:.2f}±{self.f1_std:.2f}, "
            f"n={self.num_folds})"
        )


#: Literature reference rows from the paper's Table I (constants; these
#: systems are not re-run, the paper itself cites them as context).
PAPER_TABLE1_REFERENCES: Dict[str, Dict[str, float]] = {
    "Bindi [22]": {"accuracy": 64.63, "std_acc": 16.56, "f1": 66.67, "std_f1": 17.31},
    "Sun et al. [18]": {"accuracy": 79.90, "std_acc": 4.16, "f1": 78.13, "std_f1": 6.52},
}

#: The paper's own measured rows of Table I, for side-by-side reporting.
PAPER_TABLE1_RESULTS: Dict[str, Dict[str, float]] = {
    "General Model": {"accuracy": 75.00, "std_acc": 2.76, "f1": 72.57, "std_f1": 3.12},
    "RT CL": {"accuracy": 64.33, "std_acc": 1.80, "f1": 62.42, "std_f1": 1.57},
    "CL validation": {"accuracy": 81.90, "std_acc": 3.44, "f1": 80.41, "std_f1": 3.58},
    "RT CLEAR": {"accuracy": 72.68, "std_acc": 5.10, "f1": 70.98, "std_f1": 4.26},
    "CLEAR w/o FT": {"accuracy": 80.63, "std_acc": 4.22, "f1": 79.97, "std_f1": 4.74},
    "CLEAR w FT": {"accuracy": 86.34, "std_acc": 4.04, "f1": 86.03, "std_f1": 5.04},
}


def render_table(
    rows: Sequence[MetricSummary],
    title: str = "",
    paper_rows: Optional[Dict[str, Dict[str, float]]] = None,
) -> str:
    """Render measured rows (optionally with paper values) as text."""
    lines: List[str] = []
    if title:
        lines.append(title)
    header = f"{'Validation':<22}{'Acc':>8}{'STD':>8}{'F1':>8}{'STD':>8}"
    if paper_rows:
        header += f"{'paper Acc':>12}{'paper F1':>10}"
    lines.append(header)
    lines.append("-" * len(header))
    for summary in rows:
        row = summary.as_row()
        line = (
            f"{summary.name:<22}{row['accuracy']:>8.2f}{row['std_acc']:>8.2f}"
            f"{row['f1']:>8.2f}{row['std_f1']:>8.2f}"
        )
        if paper_rows and summary.name in paper_rows:
            ref = paper_rows[summary.name]
            line += f"{ref['accuracy']:>12.2f}{ref['f1']:>10.2f}"
        lines.append(line)
    return "\n".join(lines)
