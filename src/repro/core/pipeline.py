"""The end-to-end CLEAR pipeline (paper Fig. 1).

Cloud stage: global clustering of the initial user population and one
CNN-LSTM checkpoint per cluster.  Edge stage: unsupervised cold-start
cluster assignment for new users, then optional fine-tuning with a
small labelled fraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis.graph import validate_architecture
from ..clustering.assignment import AssignmentResult, ColdStartAssigner
from ..clustering.global_clustering import GlobalClustering, GlobalClusteringResult
from ..clustering.subclusters import SubClusterModel, build_subclusters
from ..signals.feature_map import FeatureMap
from .config import CLEARConfig
from .trainer import TrainedModel, fine_tune, train_on_maps


@dataclass
class CLEARSystem:
    """A fitted CLEAR deployment: clusters, assigner, per-cluster models."""

    config: CLEARConfig
    gc: GlobalClusteringResult
    subclusters: Dict[int, SubClusterModel]
    assigner: ColdStartAssigner
    cluster_models: Dict[int, TrainedModel]

    # -- edge-stage operations -------------------------------------------
    def assign_new_user(self, unlabeled_maps: Sequence[FeatureMap]) -> AssignmentResult:
        """Cold-start cluster assignment from unlabeled data only."""
        return self.assigner.assign(unlabeled_maps)

    def model_for(self, cluster: int) -> TrainedModel:
        if cluster not in self.cluster_models:
            raise KeyError(f"no model for cluster {cluster}")
        return self.cluster_models[cluster]

    def predict(
        self, maps: Sequence[FeatureMap], cluster: Optional[int] = None
    ) -> np.ndarray:
        """Classify maps with the given (or cold-start-assigned) cluster model."""
        if cluster is None:
            cluster = self.assign_new_user(maps).cluster
        return self.model_for(cluster).predict_classes(maps)

    def personalize(
        self,
        labeled_maps: Sequence[FeatureMap],
        cluster: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> TrainedModel:
        """Fine-tune the cluster checkpoint with a user's labelled maps."""
        if cluster is None:
            cluster = self.assign_new_user(labeled_maps).cluster
        return fine_tune(
            self.model_for(cluster),
            labeled_maps,
            self.config.fine_tuning,
            seed=self.config.seed if seed is None else seed,
        )

    def cluster_sizes(self) -> List[int]:
        return self.gc.cluster_sizes()


class CLEAR:
    """Trainer for the cloud stage of the CLEAR methodology."""

    def __init__(self, config: Optional[CLEARConfig] = None):
        self.config = config or CLEARConfig()

    def fit(
        self, maps_by_subject: Dict[int, Sequence[FeatureMap]]
    ) -> CLEARSystem:
        """Run GC + sub-clustering + per-cluster pre-training.

        Parameters
        ----------
        maps_by_subject:
            The initial (pre-deployment) population: subject id to that
            subject's labelled feature maps.
        """
        cfg = self.config

        # Pre-flight: validate the architecture against the population's
        # feature-map shape once, statically, so a bad config is rejected
        # before clustering runs or any cluster model trains.
        first_map = next(
            (m for maps in maps_by_subject.values() for m in maps), None
        )
        if first_map is not None:
            validate_architecture((1,) + first_map.values.shape, cfg.model)

        gc = GlobalClustering(
            k=cfg.num_clusters,
            n_refinements=cfg.gc_refinements,
            subsample_fraction=cfg.gc_subsample_fraction,
            seed=cfg.seed,
        ).fit(maps_by_subject)

        subclusters = build_subclusters(
            gc,
            maps_by_subject,
            subclusters_per_cluster=cfg.subclusters_per_cluster,
            seed=cfg.seed,
        )
        assigner = ColdStartAssigner(gc, subclusters)

        cluster_models: Dict[int, TrainedModel] = {}
        for cluster in range(cfg.num_clusters):
            member_ids = gc.members(cluster)
            member_maps = [
                m for sid in member_ids for m in maps_by_subject[sid]
            ]
            if len(member_maps) < 2:
                raise RuntimeError(
                    f"cluster {cluster} has too few maps ({len(member_maps)}) "
                    "to train a model"
                )
            cluster_models[cluster] = train_on_maps(
                member_maps,
                model_config=cfg.model,
                training=cfg.training,
                seed=cfg.seed + cluster,
            )

        return CLEARSystem(
            config=cfg,
            gc=gc,
            subclusters=subclusters,
            assigner=assigner,
            cluster_models=cluster_models,
        )
