"""The end-to-end CLEAR pipeline (paper Fig. 1).

Cloud stage: global clustering of the initial user population and one
CNN-LSTM checkpoint per cluster.  Edge stage: unsupervised cold-start
cluster assignment for new users, then optional fine-tuning with a
small labelled fraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..analysis.graph import validate_architecture
from ..clustering.assignment import AssignmentResult, ColdStartAssigner
from ..clustering.global_clustering import GlobalClustering, GlobalClusteringResult
from ..clustering.subclusters import SubClusterModel, build_subclusters
from ..orchestration.context import normalize_cache_dir, resolve_executor
from ..orchestration.graph import PipelineGraph
from ..orchestration.grouping import member_maps as _member_maps
from ..orchestration.provenance import Provenance
from ..orchestration.stage import Stage, StageContext
from ..runtime.executor import Executor, RuntimeStats
from ..signals.feature_map import FeatureMap
from .config import CLEARConfig, ModelConfig, TrainingConfig
from .trainer import TrainedModel, fine_tune, train_on_maps_cached


@dataclass
class CLEARSystem:
    """A fitted CLEAR deployment: clusters, assigner, per-cluster models."""

    config: CLEARConfig
    gc: GlobalClusteringResult
    subclusters: Dict[int, SubClusterModel]
    assigner: ColdStartAssigner
    cluster_models: Dict[int, TrainedModel]
    #: How the cloud stage ran: executor shape + checkpoint-cache counters.
    runtime: Optional[RuntimeStats] = None
    #: Per-stage lineage of the fit graph (global clustering, sub-
    #: clustering, per-cluster pre-training), in execution order.
    provenance: Tuple[Provenance, ...] = ()
    _population: Optional[TrainedModel] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __repro_content__(self) -> Tuple:
        # Stable content of a fitted system: everything that determines
        # its predictions.  Runtime stats / provenance carry wall times
        # and the lazy population model is derived state.
        return (
            "CLEARSystem",
            self.config,
            self.gc,
            self.subclusters,
            self.cluster_models,
        )

    # -- edge-stage operations -------------------------------------------
    def assign_new_user(self, unlabeled_maps: Sequence[FeatureMap]) -> AssignmentResult:
        """Cold-start cluster assignment from unlabeled data only."""
        return self.assigner.assign(unlabeled_maps)

    def model_for(self, cluster: int) -> TrainedModel:
        if cluster not in self.cluster_models:
            raise KeyError(f"no model for cluster {cluster}")
        return self.cluster_models[cluster]

    def population_model(self) -> TrainedModel:
        """The fallback checkpoint: average of every cluster model.

        Built lazily (averaging weights is cheap but not free) and
        cached; used when cold-start assignment confidence is too low
        to trust any single cluster checkpoint.
        """
        if self._population is None:
            from ..resilience.degradation import population_average_model

            self._population = population_average_model(self.cluster_models)
        return self._population

    def predict(
        self, maps: Sequence[FeatureMap], cluster: Optional[int] = None
    ) -> np.ndarray:
        """Classify maps with the given (or cold-start-assigned) cluster model."""
        if cluster is None:
            cluster = self.assign_new_user(maps).cluster
        return self.model_for(cluster).predict_classes(maps)

    def predict_with_health(
        self,
        maps: Sequence[FeatureMap],
        policy: Optional["DegradationPolicy"] = None,
    ) -> Tuple[np.ndarray, "HealthStatus"]:
        """Degradation-aware prediction: never NaN, never a bare crash.

        The resilient twin of :meth:`predict`: non-finite feature-map
        cells are imputed per the policy, the cold-start assignment is
        only trusted when its margin clears
        ``policy.min_assignment_margin`` (otherwise the
        population-average fallback model predicts), and a model whose
        output is non-finite triggers the same fallback.  The returned
        :class:`~repro.resilience.degradation.HealthStatus` records
        exactly which of those degradations happened.
        """
        from ..resilience.degradation import (
            DEGRADED,
            FALLBACK,
            HEALTHY,
            DegradationPolicy,
            HealthStatus,
            safe_probabilities,
        )
        from ..resilience.guards import impute_features, screen_features
        from ..signals.feature_map import FeatureMap as _FeatureMap
        from ..signals.feature_map import maps_to_arrays

        maps = list(maps)
        if not maps:
            raise ValueError("need at least one feature map to predict")
        policy = policy or DegradationPolicy()
        reasons: List[str] = []

        # 1. Screen + impute non-finite feature-map cells.
        n_imputed = 0
        sanitized: List[FeatureMap] = []
        for fmap in maps:
            flat = fmap.values.ravel()
            screen = screen_features(flat)
            if screen.finite:
                sanitized.append(fmap)
                continue
            n_imputed += len(screen.bad_indices)
            finite_mean = (
                float(np.mean(flat[np.isfinite(flat)]))
                if np.isfinite(flat).any()
                else 0.0
            )
            clean = impute_features(
                flat, screen.bad_indices, fill=finite_mean
            ).reshape(fmap.values.shape)
            sanitized.append(
                _FeatureMap(clean, label=fmap.label, subject_id=fmap.subject_id)
            )
        if n_imputed:
            reasons.append(f"non_finite_map_cells:{n_imputed}")

        # 2. Cold-start assignment, gated on its confidence margin.
        assignment = self.assign_new_user(sanitized)
        margin = assignment.margin()
        use_fallback = margin < policy.min_assignment_margin
        if use_fallback:
            reasons.append(
                f"low_assignment_confidence:{margin:.4f}"
                f"<{policy.min_assignment_margin}"
            )
        model = (
            self.population_model()
            if use_fallback
            else self.model_for(assignment.cluster)
        )

        # 3. Predict, screening the output; a non-finite cluster output
        # falls back to the population model before giving up.
        def _probs(m: TrainedModel):
            x, _ = maps_to_arrays(m.normalizer.transform_all(sanitized))
            return safe_probabilities(m.model.predict(x))

        probs, trustworthy = _probs(model)
        if not trustworthy and not use_fallback:
            reasons.append("non_finite_cluster_model_output")
            use_fallback = True
            probs, trustworthy = _probs(self.population_model())
        if not trustworthy:
            reasons.append("non_finite_fallback_output")
        preds = np.argmax(probs, axis=1)

        if use_fallback:
            state = FALLBACK
        elif reasons:
            state = DEGRADED
        else:
            state = HEALTHY
        health = HealthStatus(
            state=state,
            imputed_features=n_imputed,
            assignment_margin=float(margin),
            used_fallback_model=use_fallback,
            checkpoint_ok=trustworthy,
            reasons=tuple(reasons),
        )
        return preds, health

    def personalize(
        self,
        labeled_maps: Sequence[FeatureMap],
        cluster: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> TrainedModel:
        """Fine-tune the cluster checkpoint with a user's labelled maps."""
        if cluster is None:
            cluster = self.assign_new_user(labeled_maps).cluster
        return fine_tune(
            self.model_for(cluster),
            labeled_maps,
            self.config.fine_tuning,
            seed=self.config.seed if seed is None else seed,
        )

    def cluster_sizes(self) -> List[int]:
        return self.gc.cluster_sizes()


def _train_cluster_unit(
    args: Tuple[
        int, List[FeatureMap], ModelConfig, TrainingConfig, int, Optional[str]
    ],
) -> Tuple[int, TrainedModel, int, int]:
    """Executor work unit: pre-train (or cache-load) one cluster model.

    Returns ``(cluster, model, cache_hits, cache_misses)``; the counters
    ride back with the result because a forked worker's cache handle
    cannot update the parent's.
    """
    cluster, member_maps, model_config, training, seed, cache_dir = args
    model, hits, misses = train_on_maps_cached(
        member_maps,
        model_config=model_config,
        training=training,
        seed=seed,
        cache_dir=cache_dir,
    )
    return cluster, model, hits, misses


class CLEAR:
    """Trainer for the cloud stage of the CLEAR methodology.

    Parameters
    ----------
    config:
        The methodology configuration (defaults to the paper's).
    executor:
        Where per-cluster pre-training runs; each cluster is an
        independent work unit with its own derived seed
        (``config.seed + cluster``), so a parallel fit is bit-identical
        to the default serial one.
    cache_dir:
        Root of the content-addressed runtime cache.  Cluster
        checkpoints are keyed by training-map bytes + model/training
        config + seed; a warm fit skips pre-training entirely.
    """

    def __init__(
        self,
        config: Optional[CLEARConfig] = None,
        executor: Optional[Executor] = None,
        cache_dir: Optional[Union[str, Path]] = None,
    ):
        self.config = config or CLEARConfig()
        self.executor = resolve_executor(executor)
        self.cache_dir = normalize_cache_dir(cache_dir)

    def _graph(self) -> PipelineGraph:
        """The cloud stage as a declared graph over the population artifact."""
        cfg = self.config

        def _gc_stage(
            ctx: StageContext, population: Dict[int, Sequence[FeatureMap]]
        ) -> GlobalClusteringResult:
            return GlobalClustering(
                k=cfg.num_clusters,
                n_refinements=cfg.gc_refinements,
                subsample_fraction=cfg.gc_subsample_fraction,
                seed=cfg.seed,
            ).fit(population)

        def _subcluster_stage(
            ctx: StageContext,
            population: Dict[int, Sequence[FeatureMap]],
            global_clustering: GlobalClusteringResult,
        ) -> Dict[int, SubClusterModel]:
            return build_subclusters(
                global_clustering,
                population,
                subclusters_per_cluster=cfg.subclusters_per_cluster,
                seed=cfg.seed,
            )

        def _train_stage(
            ctx: StageContext,
            population: Dict[int, Sequence[FeatureMap]],
            global_clustering: GlobalClusteringResult,
        ) -> Dict[int, TrainedModel]:
            units = []
            for cluster in range(cfg.num_clusters):
                maps = _member_maps(
                    population, global_clustering.members(cluster)
                )
                if len(maps) < 2:
                    raise RuntimeError(
                        f"cluster {cluster} has too few maps ({len(maps)}) "
                        "to train a model"
                    )
                units.append(
                    (
                        cluster,
                        maps,
                        cfg.model,
                        cfg.training,
                        cfg.seed + cluster,
                        ctx.cache_dir,
                    )
                )
            ctx.set_units(len(units))
            cluster_models: Dict[int, TrainedModel] = {}
            for cluster, model, hits, misses in ctx.executor.map(
                _train_cluster_unit, units
            ):
                cluster_models[cluster] = model
                ctx.record_cache(hits, misses)
            return cluster_models

        return PipelineGraph(
            "clear_fit",
            [
                Stage(
                    name="global_clustering",
                    fn=_gc_stage,
                    requires=("population",),
                    config=cfg,
                    seed=cfg.seed,
                ),
                Stage(
                    name="subclusters",
                    fn=_subcluster_stage,
                    requires=("population", "global_clustering"),
                    config=cfg,
                    seed=cfg.seed,
                ),
                Stage(
                    name="cluster_models",
                    fn=_train_stage,
                    requires=("population", "global_clustering"),
                    config=cfg,
                    seed=cfg.seed,
                ),
            ],
        )

    def fit(
        self, maps_by_subject: Dict[int, Sequence[FeatureMap]]
    ) -> CLEARSystem:
        """Run GC + sub-clustering + per-cluster pre-training.

        Parameters
        ----------
        maps_by_subject:
            The initial (pre-deployment) population: subject id to that
            subject's labelled feature maps.
        """
        import time as _time

        cfg = self.config
        t0 = _time.perf_counter()

        # Pre-flight: validate the architecture against the population's
        # feature-map shape once, statically, so a bad config is rejected
        # before clustering runs or any cluster model trains.
        first_map = next(
            (m for maps in maps_by_subject.values() for m in maps), None
        )
        if first_map is not None:
            validate_architecture((1,) + first_map.values.shape, cfg.model)

        run = self._graph().run(
            initial={"population": maps_by_subject},
            executor=self.executor,
            cache_dir=self.cache_dir,
            seed=cfg.seed,
        )
        gc: GlobalClusteringResult = run.value("global_clustering")
        subclusters: Dict[int, SubClusterModel] = run.value("subclusters")
        cluster_models: Dict[int, TrainedModel] = run.value("cluster_models")
        train_prov = run.provenance("cluster_models")

        stats = RuntimeStats(
            executor=self.executor.name,
            workers=self.executor.workers,
            units=train_prov.units,
            cache_hits=train_prov.cache_hits,
            cache_misses=train_prov.cache_misses,
        )
        stats.wall_time_s = _time.perf_counter() - t0

        return CLEARSystem(
            config=cfg,
            gc=gc,
            subclusters=subclusters,
            assigner=ColdStartAssigner(gc, subclusters),
            cluster_models=cluster_models,
            runtime=stats,
            provenance=tuple(
                run.provenance(name)
                for name in ("global_clustering", "subclusters", "cluster_models")
            ),
        )
