"""Persistence of a fitted CLEAR system (cloud -> edge shipping).

The paper's workflow saves the best per-cluster checkpoints on the
cloud and deploys them to edge devices.  This module serializes a
:class:`~repro.core.pipeline.CLEARSystem` to a directory:

```
system_dir/
  manifest.json          # config + clustering state + normalizer stats
  cluster_0.npz          # per-cluster CNN-LSTM checkpoints
  cluster_1.npz
  ...
```
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from ..clustering.assignment import ColdStartAssigner
from ..clustering.global_clustering import GlobalClusteringResult
from ..clustering.scaling import StandardScaler
from ..clustering.subclusters import SubClusterModel
from ..nn.checkpoint import load_model, save_model
from ..signals.feature_map import FeatureNormalizer
from .config import CLEARConfig, FineTuneConfig, ModelConfig, TrainingConfig
from .pipeline import CLEARSystem
from .trainer import TrainedModel

MANIFEST_NAME = "manifest.json"
FORMAT_VERSION = 1


def _config_to_dict(config: CLEARConfig) -> Dict:
    return dataclasses.asdict(config)


def _config_from_dict(data: Dict) -> CLEARConfig:
    data = dict(data)
    data["model"] = ModelConfig(**{
        **data["model"],
        "conv_filters": tuple(data["model"]["conv_filters"]),
        "pool_size": tuple(data["model"]["pool_size"]),
    })
    data["training"] = TrainingConfig(**data["training"])
    data["fine_tuning"] = FineTuneConfig(**data["fine_tuning"])
    return CLEARConfig(**data)


def save_system(system: CLEARSystem, directory: Union[str, Path]) -> Path:
    """Write a fitted CLEAR system to ``directory``.

    Everything needed to serve new users at the edge is captured: the
    GC scaler and centroids, per-cluster sub-centroids and assignments
    (for CA), the per-cluster checkpoints, and each checkpoint's
    feature normalizer.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    manifest = {
        "format_version": FORMAT_VERSION,
        "config": _config_to_dict(system.config),
        "gc": {
            "k": system.gc.k,
            "centroids": system.gc.centroids.tolist(),
            "assignments": {str(k): v for k, v in system.gc.assignments.items()},
            "n_refinements": system.gc.n_refinements,
            "converged": system.gc.converged,
            "scaler_mean": system.gc.scaler.mean_.tolist(),
            "scaler_std": system.gc.scaler.std_.tolist(),
        },
        "subclusters": {
            str(cluster): model.centroids.tolist()
            for cluster, model in system.subclusters.items()
        },
        "normalizers": {},
        "checkpoints": {},
    }

    for cluster, trained in system.cluster_models.items():
        ckpt_name = f"cluster_{cluster}.npz"
        save_model(trained.model, directory / ckpt_name)
        manifest["checkpoints"][str(cluster)] = ckpt_name
        manifest["normalizers"][str(cluster)] = {
            "mean": trained.normalizer.mean_.ravel().tolist(),
            "std": trained.normalizer.std_.ravel().tolist(),
        }

    with open(directory / MANIFEST_NAME, "w", encoding="utf-8") as f:
        json.dump(manifest, f)
    return directory


def load_system(directory: Union[str, Path]) -> CLEARSystem:
    """Load a CLEAR system saved by :func:`save_system`."""
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise FileNotFoundError(f"no CLEAR manifest at {manifest_path}")
    with open(manifest_path, encoding="utf-8") as f:
        manifest = json.load(f)
    if manifest.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported CLEAR system format: {manifest.get('format_version')}"
        )

    config = _config_from_dict(manifest["config"])

    gc_data = manifest["gc"]
    scaler = StandardScaler()
    scaler.mean_ = np.asarray(gc_data["scaler_mean"], dtype=np.float64)
    scaler.std_ = np.asarray(gc_data["scaler_std"], dtype=np.float64)
    gc = GlobalClusteringResult(
        k=int(gc_data["k"]),
        scaler=scaler,
        centroids=np.asarray(gc_data["centroids"], dtype=np.float64),
        assignments={int(k): int(v) for k, v in gc_data["assignments"].items()},
        n_refinements=int(gc_data["n_refinements"]),
        converged=bool(gc_data["converged"]),
    )

    subclusters = {
        int(cluster): SubClusterModel(
            cluster=int(cluster),
            centroids=np.asarray(centroids, dtype=np.float64),
        )
        for cluster, centroids in manifest["subclusters"].items()
    }

    cluster_models: Dict[int, TrainedModel] = {}
    for cluster_str, ckpt_name in manifest["checkpoints"].items():
        cluster = int(cluster_str)
        model = load_model(directory / ckpt_name)
        norm_data = manifest["normalizers"][cluster_str]
        normalizer = FeatureNormalizer()
        normalizer.mean_ = np.asarray(norm_data["mean"], dtype=np.float64)[:, None]
        normalizer.std_ = np.asarray(norm_data["std"], dtype=np.float64)[:, None]
        cluster_models[cluster] = TrainedModel(model=model, normalizer=normalizer)

    assigner = ColdStartAssigner(gc, subclusters)
    return CLEARSystem(
        config=config,
        gc=gc,
        subclusters=subclusters,
        assigner=assigner,
        cluster_models=cluster_models,
    )
