"""Configuration objects for the CLEAR pipeline and validation harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class ModelConfig:
    """CNN-LSTM architecture hyper-parameters (paper Fig. 2)."""

    conv_filters: Tuple[int, int] = (8, 16)
    kernel_size: int = 3
    #: Pooling acts on the feature axis only so the window (time) axis
    #: survives for the LSTM.
    pool_size: Tuple[int, int] = (2, 1)
    lstm_units: int = 32
    dropout: float = 0.25
    num_classes: int = 2
    #: Recurrent cell: 'lstm' (the paper's choice), 'gru', or 'rnn'.
    #: Exposed for the architecture ablation.
    recurrent_cell: str = "lstm"
    #: Replace the last-state read-out with temporal-attention pooling
    #: over the full hidden sequence (architecture extension).
    attention_readout: bool = False
    #: Compute backend for the built model: 'reference' (bit-identical
    #: goldens; the paper-scale numbers use this) or 'optimized' (fast
    #: serving path; see :mod:`repro.nn.backends`).
    backend: str = "reference"

    def __post_init__(self) -> None:
        if len(self.conv_filters) != 2:
            raise ValueError("the paper's architecture uses exactly 2 conv layers")
        if self.num_classes < 2:
            raise ValueError("need at least 2 classes")
        if self.recurrent_cell not in ("lstm", "gru", "rnn"):
            raise ValueError(
                f"recurrent_cell must be 'lstm', 'gru' or 'rnn', "
                f"got {self.recurrent_cell!r}"
            )
        from ..nn.backends import available_backends

        if self.backend not in available_backends():
            raise ValueError(
                f"backend must be one of {available_backends()}, "
                f"got {self.backend!r}"
            )


@dataclass(frozen=True)
class TrainingConfig:
    """Optimization hyper-parameters for cloud pre-training."""

    epochs: int = 40
    batch_size: int = 16
    learning_rate: float = 1e-3
    early_stopping_patience: int = 8
    clipnorm: float = 5.0
    validation_fraction: float = 0.0  # 0 disables a held-out val split

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")


@dataclass(frozen=True)
class FineTuneConfig:
    """On-device fine-tuning hyper-parameters (paper §III-B.2).

    The convolutional feature extractor is frozen by default and only
    the LSTM + head are updated, which is what makes the retraining
    cheap enough for edge devices.
    """

    epochs: int = 15
    batch_size: int = 8
    learning_rate: float = 5e-4
    freeze_feature_extractor: bool = True

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")


@dataclass(frozen=True)
class CLEARConfig:
    """Top-level CLEAR methodology configuration.

    Defaults follow the paper: K = 4 clusters, 10 % unlabeled data for
    cold-start assignment, 20 % labelled data for fine-tuning.
    """

    num_clusters: int = 4
    subclusters_per_cluster: int = 3
    gc_refinements: int = 10
    gc_subsample_fraction: float = 0.8
    ca_data_fraction: float = 0.10
    ft_label_fraction: float = 0.20
    model: ModelConfig = field(default_factory=ModelConfig)
    training: TrainingConfig = field(default_factory=TrainingConfig)
    fine_tuning: FineTuneConfig = field(default_factory=FineTuneConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_clusters < 1:
            raise ValueError("num_clusters must be >= 1")
        if not 0.0 < self.ca_data_fraction < 1.0:
            raise ValueError("ca_data_fraction must be in (0, 1)")
        if not 0.0 < self.ft_label_fraction < 1.0:
            raise ValueError("ft_label_fraction must be in (0, 1)")

    @staticmethod
    def paper(seed: int = 0) -> "CLEARConfig":
        """Full paper-scale settings."""
        return CLEARConfig(seed=seed)

    @staticmethod
    def fast(seed: int = 0) -> "CLEARConfig":
        """Reduced settings for tests and quick benchmarks."""
        return CLEARConfig(
            subclusters_per_cluster=2,
            gc_refinements=5,
            training=TrainingConfig(epochs=15, batch_size=8, early_stopping_patience=4),
            fine_tuning=FineTuneConfig(epochs=8),
            seed=seed,
        )
