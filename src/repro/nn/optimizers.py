"""First-order optimizers operating on the Layer params/grads protocol.

Optimizers keep per-parameter slot state keyed by ``(layer_name, param
name)`` so layers can be frozen/unfrozen between calls without losing
moments, which matters for the CLEAR fine-tuning stage.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple, Union

import numpy as np

from .layers.base import Layer
from .schedules import Schedule, resolve_schedule


class Optimizer:
    """Base optimizer.

    Parameters
    ----------
    lr:
        Learning rate — a float or a :class:`repro.nn.schedules.Schedule`.
    clipnorm:
        Optional global gradient-norm clip applied before each step.
    weight_decay:
        Decoupled L2 weight decay (AdamW-style) applied to all params.
    """

    def __init__(
        self,
        lr: Union[float, Schedule] = 0.01,
        clipnorm: Optional[float] = None,
        weight_decay: float = 0.0,
    ):
        self.schedule = resolve_schedule(lr)
        self.clipnorm = clipnorm
        self.weight_decay = float(weight_decay)
        self.iterations = 0
        self._slots: Dict[Tuple[str, str, str], np.ndarray] = {}

    # -- slot state ------------------------------------------------------
    def slot(self, layer: Layer, key: str, slot_name: str) -> np.ndarray:
        """Get (creating if needed) optimizer state for one parameter."""
        slot_key = (layer.name, key, slot_name)
        if slot_key not in self._slots:
            self._slots[slot_key] = np.zeros_like(layer.params[key])
        return self._slots[slot_key]

    def set_slot(self, layer: Layer, key: str, slot_name: str, value: np.ndarray):
        self._slots[(layer.name, key, slot_name)] = value

    # -- stepping --------------------------------------------------------
    @property
    def lr(self) -> float:
        """Current learning rate under the schedule."""
        return float(self.schedule(self.iterations))

    def _clip(self, layers: Iterable[Layer]) -> None:
        if self.clipnorm is None:
            return
        total = 0.0
        grads = []
        for layer in layers:
            for key in layer.trainable_params:
                g = layer.grads.get(key)
                if g is not None:
                    grads.append(g)
                    total += float(np.sum(g * g))
        norm = np.sqrt(total)
        if norm > self.clipnorm and norm > 0.0:
            scale = self.clipnorm / norm
            for g in grads:
                g *= scale

    def step(self, layers: Iterable[Layer]) -> None:
        """Apply one update to every trainable parameter."""
        layers = [l for l in layers if l.trainable_params]
        self._clip(layers)
        lr = self.lr
        for layer in layers:
            for key in layer.trainable_params:
                grad = layer.grads.get(key)
                if grad is None:
                    continue
                if self.weight_decay:
                    layer.params[key] *= 1.0 - lr * self.weight_decay
                self._update_param(layer, key, grad, lr)
        self.iterations += 1

    def _update_param(
        self, layer: Layer, key: str, grad: np.ndarray, lr: float
    ) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        """Drop all slot state (e.g. when starting fine-tuning afresh)."""
        self._slots.clear()
        self.iterations = 0


class SGD(Optimizer):
    """Stochastic gradient descent with optional (Nesterov) momentum."""

    def __init__(
        self,
        lr: Union[float, Schedule] = 0.01,
        momentum: float = 0.0,
        nesterov: bool = False,
        clipnorm: Optional[float] = None,
        weight_decay: float = 0.0,
    ):
        super().__init__(lr=lr, clipnorm=clipnorm, weight_decay=weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = float(momentum)
        self.nesterov = bool(nesterov)

    def _update_param(self, layer, key, grad, lr):
        if self.momentum == 0.0:
            layer.params[key] -= lr * grad
            return
        v = self.slot(layer, key, "velocity")
        v_new = self.momentum * v - lr * grad
        self.set_slot(layer, key, "velocity", v_new)
        if self.nesterov:
            layer.params[key] += self.momentum * v_new - lr * grad
        else:
            layer.params[key] += v_new


class RMSProp(Optimizer):
    """RMSProp (Tieleman & Hinton, 2012)."""

    def __init__(
        self,
        lr: Union[float, Schedule] = 0.001,
        rho: float = 0.9,
        eps: float = 1e-8,
        clipnorm: Optional[float] = None,
        weight_decay: float = 0.0,
    ):
        super().__init__(lr=lr, clipnorm=clipnorm, weight_decay=weight_decay)
        self.rho = float(rho)
        self.eps = float(eps)

    def _update_param(self, layer, key, grad, lr):
        acc = self.slot(layer, key, "sq")
        acc_new = self.rho * acc + (1.0 - self.rho) * grad * grad
        self.set_slot(layer, key, "sq", acc_new)
        layer.params[key] -= lr * grad / (np.sqrt(acc_new) + self.eps)


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        lr: Union[float, Schedule] = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        clipnorm: Optional[float] = None,
        weight_decay: float = 0.0,
    ):
        super().__init__(lr=lr, clipnorm=clipnorm, weight_decay=weight_decay)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)

    def _update_param(self, layer, key, grad, lr):
        t = self.iterations + 1
        m = self.slot(layer, key, "m")
        v = self.slot(layer, key, "v")
        m_new = self.beta1 * m + (1.0 - self.beta1) * grad
        v_new = self.beta2 * v + (1.0 - self.beta2) * grad * grad
        self.set_slot(layer, key, "m", m_new)
        self.set_slot(layer, key, "v", v_new)
        m_hat = m_new / (1.0 - self.beta1**t)
        v_hat = v_new / (1.0 - self.beta2**t)
        layer.params[key] -= lr * m_hat / (np.sqrt(v_hat) + self.eps)


_REGISTRY = {"sgd": SGD, "rmsprop": RMSProp, "adam": Adam}


def get(name_or_opt: Union[str, Optimizer]) -> Optimizer:
    """Resolve an optimizer from a name (with defaults) or pass through."""
    if isinstance(name_or_opt, Optimizer):
        return name_or_opt
    try:
        return _REGISTRY[name_or_opt]()
    except KeyError:
        raise ValueError(
            f"Unknown optimizer {name_or_opt!r}; known: {sorted(_REGISTRY)}"
        ) from None
