"""Classification metrics: accuracy, precision/recall/F1, confusion matrix.

These mirror sklearn semantics (binary F1 on the positive class;
macro-F1 as the unweighted class mean) because the paper reports
accuracy and F1 with their standard definitions.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np


def _to_labels(y: np.ndarray) -> np.ndarray:
    """Accept class indices, one-hot rows, or probability rows."""
    y = np.asarray(y)
    if y.ndim == 2:
        return y.argmax(axis=1)
    return y.astype(np.int64)


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact label matches."""
    t, p = _to_labels(y_true), _to_labels(y_pred)
    if t.shape != p.shape:
        raise ValueError(f"shape mismatch: {t.shape} vs {p.shape}")
    if t.size == 0:
        raise ValueError("cannot compute accuracy of empty arrays")
    return float(np.mean(t == p))


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, num_classes: Optional[int] = None
) -> np.ndarray:
    """Confusion matrix C with C[i, j] = #(true==i and pred==j)."""
    t, p = _to_labels(y_true), _to_labels(y_pred)
    if num_classes is None:
        num_classes = int(max(t.max(initial=0), p.max(initial=0))) + 1
    cm = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(cm, (t, p), 1)
    return cm


def precision_recall_f1(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    positive_class: int = 1,
    num_classes: Optional[int] = None,
) -> Dict[str, float]:
    """Binary precision/recall/F1 for ``positive_class``.

    Zero-division cases return 0.0, matching sklearn's default.
    """
    if num_classes is None:
        t, p = _to_labels(y_true), _to_labels(y_pred)
        inferred = int(max(t.max(initial=0), p.max(initial=0))) + 1
        num_classes = max(inferred, positive_class + 1)
    cm = confusion_matrix(y_true, y_pred, num_classes=num_classes)
    if positive_class >= cm.shape[0]:
        raise ValueError(
            f"positive_class={positive_class} outside confusion matrix "
            f"of size {cm.shape[0]}"
        )
    tp = float(cm[positive_class, positive_class])
    fp = float(cm[:, positive_class].sum() - tp)
    fn = float(cm[positive_class, :].sum() - tp)
    precision = tp / (tp + fp) if (tp + fp) > 0 else 0.0
    recall = tp / (tp + fn) if (tp + fn) > 0 else 0.0
    f1 = (
        2.0 * precision * recall / (precision + recall)
        if (precision + recall) > 0
        else 0.0
    )
    return {"precision": precision, "recall": recall, "f1": f1}


def f1_score(
    y_true: np.ndarray, y_pred: np.ndarray, positive_class: int = 1
) -> float:
    """Binary F1 on the positive class."""
    return precision_recall_f1(y_true, y_pred, positive_class)["f1"]


def macro_f1(
    y_true: np.ndarray, y_pred: np.ndarray, num_classes: Optional[int] = None
) -> float:
    """Unweighted mean of per-class F1 scores."""
    cm = confusion_matrix(y_true, y_pred, num_classes=num_classes)
    scores = []
    for cls in range(cm.shape[0]):
        scores.append(
            precision_recall_f1(y_true, y_pred, cls, num_classes=cm.shape[0])["f1"]
        )
    return float(np.mean(scores))


def balanced_accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean per-class recall; robust to class imbalance."""
    cm = confusion_matrix(y_true, y_pred)
    recalls = []
    for cls in range(cm.shape[0]):
        support = cm[cls, :].sum()
        if support > 0:
            recalls.append(cm[cls, cls] / support)
    if not recalls:
        raise ValueError("no classes with support")
    return float(np.mean(recalls))
