"""Functional activations and their derivatives.

Each activation ``f`` comes with a derivative helper.  Derivatives are
expressed in terms of whichever quantity makes backprop cheapest (the
output for sigmoid/tanh, the input for ReLU-family).
"""

from __future__ import annotations

import numpy as np


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit: max(0, x)."""
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray) -> np.ndarray:
    """Derivative of ReLU w.r.t. its input."""
    return (x > 0.0).astype(x.dtype)


def leaky_relu(x: np.ndarray, alpha: float = 0.01) -> np.ndarray:
    """Leaky ReLU: x for x>0, alpha*x otherwise."""
    return np.where(x > 0.0, x, alpha * x)


def leaky_relu_grad(x: np.ndarray, alpha: float = 0.01) -> np.ndarray:
    """Derivative of leaky ReLU w.r.t. its input."""
    return np.where(x > 0.0, 1.0, alpha).astype(x.dtype)


def elu(x: np.ndarray, alpha: float = 1.0) -> np.ndarray:
    """Exponential linear unit."""
    return np.where(x > 0.0, x, alpha * (np.exp(np.minimum(x, 0.0)) - 1.0))


def elu_grad(x: np.ndarray, alpha: float = 1.0) -> np.ndarray:
    """Derivative of ELU w.r.t. its input."""
    return np.where(x > 0.0, 1.0, alpha * np.exp(np.minimum(x, 0.0)))


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid.

    Preserves floating input dtypes (``float32`` in stays ``float32``
    out, for the optimized backend's serving path); non-float inputs
    promote to ``float64`` as before.
    """
    x = np.asarray(x)
    dtype = x.dtype if np.issubdtype(x.dtype, np.floating) else np.float64
    out = np.empty_like(x, dtype=dtype)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def sigmoid_grad_from_output(y: np.ndarray) -> np.ndarray:
    """Derivative of sigmoid expressed via its output: y * (1 - y)."""
    return y * (1.0 - y)


def tanh(x: np.ndarray) -> np.ndarray:
    """Hyperbolic tangent."""
    return np.tanh(x)


def tanh_grad_from_output(y: np.ndarray) -> np.ndarray:
    """Derivative of tanh expressed via its output: 1 - y**2."""
    return 1.0 - y * y


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    ex = np.exp(shifted)
    return ex / np.sum(ex, axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))
