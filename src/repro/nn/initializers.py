"""Weight initialization schemes for the numpy neural-network substrate.

Every initializer is a callable ``(shape, rng) -> np.ndarray`` so layers
can stay agnostic of the scheme.  Schemes follow the standard literature:
Glorot/Xavier (Glorot & Bengio, 2010) for tanh/sigmoid-style layers,
He (He et al., 2015) for ReLU-style layers, and orthogonal
(Saxe et al., 2014) for recurrent kernels.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

import numpy as np

Initializer = Callable[[Tuple[int, ...], np.random.Generator], np.ndarray]


def _fan_in_out(shape: Sequence[int]) -> Tuple[int, int]:
    """Compute (fan_in, fan_out) for a weight tensor shape.

    For 2D weights ``(in, out)`` this is the obvious pair.  For
    convolution kernels ``(out_channels, in_channels, kh, kw)`` the
    receptive-field size multiplies both fans, matching Keras semantics.
    """
    shape = tuple(int(s) for s in shape)
    if len(shape) == 0:
        return 1, 1
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def zeros(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """All-zeros tensor; the conventional choice for biases."""
    del rng
    return np.zeros(shape, dtype=np.float64)


def ones(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """All-ones tensor; used for BatchNorm scale parameters."""
    del rng
    return np.ones(shape, dtype=np.float64)


def constant(value: float) -> Initializer:
    """Return an initializer filling the tensor with ``value``.

    Useful for LSTM forget-gate bias (commonly 1.0).
    """

    def _init(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        del rng
        return np.full(shape, float(value), dtype=np.float64)

    return _init


def uniform(low: float = -0.05, high: float = 0.05) -> Initializer:
    """Uniform initializer over ``[low, high)``."""

    def _init(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(low, high, size=shape).astype(np.float64)

    return _init


def normal(mean: float = 0.0, std: float = 0.05) -> Initializer:
    """Gaussian initializer with the given mean and standard deviation."""

    def _init(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        return rng.normal(mean, std, size=shape).astype(np.float64)

    return _init


def glorot_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fan_in_out(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float64)


def glorot_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier normal: N(0, 2 / (fan_in + fan_out))."""
    fan_in, fan_out = _fan_in_out(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape).astype(np.float64)


def he_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He uniform: U(-a, a) with a = sqrt(6 / fan_in); suited to ReLU."""
    fan_in, _ = _fan_in_out(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape).astype(np.float64)


def he_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He normal: N(0, 2 / fan_in); suited to ReLU."""
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape).astype(np.float64)


def orthogonal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Orthogonal initializer; preserves norms through deep/recurrent maps.

    The tensor is flattened to 2D, a QR decomposition of a Gaussian
    matrix provides the orthonormal factor, and the result is reshaped.
    """
    if len(shape) < 2:
        return glorot_uniform(shape, rng)
    rows = shape[0]
    cols = int(np.prod(shape[1:]))
    size = (max(rows, cols), min(rows, cols))
    a = rng.normal(0.0, 1.0, size=size)
    q, r = np.linalg.qr(a)
    # Sign correction makes the distribution uniform over orthogonal matrices.
    q *= np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return q[:rows, :cols].reshape(shape).astype(np.float64)


_REGISTRY = {
    "zeros": zeros,
    "ones": ones,
    "glorot_uniform": glorot_uniform,
    "glorot_normal": glorot_normal,
    "he_uniform": he_uniform,
    "he_normal": he_normal,
    "orthogonal": orthogonal,
}


def get(name_or_fn) -> Initializer:
    """Resolve an initializer from a name or pass a callable through."""
    if callable(name_or_fn):
        return name_or_fn
    try:
        return _REGISTRY[name_or_fn]
    except KeyError:
        raise ValueError(
            f"Unknown initializer {name_or_fn!r}; known: {sorted(_REGISTRY)}"
        ) from None
