"""Training callbacks: history, early stopping, best-weights tracking."""

from __future__ import annotations

import copy
import logging
from typing import Dict, List, Optional

import numpy as np

logger = logging.getLogger("repro.nn")


class Callback:
    """Base callback; hooks fire around epochs during ``Sequential.fit``."""

    def on_train_begin(self, model) -> None:
        pass

    def on_epoch_end(self, model, epoch: int, logs: Dict[str, float]) -> None:
        pass

    def on_train_end(self, model) -> None:
        pass

    @property
    def stop_training(self) -> bool:
        return False


class History(Callback):
    """Records per-epoch logs into ``self.epochs``."""

    def __init__(self):
        self.epochs: List[Dict[str, float]] = []

    def on_train_begin(self, model) -> None:
        self.epochs = []

    def on_epoch_end(self, model, epoch: int, logs: Dict[str, float]) -> None:
        self.epochs.append(dict(logs))

    def series(self, key: str) -> List[float]:
        """Extract one metric across epochs (missing epochs skipped)."""
        return [e[key] for e in self.epochs if key in e]


class EpochLogger(Callback):
    """Emit per-epoch training progress through the ``repro.nn`` logger.

    This is the logging path behind ``Sequential.fit(verbose=True)``;
    attach it explicitly to pick a different level or logger handler.
    """

    def __init__(self, total_epochs: Optional[int] = None, level: int = logging.INFO):
        self.total_epochs = total_epochs
        self.level = int(level)

    def on_epoch_end(self, model, epoch: int, logs: Dict[str, float]) -> None:
        parts = ", ".join(f"{k}={v:.4f}" for k, v in logs.items())
        total = f"/{self.total_epochs}" if self.total_epochs else ""
        logger.log(self.level, "epoch %d%s: %s", epoch + 1, total, parts)


class EarlyStopping(Callback):
    """Stop when a monitored metric stops improving.

    Parameters
    ----------
    monitor:
        Key into the epoch logs, e.g. ``'val_loss'`` or ``'loss'``.
    patience:
        Epochs without improvement to tolerate before stopping.
    min_delta:
        Minimum change that counts as an improvement.
    mode:
        ``'min'`` (losses) or ``'max'`` (accuracies).
    restore_best:
        If True, model weights are rolled back to the best epoch when
        training ends.
    """

    def __init__(
        self,
        monitor: str = "val_loss",
        patience: int = 5,
        min_delta: float = 0.0,
        mode: str = "min",
        restore_best: bool = True,
    ):
        if mode not in ("min", "max"):
            raise ValueError(f"mode must be 'min' or 'max', got {mode!r}")
        if patience < 0:
            raise ValueError(f"patience must be >= 0, got {patience}")
        self.monitor = monitor
        self.patience = int(patience)
        self.min_delta = float(min_delta)
        self.mode = mode
        self.restore_best = bool(restore_best)
        self._stop = False
        self.best: Optional[float] = None
        self.best_epoch: int = -1
        self._wait = 0
        self._best_weights = None

    @property
    def stop_training(self) -> bool:
        return self._stop

    def _improved(self, value: float) -> bool:
        if self.best is None:
            return True
        if self.mode == "min":
            return value < self.best - self.min_delta
        return value > self.best + self.min_delta

    def on_train_begin(self, model) -> None:
        self._stop = False
        self.best = None
        self.best_epoch = -1
        self._wait = 0
        self._best_weights = None

    def on_epoch_end(self, model, epoch: int, logs: Dict[str, float]) -> None:
        if self.monitor not in logs:
            return
        value = float(logs[self.monitor])
        if self._improved(value):
            self.best = value
            self.best_epoch = epoch
            self._wait = 0
            if self.restore_best:
                self._best_weights = model.get_weights()
        else:
            self._wait += 1
            if self._wait > self.patience:
                self._stop = True

    def on_train_end(self, model) -> None:
        if self.restore_best and self._best_weights is not None:
            model.set_weights(self._best_weights)


class BestWeights(Callback):
    """Track the best weights by a monitored metric without stopping."""

    def __init__(self, monitor: str = "val_accuracy", mode: str = "max"):
        if mode not in ("min", "max"):
            raise ValueError(f"mode must be 'min' or 'max', got {mode!r}")
        self.monitor = monitor
        self.mode = mode
        self.best: Optional[float] = None
        self.best_weights = None

    def on_train_begin(self, model) -> None:
        self.best = None
        self.best_weights = None

    def on_epoch_end(self, model, epoch: int, logs: Dict[str, float]) -> None:
        if self.monitor not in logs:
            return
        value = float(logs[self.monitor])
        better = (
            self.best is None
            or (self.mode == "max" and value > self.best)
            or (self.mode == "min" and value < self.best)
        )
        if better:
            self.best = value
            self.best_weights = model.get_weights()

    def on_train_end(self, model) -> None:
        if self.best_weights is not None:
            model.set_weights(self.best_weights)
