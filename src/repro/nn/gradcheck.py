"""Numerical gradient checking for layers and whole models.

Central differences against the analytic backward pass.  Used in the
test suite to prove every layer's backprop is exact (the foundation for
trusting the CNN-LSTM training results downstream).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from .layers.base import Layer
from .losses import Loss
from .model import Sequential


def numeric_grad(
    f: Callable[[], float], array: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of scalar ``f()`` w.r.t. ``array`` in place."""
    grad = np.zeros_like(array)
    it = np.nditer(array, flags=["multi_index"], op_flags=["readwrite"])
    while not it.finished:
        idx = it.multi_index
        original = array[idx]
        array[idx] = original + eps
        f_plus = f()
        array[idx] = original - eps
        f_minus = f()
        array[idx] = original
        grad[idx] = (f_plus - f_minus) / (2.0 * eps)
        it.iternext()
    return grad


def relative_error(a: np.ndarray, b: np.ndarray) -> float:
    """Max relative error between two gradient tensors."""
    denom = np.maximum(np.abs(a) + np.abs(b), 1e-8)
    return float(np.max(np.abs(a - b) / denom))


def check_layer_gradients(
    layer: Layer,
    x: np.ndarray,
    rng: Optional[np.random.Generator] = None,
    eps: float = 1e-6,
) -> Dict[str, float]:
    """Compare analytic vs numeric grads for a layer under a random loss.

    The surrogate loss is ``sum(out * R)`` with fixed random ``R``, which
    exercises every output element.  Returns max relative error per
    parameter plus ``'input'`` for dL/dx.
    """
    rng = rng or np.random.default_rng(0)
    layer.training = True
    layer.ensure_built(x, rng)
    out = layer.forward(x)
    weights = rng.normal(size=out.shape)

    def loss_fn() -> float:
        return float(np.sum(layer.forward(x) * weights))

    # Analytic gradients.
    layer.forward(x)
    grad_in = layer.backward(weights)

    errors: Dict[str, float] = {}
    analytic_param_grads = {k: v.copy() for k, v in layer.grads.items()}
    for key, param in layer.params.items():
        numeric = numeric_grad(loss_fn, param, eps=eps)
        errors[key] = relative_error(analytic_param_grads[key], numeric)

    x_work = x.copy()

    def loss_fn_x() -> float:
        return float(np.sum(layer.forward(x_work) * weights))

    numeric_x = numeric_grad(loss_fn_x, x_work, eps=eps)
    errors["input"] = relative_error(grad_in, numeric_x)
    return errors


def check_model_gradients(
    model: Sequential,
    x: np.ndarray,
    y: np.ndarray,
    loss: Loss,
    eps: float = 1e-6,
) -> Dict[Tuple[str, str], float]:
    """End-to-end gradient check through an entire Sequential model."""
    model.forward(x, training=True)  # build

    def loss_fn() -> float:
        return loss.loss(model.forward(x, training=True), y)

    logits = model.forward(x, training=True)
    model.backward(loss.grad(logits, y))
    analytic = {
        (layer.name, key): layer.grads[key].copy()
        for layer in model.layers
        for key in layer.params
    }

    errors: Dict[Tuple[str, str], float] = {}
    for layer in model.layers:
        for key, param in layer.params.items():
            numeric = numeric_grad(loss_fn, param, eps=eps)
            errors[(layer.name, key)] = relative_error(
                analytic[(layer.name, key)], numeric
            )
    return errors
