"""Inverted dropout."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .base import Layer


class Dropout(Layer):
    """Inverted dropout: scale kept units by 1/(1-rate) during training.

    At evaluation time (``layer.training == False``) the layer is the
    identity, so no test-time rescaling is needed.
    """

    def __init__(
        self, rate: float, seed: Optional[int] = None, name: Optional[str] = None
    ):
        super().__init__(name=name)
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        # The mask adopts x's dtype so float32 activations are not
        # silently upcast mid-network (values are unchanged for float64).
        self._mask = (self._rng.random(x.shape) < keep).astype(x.dtype) / np.asarray(
            keep, dtype=x.dtype
        )
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask

    def get_config(self) -> Dict:
        # The seed must round-trip through checkpoints: rebuilding this
        # layer from config without it would re-seed from OS entropy and
        # make fine-tuning of a restored model nondeterministic.
        return {"name": self.name, "rate": self.rate, "seed": self.seed}
