"""Activation functions wrapped as layers."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from .. import activations as F
from .base import Layer


class ReLU(Layer):
    """Rectified linear unit layer.

    The only activation on the CNN hot path, so it delegates to the
    backend (the optimized backend caches the sign mask from forward
    instead of recomputing and casting it in backward).
    """

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.backend.relu_forward(x, self._backend_state)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return self.backend.relu_backward(grad_out, self._backend_state)


class LeakyReLU(Layer):
    """Leaky ReLU layer."""

    def __init__(self, alpha: float = 0.01, name: Optional[str] = None):
        super().__init__(name=name)
        self.alpha = float(alpha)
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return F.leaky_relu(x, self.alpha)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        return grad_out * F.leaky_relu_grad(self._x, self.alpha)

    def get_config(self) -> Dict:
        return {"name": self.name, "alpha": self.alpha}


class ELU(Layer):
    """Exponential linear unit layer."""

    def __init__(self, alpha: float = 1.0, name: Optional[str] = None):
        super().__init__(name=name)
        self.alpha = float(alpha)
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return F.elu(x, self.alpha)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        return grad_out * F.elu_grad(self._x, self.alpha)

    def get_config(self) -> Dict:
        return {"name": self.name, "alpha": self.alpha}


class Sigmoid(Layer):
    """Logistic sigmoid layer."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name=name)
        self._y: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = F.sigmoid(x)
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        return grad_out * F.sigmoid_grad_from_output(self._y)


class Tanh(Layer):
    """Hyperbolic tangent layer."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name=name)
        self._y: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = F.tanh(x)
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        return grad_out * F.tanh_grad_from_output(self._y)


class Softmax(Layer):
    """Softmax layer over the last axis.

    Prefer :class:`repro.nn.losses.SoftmaxCrossEntropy` on logits for
    training; this layer exists for inference pipelines that need
    explicit probabilities.
    """

    def __init__(self, name: Optional[str] = None):
        super().__init__(name=name)
        self._y: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = F.softmax(x, axis=-1)
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        y = self._y
        dot = np.sum(grad_out * y, axis=-1, keepdims=True)
        return y * (grad_out - dot)
