"""Layer protocol for the numpy neural-network substrate.

A :class:`Layer` is a stateful module with an explicit ``forward`` /
``backward`` pair.  Parameters and their gradients live in two parallel
dicts so optimizers can iterate them generically, and a ``frozen`` flag
supports the fine-tuning workflow from the CLEAR paper (freeze feature
extractor, retrain the head on-device).
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Tuple

import numpy as np

_name_counters = itertools.count()


class Layer:
    """Base class for all layers.

    Subclasses implement :meth:`build` (lazy parameter creation from the
    first input shape), :meth:`forward` and :meth:`backward`.  The
    contract for ``backward`` is: given dL/d(output), populate
    ``self.grads`` for every key in ``self.params`` and return
    dL/d(input).
    """

    def __init__(self, name: Optional[str] = None):
        self.name = name or f"{type(self).__name__.lower()}_{next(_name_counters)}"
        self.params: Dict[str, np.ndarray] = {}
        self.grads: Dict[str, np.ndarray] = {}
        self.built = False
        self.frozen = False
        self.training = True
        # Compute-backend plumbing: None means "follow the process-wide
        # default"; the state dict is this layer's private cache /
        # workspace storage, owned by whichever backend runs it.
        self._backend = None
        self._backend_state: Dict = {}

    # -- backend ---------------------------------------------------------
    @property
    def backend(self):
        """The :class:`~repro.nn.backends.ComputeBackend` running this layer."""
        if self._backend is None:
            from .. import backends as _backends

            return _backends.default_backend()
        return self._backend

    def set_backend(self, backend) -> None:
        """Pin this layer to a backend (name or instance).

        Clears the backend state dict: caches and workspaces are private
        to one backend and must not leak across implementations.
        """
        from .. import backends as _backends

        self._backend = _backends.get_backend(backend)
        self._backend_state.clear()

    # -- lifecycle -------------------------------------------------------
    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        """Create parameters from the (batch-less) input shape."""
        del input_shape, rng
        self.built = True

    def ensure_built(self, x: np.ndarray, rng: np.random.Generator) -> None:
        """Build on first use from a concrete batch ``x``."""
        if not self.built:
            self.build(tuple(x.shape[1:]), rng)
            self.built = True

    # -- computation -----------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the layer output for a batch ``x``."""
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad_out`` (dL/d output) to dL/d input."""
        raise NotImplementedError

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Shape of the output (excluding batch) for a given input shape."""
        return input_shape

    # -- bookkeeping -----------------------------------------------------
    def zero_grads(self) -> None:
        """Reset accumulated gradients to zeros."""
        for key, value in self.params.items():
            self.grads[key] = np.zeros_like(value)

    def freeze(self) -> None:
        """Exclude this layer's parameters from optimizer updates."""
        self.frozen = True

    def unfreeze(self) -> None:
        """Re-include this layer's parameters in optimizer updates."""
        self.frozen = False

    @property
    def num_params(self) -> int:
        """Total number of scalar parameters in this layer."""
        return int(sum(p.size for p in self.params.values()))

    @property
    def trainable_params(self) -> Dict[str, np.ndarray]:
        """Parameters that the optimizer should update (empty if frozen)."""
        return {} if self.frozen else self.params

    def get_config(self) -> Dict:
        """Serializable constructor arguments (overridden by subclasses)."""
        return {"name": self.name}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, params={self.num_params})"
