"""Batch normalization (Ioffe & Szegedy, 2015) for dense and conv inputs."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from .base import Layer


class BatchNorm(Layer):
    """Batch normalization over the feature axis.

    Supports 2D inputs ``(N, F)`` (normalize per feature) and 4D NCHW
    inputs ``(N, C, H, W)`` (normalize per channel).  Running statistics
    are tracked with exponential moving averages and used at eval time.
    """

    def __init__(
        self,
        momentum: float = 0.9,
        eps: float = 1e-5,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        if not 0.0 < momentum < 1.0:
            raise ValueError(f"momentum must be in (0, 1), got {momentum}")
        self.momentum = float(momentum)
        self.eps = float(eps)
        self.running_mean: Optional[np.ndarray] = None
        self.running_var: Optional[np.ndarray] = None
        self._cache: Optional[Dict] = None
        self._axes: Optional[Tuple[int, ...]] = None
        self._param_shape: Optional[Tuple[int, ...]] = None

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        del rng
        if len(input_shape) == 1:
            features = int(input_shape[0])
            self._axes = (0,)
            self._param_shape = (features,)
        elif len(input_shape) == 3:
            channels = int(input_shape[0])
            self._axes = (0, 2, 3)
            self._param_shape = (1, channels, 1, 1)
        else:
            raise ValueError(
                f"BatchNorm supports (F,) or (C, H, W) inputs, got {input_shape}"
            )
        self.params["gamma"] = np.ones(self._param_shape, dtype=np.float64)
        self.params["beta"] = np.zeros(self._param_shape, dtype=np.float64)
        self.running_mean = np.zeros(self._param_shape, dtype=np.float64)
        self.running_var = np.ones(self._param_shape, dtype=np.float64)
        self.zero_grads()
        self.built = True

    def _infer_geometry(self, x: np.ndarray) -> None:
        """Recover _axes/_param_shape after a checkpoint restore.

        A restored layer has params but never went through build(), so
        derive the reduction axes from the input rank and the stored
        parameter shape.
        """
        self._param_shape = self.params["gamma"].shape
        self._axes = (0,) if x.ndim == 2 else (0, 2, 3)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self._axes is None:
            self._infer_geometry(x)
        if self.training:
            mean = x.mean(axis=self._axes, keepdims=True).reshape(self._param_shape)
            var = x.var(axis=self._axes, keepdims=True).reshape(self._param_shape)
            self.running_mean = (
                self.momentum * self.running_mean + (1.0 - self.momentum) * mean
            )
            self.running_var = (
                self.momentum * self.running_var + (1.0 - self.momentum) * var
            )
        else:
            mean, var = self.running_mean, self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        out = self.params["gamma"] * x_hat + self.params["beta"]
        if self.training:
            self._cache = {"x_hat": x_hat, "inv_std": inv_std, "x": x, "mean": mean}
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward (in training mode)")
        x_hat = self._cache["x_hat"]
        inv_std = self._cache["inv_std"]
        axes = self._axes
        m = float(np.prod([grad_out.shape[a] for a in axes]))

        self.grads["gamma"] = (grad_out * x_hat).sum(axis=axes, keepdims=True).reshape(
            self._param_shape
        )
        self.grads["beta"] = grad_out.sum(axis=axes, keepdims=True).reshape(
            self._param_shape
        )

        dx_hat = grad_out * self.params["gamma"]
        # Standard batchnorm backward, fused form.
        grad_in = (
            inv_std
            / m
            * (
                m * dx_hat
                - dx_hat.sum(axis=axes, keepdims=True)
                - x_hat * (dx_hat * x_hat).sum(axis=axes, keepdims=True)
            )
        )
        return grad_in

    def get_config(self) -> Dict:
        return {"name": self.name, "momentum": self.momentum, "eps": self.eps}

    # Running stats are state that must survive checkpointing even though
    # they are not optimized parameters.
    def get_state(self) -> Dict[str, np.ndarray]:
        """Non-trainable state for checkpointing."""
        return {"running_mean": self.running_mean, "running_var": self.running_var}

    def set_state(self, state: Dict[str, np.ndarray]) -> None:
        """Restore non-trainable state from a checkpoint."""
        self.running_mean = np.asarray(state["running_mean"], dtype=np.float64)
        self.running_var = np.asarray(state["running_var"], dtype=np.float64)
