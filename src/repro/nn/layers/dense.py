"""Fully-connected layer."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from .. import initializers
from .base import Layer


class Dense(Layer):
    """Affine transform ``y = x @ W + b``.

    Parameters
    ----------
    units:
        Output dimensionality.
    use_bias:
        Whether to add the learned bias ``b``.
    kernel_init, bias_init:
        Initializer names or callables (see :mod:`repro.nn.initializers`).
    """

    def __init__(
        self,
        units: int,
        use_bias: bool = True,
        kernel_init="glorot_uniform",
        bias_init="zeros",
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        if units <= 0:
            raise ValueError(f"units must be positive, got {units}")
        self.units = int(units)
        self.use_bias = bool(use_bias)
        self.kernel_init = initializers.get(kernel_init)
        self.bias_init = initializers.get(bias_init)

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        if len(input_shape) != 1:
            raise ValueError(
                f"Dense expects flat inputs of shape (features,), got {input_shape}"
            )
        in_features = int(input_shape[0])
        self.params["W"] = self.kernel_init((in_features, self.units), rng)
        if self.use_bias:
            self.params["b"] = self.bias_init((self.units,), rng)
        self.zero_grads()
        self.built = True

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.backend.dense_forward(
            x,
            self.params["W"],
            self.params["b"] if self.use_bias else None,
            self._backend_state,
        )

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        dx, dw, db = self.backend.dense_backward(
            grad_out, self.params["W"], self._backend_state
        )
        self.grads["W"] = dw
        if self.use_bias:
            self.grads["b"] = db
        return dx

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return (self.units,)

    def get_config(self) -> Dict:
        return {"name": self.name, "units": self.units, "use_bias": self.use_bias}
