"""Temporal attention pooling over sequence outputs.

An alternative read-out to "last LSTM state": scores every timestep
with a small additive-attention network and returns the attention-
weighted sum.  Included as an architecture extension (the emotion-
recognition literature increasingly replaces last-state read-outs with
attention); exact backprop, gradient-checked in the test suite.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from .. import initializers
from ..activations import softmax, tanh
from .base import Layer


class TemporalAttention(Layer):
    """Additive (Bahdanau-style) attention pooling: (N, T, F) -> (N, F).

    score_t = v . tanh(W x_t + b);  alpha = softmax(score);
    output = sum_t alpha_t * x_t.

    Parameters
    ----------
    attention_units:
        Width of the scoring network's hidden layer.
    """

    def __init__(
        self,
        attention_units: int = 16,
        kernel_init="glorot_uniform",
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        if attention_units <= 0:
            raise ValueError(
                f"attention_units must be positive, got {attention_units}"
            )
        self.attention_units = int(attention_units)
        self.kernel_init = initializers.get(kernel_init)
        self._cache: Optional[Dict] = None

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        if len(input_shape) != 2:
            raise ValueError(
                f"TemporalAttention expects (T, F) inputs, got {input_shape}"
            )
        features = int(input_shape[1])
        a = self.attention_units
        self.params["W"] = self.kernel_init((features, a), rng)
        self.params["b"] = np.zeros(a, dtype=np.float64)
        self.params["v"] = self.kernel_init((a,), rng)
        self.zero_grads()
        self.built = True

    def forward(self, x: np.ndarray) -> np.ndarray:
        # h: (N, T, A); scores: (N, T); alpha: (N, T)
        h = tanh(x @ self.params["W"] + self.params["b"])
        scores = h @ self.params["v"]
        alpha = softmax(scores, axis=1)
        out = np.einsum("nt,ntf->nf", alpha, x)
        self._cache = {"x": x, "h": h, "alpha": alpha}
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x = self._cache["x"]
        h = self._cache["h"]
        alpha = self._cache["alpha"]
        w, v = self.params["W"], self.params["v"]

        # out = sum_t alpha_t x_t
        d_alpha = np.einsum("nf,ntf->nt", grad_out, x)  # (N, T)
        d_x = alpha[:, :, None] * grad_out[:, None, :]  # (N, T, F)

        # softmax backward over the time axis.
        dot = np.sum(d_alpha * alpha, axis=1, keepdims=True)
        d_scores = alpha * (d_alpha - dot)  # (N, T)

        # scores = h @ v
        self.grads["v"] = np.einsum("nt,nta->a", d_scores, h)
        d_h = d_scores[:, :, None] * v[None, None, :]  # (N, T, A)

        # h = tanh(x @ W + b)
        d_pre = d_h * (1.0 - h * h)
        self.grads["W"] = np.einsum("ntf,nta->fa", x, d_pre)
        self.grads["b"] = d_pre.sum(axis=(0, 1))
        d_x += d_pre @ w.T
        return d_x

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        _, features = input_shape
        return (features,)

    def attention_weights(self) -> Optional[np.ndarray]:
        """The last forward pass's attention distribution (N, T)."""
        if self._cache is None:
            return None
        return self._cache["alpha"].copy()

    def get_config(self) -> Dict:
        return {"name": self.name, "attention_units": self.attention_units}
