"""2D convolution and pooling layers (NCHW layout) built on im2col.

im2col turns convolution into a single large matrix multiply, which is
the standard trick for getting acceptable performance from a pure-numpy
implementation while keeping backprop exact and simple.  The tensor
kernels themselves live in :mod:`repro.nn.backends`; the layers here
hold parameters and shape logic and delegate all math to their backend
(``im2col``/``col2im``/``conv_output_size`` are re-exported for
backwards compatibility).

Padding semantics: ``'same'`` with an odd kernel uses the historical
symmetric ``(k - 1) // 2`` pads, which already yield ``ceil(in / s)``
outputs for every stride.  Even kernels need *asymmetric* ceil-mode
pads that depend on the input size, so :class:`Conv2D` resolves them
per batch; :func:`resolve_padding` — whose static ``(ph, pw)`` return
type cannot express that — raises a typed
:class:`~repro.errors.PaddingError` instead of silently under-padding
as it used to.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

import numpy as np

from ...errors import PaddingError
from .. import initializers
from ..backends.base import PadPairs
from ..backends.reference import (  # noqa: F401  (re-exported API)
    as_pad_pairs,
    col2im,
    conv_output_size,
    im2col,
)
from .base import Layer

PadSpec = Union[str, int, Tuple[int, int]]


def _pair(value) -> Tuple[int, int]:
    """Normalize an int-or-pair argument to a (h, w) tuple."""
    if isinstance(value, (tuple, list)):
        if len(value) != 2:
            raise ValueError(f"expected a pair, got {value!r}")
        return int(value[0]), int(value[1])
    return int(value), int(value)


def same_axis_pads(size: int, kernel: int, stride: int) -> Tuple[int, int]:
    """Ceil-mode ``'same'`` pads (before, after) along one axis.

    Odd kernels keep the historical symmetric ``(k - 1) // 2`` pads
    (already ceil-mode for every stride, and pinned by the repo's golden
    fingerprints).  Even kernels get the TF-style asymmetric split of
    the minimal total pad reaching ``ceil(size / stride)`` outputs.
    """
    if kernel % 2 == 1:
        pad = (kernel - 1) // 2
        return pad, pad
    out = -(-size // stride)  # ceil division
    total = max((out - 1) * stride + kernel - size, 0)
    return total // 2, total - total // 2


def resolve_padding(
    padding: PadSpec, kernel: Tuple[int, int], stride: Tuple[int, int]
) -> Tuple[int, int]:
    """Resolve a padding spec into per-axis symmetric pad sizes.

    ``'same'`` pads so that output size equals ``ceil(input / stride)``;
    ``'valid'`` means no padding.

    Raises
    ------
    PaddingError
        For ``'same'`` with an even kernel on either axis: the required
        ceil-mode pads are asymmetric and depend on the input size, so
        no symmetric ``(ph, pw)`` pair is correct (the old behaviour
        silently returned too-small pads).  Use :class:`Conv2D`, which
        resolves even-kernel ``'same'`` per input, or pass explicit
        pads.
    """
    if isinstance(padding, str):
        mode = padding.lower()
        if mode == "valid":
            return 0, 0
        if mode == "same":
            if kernel[0] % 2 == 0 or kernel[1] % 2 == 0:
                raise PaddingError(
                    f"'same' padding with even kernel {tuple(kernel)} needs "
                    f"input-dependent asymmetric pads; use Conv2D (which "
                    f"resolves it per batch) or pass explicit (ph, pw) pads"
                )
            return (kernel[0] - 1) // 2, (kernel[1] - 1) // 2
        raise ValueError(f"unknown padding mode {padding!r}")
    return _pair(padding)


class Conv2D(Layer):
    """2D convolution over NCHW inputs.

    Parameters
    ----------
    filters:
        Number of output channels.
    kernel_size:
        Int or (kh, kw).
    stride:
        Int or (sh, sw).
    padding:
        ``'same'``, ``'valid'``, an int, or a (ph, pw) pair.
    """

    def __init__(
        self,
        filters: int,
        kernel_size=3,
        stride=1,
        padding: PadSpec = "same",
        use_bias: bool = True,
        kernel_init="he_uniform",
        bias_init="zeros",
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        if filters <= 0:
            raise ValueError(f"filters must be positive, got {filters}")
        self.filters = int(filters)
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        self.padding_spec = padding
        kh, kw = self.kernel_size
        if (
            isinstance(padding, str)
            and padding.lower() == "same"
            and (kh % 2 == 0 or kw % 2 == 0)
        ):
            # Even-kernel 'same': ceil-mode pads depend on the input
            # size, so they are resolved per call in _pad_pairs.
            self.pad: Optional[Tuple[int, int]] = None
        else:
            self.pad = resolve_padding(padding, self.kernel_size, self.stride)
        self.use_bias = bool(use_bias)
        self.kernel_init = initializers.get(kernel_init)
        self.bias_init = initializers.get(bias_init)
        self._last_pad: Optional[PadPairs] = None

    def _pad_pairs(self, h: int, w: int) -> PadPairs:
        """Per-side pads for a concrete (h, w) input."""
        if self.pad is not None:
            ph, pw = self.pad
            return (ph, ph), (pw, pw)
        return (
            same_axis_pads(h, self.kernel_size[0], self.stride[0]),
            same_axis_pads(w, self.kernel_size[1], self.stride[1]),
        )

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        if len(input_shape) != 3:
            raise ValueError(f"Conv2D expects (C, H, W) inputs, got {input_shape}")
        in_channels = int(input_shape[0])
        kh, kw = self.kernel_size
        self.params["W"] = self.kernel_init((self.filters, in_channels, kh, kw), rng)
        if self.use_bias:
            self.params["b"] = self.bias_init((self.filters,), rng)
        self.zero_grads()
        self.built = True

    def forward(self, x: np.ndarray) -> np.ndarray:
        pad = self._pad_pairs(x.shape[2], x.shape[3])
        self._last_pad = pad
        return self.backend.conv2d_forward(
            x,
            self.params["W"],
            self.params["b"] if self.use_bias else None,
            self.stride,
            pad,
            self._backend_state,
        )

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._last_pad is None:
            raise RuntimeError("backward called before forward")
        dx, dw, db = self.backend.conv2d_backward(
            grad_out, self.params["W"], self.stride, self._last_pad, self._backend_state
        )
        self.grads["W"] = dw
        if self.use_bias:
            self.grads["b"] = db
        return dx

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        _, h, w = input_shape
        (pt, pb), (pl, pr) = self._pad_pairs(h, w)
        out_h = conv_output_size(h, self.kernel_size[0], self.stride[0], (pt, pb))
        out_w = conv_output_size(w, self.kernel_size[1], self.stride[1], (pl, pr))
        return (self.filters, out_h, out_w)

    def get_config(self) -> Dict:
        return {
            "name": self.name,
            "filters": self.filters,
            "kernel_size": list(self.kernel_size),
            "stride": list(self.stride),
            "padding": self.padding_spec
            if isinstance(self.padding_spec, str)
            else list(_pair(self.padding_spec)),
            "use_bias": self.use_bias,
        }


class MaxPool2D(Layer):
    """Max pooling over NCHW inputs."""

    def __init__(self, pool_size=2, stride=None, name: Optional[str] = None):
        super().__init__(name=name)
        self.pool_size = _pair(pool_size)
        self.stride = _pair(stride) if stride is not None else self.pool_size

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.backend.maxpool2d_forward(
            x, self.pool_size, self.stride, self._backend_state
        )

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return self.backend.maxpool2d_backward(
            grad_out, self.pool_size, self.stride, self._backend_state
        )

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        c, h, w = input_shape
        out_h = conv_output_size(h, self.pool_size[0], self.stride[0], 0)
        out_w = conv_output_size(w, self.pool_size[1], self.stride[1], 0)
        return (c, out_h, out_w)

    def get_config(self) -> Dict:
        return {
            "name": self.name,
            "pool_size": list(self.pool_size),
            "stride": list(self.stride),
        }


class AvgPool2D(Layer):
    """Average pooling over NCHW inputs."""

    def __init__(self, pool_size=2, stride=None, name: Optional[str] = None):
        super().__init__(name=name)
        self.pool_size = _pair(pool_size)
        self.stride = _pair(stride) if stride is not None else self.pool_size

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.backend.avgpool2d_forward(
            x, self.pool_size, self.stride, self._backend_state
        )

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return self.backend.avgpool2d_backward(
            grad_out, self.pool_size, self.stride, self._backend_state
        )

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        c, h, w = input_shape
        out_h = conv_output_size(h, self.pool_size[0], self.stride[0], 0)
        out_w = conv_output_size(w, self.pool_size[1], self.stride[1], 0)
        return (c, out_h, out_w)

    def get_config(self) -> Dict:
        return {
            "name": self.name,
            "pool_size": list(self.pool_size),
            "stride": list(self.stride),
        }
