"""2D convolution and pooling layers (NCHW layout) built on im2col.

im2col turns convolution into a single large matrix multiply, which is
the standard trick for getting acceptable performance from a pure-numpy
implementation while keeping backprop exact and simple.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

import numpy as np

from .. import initializers
from .base import Layer

PadSpec = Union[str, int, Tuple[int, int]]


def _pair(value) -> Tuple[int, int]:
    """Normalize an int-or-pair argument to a (h, w) tuple."""
    if isinstance(value, (tuple, list)):
        if len(value) != 2:
            raise ValueError(f"expected a pair, got {value!r}")
        return int(value[0]), int(value[1])
    return int(value), int(value)


def resolve_padding(
    padding: PadSpec, kernel: Tuple[int, int], stride: Tuple[int, int]
) -> Tuple[int, int]:
    """Resolve a padding spec into per-axis symmetric pad sizes.

    ``'same'`` pads so that output size equals ``ceil(input / stride)``
    for odd kernels with stride 1; ``'valid'`` means no padding.
    """
    if isinstance(padding, str):
        mode = padding.lower()
        if mode == "valid":
            return 0, 0
        if mode == "same":
            return (kernel[0] - 1) // 2, (kernel[1] - 1) // 2
        raise ValueError(f"unknown padding mode {padding!r}")
    return _pair(padding)


def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution along one axis."""
    out = (size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution produces non-positive output size "
            f"(input={size}, kernel={kernel}, stride={stride}, pad={pad})"
        )
    return out


def im2col(
    x: np.ndarray,
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    pad: Tuple[int, int],
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Unfold ``x`` (N, C, H, W) into columns of receptive fields.

    Returns ``(cols, (out_h, out_w))`` where ``cols`` has shape
    ``(N * out_h * out_w, C * kh * kw)``.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = pad
    out_h = conv_output_size(h, kh, sh, ph)
    out_w = conv_output_size(w, kw, sw, pw)
    if ph or pw:
        x = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)), mode="constant")
    # Strided view: (N, C, out_h, out_w, kh, kw)
    s_n, s_c, s_h, s_w = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(s_n, s_c, s_h * sh, s_w * sw, s_h, s_w),
        writeable=False,
    )
    cols = view.transpose(0, 2, 3, 1, 4, 5).reshape(n * out_h * out_w, c * kh * kw)
    return np.ascontiguousarray(cols), (out_h, out_w)


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    pad: Tuple[int, int],
) -> np.ndarray:
    """Fold gradient columns back into an image tensor (adjoint of im2col)."""
    n, c, h, w = x_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = pad
    out_h = conv_output_size(h, kh, sh, ph)
    out_w = conv_output_size(w, kw, sw, pw)
    padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=cols.dtype)
    cols6 = cols.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    for i in range(kh):
        for j in range(kw):
            padded[:, :, i : i + sh * out_h : sh, j : j + sw * out_w : sw] += cols6[
                :, :, :, :, i, j
            ]
    if ph or pw:
        return padded[:, :, ph : ph + h, pw : pw + w]
    return padded


class Conv2D(Layer):
    """2D convolution over NCHW inputs.

    Parameters
    ----------
    filters:
        Number of output channels.
    kernel_size:
        Int or (kh, kw).
    stride:
        Int or (sh, sw).
    padding:
        ``'same'``, ``'valid'``, an int, or a (ph, pw) pair.
    """

    def __init__(
        self,
        filters: int,
        kernel_size=3,
        stride=1,
        padding: PadSpec = "same",
        use_bias: bool = True,
        kernel_init="he_uniform",
        bias_init="zeros",
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        if filters <= 0:
            raise ValueError(f"filters must be positive, got {filters}")
        self.filters = int(filters)
        self.kernel_size = _pair(kernel_size)
        self.stride = _pair(stride)
        self.padding_spec = padding
        self.pad = resolve_padding(padding, self.kernel_size, self.stride)
        self.use_bias = bool(use_bias)
        self.kernel_init = initializers.get(kernel_init)
        self.bias_init = initializers.get(bias_init)
        self._cols: Optional[np.ndarray] = None
        self._x_shape: Optional[Tuple[int, int, int, int]] = None
        self._out_hw: Optional[Tuple[int, int]] = None

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        if len(input_shape) != 3:
            raise ValueError(f"Conv2D expects (C, H, W) inputs, got {input_shape}")
        in_channels = int(input_shape[0])
        kh, kw = self.kernel_size
        self.params["W"] = self.kernel_init((self.filters, in_channels, kh, kw), rng)
        if self.use_bias:
            self.params["b"] = self.bias_init((self.filters,), rng)
        self.zero_grads()
        self.built = True

    def forward(self, x: np.ndarray) -> np.ndarray:
        n = x.shape[0]
        cols, (out_h, out_w) = im2col(x, self.kernel_size, self.stride, self.pad)
        w2d = self.params["W"].reshape(self.filters, -1)
        out = cols @ w2d.T
        if self.use_bias:
            out = out + self.params["b"]
        self._cols = cols
        self._x_shape = x.shape
        self._out_hw = (out_h, out_w)
        return out.reshape(n, out_h, out_w, self.filters).transpose(0, 3, 1, 2)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None:
            raise RuntimeError("backward called before forward")
        n = grad_out.shape[0]
        grad2d = grad_out.transpose(0, 2, 3, 1).reshape(-1, self.filters)
        self.grads["W"] = (grad2d.T @ self._cols).reshape(self.params["W"].shape)
        if self.use_bias:
            self.grads["b"] = grad2d.sum(axis=0)
        grad_cols = grad2d @ self.params["W"].reshape(self.filters, -1)
        return col2im(
            grad_cols, self._x_shape, self.kernel_size, self.stride, self.pad
        )

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        _, h, w = input_shape
        out_h = conv_output_size(h, self.kernel_size[0], self.stride[0], self.pad[0])
        out_w = conv_output_size(w, self.kernel_size[1], self.stride[1], self.pad[1])
        return (self.filters, out_h, out_w)

    def get_config(self) -> Dict:
        return {
            "name": self.name,
            "filters": self.filters,
            "kernel_size": list(self.kernel_size),
            "stride": list(self.stride),
            "padding": self.padding_spec
            if isinstance(self.padding_spec, str)
            else list(_pair(self.padding_spec)),
            "use_bias": self.use_bias,
        }


class MaxPool2D(Layer):
    """Max pooling over NCHW inputs."""

    def __init__(self, pool_size=2, stride=None, name: Optional[str] = None):
        super().__init__(name=name)
        self.pool_size = _pair(pool_size)
        self.stride = _pair(stride) if stride is not None else self.pool_size
        self._x_shape: Optional[Tuple[int, int, int, int]] = None
        self._argmax: Optional[np.ndarray] = None
        self._out_hw: Optional[Tuple[int, int]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        kh, kw = self.pool_size
        sh, sw = self.stride
        out_h = conv_output_size(h, kh, sh, 0)
        out_w = conv_output_size(w, kw, sw, 0)
        s_n, s_c, s_h, s_w = x.strides
        view = np.lib.stride_tricks.as_strided(
            x,
            shape=(n, c, out_h, out_w, kh, kw),
            strides=(s_n, s_c, s_h * sh, s_w * sw, s_h, s_w),
            writeable=False,
        )
        windows = view.reshape(n, c, out_h, out_w, kh * kw)
        self._argmax = windows.argmax(axis=-1)
        self._x_shape = x.shape
        self._out_hw = (out_h, out_w)
        return windows.max(axis=-1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None or self._argmax is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._x_shape
        kh, kw = self.pool_size
        sh, sw = self.stride
        out_h, out_w = self._out_hw
        grad_in = np.zeros(self._x_shape, dtype=grad_out.dtype)
        # Scatter each output gradient back to its argmax location.
        oh_idx, ow_idx = np.meshgrid(
            np.arange(out_h), np.arange(out_w), indexing="ij"
        )
        rows = oh_idx[None, None] * sh + self._argmax // kw
        cols = ow_idx[None, None] * sw + self._argmax % kw
        n_idx = np.arange(n)[:, None, None, None]
        c_idx = np.arange(c)[None, :, None, None]
        np.add.at(grad_in, (n_idx, c_idx, rows, cols), grad_out)
        return grad_in

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        c, h, w = input_shape
        out_h = conv_output_size(h, self.pool_size[0], self.stride[0], 0)
        out_w = conv_output_size(w, self.pool_size[1], self.stride[1], 0)
        return (c, out_h, out_w)

    def get_config(self) -> Dict:
        return {
            "name": self.name,
            "pool_size": list(self.pool_size),
            "stride": list(self.stride),
        }


class AvgPool2D(Layer):
    """Average pooling over NCHW inputs."""

    def __init__(self, pool_size=2, stride=None, name: Optional[str] = None):
        super().__init__(name=name)
        self.pool_size = _pair(pool_size)
        self.stride = _pair(stride) if stride is not None else self.pool_size
        self._x_shape: Optional[Tuple[int, int, int, int]] = None
        self._out_hw: Optional[Tuple[int, int]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        kh, kw = self.pool_size
        sh, sw = self.stride
        out_h = conv_output_size(h, kh, sh, 0)
        out_w = conv_output_size(w, kw, sw, 0)
        s_n, s_c, s_h, s_w = x.strides
        view = np.lib.stride_tricks.as_strided(
            x,
            shape=(n, c, out_h, out_w, kh, kw),
            strides=(s_n, s_c, s_h * sh, s_w * sw, s_h, s_w),
            writeable=False,
        )
        self._x_shape = x.shape
        self._out_hw = (out_h, out_w)
        return view.mean(axis=(-2, -1))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        kh, kw = self.pool_size
        sh, sw = self.stride
        out_h, out_w = self._out_hw
        grad_in = np.zeros(self._x_shape, dtype=grad_out.dtype)
        scale = 1.0 / (kh * kw)
        for i in range(kh):
            for j in range(kw):
                grad_in[:, :, i : i + sh * out_h : sh, j : j + sw * out_w : sw] += (
                    grad_out * scale
                )
        return grad_in

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        c, h, w = input_shape
        out_h = conv_output_size(h, self.pool_size[0], self.stride[0], 0)
        out_w = conv_output_size(w, self.pool_size[1], self.stride[1], 0)
        return (c, out_h, out_w)

    def get_config(self) -> Dict:
        return {
            "name": self.name,
            "pool_size": list(self.pool_size),
            "stride": list(self.stride),
        }
