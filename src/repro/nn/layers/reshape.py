"""Shape-manipulation layers: Flatten, Reshape, and the CNN→LSTM bridge."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from .base import Layer


class Flatten(Layer):
    """Collapse all non-batch dimensions into one."""

    def __init__(self, name: Optional[str] = None):
        super().__init__(name=name)
        self._x_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        return grad_out.reshape(self._x_shape)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return (int(np.prod(input_shape)),)


class Reshape(Layer):
    """Reshape non-batch dimensions to ``target_shape``."""

    def __init__(self, target_shape: Tuple[int, ...], name: Optional[str] = None):
        super().__init__(name=name)
        self.target_shape = tuple(int(s) for s in target_shape)
        self._x_shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x_shape = x.shape
        return x.reshape((x.shape[0],) + self.target_shape)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        return grad_out.reshape(self._x_shape)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if int(np.prod(input_shape)) != int(np.prod(self.target_shape)):
            raise ValueError(
                f"cannot reshape {input_shape} into {self.target_shape}"
            )
        return self.target_shape

    def get_config(self) -> Dict:
        return {"name": self.name, "target_shape": list(self.target_shape)}


class ToSequence(Layer):
    """Bridge a conv feature map (N, C, H, W) into an LSTM sequence.

    The W (time-window) axis becomes the sequence axis and each step's
    features are the flattened (C, H) slice, i.e. output shape is
    ``(N, W, C*H)``.  This mirrors how the CLEAR CNN-LSTM treats the
    feature-map window axis as time (Fig. 2 of the paper).
    """

    def __init__(self, name: Optional[str] = None):
        super().__init__(name=name)
        self._x_shape: Optional[Tuple[int, int, int, int]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ValueError(f"ToSequence expects (N, C, H, W) inputs, got {x.shape}")
        self._x_shape = x.shape
        n, c, h, w = x.shape
        return x.transpose(0, 3, 1, 2).reshape(n, w, c * h)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._x_shape
        return grad_out.reshape(n, w, c, h).transpose(0, 2, 3, 1)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        c, h, w = input_shape
        return (w, c * h)
