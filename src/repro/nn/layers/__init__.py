"""Layer zoo for the numpy neural-network substrate."""

from .activation_layers import ELU, LeakyReLU, ReLU, Sigmoid, Softmax, Tanh
from .attention import TemporalAttention
from .base import Layer
from .conv import AvgPool2D, Conv2D, MaxPool2D
from .dense import Dense
from .dropout import Dropout
from .gru import GRU
from .norm import BatchNorm
from .recurrent import LSTM, SimpleRNN
from .reshape import Flatten, Reshape, ToSequence

LAYER_REGISTRY = {
    cls.__name__: cls
    for cls in (
        Dense,
        Conv2D,
        MaxPool2D,
        AvgPool2D,
        LSTM,
        GRU,
        SimpleRNN,
        TemporalAttention,
        Dropout,
        BatchNorm,
        Flatten,
        Reshape,
        ToSequence,
        ReLU,
        LeakyReLU,
        ELU,
        Sigmoid,
        Tanh,
        Softmax,
    )
}

__all__ = [
    "Layer",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "AvgPool2D",
    "LSTM",
    "GRU",
    "SimpleRNN",
    "TemporalAttention",
    "Dropout",
    "BatchNorm",
    "Flatten",
    "Reshape",
    "ToSequence",
    "ReLU",
    "LeakyReLU",
    "ELU",
    "Sigmoid",
    "Tanh",
    "Softmax",
    "LAYER_REGISTRY",
]
