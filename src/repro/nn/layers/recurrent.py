"""Recurrent layers: LSTM and a simple (Elman) RNN.

Inputs are batches of sequences, shape ``(N, T, F)``.  Backpropagation
through time is exact and unrolled over the full sequence.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import initializers
from ..activations import sigmoid, tanh
from .base import Layer


class LSTM(Layer):
    """Long short-term memory layer (Hochreiter & Schmidhuber, 1997).

    Gate layout follows the Keras convention: the hidden-size-4 kernel
    columns are ordered input (i), forget (f), cell candidate (g),
    output (o).  Forget-gate bias is initialized to 1.0, the standard
    trick for stable early training.

    Parameters
    ----------
    units:
        Hidden state dimensionality.
    return_sequences:
        If True the output is the full hidden sequence ``(N, T, units)``;
        otherwise only the last hidden state ``(N, units)``.
    """

    def __init__(
        self,
        units: int,
        return_sequences: bool = False,
        kernel_init="glorot_uniform",
        recurrent_init="orthogonal",
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        if units <= 0:
            raise ValueError(f"units must be positive, got {units}")
        self.units = int(units)
        self.return_sequences = bool(return_sequences)
        self.kernel_init = initializers.get(kernel_init)
        self.recurrent_init = initializers.get(recurrent_init)
        self._cache: Optional[Dict] = None

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        if len(input_shape) != 2:
            raise ValueError(f"LSTM expects (T, F) inputs, got {input_shape}")
        features = int(input_shape[1])
        h = self.units
        self.params["W"] = self.kernel_init((features, 4 * h), rng)
        self.params["U"] = self.recurrent_init((h, 4 * h), rng)
        bias = np.zeros(4 * h, dtype=np.float64)
        bias[h : 2 * h] = 1.0  # forget gate bias
        self.params["b"] = bias
        self.zero_grads()
        self.built = True

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, t, _ = x.shape
        h = self.units
        w, u, b = self.params["W"], self.params["U"], self.params["b"]
        h_prev = np.zeros((n, h), dtype=np.float64)
        c_prev = np.zeros((n, h), dtype=np.float64)
        hs = np.zeros((n, t, h), dtype=np.float64)
        cache_steps: List[Dict[str, np.ndarray]] = []
        x_proj = x @ w  # (N, T, 4h) — hoist the input projection out of the loop
        for step in range(t):
            z = x_proj[:, step, :] + h_prev @ u + b
            i = sigmoid(z[:, :h])
            f = sigmoid(z[:, h : 2 * h])
            g = tanh(z[:, 2 * h : 3 * h])
            o = sigmoid(z[:, 3 * h :])
            c = f * c_prev + i * g
            tanh_c = tanh(c)
            h_new = o * tanh_c
            cache_steps.append(
                {
                    "i": i,
                    "f": f,
                    "g": g,
                    "o": o,
                    "c": c,
                    "tanh_c": tanh_c,
                    "c_prev": c_prev,
                    "h_prev": h_prev,
                }
            )
            hs[:, step, :] = h_new
            h_prev, c_prev = h_new, c
        self._cache = {"x": x, "steps": cache_steps, "hs": hs}
        return hs if self.return_sequences else hs[:, -1, :]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x = self._cache["x"]
        steps = self._cache["steps"]
        n, t, features = x.shape
        h = self.units
        w, u = self.params["W"], self.params["U"]

        if self.return_sequences:
            grad_hs = grad_out
        else:
            grad_hs = np.zeros((n, t, h), dtype=np.float64)
            grad_hs[:, -1, :] = grad_out

        d_w = np.zeros_like(w)
        d_u = np.zeros_like(u)
        d_b = np.zeros(4 * h, dtype=np.float64)
        d_x = np.zeros_like(x)
        dh_next = np.zeros((n, h), dtype=np.float64)
        dc_next = np.zeros((n, h), dtype=np.float64)

        for step in range(t - 1, -1, -1):
            cache = steps[step]
            dh = grad_hs[:, step, :] + dh_next
            i, f, g, o = cache["i"], cache["f"], cache["g"], cache["o"]
            tanh_c = cache["tanh_c"]
            dc = dc_next + dh * o * (1.0 - tanh_c * tanh_c)
            do = dh * tanh_c
            di = dc * g
            dg = dc * i
            df = dc * cache["c_prev"]
            dz = np.concatenate(
                [
                    di * i * (1.0 - i),
                    df * f * (1.0 - f),
                    dg * (1.0 - g * g),
                    do * o * (1.0 - o),
                ],
                axis=1,
            )
            d_w += x[:, step, :].T @ dz
            d_u += cache["h_prev"].T @ dz
            d_b += dz.sum(axis=0)
            d_x[:, step, :] = dz @ w.T
            dh_next = dz @ u.T
            dc_next = dc * f

        self.grads["W"] = d_w
        self.grads["U"] = d_u
        self.grads["b"] = d_b
        return d_x

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        t, _ = input_shape
        if self.return_sequences:
            return (t, self.units)
        return (self.units,)

    def get_config(self) -> Dict:
        return {
            "name": self.name,
            "units": self.units,
            "return_sequences": self.return_sequences,
        }


class SimpleRNN(Layer):
    """Elman RNN with tanh non-linearity; a lightweight LSTM alternative."""

    def __init__(
        self,
        units: int,
        return_sequences: bool = False,
        kernel_init="glorot_uniform",
        recurrent_init="orthogonal",
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        if units <= 0:
            raise ValueError(f"units must be positive, got {units}")
        self.units = int(units)
        self.return_sequences = bool(return_sequences)
        self.kernel_init = initializers.get(kernel_init)
        self.recurrent_init = initializers.get(recurrent_init)
        self._cache: Optional[Dict] = None

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        if len(input_shape) != 2:
            raise ValueError(f"SimpleRNN expects (T, F) inputs, got {input_shape}")
        features = int(input_shape[1])
        self.params["W"] = self.kernel_init((features, self.units), rng)
        self.params["U"] = self.recurrent_init((self.units, self.units), rng)
        self.params["b"] = np.zeros(self.units, dtype=np.float64)
        self.zero_grads()
        self.built = True

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, t, _ = x.shape
        h_prev = np.zeros((n, self.units), dtype=np.float64)
        hs = np.zeros((n, t, self.units), dtype=np.float64)
        for step in range(t):
            h_prev = tanh(
                x[:, step, :] @ self.params["W"]
                + h_prev @ self.params["U"]
                + self.params["b"]
            )
            hs[:, step, :] = h_prev
        self._cache = {"x": x, "hs": hs}
        return hs if self.return_sequences else hs[:, -1, :]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x, hs = self._cache["x"], self._cache["hs"]
        n, t, _ = x.shape
        if self.return_sequences:
            grad_hs = grad_out
        else:
            grad_hs = np.zeros_like(hs)
            grad_hs[:, -1, :] = grad_out

        d_w = np.zeros_like(self.params["W"])
        d_u = np.zeros_like(self.params["U"])
        d_b = np.zeros_like(self.params["b"])
        d_x = np.zeros_like(x)
        dh_next = np.zeros((n, self.units), dtype=np.float64)
        for step in range(t - 1, -1, -1):
            dh = grad_hs[:, step, :] + dh_next
            h_t = hs[:, step, :]
            dz = dh * (1.0 - h_t * h_t)
            h_prev = (
                hs[:, step - 1, :] if step > 0 else np.zeros((n, self.units))
            )
            d_w += x[:, step, :].T @ dz
            d_u += h_prev.T @ dz
            d_b += dz.sum(axis=0)
            d_x[:, step, :] = dz @ self.params["W"].T
            dh_next = dz @ self.params["U"].T

        self.grads["W"] = d_w
        self.grads["U"] = d_u
        self.grads["b"] = d_b
        return d_x

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        t, _ = input_shape
        if self.return_sequences:
            return (t, self.units)
        return (self.units,)

    def get_config(self) -> Dict:
        return {
            "name": self.name,
            "units": self.units,
            "return_sequences": self.return_sequences,
        }
