"""Gated recurrent unit (Cho et al., 2014).

Included as an alternative to the paper's LSTM so the architecture
choice can be ablated (GRU has ~25 % fewer parameters per unit).
Gate layout: columns ordered update (z), reset (r), candidate (h~).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import initializers
from ..activations import sigmoid, tanh
from .base import Layer


class GRU(Layer):
    """Gated recurrent unit layer over (N, T, F) sequences."""

    def __init__(
        self,
        units: int,
        return_sequences: bool = False,
        kernel_init="glorot_uniform",
        recurrent_init="orthogonal",
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        if units <= 0:
            raise ValueError(f"units must be positive, got {units}")
        self.units = int(units)
        self.return_sequences = bool(return_sequences)
        self.kernel_init = initializers.get(kernel_init)
        self.recurrent_init = initializers.get(recurrent_init)
        self._cache: Optional[Dict] = None

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        if len(input_shape) != 2:
            raise ValueError(f"GRU expects (T, F) inputs, got {input_shape}")
        features = int(input_shape[1])
        h = self.units
        self.params["W"] = self.kernel_init((features, 3 * h), rng)
        self.params["U"] = self.recurrent_init((h, 3 * h), rng)
        self.params["b"] = np.zeros(3 * h, dtype=np.float64)
        self.zero_grads()
        self.built = True

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, t, _ = x.shape
        h = self.units
        w, u, b = self.params["W"], self.params["U"], self.params["b"]
        h_prev = np.zeros((n, h), dtype=np.float64)
        hs = np.zeros((n, t, h), dtype=np.float64)
        steps: List[Dict[str, np.ndarray]] = []
        x_proj = x @ w + b  # (N, T, 3h)
        for step in range(t):
            xz = x_proj[:, step, :h]
            xr = x_proj[:, step, h : 2 * h]
            xh = x_proj[:, step, 2 * h :]
            hu = h_prev @ u
            z = sigmoid(xz + hu[:, :h])
            r = sigmoid(xr + hu[:, h : 2 * h])
            # Candidate uses the reset-gated recurrent contribution.
            rh = r * h_prev
            hh = tanh(xh + rh @ u[:, 2 * h :])
            h_new = (1.0 - z) * h_prev + z * hh
            steps.append(
                {"z": z, "r": r, "hh": hh, "h_prev": h_prev, "rh": rh}
            )
            hs[:, step, :] = h_new
            h_prev = h_new
        self._cache = {"x": x, "steps": steps, "hs": hs}
        return hs if self.return_sequences else hs[:, -1, :]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x = self._cache["x"]
        steps = self._cache["steps"]
        n, t, features = x.shape
        h = self.units
        w, u = self.params["W"], self.params["U"]

        if self.return_sequences:
            grad_hs = grad_out
        else:
            grad_hs = np.zeros((n, t, h), dtype=np.float64)
            grad_hs[:, -1, :] = grad_out

        d_w = np.zeros_like(w)
        d_u = np.zeros_like(u)
        d_b = np.zeros(3 * h, dtype=np.float64)
        d_x = np.zeros_like(x)
        dh_next = np.zeros((n, h), dtype=np.float64)

        for step in range(t - 1, -1, -1):
            cache = steps[step]
            z, r, hh = cache["z"], cache["r"], cache["hh"]
            h_prev, rh = cache["h_prev"], cache["rh"]
            dh = grad_hs[:, step, :] + dh_next

            dz_pre = dh * (hh - h_prev) * z * (1.0 - z)
            dhh = dh * z
            dhh_pre = dhh * (1.0 - hh * hh)
            # Candidate path: hh = tanh(xh + (r*h_prev) @ U_h)
            d_rh = dhh_pre @ u[:, 2 * h :].T
            dr_pre = d_rh * h_prev * r * (1.0 - r)

            dz_r_pre = np.concatenate([dz_pre, dr_pre], axis=1)  # (N, 2h)
            dgates_pre = np.concatenate([dz_pre, dr_pre, dhh_pre], axis=1)

            d_w += x[:, step, :].T @ dgates_pre
            d_b += dgates_pre.sum(axis=0)
            d_u[:, : 2 * h] += h_prev.T @ dz_r_pre
            d_u[:, 2 * h :] += rh.T @ dhh_pre

            d_x[:, step, :] = dgates_pre @ w.T
            dh_next = (
                dh * (1.0 - z)
                + dz_r_pre @ u[:, : 2 * h].T
                + d_rh * r
            )

        self.grads["W"] = d_w
        self.grads["U"] = d_u
        self.grads["b"] = d_b
        return d_x

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        t, _ = input_shape
        if self.return_sequences:
            return (t, self.units)
        return (self.units,)

    def get_config(self) -> Dict:
        return {
            "name": self.name,
            "units": self.units,
            "return_sequences": self.return_sequences,
        }
