"""Gated recurrent unit (Cho et al., 2014).

Included as an alternative to the paper's LSTM so the architecture
choice can be ablated (GRU has ~25 % fewer parameters per unit).
Gate layout: columns ordered update (z), reset (r), candidate (h~).
The fused time-step kernels live in :mod:`repro.nn.backends`.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from .. import initializers
from .base import Layer


class GRU(Layer):
    """Gated recurrent unit layer over (N, T, F) sequences."""

    def __init__(
        self,
        units: int,
        return_sequences: bool = False,
        kernel_init="glorot_uniform",
        recurrent_init="orthogonal",
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        if units <= 0:
            raise ValueError(f"units must be positive, got {units}")
        self.units = int(units)
        self.return_sequences = bool(return_sequences)
        self.kernel_init = initializers.get(kernel_init)
        self.recurrent_init = initializers.get(recurrent_init)

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        if len(input_shape) != 2:
            raise ValueError(f"GRU expects (T, F) inputs, got {input_shape}")
        features = int(input_shape[1])
        h = self.units
        self.params["W"] = self.kernel_init((features, 3 * h), rng)
        self.params["U"] = self.recurrent_init((h, 3 * h), rng)
        self.params["b"] = np.zeros(3 * h, dtype=np.float64)
        self.zero_grads()
        self.built = True

    def forward(self, x: np.ndarray) -> np.ndarray:
        hs = self.backend.gru_forward(
            x,
            self.params["W"],
            self.params["U"],
            self.params["b"],
            self._backend_state,
        )
        return hs if self.return_sequences else hs[:, -1, :]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        hs = self._backend_state.get("hs")
        if hs is None:
            raise RuntimeError("backward called before forward")
        if self.return_sequences:
            grad_hs = grad_out
        else:
            grad_hs = np.zeros(hs.shape, dtype=grad_out.dtype)
            grad_hs[:, -1, :] = grad_out
        d_x, d_w, d_u, d_b = self.backend.gru_backward(
            grad_hs, self.params["W"], self.params["U"], self._backend_state
        )
        self.grads["W"] = d_w
        self.grads["U"] = d_u
        self.grads["b"] = d_b
        return d_x

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        t, _ = input_shape
        if self.return_sequences:
            return (t, self.units)
        return (self.units,)

    def get_config(self) -> Dict:
        return {
            "name": self.name,
            "units": self.units,
            "return_sequences": self.return_sequences,
        }
