"""The Sequential model: forward/backward orchestration and training loop."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from . import losses as losses_mod
from . import optimizers as optim_mod
from .backends import BackendLike, ComputeBackend, default_backend, get_backend
from .callbacks import Callback, EpochLogger, History
from .layers.base import Layer
from .metrics import accuracy


def iterate_minibatches(
    n: int,
    batch_size: int,
    rng: Optional[np.random.Generator] = None,
    shuffle: bool = True,
):
    """Yield index arrays covering ``range(n)`` in mini-batches.

    When no ``rng`` is supplied the shuffle falls back to a fixed seed so
    that standalone calls stay reproducible (callers that want varying
    orders must thread their own generator, as ``Sequential.fit`` does).
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    indices = np.arange(n)
    if shuffle:
        if rng is None:
            rng = np.random.default_rng(0)
        rng.shuffle(indices)
    for start in range(0, n, batch_size):
        yield indices[start : start + batch_size]


class Sequential:
    """A linear stack of layers with a Keras-like training API.

    Parameters
    ----------
    layers:
        Layer instances executed in order.
    seed:
        Seed for parameter initialization (and batch shuffling).
    backend:
        Compute backend name or instance for every layer (see
        :mod:`repro.nn.backends`).  ``None`` follows the process-wide
        default (``reference``); the backend also owns the dtype the
        model computes in (``reference`` promotes everything to
        ``float64``, ``optimized`` preserves ``float32``).
    """

    def __init__(
        self,
        layers: Optional[Sequence[Layer]] = None,
        seed: int = 0,
        backend: Optional[BackendLike] = None,
    ):
        self._backend: Optional[ComputeBackend] = (
            get_backend(backend) if backend is not None else None
        )
        self.layers: List[Layer] = []
        for layer in layers or []:
            self.add(layer)
        self.rng = np.random.default_rng(seed)
        self.loss: Optional[losses_mod.Loss] = None
        self.optimizer: Optional[optim_mod.Optimizer] = None
        self.history = History()
        self.stop_training = False

    # -- construction ----------------------------------------------------
    @property
    def backend(self) -> ComputeBackend:
        """The compute backend this model runs on."""
        return self._backend if self._backend is not None else default_backend()

    def set_backend(self, backend: BackendLike) -> "Sequential":
        """Switch every layer to ``backend``; returns self for chaining.

        Parameters are untouched (they always live in ``float64``), so
        switching is cheap and reversible at any point — e.g. train on
        ``reference``, serve on ``optimized``.
        """
        self._backend = get_backend(backend)
        for layer in self.layers:
            layer.set_backend(self._backend)
        return self

    def add(self, layer: Layer) -> "Sequential":
        """Append a layer; returns self for chaining."""
        if self._backend is not None:
            layer.set_backend(self._backend)
        self.layers.append(layer)
        return self

    def compile(
        self,
        loss: Union[str, losses_mod.Loss] = "softmax_cross_entropy",
        optimizer: Union[str, optim_mod.Optimizer] = "adam",
    ) -> "Sequential":
        """Attach a loss and optimizer; returns self for chaining."""
        self.loss = losses_mod.get(loss)
        self.optimizer = optim_mod.get(optimizer)
        return self

    def validate(self, input_shape: Tuple[int, ...], dtype: str = "float64"):
        """Statically validate the stack for ``input_shape`` (no forward).

        Walks every layer's ``output_shape`` contract symbolically and
        returns a :class:`repro.analysis.ModelReport` (per-layer shapes,
        dtypes, parameter counts, memory footprints).  Raises
        :class:`repro.analysis.GraphValidationError` — naming the layer
        index and the expected-vs-actual shapes — on the first defect.
        """
        # Imported lazily: repro.analysis is deliberately decoupled from
        # repro.nn so each can be imported without the other.
        from ..analysis.graph import validate_model

        return validate_model(self, input_shape, dtype=dtype)

    def build(self, input_shape: Tuple[int, ...]) -> None:
        """Eagerly build all layers from a (batch-less) input shape.

        The stack is statically validated first, so a mis-shaped
        architecture fails with a :class:`~repro.analysis.GraphValidationError`
        naming the offending layer instead of an opaque NumPy error.
        """
        self.validate(input_shape)
        shape = tuple(input_shape)
        for layer in self.layers:
            if not layer.built:
                layer.build(shape, self.rng)
                layer.built = True
            shape = layer.output_shape(shape)

    # -- computation -----------------------------------------------------
    def set_training(self, training: bool) -> None:
        for layer in self.layers:
            layer.training = training

    def _cast_input(self, x: np.ndarray) -> np.ndarray:
        """Apply the backend's dtype policy at the model boundary."""
        x = np.asarray(x)
        return x.astype(self.backend.compute_dtype(x.dtype), copy=False)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the full stack; builds lazily from the first batch."""
        self.set_training(training)
        out = self._cast_input(x)
        for layer in self.layers:
            layer.ensure_built(out, self.rng)
            out = layer.forward(out)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Backpropagate a loss gradient through the stack."""
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Forward pass in eval mode, batched to bound memory."""
        x = self._cast_input(x)
        outputs = []
        for start in range(0, x.shape[0], batch_size):
            outputs.append(self.forward(x[start : start + batch_size], training=False))
        return np.concatenate(outputs, axis=0)

    def predict_many(
        self,
        inputs: Sequence[np.ndarray],
        pad_rows: Optional[int] = None,
    ) -> List[np.ndarray]:
        """Batched multi-user forward: one fused pass over many requests.

        Each entry of ``inputs`` is one user's batch, shape ``(n_i,
        *features)`` with identical feature shapes.  The backend stacks
        them into a single forward pass and splits the outputs back per
        user — the serving-layer entry point that amortizes kernel and
        dispatch overhead across concurrent edge requests.  ``pad_rows``
        enables canonical fixed-shape execution (see
        :meth:`~repro.nn.backends.base.ComputeBackend.forward_many`):
        every forward runs at exactly that many rows, making each
        request's logits independent of how requests were coalesced —
        the serving layer's bit-identity guarantee.
        """
        return self.backend.forward_many(self, inputs, pad_rows=pad_rows)

    def predict_classes(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Argmax class predictions."""
        return self.predict(x, batch_size=batch_size).argmax(axis=1)

    # -- training --------------------------------------------------------
    def train_batch(self, x: np.ndarray, y: np.ndarray) -> float:
        """One optimization step on a single batch; returns the loss."""
        if self.loss is None or self.optimizer is None:
            raise RuntimeError("call compile() before training")
        logits = self.forward(x, training=True)
        loss_value = self.loss.loss(logits, y)
        grad = self.loss.grad(logits, y)
        self.backward(grad)
        self.optimizer.step(self.layers)
        return loss_value

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 10,
        batch_size: int = 32,
        validation_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        callbacks: Optional[Iterable[Callback]] = None,
        verbose: bool = False,
    ) -> History:
        """Mini-batch training loop with optional validation and callbacks."""
        if self.loss is None or self.optimizer is None:
            raise RuntimeError("call compile() before training")
        x = self._cast_input(x)
        y = np.asarray(y)
        if x.shape[0] != y.shape[0]:
            raise ValueError(
                f"x and y disagree on batch size: {x.shape[0]} vs {y.shape[0]}"
            )
        if x.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")

        callbacks = list(callbacks) if callbacks else []
        if verbose:
            # verbose=True is sugar for attaching the logging callback;
            # progress goes through the "repro.nn" logger, never print().
            callbacks.append(EpochLogger(total_epochs=epochs))
        all_callbacks: List[Callback] = [self.history] + callbacks
        self.stop_training = False
        for cb in all_callbacks:
            cb.on_train_begin(self)

        for epoch in range(epochs):
            epoch_losses = []
            for batch_idx in iterate_minibatches(x.shape[0], batch_size, self.rng):
                epoch_losses.append(self.train_batch(x[batch_idx], y[batch_idx]))
            logs: Dict[str, float] = {
                "loss": float(np.mean(epoch_losses)),
                "epoch": float(epoch),
            }
            train_pred = self.predict(x)
            logs["accuracy"] = accuracy(y, train_pred)
            if validation_data is not None:
                val_x, val_y = validation_data
                val_logits = self.predict(val_x)
                logs["val_loss"] = self.loss.loss(val_logits, np.asarray(val_y))
                logs["val_accuracy"] = accuracy(np.asarray(val_y), val_logits)
            for cb in all_callbacks:
                cb.on_epoch_end(self, epoch, logs)
            if any(cb.stop_training for cb in all_callbacks):
                self.stop_training = True
                break

        for cb in all_callbacks:
            cb.on_train_end(self)
        return self.history

    def evaluate(
        self, x: np.ndarray, y: np.ndarray, batch_size: int = 256
    ) -> Dict[str, float]:
        """Loss and accuracy on held-out data."""
        if self.loss is None:
            raise RuntimeError("call compile() before evaluate")
        logits = self.predict(x, batch_size=batch_size)
        y = np.asarray(y)
        return {
            "loss": self.loss.loss(logits, y),
            "accuracy": accuracy(y, logits),
        }

    # -- weights / freezing ----------------------------------------------
    def get_weights(self) -> List[Dict[str, np.ndarray]]:
        """Copy of every layer's parameters (ordered by layer)."""
        return [
            {key: value.copy() for key, value in layer.params.items()}
            for layer in self.layers
        ]

    def set_weights(self, weights: List[Dict[str, np.ndarray]]) -> None:
        """Load parameters produced by :meth:`get_weights`."""
        if len(weights) != len(self.layers):
            raise ValueError(
                f"weight list has {len(weights)} entries for {len(self.layers)} layers"
            )
        for layer, wdict in zip(self.layers, weights):
            for key, value in wdict.items():
                if key not in layer.params:
                    raise KeyError(f"layer {layer.name} has no parameter {key!r}")
                if layer.params[key].shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {layer.name}.{key}: "
                        f"{layer.params[key].shape} vs {value.shape}"
                    )
                layer.params[key] = np.asarray(value, dtype=np.float64).copy()

    def freeze_layers(self, names_or_count: Union[int, Sequence[str]]) -> None:
        """Freeze the first N layers, or layers matched by name."""
        if isinstance(names_or_count, int):
            for layer in self.layers[:names_or_count]:
                layer.freeze()
        else:
            wanted = set(names_or_count)
            for layer in self.layers:
                if layer.name in wanted:
                    layer.freeze()

    def unfreeze_all(self) -> None:
        for layer in self.layers:
            layer.unfreeze()

    # -- introspection ----------------------------------------------------
    @property
    def num_params(self) -> int:
        return sum(layer.num_params for layer in self.layers)

    def summary(self, input_shape: Optional[Tuple[int, ...]] = None) -> str:
        """Human-readable table of layers, output shapes, and params."""
        lines = [f"{'layer':<28}{'output shape':<22}{'params':>10}"]
        lines.append("-" * 60)
        shape = tuple(input_shape) if input_shape else None
        for layer in self.layers:
            if shape is not None:
                shape = layer.output_shape(shape)
                shape_str = str(shape)
            else:
                shape_str = "?"
            lines.append(
                f"{layer.name:<28}{shape_str:<22}{layer.num_params:>10}"
            )
        lines.append("-" * 60)
        lines.append(f"total params: {self.num_params}")
        return "\n".join(lines)
