"""A compact, from-scratch numpy deep-learning framework.

This substrate replaces TensorFlow/Keras in the offline reproduction of
the CLEAR paper.  It provides the layers needed for the paper's
CNN-LSTM (Fig. 2) plus the training machinery (Adam, early stopping,
checkpointing, layer freezing for on-device fine-tuning), all verified
by numerical gradient checks in the test suite.
"""

from . import activations, backends, initializers
from .backends import (
    ComputeBackend,
    available_backends,
    default_backend,
    get_backend,
    set_default_backend,
)
from .callbacks import (
    BestWeights,
    Callback,
    EarlyStopping,
    EpochLogger,
    History,
)
from .callbacks_extra import CSVLogger, LambdaCallback, ReduceLROnPlateau
from .checkpoint import load_model, model_from_config, model_to_config, save_model
from .layers import (
    ELU,
    GRU,
    LSTM,
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    Layer,
    LeakyReLU,
    MaxPool2D,
    ReLU,
    Reshape,
    Sigmoid,
    SimpleRNN,
    Softmax,
    Tanh,
    TemporalAttention,
    ToSequence,
)
from .losses import BinaryCrossEntropy, Loss, MeanSquaredError, SoftmaxCrossEntropy
from .metrics import (
    accuracy,
    balanced_accuracy,
    confusion_matrix,
    f1_score,
    macro_f1,
    precision_recall_f1,
)
from .model import Sequential, iterate_minibatches
from .optimizers import SGD, Adam, Optimizer, RMSProp
from .schedules import (
    Constant,
    CosineDecay,
    ExponentialDecay,
    Schedule,
    StepDecay,
    WarmupWrapper,
)

__all__ = [
    "activations",
    "backends",
    "initializers",
    "ComputeBackend",
    "available_backends",
    "default_backend",
    "get_backend",
    "set_default_backend",
    "Layer",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "AvgPool2D",
    "LSTM",
    "GRU",
    "SimpleRNN",
    "TemporalAttention",
    "Dropout",
    "BatchNorm",
    "Flatten",
    "Reshape",
    "ToSequence",
    "ReLU",
    "LeakyReLU",
    "ELU",
    "Sigmoid",
    "Tanh",
    "Softmax",
    "Loss",
    "SoftmaxCrossEntropy",
    "BinaryCrossEntropy",
    "MeanSquaredError",
    "Optimizer",
    "SGD",
    "RMSProp",
    "Adam",
    "Schedule",
    "Constant",
    "StepDecay",
    "ExponentialDecay",
    "CosineDecay",
    "WarmupWrapper",
    "Sequential",
    "iterate_minibatches",
    "Callback",
    "History",
    "EpochLogger",
    "EarlyStopping",
    "BestWeights",
    "ReduceLROnPlateau",
    "CSVLogger",
    "LambdaCallback",
    "save_model",
    "load_model",
    "model_to_config",
    "model_from_config",
    "accuracy",
    "f1_score",
    "macro_f1",
    "balanced_accuracy",
    "precision_recall_f1",
    "confusion_matrix",
]
