"""Loss functions with exact analytic gradients.

Every loss implements ``loss(y_pred, y_true) -> float`` and
``grad(y_pred, y_true) -> np.ndarray`` where the gradient is
dL/d(y_pred) averaged over the batch (so optimizers see per-example
means, matching the loss value).
"""

from __future__ import annotations

from typing import Union

import numpy as np

from .activations import log_softmax, sigmoid, softmax


def _as_index_labels(y_true: np.ndarray, num_classes: int) -> np.ndarray:
    """Accept integer labels or one-hot matrices; return integer labels."""
    y_true = np.asarray(y_true)
    if y_true.ndim == 2:
        if y_true.shape[1] != num_classes:
            raise ValueError(
                f"one-hot labels have {y_true.shape[1]} classes, logits have "
                f"{num_classes}"
            )
        return y_true.argmax(axis=1)
    return y_true.astype(np.int64)


class Loss:
    """Base class for losses."""

    def loss(self, y_pred: np.ndarray, y_true: np.ndarray) -> float:
        raise NotImplementedError

    def grad(self, y_pred: np.ndarray, y_true: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, y_pred: np.ndarray, y_true: np.ndarray) -> float:
        return self.loss(y_pred, y_true)


class SoftmaxCrossEntropy(Loss):
    """Softmax + cross-entropy on raw logits, with label smoothing.

    Labels may be integer class indices ``(N,)`` or one-hot ``(N, C)``.
    """

    def __init__(self, label_smoothing: float = 0.0):
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError(
                f"label_smoothing must be in [0, 1), got {label_smoothing}"
            )
        self.label_smoothing = float(label_smoothing)

    def _smooth_targets(self, labels: np.ndarray, num_classes: int) -> np.ndarray:
        eye = np.eye(num_classes, dtype=np.float64)[labels]
        if self.label_smoothing == 0.0:
            return eye
        eps = self.label_smoothing
        return eye * (1.0 - eps) + eps / num_classes

    def loss(self, y_pred: np.ndarray, y_true: np.ndarray) -> float:
        num_classes = y_pred.shape[1]
        labels = _as_index_labels(y_true, num_classes)
        targets = self._smooth_targets(labels, num_classes)
        logp = log_softmax(y_pred, axis=1)
        return float(-(targets * logp).sum(axis=1).mean())

    def grad(self, y_pred: np.ndarray, y_true: np.ndarray) -> np.ndarray:
        num_classes = y_pred.shape[1]
        labels = _as_index_labels(y_true, num_classes)
        targets = self._smooth_targets(labels, num_classes)
        probs = softmax(y_pred, axis=1)
        return (probs - targets) / y_pred.shape[0]


class BinaryCrossEntropy(Loss):
    """Sigmoid + binary cross-entropy on a single logit column.

    ``y_pred`` is ``(N,)`` or ``(N, 1)`` raw logits, ``y_true`` binary.
    """

    def loss(self, y_pred: np.ndarray, y_true: np.ndarray) -> float:
        z = np.asarray(y_pred, dtype=np.float64).reshape(-1)
        y = np.asarray(y_true, dtype=np.float64).reshape(-1)
        # log(1 + exp(-|z|)) formulation is stable for large |z|.
        loss = np.maximum(z, 0.0) - z * y + np.log1p(np.exp(-np.abs(z)))
        return float(loss.mean())

    def grad(self, y_pred: np.ndarray, y_true: np.ndarray) -> np.ndarray:
        shape = np.asarray(y_pred).shape
        z = np.asarray(y_pred, dtype=np.float64).reshape(-1)
        y = np.asarray(y_true, dtype=np.float64).reshape(-1)
        g = (sigmoid(z) - y) / z.size
        return g.reshape(shape)


class MeanSquaredError(Loss):
    """Mean squared error, averaged over batch and output dimensions."""

    def loss(self, y_pred: np.ndarray, y_true: np.ndarray) -> float:
        diff = np.asarray(y_pred, dtype=np.float64) - np.asarray(
            y_true, dtype=np.float64
        )
        return float(np.mean(diff * diff))

    def grad(self, y_pred: np.ndarray, y_true: np.ndarray) -> np.ndarray:
        diff = np.asarray(y_pred, dtype=np.float64) - np.asarray(
            y_true, dtype=np.float64
        )
        return 2.0 * diff / diff.size


_REGISTRY = {
    "softmax_cross_entropy": SoftmaxCrossEntropy,
    "binary_cross_entropy": BinaryCrossEntropy,
    "mse": MeanSquaredError,
}


def get(name_or_loss: Union[str, Loss]) -> Loss:
    """Resolve a loss from a name or pass an instance through."""
    if isinstance(name_or_loss, Loss):
        return name_or_loss
    try:
        return _REGISTRY[name_or_loss]()
    except KeyError:
        raise ValueError(
            f"Unknown loss {name_or_loss!r}; known: {sorted(_REGISTRY)}"
        ) from None
