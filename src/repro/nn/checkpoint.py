"""Model checkpointing: architecture as JSON, weights as .npz.

A checkpoint is a single ``.npz`` file containing every parameter
array, the architecture config serialized to JSON, non-trainable layer
state (e.g. BatchNorm running statistics), and a SHA-256 content
checksum.  This mirrors the paper's workflow of saving the
best-performing cluster checkpoints on the cloud and shipping them to
edge devices — a shipment that can be truncated or bit-flipped in
transit, which is why :func:`load_model` verifies the checksum and
raises a typed :class:`~repro.errors.CheckpointError` (never a bare
``KeyError`` or ``zipfile.BadZipFile``) on any malformed file.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from ..errors import CheckpointError
from .layers import LAYER_REGISTRY
from .model import Sequential

#: Reserved array names inside a checkpoint .npz (not layer tensors).
CONFIG_KEY = "__config__"
CHECKSUM_KEY = "__checksum__"


def model_to_config(model: Sequential) -> dict:
    """Serializable architecture description.

    Returns ``{"backend": <name>, "layers": [{"class", "config"}, ...]}``
    so a restored model runs on the same compute backend it was saved
    with (parameters themselves are backend-independent ``float64``).
    """
    layers = []
    for layer in model.layers:
        entry = {"class": type(layer).__name__, "config": layer.get_config()}
        layers.append(entry)
    return {"backend": model.backend.name, "layers": layers}


def model_from_config(config, seed: int = 0, backend=None) -> Sequential:
    """Rebuild an (unbuilt) model from :func:`model_to_config` output.

    Accepts both the current dict format (with a ``"backend"`` entry)
    and the legacy bare list of layer entries written by pre-backend
    checkpoints, which load onto the default backend.  An explicit
    ``backend`` argument overrides whatever the config recorded — the
    hook serving and deployment use to force the optimized hot path
    (or pin reference) regardless of what the checkpoint was trained
    on.
    """
    if isinstance(config, dict):
        saved_backend = config.get("backend")
        entries = config["layers"]
    else:
        saved_backend = None
        entries = config
    if backend is None:
        backend = saved_backend
    layers = []
    for entry in entries:
        cls_name = entry["class"]
        if cls_name not in LAYER_REGISTRY:
            raise ValueError(f"unknown layer class in checkpoint: {cls_name!r}")
        cls = LAYER_REGISTRY[cls_name]
        kwargs = dict(entry["config"])
        # JSON turns tuples into lists; constructors accept both.
        layers.append(cls(**kwargs))
    return Sequential(layers, seed=seed, backend=backend)


def compute_checksum(arrays: Dict[str, np.ndarray]) -> str:
    """SHA-256 over every array's name, dtype, shape, and raw bytes.

    The :data:`CHECKSUM_KEY` entry itself is excluded so the digest can
    be recomputed from a loaded checkpoint and compared to the stored
    value.
    """
    digest = hashlib.sha256()
    for name in sorted(arrays):
        if name == CHECKSUM_KEY:
            continue
        value = np.ascontiguousarray(arrays[name])
        digest.update(name.encode("utf-8"))
        digest.update(str(value.dtype).encode("ascii"))
        digest.update(str(value.shape).encode("ascii"))
        digest.update(value.tobytes())
    return digest.hexdigest()


def save_model(model: Sequential, path: Union[str, Path]) -> Path:
    """Write the model architecture + weights + state to ``path`` (.npz)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    arrays = {CONFIG_KEY: np.frombuffer(
        json.dumps(model_to_config(model)).encode("utf-8"), dtype=np.uint8
    )}
    for i, layer in enumerate(model.layers):
        for key, value in layer.params.items():
            arrays[f"param/{i}/{key}"] = value
        if hasattr(layer, "get_state"):
            for key, value in layer.get_state().items():
                arrays[f"state/{i}/{key}"] = value
    arrays[CHECKSUM_KEY] = np.frombuffer(
        compute_checksum(arrays).encode("ascii"), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **arrays)
    return path


def _load_verified_arrays(
    path: Path, verify_checksum: bool
) -> Dict[str, np.ndarray]:
    """Read every array out of the .npz, converting parse failures."""
    try:
        with np.load(path, allow_pickle=False) as data:
            arrays = {name: data[name] for name in data.files}
    except Exception as exc:  # BadZipFile, OSError, ValueError, ...
        raise CheckpointError(
            f"checkpoint {path} is unreadable or corrupt: "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    if CONFIG_KEY not in arrays:
        raise CheckpointError(
            f"checkpoint {path} has no architecture config entry "
            f"({CONFIG_KEY!r}); not a repro checkpoint or badly truncated"
        )
    if verify_checksum and CHECKSUM_KEY in arrays:
        stored = bytes(arrays[CHECKSUM_KEY].tobytes()).decode(
            "ascii", errors="replace"
        )
        actual = compute_checksum(arrays)
        if stored != actual:
            raise CheckpointError(
                f"checkpoint {path} failed checksum verification "
                f"(stored {stored[:12]}…, recomputed {actual[:12]}…); "
                f"the file was corrupted after saving"
            )
    return arrays


def load_model(
    path: Union[str, Path],
    seed: int = 0,
    verify_checksum: bool = True,
    backend=None,
) -> Sequential:
    """Load a model saved by :func:`save_model`; ready for inference.

    The returned model still needs :meth:`Sequential.compile` before
    further training (the optimizer is not checkpointed).  By default
    the model runs on the compute backend it was saved with (legacy
    checkpoints without a backend entry load onto the process default);
    pass ``backend`` to override explicitly — e.g. ``"optimized"`` to
    guarantee the serving hot path even for legacy checkpoints.

    Raises
    ------
    CheckpointError
        If the file is missing, not a valid ``.npz``, missing its
        architecture entry, fails checksum verification, or its config
        / tensors cannot be decoded.  Checkpoints written before
        checksums existed (no :data:`CHECKSUM_KEY` entry) still load.
    """
    if backend is not None:
        # Resolve eagerly so a typo'd backend name surfaces as its own
        # ValueError, not a misleading CheckpointError below.
        from .backends import get_backend

        backend = get_backend(backend)
    path = Path(path)
    if not path.is_file():
        raise CheckpointError(f"checkpoint {path} does not exist")
    arrays = _load_verified_arrays(path, verify_checksum)
    try:
        config = json.loads(
            bytes(arrays[CONFIG_KEY].tobytes()).decode("utf-8")
        )
        model = model_from_config(config, seed=seed, backend=backend)
        # Group arrays per layer index.
        params: dict = {}
        states: dict = {}
        for name, value in arrays.items():
            if name in (CONFIG_KEY, CHECKSUM_KEY):
                continue
            kind, idx, key = name.split("/", 2)
            idx = int(idx)
            if kind == "param":
                params.setdefault(idx, {})[key] = value
            elif kind == "state":
                states.setdefault(idx, {})[key] = value
        for idx, layer in enumerate(model.layers):
            if idx in params:
                for key, value in params[idx].items():
                    layer.params[key] = np.asarray(value, dtype=np.float64)
                layer.zero_grads()
                layer.built = True
            if idx in states and hasattr(layer, "set_state"):
                # BatchNorm needs param shapes set before state; params
                # were restored above, but _axes/_param_shape come from
                # build, so trigger a build with a dummy if unbuilt.
                layer.set_state(states[idx])
    except CheckpointError:
        raise
    except Exception as exc:  # JSONDecodeError, KeyError, ValueError, ...
        raise CheckpointError(
            f"checkpoint {path} could not be decoded: "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    return model
