"""Model checkpointing: architecture as JSON, weights as .npz.

A checkpoint is a single ``.npz`` file containing every parameter
array, the architecture config serialized to JSON, and non-trainable
layer state (e.g. BatchNorm running statistics).  This mirrors the
paper's workflow of saving the best-performing cluster checkpoints on
the cloud and shipping them to edge devices.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from .layers import LAYER_REGISTRY
from .model import Sequential


def model_to_config(model: Sequential) -> list:
    """Serializable architecture description (one dict per layer)."""
    config = []
    for layer in model.layers:
        entry = {"class": type(layer).__name__, "config": layer.get_config()}
        config.append(entry)
    return config


def model_from_config(config: list, seed: int = 0) -> Sequential:
    """Rebuild an (unbuilt) model from :func:`model_to_config` output."""
    layers = []
    for entry in config:
        cls_name = entry["class"]
        if cls_name not in LAYER_REGISTRY:
            raise ValueError(f"unknown layer class in checkpoint: {cls_name!r}")
        cls = LAYER_REGISTRY[cls_name]
        kwargs = dict(entry["config"])
        # JSON turns tuples into lists; constructors accept both.
        layers.append(cls(**kwargs))
    return Sequential(layers, seed=seed)


def save_model(model: Sequential, path: Union[str, Path]) -> Path:
    """Write the model architecture + weights + state to ``path`` (.npz)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    arrays = {"__config__": np.frombuffer(
        json.dumps(model_to_config(model)).encode("utf-8"), dtype=np.uint8
    )}
    for i, layer in enumerate(model.layers):
        for key, value in layer.params.items():
            arrays[f"param/{i}/{key}"] = value
        if hasattr(layer, "get_state"):
            for key, value in layer.get_state().items():
                arrays[f"state/{i}/{key}"] = value
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **arrays)
    return path


def load_model(path: Union[str, Path], seed: int = 0) -> Sequential:
    """Load a model saved by :func:`save_model`; ready for inference.

    The returned model still needs :meth:`Sequential.compile` before
    further training (the optimizer is not checkpointed).
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        config = json.loads(bytes(data["__config__"].tobytes()).decode("utf-8"))
        model = model_from_config(config, seed=seed)
        # Group arrays per layer index.
        params: dict = {}
        states: dict = {}
        for name in data.files:
            if name == "__config__":
                continue
            kind, idx, key = name.split("/", 2)
            idx = int(idx)
            if kind == "param":
                params.setdefault(idx, {})[key] = data[name]
            elif kind == "state":
                states.setdefault(idx, {})[key] = data[name]
        for idx, layer in enumerate(model.layers):
            if idx in params:
                for key, value in params[idx].items():
                    layer.params[key] = np.asarray(value, dtype=np.float64)
                layer.zero_grads()
                layer.built = True
            if idx in states and hasattr(layer, "set_state"):
                # BatchNorm needs param shapes set before state; params
                # were restored above, but _axes/_param_shape come from
                # build, so trigger a build with a dummy if unbuilt.
                layer.set_state(states[idx])
    return model
