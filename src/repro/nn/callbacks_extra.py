"""Additional training callbacks: LR-on-plateau and CSV logging."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Optional, Union

from .callbacks import Callback
from .schedules import Constant


class ReduceLROnPlateau(Callback):
    """Shrink the optimizer's learning rate when a metric stalls.

    When ``monitor`` fails to improve for ``patience`` epochs, the
    optimizer's schedule is replaced by a constant at ``factor`` times
    the current rate, down to ``min_lr``.
    """

    def __init__(
        self,
        monitor: str = "loss",
        factor: float = 0.5,
        patience: int = 3,
        min_lr: float = 1e-6,
        min_delta: float = 0.0,
        mode: str = "min",
    ):
        if not 0.0 < factor < 1.0:
            raise ValueError(f"factor must be in (0, 1), got {factor}")
        if mode not in ("min", "max"):
            raise ValueError(f"mode must be 'min' or 'max', got {mode!r}")
        if patience < 0:
            raise ValueError(f"patience must be >= 0, got {patience}")
        self.monitor = monitor
        self.factor = float(factor)
        self.patience = int(patience)
        self.min_lr = float(min_lr)
        self.min_delta = float(min_delta)
        self.mode = mode
        self.best: Optional[float] = None
        self._wait = 0
        self.reductions: List[float] = []  # new LRs, in order

    def on_train_begin(self, model) -> None:
        self.best = None
        self._wait = 0
        self.reductions = []

    def _improved(self, value: float) -> bool:
        if self.best is None:
            return True
        if self.mode == "min":
            return value < self.best - self.min_delta
        return value > self.best + self.min_delta

    def on_epoch_end(self, model, epoch: int, logs: Dict[str, float]) -> None:
        if self.monitor not in logs or model.optimizer is None:
            return
        value = float(logs[self.monitor])
        if self._improved(value):
            self.best = value
            self._wait = 0
            return
        self._wait += 1
        if self._wait > self.patience:
            current = model.optimizer.lr
            new_lr = max(self.min_lr, current * self.factor)
            if new_lr < current:
                model.optimizer.schedule = Constant(new_lr)
                self.reductions.append(new_lr)
            self._wait = 0


class CSVLogger(Callback):
    """Append per-epoch logs to a CSV file (creates header on first epoch)."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._fieldnames: Optional[List[str]] = None

    def on_train_begin(self, model) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fieldnames = None
        # Truncate any previous run's file.
        self.path.write_text("")

    def on_epoch_end(self, model, epoch: int, logs: Dict[str, float]) -> None:
        if self._fieldnames is None:
            self._fieldnames = sorted(logs)
            with open(self.path, "a", newline="", encoding="utf-8") as f:
                csv.DictWriter(f, fieldnames=self._fieldnames).writeheader()
        row = {k: logs.get(k, "") for k in self._fieldnames}
        with open(self.path, "a", newline="", encoding="utf-8") as f:
            csv.DictWriter(f, fieldnames=self._fieldnames).writerow(row)


class LambdaCallback(Callback):
    """Wire ad-hoc functions into the training loop."""

    def __init__(self, on_epoch_end=None, on_train_begin=None, on_train_end=None):
        self._on_epoch_end = on_epoch_end
        self._on_train_begin = on_train_begin
        self._on_train_end = on_train_end

    def on_train_begin(self, model) -> None:
        if self._on_train_begin:
            self._on_train_begin(model)

    def on_epoch_end(self, model, epoch: int, logs: Dict[str, float]) -> None:
        if self._on_epoch_end:
            self._on_epoch_end(model, epoch, logs)

    def on_train_end(self, model) -> None:
        if self._on_train_end:
            self._on_train_end(model)
