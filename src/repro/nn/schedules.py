"""Learning-rate schedules as callables of the global step."""

from __future__ import annotations

from typing import Union

import numpy as np


class Schedule:
    """Base class: maps an integer step to a learning rate."""

    def __call__(self, step: int) -> float:
        raise NotImplementedError


class Constant(Schedule):
    """Constant learning rate."""

    def __init__(self, lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.base_lr = float(lr)

    def __call__(self, step: int) -> float:
        return self.base_lr


class StepDecay(Schedule):
    """Multiply the rate by ``factor`` every ``every`` steps."""

    def __init__(self, lr: float, factor: float = 0.5, every: int = 100):
        if every <= 0:
            raise ValueError(f"'every' must be positive, got {every}")
        self.base_lr = float(lr)
        self.factor = float(factor)
        self.every = int(every)

    def __call__(self, step: int) -> float:
        return self.base_lr * self.factor ** (step // self.every)


class ExponentialDecay(Schedule):
    """Smooth exponential decay: lr * rate^(step / steps)."""

    def __init__(self, lr: float, rate: float = 0.96, steps: int = 100):
        if steps <= 0:
            raise ValueError(f"'steps' must be positive, got {steps}")
        self.base_lr = float(lr)
        self.rate = float(rate)
        self.steps = int(steps)

    def __call__(self, step: int) -> float:
        return self.base_lr * self.rate ** (step / self.steps)


class CosineDecay(Schedule):
    """Cosine annealing from lr to ``min_lr`` over ``total_steps``."""

    def __init__(self, lr: float, total_steps: int, min_lr: float = 0.0):
        if total_steps <= 0:
            raise ValueError(f"total_steps must be positive, got {total_steps}")
        self.base_lr = float(lr)
        self.total_steps = int(total_steps)
        self.min_lr = float(min_lr)

    def __call__(self, step: int) -> float:
        progress = min(step / self.total_steps, 1.0)
        cosine = 0.5 * (1.0 + np.cos(np.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


class WarmupWrapper(Schedule):
    """Linear warmup for ``warmup_steps``, then delegate to ``inner``."""

    def __init__(self, inner: Schedule, warmup_steps: int):
        if warmup_steps < 0:
            raise ValueError(f"warmup_steps must be >= 0, got {warmup_steps}")
        self.inner = inner
        self.warmup_steps = int(warmup_steps)

    def __call__(self, step: int) -> float:
        if self.warmup_steps and step < self.warmup_steps:
            return self.inner(self.warmup_steps) * (step + 1) / self.warmup_steps
        return self.inner(step)


def resolve_schedule(lr: Union[float, int, Schedule]) -> Schedule:
    """Coerce a bare number into a :class:`Constant` schedule."""
    if isinstance(lr, Schedule):
        return lr
    return Constant(float(lr))
