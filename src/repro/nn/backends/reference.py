"""The reference backend: bit-identical to the historical layer code.

Every kernel here reproduces the exact floating-point operation order
the layers used before backends existed, so all golden fingerprints in
the repo (bench-scale table1, checkpoint checksums, LOSO fold metrics)
stay bit-identical.  Tier-1 runs on this backend.

The only internal change from the historical code is the recurrent
cache layout: per-step dicts holding redundant ``h_prev``/``c_prev``
copies were replaced with stacked ``(N, T, ·)`` arrays (the previous
states are slices of the stacked sequence, not copies).  Forward and
backward read the same values in the same order, so results are
unchanged while peak cache memory drops by ~2 arrays per time step.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..activations import sigmoid, tanh
from .base import ComputeBackend, PadPairs, require_state

#: A per-axis pad spec: symmetric ints or (before, after) pairs.
PadLike = Union[Tuple[int, int], PadPairs]


def as_pad_pairs(pad: PadLike) -> PadPairs:
    """Normalize a pad spec to ((top, bottom), (left, right)).

    Accepts the historical symmetric ``(ph, pw)`` form and the explicit
    per-side form; both are returned as pairs of (before, after) ints.
    """
    ph, pw = pad
    if isinstance(ph, (tuple, list)):
        (pt, pb), (pl, pr) = ph, pw
    else:
        pt = pb = int(ph)
        pl = pr = int(pw)
    return (int(pt), int(pb)), (int(pl), int(pr))


def conv_output_size(size: int, kernel: int, stride: int, pad) -> int:
    """Spatial output size of a convolution along one axis.

    ``pad`` is either a symmetric int or a (before, after) pair.
    """
    if isinstance(pad, (tuple, list)):
        before, after = int(pad[0]), int(pad[1])
    else:
        before = after = int(pad)
    out = (size + before + after - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution produces non-positive output size "
            f"(input={size}, kernel={kernel}, stride={stride}, "
            f"pad=({before}, {after}))"
        )
    return out


def im2col(
    x: np.ndarray,
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    pad: PadLike,
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Unfold ``x`` (N, C, H, W) into columns of receptive fields.

    Returns ``(cols, (out_h, out_w))`` where ``cols`` has shape
    ``(N * out_h * out_w, C * kh * kw)``.  ``pad`` may be symmetric
    ``(ph, pw)`` ints or per-side ``((top, bottom), (left, right))``
    pairs (ceil-mode 'same' padding for even kernels is asymmetric).
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    (pt, pb), (pl, pr) = as_pad_pairs(pad)
    out_h = conv_output_size(h, kh, sh, (pt, pb))
    out_w = conv_output_size(w, kw, sw, (pl, pr))
    if pt or pb or pl or pr:
        x = np.pad(x, ((0, 0), (0, 0), (pt, pb), (pl, pr)), mode="constant")
    # Strided view: (N, C, out_h, out_w, kh, kw)
    s_n, s_c, s_h, s_w = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, out_h, out_w, kh, kw),
        strides=(s_n, s_c, s_h * sh, s_w * sw, s_h, s_w),
        writeable=False,
    )
    cols = view.transpose(0, 2, 3, 1, 4, 5).reshape(n * out_h * out_w, c * kh * kw)
    return np.ascontiguousarray(cols), (out_h, out_w)


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    pad: PadLike,
) -> np.ndarray:
    """Fold gradient columns back into an image tensor (adjoint of im2col)."""
    n, c, h, w = x_shape
    kh, kw = kernel
    sh, sw = stride
    (pt, pb), (pl, pr) = as_pad_pairs(pad)
    out_h = conv_output_size(h, kh, sh, (pt, pb))
    out_w = conv_output_size(w, kw, sw, (pl, pr))
    padded = np.zeros((n, c, h + pt + pb, w + pl + pr), dtype=cols.dtype)
    cols6 = cols.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    for i in range(kh):
        for j in range(kw):
            padded[:, :, i : i + sh * out_h : sh, j : j + sw * out_w : sw] += cols6[
                :, :, :, :, i, j
            ]
    if pt or pb or pl or pr:
        return padded[:, :, pt : pt + h, pl : pl + w]
    return padded


class ReferenceBackend(ComputeBackend):
    """Pure-numpy kernels preserving the historical operation order."""

    name = "reference"

    def compute_dtype(self, dtype) -> np.dtype:
        # The historical contract: everything runs in float64.
        del dtype
        return np.dtype(np.float64)

    # -- dense -----------------------------------------------------------
    def dense_forward(self, x, w, b, state):
        state["x"] = x
        out = x @ w
        if b is not None:
            out = out + b
        return out

    def dense_backward(self, grad_out, w, state):
        x = require_state(state, "x")
        dw = x.T @ grad_out
        db = grad_out.sum(axis=0)
        dx = grad_out @ w.T
        return dx, dw, db

    # -- elementwise -----------------------------------------------------
    def relu_forward(self, x, state):
        state["x"] = x
        return np.maximum(x, 0.0)

    def relu_backward(self, grad_out, state):
        x = require_state(state, "x")
        return grad_out * (x > 0.0).astype(x.dtype)

    # -- convolution -----------------------------------------------------
    def conv2d_forward(self, x, w, b, stride, pad, state):
        n = x.shape[0]
        filters = w.shape[0]
        kernel = (w.shape[2], w.shape[3])
        cols, (out_h, out_w) = im2col(x, kernel, stride, pad)
        w2d = w.reshape(filters, -1)
        out = cols @ w2d.T
        if b is not None:
            out = out + b
        state["cols"] = cols
        state["x_shape"] = x.shape
        return out.reshape(n, out_h, out_w, filters).transpose(0, 3, 1, 2)

    def conv2d_backward(self, grad_out, w, stride, pad, state):
        cols = require_state(state, "cols")
        x_shape = state["x_shape"]
        filters = w.shape[0]
        kernel = (w.shape[2], w.shape[3])
        grad2d = grad_out.transpose(0, 2, 3, 1).reshape(-1, filters)
        dw = (grad2d.T @ cols).reshape(w.shape)
        db = grad2d.sum(axis=0)
        grad_cols = grad2d @ w.reshape(filters, -1)
        dx = col2im(grad_cols, x_shape, kernel, stride, pad)
        return dx, dw, db

    # -- pooling ---------------------------------------------------------
    def maxpool2d_forward(self, x, pool, stride, state):
        n, c, h, w = x.shape
        kh, kw = pool
        sh, sw = stride
        out_h = conv_output_size(h, kh, sh, 0)
        out_w = conv_output_size(w, kw, sw, 0)
        s_n, s_c, s_h, s_w = x.strides
        view = np.lib.stride_tricks.as_strided(
            x,
            shape=(n, c, out_h, out_w, kh, kw),
            strides=(s_n, s_c, s_h * sh, s_w * sw, s_h, s_w),
            writeable=False,
        )
        windows = view.reshape(n, c, out_h, out_w, kh * kw)
        state["argmax"] = windows.argmax(axis=-1)
        state["x_shape"] = x.shape
        state["out_hw"] = (out_h, out_w)
        return windows.max(axis=-1)

    def maxpool2d_backward(self, grad_out, pool, stride, state):
        argmax = require_state(state, "argmax")
        x_shape = state["x_shape"]
        out_h, out_w = state["out_hw"]
        n, c, h, w = x_shape
        kh, kw = pool
        sh, sw = stride
        grad_in = np.zeros(x_shape, dtype=grad_out.dtype)
        # Scatter each output gradient back to its argmax location.
        oh_idx, ow_idx = np.meshgrid(
            np.arange(out_h), np.arange(out_w), indexing="ij"
        )
        rows = oh_idx[None, None] * sh + argmax // kw
        cols = ow_idx[None, None] * sw + argmax % kw
        n_idx = np.arange(n)[:, None, None, None]
        c_idx = np.arange(c)[None, :, None, None]
        np.add.at(grad_in, (n_idx, c_idx, rows, cols), grad_out)
        return grad_in

    def avgpool2d_forward(self, x, pool, stride, state):
        n, c, h, w = x.shape
        kh, kw = pool
        sh, sw = stride
        out_h = conv_output_size(h, kh, sh, 0)
        out_w = conv_output_size(w, kw, sw, 0)
        s_n, s_c, s_h, s_w = x.strides
        view = np.lib.stride_tricks.as_strided(
            x,
            shape=(n, c, out_h, out_w, kh, kw),
            strides=(s_n, s_c, s_h * sh, s_w * sw, s_h, s_w),
            writeable=False,
        )
        state["x_shape"] = x.shape
        state["out_hw"] = (out_h, out_w)
        return view.mean(axis=(-2, -1))

    def avgpool2d_backward(self, grad_out, pool, stride, state):
        x_shape = require_state(state, "x_shape")
        out_h, out_w = state["out_hw"]
        kh, kw = pool
        sh, sw = stride
        grad_in = np.zeros(x_shape, dtype=grad_out.dtype)
        scale = 1.0 / (kh * kw)
        for i in range(kh):
            for j in range(kw):
                grad_in[:, :, i : i + sh * out_h : sh, j : j + sw * out_w : sw] += (
                    grad_out * scale
                )
        return grad_in

    # -- LSTM ------------------------------------------------------------
    def lstm_forward(self, x, w, u, b, state):
        n, t, _ = x.shape
        h = u.shape[0]
        dtype = x.dtype
        h_prev = np.zeros((n, h), dtype=dtype)
        c_prev = np.zeros((n, h), dtype=dtype)
        hs = np.zeros((n, t, h), dtype=dtype)
        # Stacked caches: one (N, T, ·) slab per quantity instead of a
        # list of per-step dicts duplicating h_prev/c_prev.
        gates = np.empty((n, t, 4 * h), dtype=dtype)
        cs = np.empty((n, t, h), dtype=dtype)
        tanh_cs = np.empty((n, t, h), dtype=dtype)
        x_proj = x @ w  # (N, T, 4h) — hoist the input projection out of the loop
        for step in range(t):
            z = x_proj[:, step, :] + h_prev @ u + b
            i = sigmoid(z[:, :h])
            f = sigmoid(z[:, h : 2 * h])
            g = tanh(z[:, 2 * h : 3 * h])
            o = sigmoid(z[:, 3 * h :])
            c = f * c_prev + i * g
            tanh_c = tanh(c)
            h_new = o * tanh_c
            gates[:, step, :h] = i
            gates[:, step, h : 2 * h] = f
            gates[:, step, 2 * h : 3 * h] = g
            gates[:, step, 3 * h :] = o
            cs[:, step, :] = c
            tanh_cs[:, step, :] = tanh_c
            hs[:, step, :] = h_new
            h_prev, c_prev = h_new, c
        state["x"] = x
        state["gates"] = gates
        state["cs"] = cs
        state["tanh_cs"] = tanh_cs
        state["hs"] = hs
        return hs

    def lstm_backward(self, grad_hs, w, u, state):
        x = require_state(state, "x")
        gates = state["gates"]
        cs = state["cs"]
        tanh_cs = state["tanh_cs"]
        hs = state["hs"]
        n, t, features = x.shape
        h = u.shape[0]
        dtype = x.dtype

        d_w = np.zeros_like(w)
        d_u = np.zeros_like(u)
        d_b = np.zeros(4 * h, dtype=dtype)
        d_x = np.zeros_like(x)
        dh_next = np.zeros((n, h), dtype=dtype)
        dc_next = np.zeros((n, h), dtype=dtype)
        zeros_nh = np.zeros((n, h), dtype=dtype)

        for step in range(t - 1, -1, -1):
            dh = grad_hs[:, step, :] + dh_next
            i = gates[:, step, :h]
            f = gates[:, step, h : 2 * h]
            g = gates[:, step, 2 * h : 3 * h]
            o = gates[:, step, 3 * h :]
            tanh_c = tanh_cs[:, step, :]
            c_prev = cs[:, step - 1, :] if step > 0 else zeros_nh
            h_prev = hs[:, step - 1, :] if step > 0 else zeros_nh
            dc = dc_next + dh * o * (1.0 - tanh_c * tanh_c)
            do = dh * tanh_c
            di = dc * g
            dg = dc * i
            df = dc * c_prev
            dz = np.concatenate(
                [
                    di * i * (1.0 - i),
                    df * f * (1.0 - f),
                    dg * (1.0 - g * g),
                    do * o * (1.0 - o),
                ],
                axis=1,
            )
            d_w += x[:, step, :].T @ dz
            d_u += h_prev.T @ dz
            d_b += dz.sum(axis=0)
            d_x[:, step, :] = dz @ w.T
            dh_next = dz @ u.T
            dc_next = dc * f
        return d_x, d_w, d_u, d_b

    # -- GRU -------------------------------------------------------------
    def gru_forward(self, x, w, u, b, state):
        n, t, _ = x.shape
        h = u.shape[0]
        dtype = x.dtype
        h_prev = np.zeros((n, h), dtype=dtype)
        hs = np.zeros((n, t, h), dtype=dtype)
        gates = np.empty((n, t, 3 * h), dtype=dtype)  # z, r, hh stacked
        rhs = np.empty((n, t, h), dtype=dtype)
        x_proj = x @ w + b  # (N, T, 3h)
        for step in range(t):
            xz = x_proj[:, step, :h]
            xr = x_proj[:, step, h : 2 * h]
            xh = x_proj[:, step, 2 * h :]
            hu = h_prev @ u
            z = sigmoid(xz + hu[:, :h])
            r = sigmoid(xr + hu[:, h : 2 * h])
            # Candidate uses the reset-gated recurrent contribution.
            rh = r * h_prev
            hh = tanh(xh + rh @ u[:, 2 * h :])
            h_new = (1.0 - z) * h_prev + z * hh
            gates[:, step, :h] = z
            gates[:, step, h : 2 * h] = r
            gates[:, step, 2 * h :] = hh
            rhs[:, step, :] = rh
            hs[:, step, :] = h_new
            h_prev = h_new
        state["x"] = x
        state["gates"] = gates
        state["rhs"] = rhs
        state["hs"] = hs
        return hs

    def gru_backward(self, grad_hs, w, u, state):
        x = require_state(state, "x")
        gates = state["gates"]
        rhs = state["rhs"]
        hs = state["hs"]
        n, t, features = x.shape
        h = u.shape[0]
        dtype = x.dtype

        d_w = np.zeros_like(w)
        d_u = np.zeros_like(u)
        d_b = np.zeros(3 * h, dtype=dtype)
        d_x = np.zeros_like(x)
        dh_next = np.zeros((n, h), dtype=dtype)
        zeros_nh = np.zeros((n, h), dtype=dtype)

        for step in range(t - 1, -1, -1):
            z = gates[:, step, :h]
            r = gates[:, step, h : 2 * h]
            hh = gates[:, step, 2 * h :]
            h_prev = hs[:, step - 1, :] if step > 0 else zeros_nh
            rh = rhs[:, step, :]
            dh = grad_hs[:, step, :] + dh_next

            dz_pre = dh * (hh - h_prev) * z * (1.0 - z)
            dhh = dh * z
            dhh_pre = dhh * (1.0 - hh * hh)
            # Candidate path: hh = tanh(xh + (r*h_prev) @ U_h)
            d_rh = dhh_pre @ u[:, 2 * h :].T
            dr_pre = d_rh * h_prev * r * (1.0 - r)

            dz_r_pre = np.concatenate([dz_pre, dr_pre], axis=1)  # (N, 2h)
            dgates_pre = np.concatenate([dz_pre, dr_pre, dhh_pre], axis=1)

            d_w += x[:, step, :].T @ dgates_pre
            d_b += dgates_pre.sum(axis=0)
            d_u[:, : 2 * h] += h_prev.T @ dz_r_pre
            d_u[:, 2 * h :] += rh.T @ dhh_pre

            d_x[:, step, :] = dgates_pre @ w.T
            dh_next = (
                dh * (1.0 - z)
                + dz_r_pre @ u[:, : 2 * h].T
                + d_rh * r
            )
        return d_x, d_w, d_u, d_b

    # -- simple RNN ------------------------------------------------------
    def rnn_forward(self, x, w, u, b, state):
        n, t, _ = x.shape
        units = u.shape[0]
        dtype = x.dtype
        h_prev = np.zeros((n, units), dtype=dtype)
        hs = np.zeros((n, t, units), dtype=dtype)
        for step in range(t):
            h_prev = tanh(x[:, step, :] @ w + h_prev @ u + b)
            hs[:, step, :] = h_prev
        state["x"] = x
        state["hs"] = hs
        return hs

    def rnn_backward(self, grad_hs, w, u, state):
        x = require_state(state, "x")
        hs = state["hs"]
        n, t, _ = x.shape
        units = u.shape[0]

        d_w = np.zeros_like(w)
        d_u = np.zeros_like(u)
        d_b = np.zeros(units, dtype=x.dtype)
        d_x = np.zeros_like(x)
        dh_next = np.zeros((n, units), dtype=x.dtype)
        for step in range(t - 1, -1, -1):
            dh = grad_hs[:, step, :] + dh_next
            h_t = hs[:, step, :]
            dz = dh * (1.0 - h_t * h_t)
            h_prev = (
                hs[:, step - 1, :] if step > 0 else np.zeros((n, units))
            )
            d_w += x[:, step, :].T @ dz
            d_u += h_prev.T @ dz
            d_b += dz.sum(axis=0)
            d_x[:, step, :] = dz @ w.T
            dh_next = dz @ u.T
        return d_x, d_w, d_u, d_b
