"""The :class:`ComputeBackend` contract: every tensor kernel in one place.

A backend owns the *inner loops* of the nn substrate — im2col/GEMM
convolutions, fused recurrent time-step kernels, pooling, dense — plus
the dtype policy applied at the model boundary.  Layers in
:mod:`repro.nn.layers` hold parameters and shapes; they delegate all
tensor math to their backend, so swapping a backend changes speed (and,
if the backend's dtype policy allows, precision) without touching a
single layer class.

Two implementations ship:

``reference``
    Bit-identical to the historical layer code.  Every golden
    fingerprint in the repo is pinned against it; tier-1 runs on it.

``optimized``
    Preallocated im2col / gate workspaces, stacked recurrent caches,
    batched BPTT GEMMs, and a dtype policy that preserves ``float32``
    end-to-end.  Forward passes are bit-identical to ``reference`` for
    equal input dtypes; backward passes agree to gradcheck tolerance.

State protocol
--------------
Each layer passes its private ``state`` dict to every backend call.
Backends stash whatever must survive from forward to backward there
(caches, preallocated workspaces) under keys of their choosing, and may
reuse buffers across iterations.  A backward call raises
``RuntimeError`` when its forward state is missing.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Per-axis padding as (before, after) pairs: ((top, bottom), (left, right)).
PadPairs = Tuple[Tuple[int, int], Tuple[int, int]]


def require_state(state: Dict, key: str):
    """Fetch a forward-pass cache entry or fail loudly."""
    try:
        return state[key]
    except KeyError:
        raise RuntimeError("backward called before forward") from None


class ComputeBackend:
    """Abstract compute backend; see the module docstring for the contract.

    Subclasses implement every kernel pair and :meth:`compute_dtype`.
    ``name`` is the registry key and what checkpoints serialize.
    """

    name: str = "abstract"

    # -- dtype policy ----------------------------------------------------
    def compute_dtype(self, dtype) -> np.dtype:
        """The dtype this backend runs a model on, given the input dtype.

        Called by :class:`~repro.nn.model.Sequential` at the model
        boundary (forward / predict / fit), so the backend — not the
        layers — owns precision policy.
        """
        raise NotImplementedError

    # -- dense -----------------------------------------------------------
    def dense_forward(
        self,
        x: np.ndarray,
        w: np.ndarray,
        b: Optional[np.ndarray],
        state: Dict,
    ) -> np.ndarray:
        raise NotImplementedError

    def dense_backward(
        self, grad_out: np.ndarray, w: np.ndarray, state: Dict
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        """Returns ``(dx, dw, db)``; ``db`` is None for bias-less layers."""
        raise NotImplementedError

    # -- elementwise -----------------------------------------------------
    def relu_forward(self, x: np.ndarray, state: Dict) -> np.ndarray:
        raise NotImplementedError

    def relu_backward(self, grad_out: np.ndarray, state: Dict) -> np.ndarray:
        raise NotImplementedError

    # -- convolution -----------------------------------------------------
    def conv2d_forward(
        self,
        x: np.ndarray,
        w: np.ndarray,
        b: Optional[np.ndarray],
        stride: Tuple[int, int],
        pad: PadPairs,
        state: Dict,
    ) -> np.ndarray:
        raise NotImplementedError

    def conv2d_backward(
        self,
        grad_out: np.ndarray,
        w: np.ndarray,
        stride: Tuple[int, int],
        pad: PadPairs,
        state: Dict,
    ) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
        raise NotImplementedError

    # -- pooling ---------------------------------------------------------
    def maxpool2d_forward(
        self,
        x: np.ndarray,
        pool: Tuple[int, int],
        stride: Tuple[int, int],
        state: Dict,
    ) -> np.ndarray:
        raise NotImplementedError

    def maxpool2d_backward(
        self,
        grad_out: np.ndarray,
        pool: Tuple[int, int],
        stride: Tuple[int, int],
        state: Dict,
    ) -> np.ndarray:
        raise NotImplementedError

    def avgpool2d_forward(
        self,
        x: np.ndarray,
        pool: Tuple[int, int],
        stride: Tuple[int, int],
        state: Dict,
    ) -> np.ndarray:
        raise NotImplementedError

    def avgpool2d_backward(
        self,
        grad_out: np.ndarray,
        pool: Tuple[int, int],
        stride: Tuple[int, int],
        state: Dict,
    ) -> np.ndarray:
        raise NotImplementedError

    # -- recurrent (fused time-step kernels over full sequences) ---------
    def lstm_forward(
        self,
        x: np.ndarray,
        w: np.ndarray,
        u: np.ndarray,
        b: np.ndarray,
        state: Dict,
    ) -> np.ndarray:
        """Full hidden sequence ``hs`` of shape (N, T, H)."""
        raise NotImplementedError

    def lstm_backward(
        self,
        grad_hs: np.ndarray,
        w: np.ndarray,
        u: np.ndarray,
        state: Dict,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Returns ``(dx, dw, du, db)`` given dL/d(hs) of shape (N, T, H)."""
        raise NotImplementedError

    def gru_forward(
        self,
        x: np.ndarray,
        w: np.ndarray,
        u: np.ndarray,
        b: np.ndarray,
        state: Dict,
    ) -> np.ndarray:
        raise NotImplementedError

    def gru_backward(
        self,
        grad_hs: np.ndarray,
        w: np.ndarray,
        u: np.ndarray,
        state: Dict,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        raise NotImplementedError

    def rnn_forward(
        self,
        x: np.ndarray,
        w: np.ndarray,
        u: np.ndarray,
        b: np.ndarray,
        state: Dict,
    ) -> np.ndarray:
        raise NotImplementedError

    def rnn_backward(
        self,
        grad_hs: np.ndarray,
        w: np.ndarray,
        u: np.ndarray,
        state: Dict,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        raise NotImplementedError

    # -- serving ---------------------------------------------------------
    def forward_many(
        self,
        model,
        inputs: Sequence[np.ndarray],
        pad_rows: Optional[int] = None,
    ) -> List[np.ndarray]:
        """Batched multi-user forward: one fused pass over many requests.

        ``inputs`` is one array per user, each shaped ``(n_i, *feature
        shape)`` with identical feature shapes but arbitrary per-user
        batch sizes.  The requests are stacked into a single batch, run
        through ``model`` in eval mode, and split back per user — the
        entry point the serving layer uses to amortize kernel overhead
        across concurrent users.

        ``pad_rows`` selects *canonical fixed-shape execution*: the
        stacked batch is processed in slabs of exactly ``pad_rows``
        rows (the last slab zero-padded), so every GEMM in the network
        runs at one batch shape no matter how requests were coalesced.
        BLAS picks its kernels (and therefore its last-ulp rounding) by
        operand shape, so without padding a request's logits depend on
        which other requests shared its batch; at a fixed shape each
        row's result depends only on that row's data.  This is what
        makes the serving layer's micro-batched results bit-identical
        to sequential per-user predicts — the same trick as padding to
        a compiled batch shape on TPU-style serving stacks.
        """
        if not inputs:
            return []
        feature_shapes = [tuple(np.shape(x)[1:]) for x in inputs]
        leader = feature_shapes[0]
        for index, shape in enumerate(feature_shapes):
            if shape != leader:
                raise ValueError(
                    f"forward_many requires identical feature shapes "
                    f"across requests: request 0 has feature shape "
                    f"{leader} but request {index} has {shape}; bucket "
                    f"requests by feature shape (as the serving "
                    f"micro-batcher does) before batching"
                )
        counts = [int(np.shape(x)[0]) for x in inputs]
        stacked = np.concatenate([np.asarray(x) for x in inputs], axis=0)
        stacked = model._cast_input(stacked)
        if pad_rows is None or stacked.shape[0] == 0:
            out = model.forward(stacked, training=False)
        else:
            if pad_rows < 1:
                raise ValueError(f"pad_rows must be >= 1, got {pad_rows}")
            slabs = []
            for start in range(0, stacked.shape[0], pad_rows):
                chunk = stacked[start : start + pad_rows]
                rows = chunk.shape[0]
                if rows < pad_rows:
                    pad_shape = (pad_rows - rows,) + chunk.shape[1:]
                    chunk = np.concatenate(
                        [chunk, np.zeros(pad_shape, dtype=chunk.dtype)],
                        axis=0,
                    )
                slabs.append(model.forward(chunk, training=False)[:rows])
            out = np.concatenate(slabs, axis=0)
        offsets = np.cumsum(counts)[:-1]
        return np.split(out, offsets, axis=0)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"
