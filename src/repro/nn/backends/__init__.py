"""Pluggable compute backends for the nn substrate.

The registry maps backend names to singleton instances (backends are
stateless; all per-layer caches live in the layers' own state dicts).
``reference`` is the default: bit-identical to the historical layer
code, so golden fingerprints and tier-1 stay pinned.  ``optimized`` is
the fast path for serving and scale-out.
"""

from __future__ import annotations

from typing import Dict, List, Union

from .base import ComputeBackend, PadPairs, require_state
from .optimized import OptimizedBackend
from .reference import (
    ReferenceBackend,
    as_pad_pairs,
    col2im,
    conv_output_size,
    im2col,
)

BackendLike = Union[str, ComputeBackend]

_REGISTRY: Dict[str, ComputeBackend] = {}
_DEFAULT = "reference"


def register_backend(backend: ComputeBackend) -> ComputeBackend:
    """Add a backend instance to the registry under ``backend.name``."""
    if not isinstance(backend, ComputeBackend):
        raise TypeError(f"expected a ComputeBackend, got {type(backend).__name__}")
    if not backend.name or backend.name == "abstract":
        raise ValueError("backend must define a concrete, non-empty name")
    _REGISTRY[backend.name] = backend
    return backend


def available_backends() -> List[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


def get_backend(backend: BackendLike) -> ComputeBackend:
    """Resolve a backend name (or pass an instance through)."""
    if isinstance(backend, ComputeBackend):
        return backend
    try:
        return _REGISTRY[backend]
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown backend {backend!r}; available: {available_backends()}"
        ) from None


def default_backend() -> ComputeBackend:
    """The backend used when a model/layer does not pin one."""
    return _REGISTRY[_DEFAULT]


def set_default_backend(backend: BackendLike) -> ComputeBackend:
    """Change the process-wide default backend; returns the new default."""
    global _DEFAULT
    resolved = get_backend(backend)
    if resolved.name not in _REGISTRY:
        register_backend(resolved)
    _DEFAULT = resolved.name
    return resolved


register_backend(ReferenceBackend())
register_backend(OptimizedBackend())

__all__ = [
    "BackendLike",
    "ComputeBackend",
    "OptimizedBackend",
    "PadPairs",
    "ReferenceBackend",
    "as_pad_pairs",
    "available_backends",
    "col2im",
    "conv_output_size",
    "default_backend",
    "get_backend",
    "im2col",
    "register_backend",
    "require_state",
    "set_default_backend",
]
