"""The optimized backend: same math, engineered hot path.

Speed levers over ``reference``:

* **Workspace reuse** — im2col gathers, padded buffers, recurrent gate
  slabs, and pooling scatter buffers are preallocated in each layer's
  ``state`` dict and reused across iterations instead of reallocated.
* **Slice-based gathers** — im2col and pooling walk the ``kh * kw``
  kernel offsets with strided slice copies rather than materializing a
  6-D strided view, which is substantially faster for small kernels.
* **Batched BPTT** — recurrent backward passes precompute all gate
  derivative factors as ``(N, T, ·)`` slabs, run only the sequential
  recurrences inside the time loop, and collapse the weight/input
  gradients into single large GEMMs afterwards.
* **float32 serving** — :meth:`compute_dtype` preserves ``float32``
  end-to-end (the reference backend always promotes to ``float64``);
  parameters stay ``float64`` in the layer and are cast per call.

Guarantees: forward passes keep the reference operation order and GEMM
orientation, so for equal input dtypes they are **bit-identical** to
``reference``.  Backward passes reassociate summations (batched GEMMs)
and therefore agree to gradcheck tolerance, not bitwise.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..activations import sigmoid, tanh
from .base import require_state
from .reference import (
    ReferenceBackend,
    as_pad_pairs,
    conv_output_size,
)


def _workspace(state: Dict, key: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
    """Fetch (or allocate) a reusable uninitialized buffer."""
    ws = state.get(key)
    if ws is None or ws.shape != shape or ws.dtype != dtype:
        ws = np.empty(shape, dtype=dtype)
        state[key] = ws
    return ws


def _workspace_like(state: Dict, key: str, ref: np.ndarray, dtype=None) -> np.ndarray:
    """Reusable buffer matching ``ref``'s shape *and memory order*.

    Convolution outputs are NCHW-shaped transpose views of channels-last
    buffers; allocating elementwise workspaces in the same memory order
    (``empty_like`` order-'K') lets every ufunc downstream iterate
    contiguously instead of through permuted strides, so the whole
    conv -> relu -> pool chain stays channels-last in memory while the
    shapes remain NCHW.
    """
    dtype = ref.dtype if dtype is None else np.dtype(dtype)
    meta_key = key + "_meta"
    meta = (ref.shape, ref.strides, dtype)
    ws = state.get(key)
    if ws is None or state.get(meta_key) != meta:
        ws = np.empty_like(ref, dtype=dtype)
        state[key] = ws
        state[meta_key] = meta
    return ws


def _cast(a: np.ndarray, dtype) -> np.ndarray:
    """Cast parameters to the compute dtype; free when already matching."""
    return a.astype(dtype, copy=False)


def _elem_strides(a: np.ndarray) -> Tuple[int, ...]:
    """Strides in elements — comparable across dtypes of different widths."""
    return tuple(s // a.itemsize for s in a.strides)


def _ones(state: Dict, n: int, dtype) -> np.ndarray:
    """Cached ones vector: bias gradients as a BLAS GEMV.

    ``sum(axis=0)`` over a tall (M, F) slab runs an order of magnitude
    slower than ``ones @ slab`` for the sizes the conv layers see.
    """
    ws = state.get("ones_vec")
    if ws is None or ws.shape[0] != n or ws.dtype != dtype:
        ws = np.ones(n, dtype=dtype)
        state["ones_vec"] = ws
    return ws


def _shifted(seq: np.ndarray) -> np.ndarray:
    """Previous-step states for a stacked (N, T, H) sequence.

    Row ``t`` holds the state at ``t - 1``; row 0 is the zero initial
    state.  Used to batch ``h_prev``/``c_prev`` lookups into one slab.
    """
    out = np.zeros_like(seq)
    out[:, 1:, :] = seq[:, :-1, :]
    return out


class OptimizedBackend(ReferenceBackend):
    """Hot-path kernels; see the module docstring for the guarantees."""

    name = "optimized"

    def compute_dtype(self, dtype) -> np.dtype:
        dtype = np.dtype(dtype)
        if dtype == np.float32:
            return dtype
        return np.dtype(np.float64)

    # -- dense -----------------------------------------------------------
    def dense_forward(self, x, w, b, state):
        state["x"] = x
        out = x @ _cast(w, x.dtype)
        if b is not None:
            out += _cast(b, x.dtype)
        return out

    def dense_backward(self, grad_out, w, state):
        x = require_state(state, "x")
        dw = x.T @ grad_out
        db = grad_out.sum(axis=0)
        dx = grad_out @ _cast(w, grad_out.dtype).T
        return dx, dw, db

    # -- convolution -----------------------------------------------------
    def conv2d_forward(self, x, w, b, stride, pad, state):
        dtype = x.dtype
        if dtype == np.float32:
            # float32 has no bit-identity contract (reference promotes
            # to float64), so the serving path is free to relayout.
            return self._conv2d_forward_f32(x, w, b, stride, pad, state)
        n, c, h, w_in = x.shape
        filters = w.shape[0]
        kh, kw = w.shape[2], w.shape[3]
        sh, sw = stride
        (pt, pb), (pl, pr) = as_pad_pairs(pad)
        out_h = conv_output_size(h, kh, sh, (pt, pb))
        out_w = conv_output_size(w_in, kw, sw, (pl, pr))
        if pt or pb or pl or pr:
            xp = _workspace(
                state, "xpad", (n, c, h + pt + pb, w_in + pl + pr), dtype
            )
            xp.fill(0.0)
            xp[:, :, pt : pt + h, pl : pl + w_in] = x
        else:
            xp = x
        # Gather receptive fields by kernel offset: kh*kw strided copies
        # into a reused (N, OH, OW, C, KH, KW) slab — same values and
        # memory layout as the reference im2col, without the big 6-D
        # strided-view materialization.
        cols6 = _workspace(state, "cols6", (n, out_h, out_w, c, kh, kw), dtype)
        for i in range(kh):
            for j in range(kw):
                cols6[:, :, :, :, i, j] = xp[
                    :, :, i : i + sh * out_h : sh, j : j + sw * out_w : sw
                ].transpose(0, 2, 3, 1)
        cols = cols6.reshape(n * out_h * out_w, c * kh * kw)
        w2d = _cast(w.reshape(filters, -1), dtype)
        out = cols @ w2d.T
        if b is not None:
            out += _cast(b, dtype)
        state["cols"] = cols
        state["x_shape"] = x.shape
        return out.reshape(n, out_h, out_w, filters).transpose(0, 3, 1, 2)

    @staticmethod
    def _conv_f32_banded(c, stride, kw, padded_w):
        """Single-channel stride-1 convs on narrow inputs skip im2col.

        With ``c == 1`` the im2col slab degenerates to ``kh * kw``-element
        rows — 12-byte copy runs that cost several times the GEMM they
        feed.  A width-banded weight matrix turns the whole forward into
        one GEMM over the padded input rows plus ``kh`` shifted adds.
        The flop blowup over im2col is ``padded_w / kw``, so the path is
        gated to narrow inputs where that factor stays small.
        """
        return c == 1 and stride == (1, 1) and kw <= padded_w <= 16

    def _conv2d_forward_f32(self, x, w, b, stride, pad, state):
        # NHWC im2col: with channels innermost, each kernel-offset gather
        # copies contiguous (kw * c)-element runs instead of permuted
        # strides, and the GEMM output is already channels-last.
        dtype = x.dtype
        n, c, h, w_in = x.shape
        filters = w.shape[0]
        kh, kw = w.shape[2], w.shape[3]
        sh, sw = stride
        (pt, pb), (pl, pr) = as_pad_pairs(pad)
        out_h = conv_output_size(h, kh, sh, (pt, pb))
        out_w = conv_output_size(w_in, kw, sw, (pl, pr))
        if self._conv_f32_banded(c, stride, kw, w_in + pl + pr):
            return self._conv2d_forward_f32_banded(
                x, w, b, (pt, pb, pl, pr), (out_h, out_w), state
            )
        xp = _workspace(
            state, "xpad_nhwc", (n, h + pt + pb, w_in + pl + pr, c), dtype
        )
        if pt or pb or pl or pr:
            xp.fill(0.0)
        xp[:, pt : pt + h, pl : pl + w_in, :] = x.transpose(0, 2, 3, 1)
        s_n, s_h, s_w, s_c = xp.strides
        view = np.lib.stride_tricks.as_strided(
            xp,
            shape=(n, out_h, out_w, kh, kw, c),
            strides=(s_n, s_h * sh, s_w * sw, s_h, s_w, s_c),
            writeable=False,
        )
        # One extra always-one im2col column carries the bias through the
        # GEMM (and db falls out of the dw GEMM in backward), saving a
        # full elementwise pass over the output in each direction.
        k_cols = kh * kw * c
        kb = k_cols + 1 if b is not None else k_cols
        cols = _workspace(state, "cols2d_nhwc", (n * out_h * out_w, kb), dtype)
        if b is not None and state.get("cols_ones_init") != cols.shape:
            cols[:, k_cols] = 1.0
            state["cols_ones_init"] = cols.shape
        isz = cols.itemsize
        dest = np.lib.stride_tricks.as_strided(
            cols,
            shape=(n, out_h, out_w, kh, kw, c),
            strides=(
                out_h * out_w * kb * isz,
                out_w * kb * isz,
                kb * isz,
                kw * c * isz,
                c * isz,
                isz,
            ),
        )
        np.copyto(dest, view)
        # Weight columns in matching (kh, kw, c) order, bias appended.
        w2 = np.empty((filters, kb), dtype)
        w2[:, :k_cols] = w.transpose(0, 2, 3, 1).reshape(filters, -1)
        if b is not None:
            w2[:, k_cols] = b
        out = _workspace(state, "conv_out", (n * out_h * out_w, filters), dtype)
        np.matmul(cols, w2.T, out=out)
        state["cols"] = cols
        state["cols_k"] = k_cols
        state["w2_f32"] = w2
        state["x_shape"] = x.shape
        return out.reshape(n, out_h, out_w, filters).transpose(0, 3, 1, 2)

    def _conv2d_forward_f32_banded(self, x, w, b, pads, out_hw, state):
        dtype = x.dtype
        n, _, h, w_in = x.shape
        filters, _, kh, kw = w.shape
        pt, pb, pl, pr = pads
        out_h, out_w = out_hw
        hp, wp = h + pt + pb, w_in + pl + pr
        # One extra always-one input column carries the bias through the
        # GEMM (as a band row hit once, in kernel-row block 0).
        wp1 = wp + 1 if b is not None else wp
        xp = _workspace(state, "xpad_band", (n, hp, wp1), dtype)
        init_key = (n, hp, wp1, pt, pb, pl, pr)
        if state.get("xpad_band_init") != init_key:
            # The pad border and ones column are invariant across calls;
            # only the interior is rewritten below.
            xp.fill(0.0)
            if b is not None:
                xp[:, :, wp] = 1.0
            state["xpad_band_init"] = init_key
        xp[:, pt : pt + h, pl : pl + w_in] = x[:, 0]
        # Banded weight matrix: block (i, xcol) -> (x, f) holds kernel
        # row i of every filter on the diagonal band of width positions
        # it touches.  Gathering the kh padded-row slabs per output row
        # (three contiguous copies) turns the whole forward into one
        # well-shaped GEMM with no shifted adds afterwards.
        band = np.zeros((kh, wp1, out_w, filters), dtype)
        w3 = w[:, 0]
        ar = np.arange(out_w)
        for i in range(kh):
            for j in range(kw):
                band[i, ar + j, ar, :] = w3[:, i, j]
        if b is not None:
            band[0, wp, :, :] = b
        rows = _workspace(state, "band_rows", (n, out_h, kh, wp1), dtype)
        for i in range(kh):
            rows[:, :, i, :] = xp[:, i : i + out_h, :]
        out = _workspace(state, "band_out", (n * out_h, out_w * filters), dtype)
        np.matmul(
            rows.reshape(n * out_h, kh * wp1), band.reshape(kh * wp1, -1), out=out
        )
        state["band"] = band
        state["band_wp"] = wp
        state["x_shape"] = x.shape
        return out.reshape(n, out_h, out_w, filters).transpose(0, 3, 1, 2)

    def conv2d_backward(self, grad_out, w, stride, pad, state):
        if grad_out.dtype == np.float32:
            return self._conv2d_backward_f32(grad_out, w, stride, pad, state)
        cols = require_state(state, "cols")
        x_shape = state["x_shape"]
        dtype = grad_out.dtype
        n, c, h, w_in = x_shape
        filters = w.shape[0]
        kh, kw = w.shape[2], w.shape[3]
        sh, sw = stride
        (pt, pb), (pl, pr) = as_pad_pairs(pad)
        out_h = conv_output_size(h, kh, sh, (pt, pb))
        out_w = conv_output_size(w_in, kw, sw, (pl, pr))
        grad2d = grad_out.transpose(0, 2, 3, 1).reshape(-1, filters)
        dw = (grad2d.T @ cols).reshape(w.shape)
        db = grad2d.sum(axis=0)
        grad_cols = grad2d @ _cast(w.reshape(filters, -1), dtype)
        cols6 = grad_cols.reshape(n, out_h, out_w, c, kh, kw)
        padded = _workspace(
            state, "gpad", (n, c, h + pt + pb, w_in + pl + pr), dtype
        )
        padded.fill(0.0)
        for i in range(kh):
            for j in range(kw):
                padded[:, :, i : i + sh * out_h : sh, j : j + sw * out_w : sw] += (
                    cols6[:, :, :, :, i, j].transpose(0, 3, 1, 2)
                )
        if pt or pb or pl or pr:
            dx = padded[:, :, pt : pt + h, pl : pl + w_in].copy()
        else:
            dx = padded.copy()
        return dx, dw, db

    def _conv2d_backward_f32(self, grad_out, w, stride, pad, state):
        x_shape = require_state(state, "x_shape")
        n, c, h, w_in = x_shape
        filters = w.shape[0]
        kh, kw = w.shape[2], w.shape[3]
        sh, sw = stride
        (pt, pb), (pl, pr) = as_pad_pairs(pad)
        out_h = conv_output_size(h, kh, sh, (pt, pb))
        out_w = conv_output_size(w_in, kw, sw, (pl, pr))
        if self._conv_f32_banded(c, stride, kw, w_in + pl + pr):
            return self._conv2d_backward_f32_banded(
                grad_out, w, (pt, pb, pl, pr), (out_h, out_w), state
            )
        cols = require_state(state, "cols")
        w2 = state["w2_f32"]
        k_cols = state["cols_k"]
        dtype = grad_out.dtype
        g_t = grad_out.transpose(0, 2, 3, 1)
        if g_t.flags.c_contiguous:
            # Upstream layers keep the conv chain channels-last in
            # memory, so the incoming gradient usually already is — no
            # permuted copy needed.
            g_nhwc = g_t
        else:
            g_nhwc = _workspace(
                state, "g_nhwc", (n, out_h, out_w, filters), dtype
            )
            np.copyto(g_nhwc, g_t)
        g2d = g_nhwc.reshape(n * out_h * out_w, filters)
        dw_full = g2d.T @ cols
        dw = np.ascontiguousarray(
            dw_full[:, :k_cols].reshape(filters, kh, kw, c).transpose(0, 3, 1, 2)
        )
        if cols.shape[1] > k_cols:
            db = dw_full[:, k_cols].copy()  # the always-one bias column
        else:
            db = _ones(state, g2d.shape[0], dtype) @ g2d
        if sh == sw == 1 and pt < kh and pb < kh and pl < kw and pr < kw and c >= 4:
            # Stride-1 dx is itself a full correlation of the output
            # gradient with the flipped kernel, so it collapses into a
            # second im2col + GEMM — much cheaper than scatter-folding
            # kh*kw strided slabs when there are enough input channels
            # to amortize the gather.
            bh, bw = kh - 1 - pt, kw - 1 - pl
            gext = _workspace(
                state, "gext", (n, h + kh - 1, w_in + kw - 1, filters), dtype
            )
            init_key = (gext.shape, bh, bw)
            if state.get("gext_init") != init_key:
                # The border stays zero across calls; only the interior
                # is rewritten below.
                gext.fill(0.0)
                state["gext_init"] = init_key
            gext[:, bh : bh + out_h, bw : bw + out_w, :] = g_nhwc
            s_n, s_h, s_w, s_f = gext.strides
            view = np.lib.stride_tricks.as_strided(
                gext,
                shape=(n, h, w_in, kh, kw, filters),
                strides=(s_n, s_h, s_w, s_h, s_w, s_f),
                writeable=False,
            )
            colsdx = _workspace(
                state, "colsdx", (n, h, w_in, kh, kw, filters), dtype
            )
            np.copyto(colsdx, view)
            wflip = np.ascontiguousarray(
                w[:, :, ::-1, ::-1].transpose(2, 3, 0, 1).reshape(-1, c),
                dtype=dtype,
            )
            dx2 = _workspace(state, "dx2", (n * h * w_in, c), dtype)
            np.matmul(colsdx.reshape(n * h * w_in, -1), wflip, out=dx2)
            dx = dx2.reshape(n, h, w_in, c).transpose(0, 3, 1, 2)
            return dx, dw, db
        # w2.T @ g2d.T lays the gradient columns out as (kh, kw, c, M):
        # each kernel-offset slice is then a contiguous (c, n, oh, ow)
        # block, which folds into a channels-first padded buffer with
        # plain strided adds (the NCHW fold pays a permuted copy per
        # offset instead).
        gcols_t = (w2[:, :k_cols].T @ g2d.T).reshape(kh, kw, c, n, out_h, out_w)
        gpad = _workspace(
            state, "gpad_cnhw", (c, n, h + pt + pb, w_in + pl + pr), dtype
        )
        gpad.fill(0.0)
        for i in range(kh):
            for j in range(kw):
                gpad[:, :, i : i + sh * out_h : sh, j : j + sw * out_w : sw] += (
                    gcols_t[i, j]
                )
        dx = gpad[:, :, pt : pt + h, pl : pl + w_in].transpose(1, 0, 2, 3).copy()
        return dx, dw, db

    def _conv2d_backward_f32_banded(self, grad_out, w, pads, out_hw, state):
        band = require_state(state, "band")
        xp = state["xpad_band"]
        n, _, h, w_in = state["x_shape"]
        filters, _, kh, kw = w.shape
        pt, pb, pl, pr = pads
        out_h, out_w = out_hw
        hp, wp = h + pt + pb, w_in + pl + pr
        wp1 = xp.shape[2]
        dtype = grad_out.dtype
        g_t = grad_out.transpose(0, 2, 3, 1)
        if g_t.flags.c_contiguous:
            g_nhwf = g_t
        else:
            g_nhwf = _workspace(
                state, "g_nhwf", (n, out_h, out_w, filters), dtype
            )
            np.copyto(g_nhwf, g_t)
        # dw: per kernel row, one batched GEMM of the padded input rows
        # against the gradient, then each kernel column is a band
        # diagonal of the result.  The forward's always-one bias column
        # shows up as row ``wp`` of the kernel-row-0 block, so db falls
        # out of the same GEMM.
        db = None
        dw = np.empty((filters, 1, kh, kw), dtype)
        g3 = g_nhwf.reshape(n, out_h, out_w * filters)
        for i in range(kh):
            di = np.matmul(xp[:, i : i + out_h, :].transpose(0, 2, 1), g3)
            di = di.sum(axis=0).reshape(wp1, out_w, filters)
            if i == 0 and wp1 > wp:
                db = di[wp].sum(axis=0)
            s0, s1, s2 = di.strides
            for j in range(kw):
                diag = np.lib.stride_tricks.as_strided(
                    di[j:], shape=(out_w, filters), strides=(s0 + s1, s2),
                    writeable=False,
                )
                dw[:, 0, i, j] = diag.sum(axis=0)
        # dx: adjoint of the banded forward — one GEMM against the band
        # transpose recovers the per-(output row, kernel row) padded-row
        # gradients, which fold back with kh shifted adds.  The bias
        # band row deposits into the ones column, which the interior
        # slice drops along with the padding.
        drows = _workspace(state, "band_drows", (n * out_h, kh * wp1), dtype)
        np.matmul(
            g_nhwf.reshape(n * out_h, out_w * filters),
            band.reshape(kh * wp1, -1).T,
            out=drows,
        )
        dr = drows.reshape(n, out_h, kh, wp1)
        dxp = _workspace(state, "band_dxp", (n, hp, wp1), dtype)
        dxp.fill(0.0)
        for i in range(kh):
            dxp[:, i : i + out_h, :] += dr[:, :, i, :]
        dx = dxp[:, pt : pt + h, pl : pl + w_in].copy().reshape(n, 1, h, w_in)
        return dx, dw, db

    # -- elementwise -----------------------------------------------------
    def relu_forward(self, x, state):
        # Cache the sign mask so backward is a single multiply instead of
        # recompute + astype.  Forward keeps np.maximum, which matches
        # the reference bitwise (including the sign of zeros).
        mask = _workspace_like(state, "mask", x, np.bool_)
        np.greater(x, 0.0, out=mask)
        out = _workspace_like(state, "relu_out", x)
        return np.maximum(x, 0.0, out=out)

    def relu_backward(self, grad_out, state):
        mask = require_state(state, "mask")
        gin = _workspace_like(state, "relu_gin", grad_out)
        return np.multiply(grad_out, mask, out=gin)

    # -- pooling ---------------------------------------------------------
    def maxpool2d_forward(self, x, pool, stride, state):
        kh, kw = pool
        if kh * kw > 255:
            # uint8 argmax can't index such a window; punt to reference.
            return super().maxpool2d_forward(x, pool, stride, state)
        n, c, h, w = x.shape
        sh, sw = stride
        out_h = conv_output_size(h, kh, sh, 0)
        out_w = conv_output_size(w, kw, sw, 0)
        x0 = x[:, :, 0 : sh * out_h : sh, 0 : sw * out_w : sw]
        state["x_shape"] = x.shape
        state["out_hw"] = (out_h, out_w)
        state["x_like"] = x
        best = _workspace_like(state, "best", x0)
        better = _workspace_like(state, "better", x0, np.bool_)
        if kh * kw == 2:
            # Two-element windows (the CNN-LSTM pools are (2, 1)): the
            # argmax is a single strict comparison, keeping reference
            # first-max tie semantics without the uint8 bookkeeping.
            i1, j1 = (1, 0) if kh == 2 else (0, 1)
            x1 = x[:, :, i1 : i1 + sh * out_h : sh, j1 : j1 + sw * out_w : sw]
            np.maximum(x0, x1, out=best)
            np.greater(x1, x0, out=better)
            return best
        # Running max/argmax over the kh*kw kernel offsets via strided
        # slices: same values and first-max tie semantics as the
        # reference reshape+argmax, minus the windowed-copy blowup.
        # The argmax update is branch-free uint8 arithmetic
        # (argmax += better * (k - argmax)) because boolean fancy
        # indexing and copyto(where=) take slow paths in numpy.
        np.copyto(best, x0)
        argmax = _workspace_like(state, "argmax8", x0, np.uint8)
        argmax.fill(0)
        karg = _workspace_like(state, "karg", x0, np.uint8)
        for k in range(1, kh * kw):
            i, j = divmod(k, kw)
            window = x[:, :, i : i + sh * out_h : sh, j : j + sw * out_w : sw]
            np.greater(window, best, out=better)
            np.maximum(best, window, out=best)
            np.subtract(k, argmax, out=karg)
            np.multiply(karg, better, out=karg)
            np.add(argmax, karg, out=argmax)
        return best

    def maxpool2d_backward(self, grad_out, pool, stride, state):
        kh, kw = pool
        if kh * kw > 255:
            return super().maxpool2d_backward(grad_out, pool, stride, state)
        better = require_state(state, "better")
        out_h, out_w = state["out_hw"]
        sh, sw = stride
        grad_in = _workspace_like(state, "grad_in", state["x_like"])
        if _elem_strides(grad_out) != _elem_strides(better):
            # Mixed-layout ufuncs into the strided destination slices
            # below are pathological; one permuted copy into the mask's
            # memory order keeps every operand layout-aligned.
            g_ws = _workspace_like(state, "g_aligned", better, grad_out.dtype)
            np.copyto(g_ws, grad_out)
            grad_out = g_ws
        if kh * kw == 2:
            i1, j1 = (1, 0) if kh == 2 else (0, 1)
            sl0 = np.s_[:, :, 0 : sh * out_h : sh, 0 : sw * out_w : sw]
            sl1 = np.s_[
                :, :, i1 : i1 + sh * out_h : sh, j1 : j1 + sw * out_w : sw
            ]
            notb = _workspace_like(state, "notb", better)
            np.logical_not(better, out=notb)
            if sh >= kh and sw >= kw:
                # Non-overlapping windows: each input cell gets at most
                # one contribution, so the two masked multiplies write
                # straight into the strided destination slices.  Cells
                # outside the window lattice (stride gaps and remainder
                # tails) are never written below, so they only need
                # zeroing when the workspace is (re)allocated.
                init_key = (state.get("grad_in_meta"), sh, sw, out_h, out_w)
                if state.get("grad_in_zeroed") != init_key:
                    grad_in.fill(0.0)
                    state["grad_in_zeroed"] = init_key
                np.multiply(grad_out, notb, out=grad_in[sl0])
                np.multiply(grad_out, better, out=grad_in[sl1])
                return grad_in
            routed = _workspace_like(state, "routed", better, grad_out.dtype)
            grad_in.fill(0.0)
            np.multiply(grad_out, notb, out=routed)
            grad_in[sl0] += routed
            np.multiply(grad_out, better, out=routed)
            grad_in[sl1] += routed
            return grad_in
        argmax = require_state(state, "argmax8")
        # Route each output gradient to its argmax offset with a masked
        # multiply, then fold with kh*kw strided adds.  When windows
        # overlap (stride < pool) a cell can receive several
        # contributions; they are added in kernel-offset order rather
        # than the reference scatter order, so results agree to
        # round-off, not bitwise.
        routed = _workspace_like(state, "routed", better, grad_out.dtype)
        grad_in.fill(0.0)
        for k in range(kh * kw):
            i, j = divmod(k, kw)
            np.equal(argmax, k, out=better)
            np.multiply(grad_out, better, out=routed)
            grad_in[:, :, i : i + sh * out_h : sh, j : j + sw * out_w : sw] += routed
        return grad_in

    # -- LSTM ------------------------------------------------------------
    # The float64 forward keeps the reference per-step operation order
    # (bit-identical for equal dtypes); only the parameter cast differs.
    # float32 — which the reference never runs — gets a fused step that
    # writes gate activations in place into the stacked cache slabs.
    def lstm_forward(self, x, w, u, b, state):
        dtype = x.dtype
        if dtype == np.float32:
            return self._lstm_forward_f32(
                x, _cast(w, dtype), _cast(u, dtype), _cast(b, dtype), state
            )
        return super().lstm_forward(
            x, _cast(w, dtype), _cast(u, dtype), _cast(b, dtype), state
        )

    def _lstm_forward_f32(self, x, w, u, b, state):
        n, t, features = x.shape
        h = u.shape[0]
        dtype = x.dtype
        hs = _workspace(state, "hs_ws", (n, t, h), dtype)  # fully overwritten
        gates = _workspace(state, "gates_ws", (n, t, 4 * h), dtype)
        cs = _workspace(state, "cs_ws", (n, t, h), dtype)
        tanh_cs = _workspace(state, "tanh_ws", (n, t, h), dtype)
        # One flat GEMM (stacked (N, T, ·) @ w dispatches T small GEMMs),
        # with the bias folded into the hoisted input projection.
        xp_ws = _workspace(state, "xproj_ws", (n * t, 4 * h), dtype)
        np.matmul(np.ascontiguousarray(x).reshape(n * t, features), w, out=xp_ws)
        xp_ws += b
        x_proj = xp_ws.reshape(n, t, 4 * h)
        state["wu_f32"] = (w, u)
        z = _workspace(state, "zstep", (n, 4 * h), dtype)
        ig = _workspace(state, "igstep", (n, h), dtype)
        h_prev = np.zeros((n, h), dtype=dtype)
        c_prev = np.zeros((n, h), dtype=dtype)
        # Sigmoid as negative/exp/+1/reciprocal directly into the cache
        # slabs; float32 exp overflow for very negative gates saturates
        # through inf to exactly 0, which is the correct limit.
        with np.errstate(over="ignore"):
            for step in range(t):
                np.matmul(h_prev, u, out=z)
                z += x_proj[:, step, :]
                gz = gates[:, step, :]
                sig = gz[:, : 2 * h]  # i and f share one sigmoid sweep
                np.negative(z[:, : 2 * h], out=sig)
                np.exp(sig, out=sig)
                sig += 1.0
                np.reciprocal(sig, out=sig)
                sig_o = gz[:, 3 * h :]
                np.negative(z[:, 3 * h :], out=sig_o)
                np.exp(sig_o, out=sig_o)
                sig_o += 1.0
                np.reciprocal(sig_o, out=sig_o)
                np.tanh(z[:, 2 * h : 3 * h], out=gz[:, 2 * h : 3 * h])
                c = cs[:, step, :]
                np.multiply(gz[:, h : 2 * h], c_prev, out=c)
                np.multiply(gz[:, :h], gz[:, 2 * h : 3 * h], out=ig)
                c += ig
                tanh_c = tanh_cs[:, step, :]
                np.tanh(c, out=tanh_c)
                np.multiply(gz[:, 3 * h :], tanh_c, out=hs[:, step, :])
                h_prev = hs[:, step, :]
                c_prev = c
        state["x"] = x
        state["gates"] = gates
        state["cs"] = cs
        state["tanh_cs"] = tanh_cs
        state["hs"] = hs
        return hs

    def lstm_backward(self, grad_hs, w, u, state):
        x = require_state(state, "x")
        gates = state["gates"]
        cs = state["cs"]
        tanh_cs = state["tanh_cs"]
        hs = state["hs"]
        n, t, features = x.shape
        h = u.shape[0]
        dtype = x.dtype
        if dtype == np.float32 and "wu_f32" in state:
            w, u = state["wu_f32"]  # casts cached by the f32 forward
        else:
            w = _cast(w, dtype)
            u = _cast(u, dtype)

        i = gates[:, :, :h]
        f = gates[:, :, h : 2 * h]
        g = gates[:, :, 2 * h : 3 * h]
        o = gates[:, :, 3 * h :]
        c_prev = _shifted(cs)
        # Gate derivative factors, vectorized over the whole sequence;
        # the time loop keeps only the sequential dh/dc recurrences.
        dc_fac = o * (1.0 - tanh_cs * tanh_cs)
        di_fac = g * (i * (1.0 - i))
        df_fac = c_prev * (f * (1.0 - f))
        dg_fac = i * (1.0 - g * g)
        do_fac = tanh_cs * (o * (1.0 - o))

        dzs = _workspace(state, "dzs", (n, t, 4 * h), dtype)
        dh_next = np.zeros((n, h), dtype=dtype)
        dc_next = np.zeros((n, h), dtype=dtype)
        u_t = np.ascontiguousarray(u.T)
        for step in range(t - 1, -1, -1):
            dh = grad_hs[:, step, :] + dh_next
            dc = dc_next + dh * dc_fac[:, step, :]
            dz = dzs[:, step, :]
            np.multiply(dc, di_fac[:, step, :], out=dz[:, :h])
            np.multiply(dc, df_fac[:, step, :], out=dz[:, h : 2 * h])
            np.multiply(dc, dg_fac[:, step, :], out=dz[:, 2 * h : 3 * h])
            np.multiply(dh, do_fac[:, step, :], out=dz[:, 3 * h :])
            dh_next = dz @ u_t
            dc_next = dc * f[:, step, :]
        # Collapse per-step weight gradients into single GEMMs.
        dz2d = dzs.reshape(n * t, 4 * h)
        x2d = x.reshape(n * t, features)
        d_w = x2d.T @ dz2d
        d_u = _shifted(hs).reshape(n * t, h).T @ dz2d
        d_b = _ones(state, n * t, dtype) @ dz2d
        # d_x is consumed immediately by the upstream layer's backward,
        # so it can live in a reused workspace (d_w/d_u/d_b are returned
        # to the optimizer and stay freshly allocated).
        dxw = _workspace(state, "dx_ws", (n * t, features), dtype)
        d_x = np.matmul(dz2d, w.T, out=dxw).reshape(n, t, features)
        return d_x, d_w, d_u, d_b

    # -- GRU -------------------------------------------------------------
    def gru_forward(self, x, w, u, b, state):
        dtype = x.dtype
        return super().gru_forward(
            x, _cast(w, dtype), _cast(u, dtype), _cast(b, dtype), state
        )

    def gru_backward(self, grad_hs, w, u, state):
        x = require_state(state, "x")
        gates = state["gates"]
        rhs = state["rhs"]
        hs = state["hs"]
        n, t, features = x.shape
        h = u.shape[0]
        dtype = x.dtype
        w = _cast(w, dtype)
        u = _cast(u, dtype)

        z = gates[:, :, :h]
        r = gates[:, :, h : 2 * h]
        hh = gates[:, :, 2 * h :]
        h_prev = _shifted(hs)
        fac_z = (hh - h_prev) * (z * (1.0 - z))
        fac_hh = z * (1.0 - hh * hh)
        fac_r = h_prev * (r * (1.0 - r))
        one_minus_z = 1.0 - z

        dgates = _workspace(state, "dgates", (n, t, 3 * h), dtype)
        dh_next = np.zeros((n, h), dtype=dtype)
        u_zr_t = np.ascontiguousarray(u[:, : 2 * h].T)
        u_h_t = np.ascontiguousarray(u[:, 2 * h :].T)
        for step in range(t - 1, -1, -1):
            dh = grad_hs[:, step, :] + dh_next
            dg = dgates[:, step, :]
            np.multiply(dh, fac_z[:, step, :], out=dg[:, :h])
            dhh_pre = np.multiply(dh, fac_hh[:, step, :], out=dg[:, 2 * h :])
            d_rh = dhh_pre @ u_h_t
            np.multiply(d_rh, fac_r[:, step, :], out=dg[:, h : 2 * h])
            dh_next = (
                dh * one_minus_z[:, step, :]
                + dg[:, : 2 * h] @ u_zr_t
                + d_rh * r[:, step, :]
            )
        dg2d = dgates.reshape(n * t, 3 * h)
        x2d = x.reshape(n * t, features)
        d_w = x2d.T @ dg2d
        d_b = dg2d.sum(axis=0)
        d_u = np.empty_like(u)
        d_u[:, : 2 * h] = h_prev.reshape(n * t, h).T @ dg2d[:, : 2 * h]
        d_u[:, 2 * h :] = rhs.reshape(n * t, h).T @ dg2d[:, 2 * h :]
        d_x = (dg2d @ w.T).reshape(n, t, features)
        return d_x, d_w, d_u, d_b

    # -- simple RNN ------------------------------------------------------
    def rnn_forward(self, x, w, u, b, state):
        dtype = x.dtype
        return super().rnn_forward(
            x, _cast(w, dtype), _cast(u, dtype), _cast(b, dtype), state
        )

    def rnn_backward(self, grad_hs, w, u, state):
        x = require_state(state, "x")
        hs = state["hs"]
        n, t, features = x.shape
        units = u.shape[0]
        dtype = x.dtype
        w = _cast(w, dtype)
        u = _cast(u, dtype)

        fac = 1.0 - hs * hs
        dzs = _workspace(state, "dzs", (n, t, units), dtype)
        dh_next = np.zeros((n, units), dtype=dtype)
        u_t = np.ascontiguousarray(u.T)
        for step in range(t - 1, -1, -1):
            dh = grad_hs[:, step, :] + dh_next
            dz = np.multiply(dh, fac[:, step, :], out=dzs[:, step, :])
            dh_next = dz @ u_t
        dz2d = dzs.reshape(n * t, units)
        x2d = x.reshape(n * t, features)
        d_w = x2d.T @ dz2d
        d_u = _shifted(hs).reshape(n * t, units).T @ dz2d
        d_b = dz2d.sum(axis=0)
        d_x = (dz2d @ w.T).reshape(n, t, features)
        return d_x, d_w, d_u, d_b
