"""Battery-life planning for wearable deployments.

The paper's future work targets "low power devices to further enhance
real-world usability".  This module turns the device cost models into
deployment-level answers: given a duty cycle (how often the detector
runs, how often fine-tuning happens), how long does a battery last, and
what is the energy budget split?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .devices import DeviceProfile
from .profiler import ModelProfile


@dataclass(frozen=True)
class DutyCycle:
    """How the deployment exercises the device over a day.

    Attributes
    ----------
    inferences_per_hour:
        Detection frequency (e.g. one per 20 s window = 180/hour).
    finetune_sessions_per_day:
        Full on-device fine-tuning runs per day (usually << 1; stored
        as a float so "weekly" = 1/7 works).
    finetune_examples, finetune_epochs:
        Size of each fine-tuning session.
    """

    inferences_per_hour: float = 180.0
    finetune_sessions_per_day: float = 1.0
    finetune_examples: int = 4
    finetune_epochs: int = 15

    def __post_init__(self) -> None:
        if self.inferences_per_hour < 0 or self.finetune_sessions_per_day < 0:
            raise ValueError("duty-cycle rates must be >= 0")
        if self.finetune_examples < 1 or self.finetune_epochs < 1:
            raise ValueError("fine-tuning session size must be >= 1")


@dataclass
class EnergyBudget:
    """Daily energy accounting for one device + duty cycle."""

    device: str
    idle_wh: float
    inference_wh: float
    finetune_wh: float

    @property
    def total_wh(self) -> float:
        return self.idle_wh + self.inference_wh + self.finetune_wh

    def breakdown(self) -> Dict[str, float]:
        total = self.total_wh
        if total <= 0:
            return {"idle": 0.0, "inference": 0.0, "finetune": 0.0}
        return {
            "idle": self.idle_wh / total,
            "inference": self.inference_wh / total,
            "finetune": self.finetune_wh / total,
        }


def daily_energy(
    device: DeviceProfile, profile: ModelProfile, duty: DutyCycle
) -> EnergyBudget:
    """Energy consumed per day under a duty cycle (Wh)."""
    seconds_per_day = 86_400.0

    inference_time = device.inference_time_s(profile, batch=1)
    inferences = duty.inferences_per_hour * 24.0
    inference_s = inferences * inference_time

    finetune_time = device.training_time_s(
        profile, duty.finetune_examples, duty.finetune_epochs
    )
    finetune_s = duty.finetune_sessions_per_day * finetune_time

    active_s = min(seconds_per_day, inference_s + finetune_s)
    idle_s = seconds_per_day - active_s

    to_wh = 1.0 / 3600.0
    return EnergyBudget(
        device=device.name,
        idle_wh=device.power_idle_w * idle_s * to_wh,
        inference_wh=device.power_test_w * inference_s * to_wh,
        finetune_wh=device.power_retrain_w * finetune_s * to_wh,
    )


def battery_life_hours(
    device: DeviceProfile,
    profile: ModelProfile,
    duty: DutyCycle,
    battery_wh: float,
) -> float:
    """Hours of operation a battery sustains under the duty cycle."""
    if battery_wh <= 0:
        raise ValueError("battery_wh must be positive")
    budget = daily_energy(device, profile, duty)
    per_hour = budget.total_wh / 24.0
    return battery_wh / per_hour


def compare_devices(
    devices: Dict[str, DeviceProfile],
    profile: ModelProfile,
    duty: DutyCycle,
    battery_wh: float = 10.0,
) -> Dict[str, Dict[str, float]]:
    """Battery life and energy split for every device."""
    out: Dict[str, Dict[str, float]] = {}
    for key, device in devices.items():
        budget = daily_energy(device, profile, duty)
        out[key] = {
            "daily_wh": budget.total_wh,
            "battery_hours": battery_life_hours(device, profile, duty, battery_wh),
            **{f"frac_{k}": v for k, v in budget.breakdown().items()},
        }
    return out
