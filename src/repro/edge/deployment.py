"""Cloud-edge deployment of CLEAR checkpoints (paper §IV-C).

A :class:`EdgeDeployment` takes one trained cluster checkpoint and a
device profile, quantizes the model to the device's numeric scheme,
and exposes evaluation, on-device fine-tuning, and the time/power
accounting of Table II.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence, Union

import numpy as np

from .. import nn
from ..core.config import FineTuneConfig
from ..core.trainer import TrainedModel, fine_tune
from ..errors import CheckpointError
from ..resilience.retry import Clock, RetryPolicy, retry_call
from ..signals.feature_map import FeatureMap, FeatureNormalizer, maps_to_arrays
from .devices import DeviceProfile
from .profiler import ModelProfile, profile_model
from .quantization import QuantizedModel


@dataclass
class CostReport:
    """Table II's MTC/MPC entries for one deployment."""

    device: str
    test_time_s: float
    retrain_time_s: Optional[float]
    power_idle_w: float
    power_test_w: float
    power_retrain_w: float
    test_energy_j: float
    retrain_energy_j: Optional[float]


class EdgeDeployment:
    """One cluster checkpoint deployed on one edge device."""

    def __init__(
        self,
        trained: TrainedModel,
        device: DeviceProfile,
        calibration_maps: Optional[Sequence[FeatureMap]] = None,
    ):
        """Quantize ``trained`` for ``device``.

        ``calibration_maps`` are required for int8 targets (activation
        range calibration); a slice of the cluster's training maps is
        the natural choice.
        """
        self.trained = trained
        self.device = device
        self._input_shape = None

        calibration_x = None
        if calibration_maps:
            calibration_x, _ = maps_to_arrays(
                trained.normalizer.transform_all(list(calibration_maps))
            )
        if device.scheme == "int8" and calibration_x is None:
            raise ValueError(
                f"{device.name} is int8-only and needs calibration maps"
            )
        self.quantized = QuantizedModel(
            trained.model, scheme=device.scheme, calibration_x=calibration_x
        )

    # -- checkpoint fetch -----------------------------------------------------
    @classmethod
    def from_checkpoint(
        cls,
        path: Union[str, Path],
        device: DeviceProfile,
        normalizer: FeatureNormalizer,
        calibration_maps: Optional[Sequence[FeatureMap]] = None,
        fetcher: Optional[Callable[[], None]] = None,
        retry_policy: Optional[RetryPolicy] = None,
        clock: Optional[Clock] = None,
        input_shape: Optional[tuple] = None,
        backend=None,
    ) -> "EdgeDeployment":
        """Deploy a cloud checkpoint file, retrying the fetch if it flakes.

        Models the paper's cloud→edge shipping step: ``fetcher`` (when
        given) is called before each load attempt and stands in for the
        actual transfer — raising from it simulates a flaky link, and
        the load is retried under ``retry_policy`` on the injectable
        ``clock``.  The fetched file is verified end to end (structure,
        stored checksum, and — when ``input_shape`` is given — the
        static graph validator), so a corrupt transfer surfaces as a
        typed :class:`~repro.errors.CheckpointError`, never as garbage
        weights quietly deployed.

        The deployed model runs on the compute backend the checkpoint
        was saved with; pass ``backend`` to override explicitly (e.g.
        ``"optimized"`` so a legacy checkpoint without a saved backend
        does not silently fall back to ``reference`` and lose the fast
        serving path).
        """
        from ..resilience.guards import verify_checkpoint

        path = Path(path)

        def fetch_and_load() -> TrainedModel:
            if fetcher is not None:
                fetcher()
            verify_checkpoint(path, input_shape=input_shape)
            from ..nn.checkpoint import load_model

            return TrainedModel(
                model=load_model(path, backend=backend), normalizer=normalizer
            )

        if retry_policy is None:
            # No retry requested: a bad file raises CheckpointError directly.
            trained = fetch_and_load()
        else:
            trained = retry_call(
                fetch_and_load,
                policy=retry_policy,
                clock=clock,
                retry_on=(CheckpointError, OSError),
                description=f"checkpoint fetch {path}",
            )
        return cls(trained, device, calibration_maps=calibration_maps)

    # -- inference ------------------------------------------------------------
    def _prepare(self, maps: Sequence[FeatureMap]) -> tuple:
        normalized = self.trained.normalizer.transform_all(list(maps))
        x, y = maps_to_arrays(normalized)
        self._input_shape = x.shape[1:]
        return x, y

    def predict_classes(self, maps: Sequence[FeatureMap]) -> np.ndarray:
        x, _ = self._prepare(maps)
        return self.quantized.predict_classes(x)

    def evaluate(self, maps: Sequence[FeatureMap]) -> Dict[str, float]:
        """On-device accuracy / F1 under the device's numeric scheme."""
        if not maps:
            raise ValueError("cannot evaluate on an empty map set")
        x, y = self._prepare(maps)
        preds = self.quantized.predict_classes(x)
        return {
            "accuracy": nn.accuracy(y, preds),
            "f1": nn.f1_score(y, preds, positive_class=1),
        }

    # -- fine-tuning ------------------------------------------------------------
    def fine_tune_on_device(
        self,
        labeled_maps: Sequence[FeatureMap],
        config: Optional[FineTuneConfig] = None,
        seed: int = 0,
    ) -> "EdgeDeployment":
        """Personalize on the device and redeploy.

        Fine-tuning runs in float (both platforms train in higher
        precision host-side), then the updated weights are re-quantized
        to the device scheme — so an int8 target keeps paying its
        quantization penalty after personalization, exactly the
        mechanism behind Table II's TPU-vs-GPU post-FT gap.
        """
        config = config or FineTuneConfig()
        tuned = fine_tune(self.trained, labeled_maps, config, seed=seed)
        return EdgeDeployment(
            tuned, self.device, calibration_maps=list(labeled_maps)
        )

    # -- cost accounting -----------------------------------------------------
    def profile(self, maps: Sequence[FeatureMap]) -> ModelProfile:
        x, _ = self._prepare(maps)
        return profile_model(self.trained.model, x.shape[1:])

    def cost_report(
        self,
        maps: Sequence[FeatureMap],
        ft_examples: Optional[int] = None,
        ft_epochs: Optional[int] = None,
    ) -> CostReport:
        """Time / power / energy for single-map inference and fine-tuning."""
        profile = self.profile(maps)
        test_time = self.device.inference_time_s(profile, batch=1)
        retrain_time = None
        retrain_energy = None
        if ft_examples is not None:
            epochs = ft_epochs if ft_epochs is not None else FineTuneConfig().epochs
            retrain_time = self.device.training_time_s(profile, ft_examples, epochs)
            retrain_energy = self.device.training_energy_j(
                profile, ft_examples, epochs
            )
        return CostReport(
            device=self.device.name,
            test_time_s=test_time,
            retrain_time_s=retrain_time,
            power_idle_w=self.device.power_idle_w,
            power_test_w=self.device.power_test_w,
            power_retrain_w=self.device.power_retrain_w,
            test_energy_j=self.device.inference_energy_j(profile, batch=1),
            retrain_energy_j=retrain_energy,
        )
