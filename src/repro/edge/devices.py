"""Edge device profiles and the analytic time/power cost model.

The paper measures wall-clock time and power on physical hardware
(Coral Edge TPU Dev Board; Raspberry Pi + Intel NCS2).  Offline we
replace the hardware with explicit cost models: time is a fixed host
overhead plus MACs divided by effective throughput, and power is a
per-phase constant.  The constants below are **calibrated to the
magnitudes of Table II** so the reproduction lands in the measured
regime (TPU ~5x faster test, ~2.4x faster retraining, roughly half the
power of the Pi + NCS2 stack).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .profiler import ModelProfile, training_macs_per_example


@dataclass(frozen=True)
class DeviceProfile:
    """Cost model of one deployment target.

    Attributes
    ----------
    name:
        Human-readable platform name.
    scheme:
        Numeric scheme the accelerator supports ('fp32', 'fp16', 'int8').
    inference_overhead_s:
        Fixed host/runtime latency added to every inference call.
    inference_macs_per_s:
        Effective accelerator throughput for inference.
    training_setup_s:
        One-time cost of starting an on-device fine-tuning run (graph
        rebuild, weight transfer, runtime warm-up).
    training_macs_per_s:
        Effective throughput for training steps (far below inference —
        on-device training is not what these accelerators optimize).
    power_idle_w, power_test_w, power_retrain_w:
        Mean power draw in each phase (paper's MPC rows).
    """

    name: str
    scheme: str
    inference_overhead_s: float
    inference_macs_per_s: float
    training_setup_s: float
    training_macs_per_s: float
    power_idle_w: float
    power_test_w: float
    power_retrain_w: float

    def __post_init__(self) -> None:
        if self.scheme not in ("fp32", "fp16", "int8"):
            raise ValueError(f"unknown scheme {self.scheme!r}")
        if self.inference_macs_per_s <= 0 or self.training_macs_per_s <= 0:
            raise ValueError("throughputs must be positive")

    # -- time ---------------------------------------------------------------
    def inference_time_s(self, profile: ModelProfile, batch: int = 1) -> float:
        """Wall-clock seconds for one inference call of ``batch`` examples."""
        return self.inference_overhead_s + batch * profile.total_macs / self.inference_macs_per_s

    def training_time_s(
        self, profile: ModelProfile, num_examples: int, epochs: int
    ) -> float:
        """Wall-clock seconds for an on-device fine-tuning run."""
        if num_examples < 1 or epochs < 1:
            raise ValueError("num_examples and epochs must be >= 1")
        total = epochs * num_examples * training_macs_per_example(profile)
        return self.training_setup_s + total / self.training_macs_per_s

    # -- energy ---------------------------------------------------------------
    def inference_energy_j(self, profile: ModelProfile, batch: int = 1) -> float:
        return self.power_test_w * self.inference_time_s(profile, batch)

    def training_energy_j(
        self, profile: ModelProfile, num_examples: int, epochs: int
    ) -> float:
        return self.power_retrain_w * self.training_time_s(
            profile, num_examples, epochs
        )


#: Cloud/workstation GPU: the accuracy baseline (fp32, no edge limits).
GPU_BASELINE = DeviceProfile(
    name="GPU (baseline)",
    scheme="fp32",
    inference_overhead_s=1.0e-3,
    inference_macs_per_s=5.0e11,
    training_setup_s=0.5,
    training_macs_per_s=2.0e10,
    power_idle_w=45.0,
    power_test_w=180.0,
    power_retrain_w=250.0,
)

#: Coral Edge TPU Dev Board: int8 only, ML accelerator.
#: Constants calibrated to Table II: test ~47 ms, retrain ~32 s,
#: power 1.28 / 1.64 / 1.82 W.
CORAL_TPU = DeviceProfile(
    name="Coral TPU",
    scheme="int8",
    inference_overhead_s=0.045,
    inference_macs_per_s=5.0e8,
    training_setup_s=25.0,
    training_macs_per_s=3.0e7,
    power_idle_w=1.28,
    power_test_w=1.64,
    power_retrain_w=1.82,
)

#: Raspberry Pi 4 + Intel Movidius NCS2: fp16 VPU over USB.
#: Constants calibrated to Table II: test ~240 ms, retrain ~79 s,
#: power 2.76 / 3.43 / 3.78 W.
PI_NCS2 = DeviceProfile(
    name="Pi + NCS2",
    scheme="fp16",
    inference_overhead_s=0.225,
    inference_macs_per_s=1.0e8,
    training_setup_s=60.0,
    training_macs_per_s=1.2e7,
    power_idle_w=2.76,
    power_test_w=3.43,
    power_retrain_w=3.78,
)

#: All platforms the Table II benches sweep over.
ALL_DEVICES: Dict[str, DeviceProfile] = {
    "gpu": GPU_BASELINE,
    "coral_tpu": CORAL_TPU,
    "pi_ncs2": PI_NCS2,
}


def get_device(name: str) -> DeviceProfile:
    """Look up a device profile by short name."""
    try:
        return ALL_DEVICES[name]
    except KeyError:
        raise ValueError(
            f"unknown device {name!r}; options: {sorted(ALL_DEVICES)}"
        ) from None
