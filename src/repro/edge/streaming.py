"""Streaming (real-time) inference at the edge.

The paper motivates CLEAR with *real-time detection* on wearables: raw
BVP/GSR/SKT samples arrive continuously, and the device must window
them, extract features, maintain a rolling feature map, and classify —
all incrementally.  This module provides that runtime:

* :class:`RingBuffer` — fixed-capacity sample buffer per channel.
* :class:`StreamingFeatureExtractor` — turns sample streams into
  feature vectors every hop.
* :class:`OnlineDetector` — maintains the rolling F x W feature map,
  classifies on every new window, and smooths decisions over time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

import numpy as np

from ..core.trainer import TrainedModel
from ..resilience.degradation import (
    ABSTAINED,
    DEGRADED,
    HEALTHY,
    DegradationController,
    DegradationPolicy,
    HealthStatus,
    safe_probabilities,
)
from ..resilience.guards import quality_gate
from ..signals.feature_map import FeatureMap
from ..signals.features import FeatureExtractor, SensorRates


class RingBuffer:
    """Fixed-capacity float buffer holding the newest samples.

    Appends beyond capacity discard the oldest samples.  ``latest(n)``
    returns the most recent ``n`` samples in chronological order.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._data = np.zeros(self.capacity, dtype=np.float64)
        self._write = 0  # next write position
        self._count = 0  # valid samples (<= capacity)
        self.total_seen = 0  # samples ever pushed

    def __len__(self) -> int:
        return self._count

    @property
    def full(self) -> bool:
        return self._count == self.capacity

    def append(self, samples: Sequence[float]) -> None:
        """Append samples (oldest first); O(len(samples))."""
        samples = np.asarray(samples, dtype=np.float64).ravel()
        self.total_seen += samples.size
        if samples.size >= self.capacity:
            # Only the newest `capacity` samples survive anyway.
            self._data[:] = samples[-self.capacity :]
            self._write = 0
            self._count = self.capacity
            return
        first = min(samples.size, self.capacity - self._write)
        self._data[self._write : self._write + first] = samples[:first]
        rest = samples.size - first
        if rest:
            self._data[:rest] = samples[first:]
        self._write = (self._write + samples.size) % self.capacity
        self._count = min(self.capacity, self._count + samples.size)

    def latest(self, n: Optional[int] = None) -> np.ndarray:
        """The newest ``n`` samples (default: all) in time order."""
        if n is None:
            n = self._count
        if n < 0 or n > self._count:
            raise ValueError(f"cannot read {n} samples, have {self._count}")
        if n == 0:
            return np.empty(0, dtype=np.float64)
        end = self._write
        start = (end - n) % self.capacity
        if start < end:
            return self._data[start:end].copy()
        # Wrapped read (also covers the full-buffer case start == end).
        return np.concatenate([self._data[start:], self._data[:end]])


@dataclass
class WindowEvent:
    """One emitted feature vector with its stream position.

    ``signals`` carries the raw per-channel window the vector came
    from (for quality gating); ``error`` is set instead of ``features``
    when extraction failed and the extractor runs with
    ``capture_errors=True`` (corrupt input must surface as a gated
    window, not a raw numpy traceback).
    """

    index: int  # running window counter
    features: Optional[np.ndarray]  # (F,) — None if extraction failed
    signals: Optional[Dict[str, np.ndarray]] = None
    error: Optional[str] = None


class StreamingFeatureExtractor:
    """Incremental windowed feature extraction over three channels.

    Samples are pushed with :meth:`push`; whenever every channel has
    accumulated a full analysis window *and* a hop has elapsed since
    the previous emission, the 123-feature vector of the newest window
    is emitted.
    """

    def __init__(
        self,
        rates: Optional[SensorRates] = None,
        window_seconds: float = 10.0,
        hop_seconds: Optional[float] = None,
        capture_errors: bool = False,
    ):
        self.capture_errors = bool(capture_errors)
        self.extractor = FeatureExtractor(
            rates=rates or SensorRates(), window_seconds=window_seconds
        )
        self.window_seconds = float(window_seconds)
        self.hop_seconds = float(
            hop_seconds if hop_seconds is not None else window_seconds
        )
        if self.hop_seconds <= 0:
            raise ValueError("hop_seconds must be positive")
        r = self.extractor.rates
        self._buffers: Dict[str, RingBuffer] = {
            "bvp": RingBuffer(int(self.window_seconds * r.bvp)),
            "gsr": RingBuffer(int(self.window_seconds * r.gsr)),
            "skt": RingBuffer(int(self.window_seconds * r.skt)),
        }
        self._rates = {"bvp": r.bvp, "gsr": r.gsr, "skt": r.skt}
        self._emitted = 0
        self._next_emit_time = self.window_seconds

    @property
    def stream_time(self) -> float:
        """Seconds of signal consumed so far (per the BVP channel)."""
        return self._buffers["bvp"].total_seen / self._rates["bvp"]

    def push(
        self,
        bvp: Sequence[float] = (),
        gsr: Sequence[float] = (),
        skt: Sequence[float] = (),
    ) -> List[WindowEvent]:
        """Feed new samples; returns feature vectors that became ready."""
        self._buffers["bvp"].append(bvp)
        self._buffers["gsr"].append(gsr)
        self._buffers["skt"].append(skt)

        events: List[WindowEvent] = []
        while self._ready():
            window = {name: buf.latest() for name, buf in self._buffers.items()}
            vector: Optional[np.ndarray] = None
            error: Optional[str] = None
            try:
                vector = self.extractor.extract_window(
                    window["bvp"], window["gsr"], window["skt"]
                )
            except Exception as exc:
                # Corrupt samples (NaN bursts, flatlines) can break the
                # DSP internals; with capture_errors the failure becomes
                # a gated window instead of a raw traceback.
                if not self.capture_errors:
                    raise
                error = f"{type(exc).__name__}: {exc}"
            events.append(
                WindowEvent(
                    index=self._emitted,
                    features=vector,
                    signals=window,
                    error=error,
                )
            )
            self._emitted += 1
            self._next_emit_time += self.hop_seconds
        return events

    def _ready(self) -> bool:
        if not all(buf.full for buf in self._buffers.values()):
            return False
        # Every channel must have advanced past the next emission time.
        times = [
            buf.total_seen / self._rates[name]
            for name, buf in self._buffers.items()
        ]
        return min(times) >= self._next_emit_time - 1e-9


class RollingWindowMap:
    """The last W window vectors as a rolling ``F x W`` feature map.

    The unit of inference everywhere in this codebase is a feature map
    of ``windows_per_map`` consecutive window vectors; this class owns
    the rolling-deque bookkeeping that turns a stream of vectors into
    such maps.  Shared by :class:`OnlineDetector` (on-device runtime)
    and :class:`repro.serving.sessions.UserSession` (fleet serving),
    so both produce byte-identical maps from the same vector stream.
    """

    def __init__(self, windows_per_map: int):
        if windows_per_map < 1:
            raise ValueError("windows_per_map must be >= 1")
        self.windows_per_map = int(windows_per_map)
        self._vectors: Deque[np.ndarray] = deque(maxlen=self.windows_per_map)

    def __len__(self) -> int:
        return len(self._vectors)

    @property
    def ready(self) -> bool:
        """True once a full map's worth of windows has accumulated."""
        return len(self._vectors) == self.windows_per_map

    def push(self, vector: np.ndarray) -> bool:
        """Append one window vector; returns :attr:`ready`."""
        self._vectors.append(vector)
        return self.ready

    def current_map(self) -> FeatureMap:
        """The rolling map (newest W windows, oldest first)."""
        if not self.ready:
            raise ValueError(
                f"rolling map has {len(self._vectors)} of "
                f"{self.windows_per_map} windows"
            )
        values = np.stack(list(self._vectors), axis=1)  # (F, W)
        return FeatureMap(values, label=0, subject_id=-1)

    def clear(self) -> None:
        self._vectors.clear()


@dataclass
class Detection:
    """One smoothed classification decision.

    ``health`` and ``probabilities`` are populated when the detector
    runs under a :class:`~repro.resilience.degradation.DegradationPolicy`;
    probabilities are then guaranteed finite.
    """

    window_index: int
    raw_prediction: int
    smoothed_prediction: int
    stream_time: float
    probabilities: Optional[np.ndarray] = None
    health: Optional[HealthStatus] = None


class OnlineDetector:
    """Rolling feature-map classification with temporal smoothing.

    Maintains the last W window vectors as the model's F x W input and
    classifies after every new window once the map is full.  The final
    decision is a majority vote over the last ``smoothing`` raw
    predictions, suppressing single-window flickers — the standard
    trick for stable real-time emotion detection.
    """

    def __init__(
        self,
        model: TrainedModel,
        windows_per_map: int,
        streaming: StreamingFeatureExtractor,
        smoothing: int = 3,
        policy: Optional[DegradationPolicy] = None,
    ):
        if smoothing < 1:
            raise ValueError("smoothing must be >= 1")
        self.model = model
        self.windows_per_map = int(windows_per_map)
        self.streaming = streaming
        self.smoothing = int(smoothing)
        self.policy = policy
        self._controller = (
            DegradationController(policy) if policy is not None else None
        )
        if policy is not None:
            # Corrupt input must surface as a gated window; the policy
            # path handles extraction failures explicitly.
            streaming.capture_errors = True
        self._rolling = RollingWindowMap(windows_per_map)
        self._recent_raw: Deque[int] = deque(maxlen=self.smoothing)
        self.detections: List[Detection] = []

    def push(
        self,
        bvp: Sequence[float] = (),
        gsr: Sequence[float] = (),
        skt: Sequence[float] = (),
    ) -> List[Detection]:
        """Feed raw samples; returns any new (smoothed) detections."""
        new_detections: List[Detection] = []
        for event in self.streaming.push(bvp=bvp, gsr=gsr, skt=skt):
            if self.policy is None:
                detection = self._classify_plain(event)
            else:
                detection = self._classify_resilient(event)
            if detection is not None:
                self.detections.append(detection)
                new_detections.append(detection)
        return new_detections

    # -- plain path (no policy): identical to the pre-resilience runtime ----
    def _classify_plain(self, event: WindowEvent) -> Optional[Detection]:
        if not self._rolling.push(event.features):
            return None
        raw = int(self.model.predict_classes([self._current_map()])[0])
        smoothed = self._smooth(raw)
        return Detection(
            window_index=event.index,
            raw_prediction=raw,
            smoothed_prediction=smoothed,
            stream_time=self.streaming.stream_time,
        )

    # -- resilient path: gate, impute, abstain — and always report health --
    def _classify_resilient(self, event: WindowEvent) -> Optional[Detection]:
        ctrl = self._controller
        policy = self.policy
        reasons: List[str] = []
        gated_channels: tuple = ()
        quality_overall = 1.0

        if event.signals is not None and all(
            v.size >= 3 for v in event.signals.values()
        ):
            report = quality_gate(
                event.signals,
                self._rates,
                min_overall=policy.min_quality,
            )
            quality_overall = report.overall
            gated_channels = report.failing
            if report.failing:
                reasons.append(f"low_quality:{','.join(report.failing)}")

        if event.features is None:
            # Extraction itself failed; treat every channel as gated and
            # impute the whole vector from history (or zeros).
            reasons.append(f"extraction_error:{event.error}")
            base = ctrl.running_mean
            if base is None:
                base = np.zeros(len(self.streaming.extractor.feature_names))
            vector, n_imputed = ctrl.sanitize(base, ())
            window_gated = True
        else:
            vector, n_imputed = ctrl.sanitize(event.features, gated_channels)
            window_gated = bool(gated_channels) or (
                n_imputed > 0 and policy.impute == "drop"
            )
            if n_imputed and not gated_channels:
                reasons.append(f"non_finite_features:{n_imputed}")
        if window_gated:
            ctrl.record_window(True)
        else:
            ctrl.record_window(False)
            ctrl.observe_clean(vector)

        if not self._rolling.push(vector):
            return None

        state = HEALTHY
        held = False
        if ctrl.should_abstain():
            reasons.append(
                f"too_many_gated_windows:{ctrl.gated_recent_fraction:.2f}"
            )
            raw, probs = ctrl.abstain(reasons)
            state, held = ABSTAINED, True
        else:
            x, _ = self._prepare_input()
            logits = self.model.model.predict(x)
            probs_row, trustworthy = safe_probabilities(logits)
            probs = probs_row[0]
            if not trustworthy:
                reasons.append("non_finite_model_output")
                raw, probs = ctrl.abstain(reasons)
                state, held = ABSTAINED, True
            else:
                raw = int(np.argmax(probs))
                ctrl.commit(raw, probs)
                if window_gated or n_imputed:
                    state = DEGRADED
        smoothed = self._smooth(raw)
        health = HealthStatus(
            state=state,
            gated_channels=tuple(gated_channels),
            imputed_features=int(n_imputed),
            quality_overall=float(quality_overall),
            gated_recent_fraction=float(ctrl.gated_recent_fraction),
            held_last_decision=held,
            reasons=tuple(reasons),
        )
        return Detection(
            window_index=event.index,
            raw_prediction=raw,
            smoothed_prediction=smoothed,
            stream_time=self.streaming.stream_time,
            probabilities=np.asarray(probs, dtype=np.float64),
            health=health,
        )

    # -- shared helpers -----------------------------------------------------
    @property
    def _rates(self) -> Dict[str, float]:
        r = self.streaming.extractor.rates
        return {"bvp": r.bvp, "gsr": r.gsr, "skt": r.skt}

    def _current_map(self) -> FeatureMap:
        return self._rolling.current_map()

    def _prepare_input(self):
        from ..signals.feature_map import maps_to_arrays

        normalized = self.model.normalizer.transform_all([self._current_map()])
        return maps_to_arrays(normalized)

    def _smooth(self, raw: int) -> int:
        self._recent_raw.append(int(raw))
        votes = np.bincount(list(self._recent_raw), minlength=2)
        return int(np.argmax(votes))

    def reset(self) -> None:
        """Forget stream state (e.g. when the wearable is re-donned)."""
        self._rolling.clear()
        self._recent_raw.clear()
        self.detections.clear()
        if self._controller is not None:
            self._controller.reset()
