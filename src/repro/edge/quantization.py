"""Post-training quantization: int8 (Coral TPU) and fp16 (NCS2) emulation.

Quantization is *simulated* ("fake quant"): weights and activations are
rounded to the target grid and mapped back to float64 for computation.
This reproduces the accuracy effects of deployment (the paper's Coral
TPU loses ~6 accuracy points because it only supports 8-bit data) while
staying inside the numpy substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..nn.checkpoint import model_from_config, model_to_config
from ..nn.model import Sequential

#: Supported numeric schemes, in decreasing precision.
SCHEMES = ("fp32", "fp16", "int8")


def quantize_dequantize_int8(
    x: np.ndarray, scale: Optional[float] = None
) -> np.ndarray:
    """Symmetric per-tensor int8 fake quantization.

    ``scale`` defaults to max|x| / 127; values are rounded to the int8
    grid and mapped back to float.
    """
    x = np.asarray(x, dtype=np.float64)
    if scale is None:
        max_abs = float(np.max(np.abs(x))) if x.size else 0.0
        scale = max_abs / 127.0
        if scale == 0.0:
            # All-zero tensor, or magnitudes so subnormal the scale
            # underflows: the tensor is numerically zero at int8
            # resolution either way.
            return x.copy()
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    q = np.clip(np.round(x / scale), -127, 127)
    return q * scale


def quantize_dequantize_fp16(x: np.ndarray) -> np.ndarray:
    """Round-trip through IEEE half precision."""
    return np.asarray(x, dtype=np.float64).astype(np.float16).astype(np.float64)


@dataclass
class ActivationRange:
    """Calibrated symmetric activation range for one layer boundary."""

    max_abs: float

    @property
    def scale(self) -> float:
        return self.max_abs / 127.0 if self.max_abs > 0 else 1.0


def calibrate_activation_ranges(
    model: Sequential, calibration_x: np.ndarray, percentile: float = 99.9
) -> List[ActivationRange]:
    """Observe per-layer activation magnitudes on calibration data.

    Uses a high percentile of |activation| rather than the max so a
    single outlier doesn't blow up the quantization grid (standard
    PTQ calibration practice).
    """
    if calibration_x.shape[0] == 0:
        raise ValueError("calibration set is empty")
    ranges: List[ActivationRange] = []
    out = np.asarray(calibration_x, dtype=np.float64)
    model.set_training(False)
    for layer in model.layers:
        layer.ensure_built(out, model.rng)
        out = layer.forward(out)
        max_abs = float(np.percentile(np.abs(out), percentile))
        ranges.append(ActivationRange(max_abs=max_abs))
    return ranges


class QuantizedModel:
    """A deployment copy of a model under a numeric scheme.

    The original model is untouched; this wrapper owns a weight-copied
    clone.  For ``int8``, weights are fake-quantized per tensor at
    construction and activations are fake-quantized at every layer
    boundary during inference, using calibrated ranges.  For ``fp16``
    both pass through half precision.  ``fp32`` is a passthrough
    baseline.
    """

    def __init__(
        self,
        model: Sequential,
        scheme: str = "int8",
        calibration_x: Optional[np.ndarray] = None,
    ):
        if scheme not in SCHEMES:
            raise ValueError(f"unknown scheme {scheme!r}; options: {SCHEMES}")
        self.scheme = scheme
        self.model = model_from_config(model_to_config(model), seed=0)
        # Copy parameters and non-trainable state directly so the clone
        # works even when no calibration data is available to build it.
        for src, dst in zip(model.layers, self.model.layers):
            for key, value in src.params.items():
                dst.params[key] = value.copy()
            if src.params:
                dst.zero_grads()
            dst.built = src.built
            if hasattr(src, "get_state") and hasattr(dst, "set_state"):
                dst.set_state(src.get_state())

        self.activation_ranges: Optional[List[ActivationRange]] = None
        if scheme == "int8":
            if calibration_x is None:
                raise ValueError("int8 quantization requires calibration data")
            self.activation_ranges = calibrate_activation_ranges(
                self.model, calibration_x
            )
            self._quantize_weights_int8()
        elif scheme == "fp16":
            self._quantize_weights_fp16()

    # -- weight quantization ----------------------------------------------
    def _quantize_weights_int8(self) -> None:
        for layer in self.model.layers:
            for key, value in layer.params.items():
                layer.params[key] = quantize_dequantize_int8(value)

    def _quantize_weights_fp16(self) -> None:
        for layer in self.model.layers:
            for key, value in layer.params.items():
                layer.params[key] = quantize_dequantize_fp16(value)

    # -- inference ----------------------------------------------------------
    def _forward(self, x: np.ndarray) -> np.ndarray:
        out = np.asarray(x, dtype=np.float64)
        self.model.set_training(False)
        if self.scheme == "int8":
            # Quantize the input tensor too (8-bit input path of the TPU).
            out = quantize_dequantize_int8(out)
            for layer, act_range in zip(self.model.layers, self.activation_ranges):
                layer.ensure_built(out, self.model.rng)
                out = layer.forward(out)
                out = np.clip(out, -act_range.max_abs, act_range.max_abs)
                out = quantize_dequantize_int8(out, scale=act_range.scale)
            return out
        if self.scheme == "fp16":
            out = quantize_dequantize_fp16(out)
            for layer in self.model.layers:
                layer.ensure_built(out, self.model.rng)
                out = quantize_dequantize_fp16(layer.forward(out))
            return out
        for layer in self.model.layers:
            layer.ensure_built(out, self.model.rng)
            out = layer.forward(out)
        return out

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Quantized inference logits."""
        x = np.asarray(x, dtype=np.float64)
        outputs = [
            self._forward(x[i : i + batch_size])
            for i in range(0, x.shape[0], batch_size)
        ]
        return np.concatenate(outputs, axis=0)

    def predict_classes(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        return self.predict(x, batch_size=batch_size).argmax(axis=1)

    def weight_error(self, reference: Sequential) -> float:
        """Mean relative weight distortion vs. the float reference."""
        errors = []
        for ref_layer, q_layer in zip(reference.layers, self.model.layers):
            for key in ref_layer.params:
                ref = ref_layer.params[key]
                diff = np.abs(ref - q_layer.params[key])
                denom = np.maximum(np.abs(ref), 1e-8)
                errors.append(float(np.mean(diff / denom)))
        return float(np.mean(errors)) if errors else 0.0
