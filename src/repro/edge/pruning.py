"""Magnitude pruning: model compression beyond quantization.

The paper optimizes the CNN-LSTM "to balance performance and
deployability"; unstructured magnitude pruning is the next rung on
that ladder (smaller checkpoints to ship, sparse-aware accelerators).
This module prunes a trained model to a target sparsity, reports the
resulting compression, and supports prune-then-fine-tune recovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.trainer import TrainedModel
from ..nn.checkpoint import model_from_config, model_to_config
from ..nn.model import Sequential


@dataclass
class SparsityReport:
    """Per-layer and global sparsity after pruning."""

    per_layer: Dict[str, float]
    global_sparsity: float
    params_total: int
    params_zero: int

    def compressed_bytes(self, bytes_per_param: int = 4) -> int:
        """Size under ideal sparse storage (nonzeros only, no indices)."""
        return (self.params_total - self.params_zero) * bytes_per_param


def _collect_magnitudes(
    model: Sequential, prunable: Sequence[str]
) -> np.ndarray:
    values = [
        np.abs(layer.params[key]).ravel()
        for layer in model.layers
        for key in layer.params
        if key in prunable
    ]
    if not values:
        raise ValueError("no prunable parameters found")
    return np.concatenate(values)


def measure_sparsity(
    model: Sequential, prunable: Sequence[str] = ("W", "U")
) -> SparsityReport:
    """Fraction of exactly-zero weights, per layer and globally."""
    per_layer: Dict[str, float] = {}
    total = 0
    zero = 0
    for layer in model.layers:
        layer_total = 0
        layer_zero = 0
        for key, value in layer.params.items():
            if key not in prunable:
                continue
            layer_total += value.size
            layer_zero += int(np.sum(value == 0.0))
        if layer_total:
            per_layer[layer.name] = layer_zero / layer_total
            total += layer_total
            zero += layer_zero
    return SparsityReport(
        per_layer=per_layer,
        global_sparsity=zero / total if total else 0.0,
        params_total=total,
        params_zero=zero,
    )


def prune_model(
    model: Sequential,
    sparsity: float,
    prunable: Sequence[str] = ("W", "U"),
) -> Sequential:
    """Return a copy of ``model`` with the smallest weights zeroed.

    Global (cross-layer) magnitude pruning: the threshold is the
    ``sparsity`` quantile of all prunable weight magnitudes.  Biases
    and normalization parameters are never pruned.
    """
    if not 0.0 <= sparsity < 1.0:
        raise ValueError(f"sparsity must be in [0, 1), got {sparsity}")
    pruned = model_from_config(model_to_config(model), seed=0)
    for src, dst in zip(model.layers, pruned.layers):
        for key, value in src.params.items():
            dst.params[key] = value.copy()
        if src.params:
            dst.zero_grads()
        dst.built = src.built
        if hasattr(src, "get_state") and hasattr(dst, "set_state"):
            dst.set_state(src.get_state())

    if sparsity == 0.0:
        return pruned
    threshold = float(
        np.quantile(_collect_magnitudes(pruned, prunable), sparsity)
    )
    for layer in pruned.layers:
        for key in layer.params:
            if key in prunable:
                weights = layer.params[key]
                weights[np.abs(weights) <= threshold] = 0.0
    return pruned


def prune_trained(
    trained: TrainedModel,
    sparsity: float,
    prunable: Sequence[str] = ("W", "U"),
) -> TrainedModel:
    """Prune a :class:`TrainedModel`, keeping its normalizer."""
    pruned = prune_model(trained.model, sparsity, prunable)
    return TrainedModel(model=pruned, normalizer=trained.normalizer)


def sparsity_sweep(
    trained: TrainedModel,
    eval_maps,
    sparsities: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 0.9),
) -> List[Dict[str, float]]:
    """Accuracy vs sparsity curve for a trained model."""
    rows: List[Dict[str, float]] = []
    for sparsity in sparsities:
        pruned = prune_trained(trained, sparsity)
        metrics = pruned.evaluate(eval_maps)
        report = measure_sparsity(pruned.model)
        rows.append(
            {
                "target_sparsity": float(sparsity),
                "actual_sparsity": report.global_sparsity,
                "accuracy": metrics["accuracy"],
                "f1": metrics["f1"],
            }
        )
    return rows
