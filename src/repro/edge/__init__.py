"""Edge substrate: quantization, device cost models, deployment.

Emulates the paper's two hardware platforms — the int8-only Coral Edge
TPU and the fp16 Raspberry Pi + Intel NCS2 — via post-training fake
quantization plus analytic latency/power models calibrated to Table II.
"""

from .battery import (
    DutyCycle,
    EnergyBudget,
    battery_life_hours,
    compare_devices,
    daily_energy,
)
from .deployment import CostReport, EdgeDeployment
from .devices import (
    ALL_DEVICES,
    CORAL_TPU,
    GPU_BASELINE,
    PI_NCS2,
    DeviceProfile,
    get_device,
)
from .pruning import (
    SparsityReport,
    measure_sparsity,
    prune_model,
    prune_trained,
    sparsity_sweep,
)
from .profiler import (
    LayerProfile,
    ModelProfile,
    profile_model,
    training_macs_per_example,
)
from .streaming import (
    Detection,
    OnlineDetector,
    RingBuffer,
    RollingWindowMap,
    StreamingFeatureExtractor,
    WindowEvent,
)
from .quantization import (
    SCHEMES,
    ActivationRange,
    QuantizedModel,
    calibrate_activation_ranges,
    quantize_dequantize_fp16,
    quantize_dequantize_int8,
)

__all__ = [
    "SparsityReport",
    "measure_sparsity",
    "prune_model",
    "prune_trained",
    "sparsity_sweep",
    "DutyCycle",
    "EnergyBudget",
    "daily_energy",
    "battery_life_hours",
    "compare_devices",
    "RingBuffer",
    "RollingWindowMap",
    "StreamingFeatureExtractor",
    "OnlineDetector",
    "WindowEvent",
    "Detection",
    "EdgeDeployment",
    "CostReport",
    "DeviceProfile",
    "GPU_BASELINE",
    "CORAL_TPU",
    "PI_NCS2",
    "ALL_DEVICES",
    "get_device",
    "ModelProfile",
    "LayerProfile",
    "profile_model",
    "training_macs_per_example",
    "QuantizedModel",
    "ActivationRange",
    "SCHEMES",
    "quantize_dequantize_int8",
    "quantize_dequantize_fp16",
    "calibrate_activation_ranges",
]
