"""Op-level cost profiling: MACs, parameters, and activation memory.

The edge cost model charges time and energy per multiply-accumulate, so
every layer type reports its MAC count for a given input shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..nn.layers import LSTM, AvgPool2D, BatchNorm, Conv2D, Dense, MaxPool2D, SimpleRNN
from ..nn.model import Sequential


@dataclass
class LayerProfile:
    """Cost attribution for one layer."""

    name: str
    kind: str
    macs: int
    params: int
    output_shape: Tuple[int, ...]


@dataclass
class ModelProfile:
    """Aggregate model cost."""

    layers: List[LayerProfile] = field(default_factory=list)

    @property
    def total_macs(self) -> int:
        return sum(l.macs for l in self.layers)

    @property
    def total_params(self) -> int:
        return sum(l.params for l in self.layers)

    def macs_by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for l in self.layers:
            out[l.kind] = out.get(l.kind, 0) + l.macs
        return out

    def memory_bytes(self, bytes_per_param: int = 4) -> int:
        """Parameter memory under a given precision (4 = fp32, 1 = int8)."""
        return self.total_params * bytes_per_param

    def render(self) -> str:
        lines = [f"{'layer':<18}{'kind':<14}{'MACs':>12}{'params':>10}  output"]
        lines.append("-" * 68)
        for l in self.layers:
            lines.append(
                f"{l.name:<18}{l.kind:<14}{l.macs:>12,}{l.params:>10,}  {l.output_shape}"
            )
        lines.append("-" * 68)
        lines.append(
            f"total MACs {self.total_macs:,}   total params {self.total_params:,}"
        )
        return "\n".join(lines)


def _layer_macs(layer, input_shape: Tuple[int, ...], output_shape: Tuple[int, ...]) -> int:
    """MAC count of one layer for a single example."""
    if isinstance(layer, Conv2D):
        _, out_h, out_w = output_shape
        in_c = input_shape[0]
        kh, kw = layer.kernel_size
        return out_h * out_w * layer.filters * in_c * kh * kw
    if isinstance(layer, Dense):
        return int(np.prod(input_shape)) * layer.units
    if isinstance(layer, LSTM):
        t, f = input_shape
        h = layer.units
        return t * 4 * h * (f + h)
    if isinstance(layer, SimpleRNN):
        t, f = input_shape
        h = layer.units
        return t * h * (f + h)
    if isinstance(layer, (MaxPool2D, AvgPool2D)):
        # Comparisons/additions, charged as one op per window element.
        c, out_h, out_w = output_shape
        kh, kw = layer.pool_size
        return c * out_h * out_w * kh * kw
    if isinstance(layer, BatchNorm):
        return 2 * int(np.prod(input_shape))
    # Activations / reshapes: one op per element (negligible but counted).
    return int(np.prod(output_shape))


def profile_model(model: Sequential, input_shape: Tuple[int, ...]) -> ModelProfile:
    """Profile per-example cost of a model for a given input shape."""
    profile = ModelProfile()
    shape = tuple(input_shape)
    for layer in model.layers:
        out_shape = layer.output_shape(shape)
        profile.layers.append(
            LayerProfile(
                name=layer.name,
                kind=type(layer).__name__,
                macs=int(_layer_macs(layer, shape, out_shape)),
                params=layer.num_params,
                output_shape=tuple(out_shape),
            )
        )
        shape = out_shape
    return profile


def training_macs_per_example(profile: ModelProfile) -> int:
    """Approximate fwd+bwd cost: backward ~ 2x forward (standard rule)."""
    return 3 * profile.total_macs
