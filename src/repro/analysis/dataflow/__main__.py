"""``python -m repro.analysis.dataflow`` — the whole-repo analyzer CLI."""

import sys

from .engine import main

if __name__ == "__main__":
    sys.exit(main())
