"""Per-file extraction of picklable dataflow summaries.

The interprocedural passes never touch an AST: each source file is
parsed exactly once (possibly in a worker process — summaries must
pickle) and compressed into a :class:`ModuleSummary` holding one
:class:`FunctionSummary` per function-like scope: module-level
functions, methods, nested functions, lambdas, and the module body
itself (qualname suffix ``<module>``).

A summary records only the facts the downstream analyses consume:

* call sites with lightweight argument classification,
* RNG creations (seeded / unseeded / spawned) and the variables they
  taint,
* stochastic-method uses and which receiver they draw from,
* in-place mutations, global writes, I/O calls, clock/entropy reads,
* ``Executor.map`` dispatches and ``Stage(...)`` registrations,
* container builds that embed local names into work units,
* free (captured) names, for closure/pickling hazards.

Everything is best-effort and conservative-by-construction: when an
expression cannot be resolved statically the extractor records nothing
rather than guessing, so whole-repo passes err toward silence instead
of noise.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: Parameter names that mean "the caller threads randomness in".
RNG_PARAM_NAMES = frozenset({"rng", "seed", "random_state", "generator"})

#: ``np.random.Generator`` drawing methods — the stochastic operations
#: that a tainted generator must never reach.
STOCHASTIC_METHODS = frozenset(
    {
        "random",
        "normal",
        "uniform",
        "integers",
        "choice",
        "shuffle",
        "permutation",
        "permuted",
        "standard_normal",
        "poisson",
        "binomial",
        "exponential",
        "gamma",
        "beta",
        "multivariate_normal",
        "lognormal",
        "laplace",
        "triangular",
        "rayleigh",
        "bytes",
    }
)

#: Method names that mutate their receiver in place (list/dict/set and
#: ndarray vocabularies).
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "add",
        "discard",
        "sort",
        "reverse",
        "fill",
        "resize",
        "put",
        "partition",
        "itemset",
    }
)

#: Callables that are file/OS I/O when invoked by these dotted names.
IO_DOTTED = frozenset(
    {
        "open",
        "np.save",
        "np.savez",
        "np.savez_compressed",
        "np.load",
        "np.savetxt",
        "np.loadtxt",
        "numpy.save",
        "numpy.savez",
        "numpy.load",
        "pickle.dump",
        "pickle.load",
        "json.dump",
        "json.load",
        "os.remove",
        "os.unlink",
        "os.rename",
        "os.replace",
        "os.mkdir",
        "os.makedirs",
        "os.rmdir",
        "shutil.copy",
        "shutil.copytree",
        "shutil.move",
        "shutil.rmtree",
        "tempfile.mkstemp",
        "tempfile.mkdtemp",
        "tempfile.NamedTemporaryFile",
        "tempfile.TemporaryDirectory",
    }
)

#: Attribute methods that are I/O on path-like receivers.
IO_METHODS = frozenset(
    {
        "write_text",
        "write_bytes",
        "read_text",
        "read_bytes",
        "mkdir",
        "unlink",
        "touch",
        "rmdir",
    }
)

#: Wall-clock / OS-entropy reads.  ``time.perf_counter`` and
#: ``time.monotonic`` are deliberately absent: duration measurement is
#: sanctioned inside stages as long as timings stay out of content
#: digests (the ``__repro_content__`` convention).
CLOCK_ENTROPY_DOTTED = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "date.today",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.randbits",
        "secrets.choice",
        "random.random",
        "random.randint",
        "random.choice",
        "random.shuffle",
        "random.seed",
        "random.uniform",
    }
)

#: Receiver spellings that identify an executor ``.map`` fan-out.
EXECUTOR_RECEIVERS = frozenset(
    {"executor", "ctx.executor", "self.executor", "pool", "self._executor"}
)


# -- record types (all picklable) ----------------------------------------

@dataclass(frozen=True)
class CallRecord:
    """One call site, with just enough argument structure to link."""

    callee: str  # dotted source text ("np.random.default_rng", "fn", ...)
    line: int
    col: int
    #: per positional argument: the Name id, a lambda qualname, or None
    arg_refs: Tuple[Optional[str], ...] = ()
    #: (keyword, Name id / lambda qualname / None) pairs
    kw_refs: Tuple[Tuple[str, Optional[str]], ...] = ()
    #: local variable the call result was assigned to, if a simple
    #: ``var = call(...)`` binding
    assigned_to: Optional[str] = None


@dataclass(frozen=True)
class RngCreation:
    """An expression that produces RNG material."""

    line: int
    col: int
    kind: str  # "seeded" | "unseeded" | "spawn"
    target: Optional[str] = None  # variable bound to the value, if simple
    receiver: Optional[str] = None  # for spawn: the sequence spawned from


@dataclass(frozen=True)
class StochasticUse:
    """A drawing method invoked on some receiver."""

    receiver: str  # dotted receiver text; "<unseeded>" for inline chains
    method: str
    line: int
    col: int


@dataclass(frozen=True)
class Mutation:
    """An in-place mutation, keyed by the mutated root name."""

    name: str  # root of the mutated expression ("x" for x[0], x.y, ...)
    kind: str  # "method:append" | "subscript" | "attribute" | "augassign" | "del" | "out="
    line: int
    col: int


@dataclass(frozen=True)
class GlobalWrite:
    name: str
    kind: str  # "global" | "nonlocal" | "module-attr"
    line: int
    col: int


@dataclass(frozen=True)
class EffectCall:
    """An I/O or clock/entropy call (shared record shape)."""

    callee: str
    line: int
    col: int


@dataclass(frozen=True)
class ExecutorMap:
    """One ``executor.map(fn, items)`` dispatch."""

    line: int
    col: int
    receiver: str
    fn_ref: Optional[str]  # Name id, lambda qualname, or dotted text
    fn_kind: str  # "name" | "lambda" | "attribute" | "other"
    items_ref: Optional[str]  # Name id of the work-unit container


@dataclass(frozen=True)
class StageRef:
    """One ``Stage(...)`` registration and the fn it wraps."""

    line: int
    col: int
    stage_name: Optional[str]  # literal stage name if given
    fn_ref: Optional[str]  # Name id, lambda qualname, or dotted text
    fn_kind: str  # "name" | "lambda" | "attribute" | "other" | "missing"


@dataclass(frozen=True)
class ContainerElem:
    """Names embedded into elements of a container variable."""

    var: str
    line: int
    names: Tuple[str, ...]


@dataclass(frozen=True)
class NoqaDirective:
    """A ``# repro: noqa[...]`` comment found in the file."""

    line: int
    codes: Optional[Tuple[str, ...]]  # None = blanket


@dataclass
class FunctionSummary:
    """Dataflow-relevant facts about one function-like scope."""

    qualname: str
    name: str
    module: str
    path: str
    line: int
    params: Tuple[str, ...] = ()
    parent: Optional[str] = None
    is_nested: bool = False
    is_lambda: bool = False
    calls: Tuple[CallRecord, ...] = ()
    rng_creations: Tuple[RngCreation, ...] = ()
    rng_vars: Tuple[str, ...] = ()
    tainted_vars: Tuple[str, ...] = ()
    stochastic_uses: Tuple[StochasticUse, ...] = ()
    mutations: Tuple[Mutation, ...] = ()
    global_writes: Tuple[GlobalWrite, ...] = ()
    io_calls: Tuple[EffectCall, ...] = ()
    clock_calls: Tuple[EffectCall, ...] = ()
    returns_names: Tuple[str, ...] = ()
    returns_unseeded_expr: bool = False
    free_names: Tuple[str, ...] = ()
    local_defs: Tuple[str, ...] = ()
    executor_maps: Tuple[ExecutorMap, ...] = ()
    stage_refs: Tuple[StageRef, ...] = ()
    container_elems: Tuple[ContainerElem, ...] = ()
    aliases: Tuple[Tuple[str, str], ...] = ()

    @property
    def rng_params(self) -> Tuple[str, ...]:
        return tuple(p for p in self.params if p in RNG_PARAM_NAMES)


@dataclass
class ModuleSummary:
    """Every function summary of one module, plus linking metadata."""

    module: str
    path: str
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    module_level_names: Tuple[str, ...] = ()
    noqa_directives: Tuple[NoqaDirective, ...] = ()

    def function(self, qualname: str) -> Optional[FunctionSummary]:
        return self.functions.get(qualname)


@dataclass
class FileAnalysis:
    """Everything one worker extracts from a single file."""

    path: str
    summary: Optional[ModuleSummary]
    lint_findings: List = field(default_factory=list)  # pre-suppression
    error: Optional[str] = None


# -- helpers --------------------------------------------------------------

def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute chains; None when not a pure chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def root_name(node: ast.AST) -> Optional[str]:
    """The leftmost Name of an attribute/subscript chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


_BIT_GENERATORS = frozenset({"MT19937", "PCG64", "PCG64DXSM", "Philox", "SFC64"})


def _is_none(node: Optional[ast.AST]) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def classify_rng_call(node: ast.Call) -> Optional[str]:
    """Is this call an RNG creation?  Returns "seeded"/"unseeded"/None.

    ``default_rng()`` / ``default_rng(None)`` / ``SeedSequence()`` draw
    their entropy from the OS — unseeded.  Any explicit argument
    (literal, parameter, spawned child) counts as seeded here; whether
    that argument was itself tainted is the seed-flow pass's job.
    """
    name = dotted_name(node.func) or ""
    tail = name.rsplit(".", 1)[-1]
    if tail in ("default_rng", "SeedSequence"):
        first = node.args[0] if node.args else None
        for kw in node.keywords:
            if kw.arg in ("seed", "entropy"):
                first = kw.value
        if first is None or _is_none(first):
            return "unseeded"
        return "seeded"
    if tail == "Generator":
        # np.random.Generator(MT19937()) pulls OS entropy; with an
        # argument to the bit generator it is explicitly seeded.
        if node.args and isinstance(node.args[0], ast.Call):
            bit = dotted_name(node.args[0].func) or ""
            if bit.rsplit(".", 1)[-1] in _BIT_GENERATORS:
                return (
                    "unseeded"
                    if not node.args[0].args and not node.args[0].keywords
                    else "seeded"
                )
        return None
    return None


def module_name_for(path: str) -> str:
    """Dotted module name for a file path, anchored at a package root.

    Walks up from the file collecting directories that carry an
    ``__init__.py`` — the standard package layout — so
    ``src/repro/core/pipeline.py`` becomes ``repro.core.pipeline``.
    Falls back to the bare stem for loose scripts and fixtures.
    """
    from pathlib import Path

    p = Path(path)
    parts = [p.stem] if p.stem != "__init__" else []
    parent = p.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else p.stem


def _resolve_relative(module: str, node: ast.ImportFrom) -> str:
    """Absolute dotted module for a (possibly relative) import-from."""
    if node.level == 0:
        return node.module or ""
    # Package of the importing module: repro.core.pipeline -> repro.core
    package_parts = module.split(".")[:-1]
    # level=1 imports from the package itself, each extra level pops one.
    keep = len(package_parts) - (node.level - 1)
    base = package_parts[: max(keep, 0)]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base)


# -- the extractor --------------------------------------------------------

class _ScopeExtractor:
    """Walks one function-like scope without descending into nested ones."""

    def __init__(
        self,
        builder: "_ModuleBuilder",
        qualname: str,
        name: str,
        params: Sequence[str],
        parent: Optional[str],
        is_lambda: bool,
        line: int,
    ):
        self.builder = builder
        self.out = FunctionSummary(
            qualname=qualname,
            name=name,
            module=builder.module,
            path=builder.path,
            line=line,
            params=tuple(params),
            parent=parent,
            is_nested=parent is not None and not parent.endswith("<module>"),
            is_lambda=is_lambda,
        )
        self._calls: List[CallRecord] = []
        self._rng_creations: List[RngCreation] = []
        self._rng_vars: set = set(p for p in params if p in RNG_PARAM_NAMES)
        self._tainted: set = set()
        self._stochastic: List[StochasticUse] = []
        self._mutations: List[Mutation] = []
        self._global_writes: List[GlobalWrite] = []
        self._io: List[EffectCall] = []
        self._clock: List[EffectCall] = []
        self._returns_names: List[str] = []
        self._returns_unseeded = False
        self._local_defs: List[str] = []
        self._executor_maps: List[ExecutorMap] = []
        self._stage_refs: List[StageRef] = []
        self._container_elems: List[ContainerElem] = []
        self._aliases: List[Tuple[str, str]] = []
        self._assigned: set = set(params)
        self._loaded: set = set()
        self._declared_global: set = set()
        self._declared_nonlocal: set = set()

    # -- entry -----------------------------------------------------------

    def run(self, body: Sequence[ast.stmt]) -> FunctionSummary:
        for stmt in body:
            self._stmt(stmt)
        out = self.out
        out.calls = tuple(self._calls)
        out.rng_creations = tuple(self._rng_creations)
        out.rng_vars = tuple(sorted(self._rng_vars))
        out.tainted_vars = tuple(sorted(self._tainted))
        out.stochastic_uses = tuple(self._stochastic)
        out.mutations = tuple(self._mutations)
        out.global_writes = tuple(self._global_writes)
        out.io_calls = tuple(self._io)
        out.clock_calls = tuple(self._clock)
        out.returns_names = tuple(self._returns_names)
        out.returns_unseeded_expr = self._returns_unseeded
        out.local_defs = tuple(self._local_defs)
        out.executor_maps = tuple(self._executor_maps)
        out.stage_refs = tuple(self._stage_refs)
        out.container_elems = tuple(self._container_elems)
        out.aliases = tuple(self._aliases)
        out.free_names = tuple(
            sorted(
                self._loaded
                - self._assigned
                - set(self._local_defs)
                - self.builder.module_level
                - _BUILTINS
            )
        )
        return out

    # -- statements ------------------------------------------------------

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._local_defs.append(stmt.name)
            self._assigned.add(stmt.name)
            for deco in stmt.decorator_list:
                self._expr(deco)
            self.builder.add_scope(
                stmt,
                parent=self.out.qualname,
                nested=self.out.name != "<module>",
            )
            return
        if isinstance(stmt, ast.ClassDef):
            self._assigned.add(stmt.name)
            for deco in stmt.decorator_list:
                self._expr(deco)
            self.builder.add_class(stmt, parent=self.out.qualname)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            for sub in ast.walk(stmt.target):
                if isinstance(sub, ast.Name):
                    self._assigned.add(sub.id)
            self._expr(stmt.iter)
            for child in stmt.body + stmt.orelse:
                self._stmt(child)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._expr(item.context_expr)
                if item.optional_vars is not None:
                    for sub in ast.walk(item.optional_vars):
                        if isinstance(sub, ast.Name):
                            self._assigned.add(sub.id)
            for child in stmt.body:
                self._stmt(child)
            return
        if isinstance(stmt, ast.Try):
            for child in stmt.body + stmt.orelse + stmt.finalbody:
                self._stmt(child)
            for handler in stmt.handlers:
                if handler.type is not None:
                    self._expr(handler.type)
                if handler.name:
                    self._assigned.add(handler.name)
                for child in handler.body:
                    self._stmt(child)
            return
        if isinstance(stmt, ast.Global):
            self._declared_global.update(stmt.names)
            return
        if isinstance(stmt, ast.Nonlocal):
            self._declared_nonlocal.update(stmt.names)
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._return(stmt.value)
            return
        if isinstance(stmt, ast.Assign):
            self._assign(stmt.targets, stmt.value, stmt)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign([stmt.target], stmt.value, stmt)
            elif isinstance(stmt.target, ast.Name):
                self._assigned.add(stmt.target.id)
            return
        if isinstance(stmt, ast.AugAssign):
            root = root_name(stmt.target)
            if root is not None and not isinstance(stmt.target, ast.Name):
                self._mutations.append(
                    Mutation(root, "augassign", stmt.lineno, stmt.col_offset)
                )
            elif isinstance(stmt.target, ast.Name):
                # ``x += ...`` rebinding also mutates ndarrays in place.
                self._mutations.append(
                    Mutation(
                        stmt.target.id, "augassign", stmt.lineno, stmt.col_offset
                    )
                )
                self._assigned.add(stmt.target.id)
                self._loaded.add(stmt.target.id)
            self._maybe_global_write(stmt.target, stmt)
            self._expr(stmt.value)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                root = root_name(target)
                if root is not None and not isinstance(target, ast.Name):
                    self._mutations.append(
                        Mutation(root, "del", stmt.lineno, stmt.col_offset)
                    )
            return
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            return  # module-level imports handled by the builder
        # Generic statements: walk children, handling nested scopes.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._stmt(child)
            elif isinstance(child, ast.expr):
                self._expr(child)
            else:
                self._generic(child)

    def _generic(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                self._stmt(child)
            elif isinstance(child, ast.expr):
                self._expr(child)
            else:
                self._generic(child)

    # -- assignment / taint ----------------------------------------------

    def _assign(
        self,
        targets: Sequence[ast.expr],
        value: ast.expr,
        stmt: ast.stmt,
    ) -> None:
        simple_target: Optional[str] = None
        for target in targets:
            if isinstance(target, ast.Name):
                self._assigned.add(target.id)
                if len(targets) == 1:
                    simple_target = target.id
            else:
                root = root_name(target)
                if root is not None:
                    kind = (
                        "subscript"
                        if isinstance(target, ast.Subscript)
                        else "attribute"
                    )
                    self._mutations.append(
                        Mutation(root, kind, stmt.lineno, stmt.col_offset)
                    )
                self._maybe_global_write(target, stmt)
                if isinstance(target, (ast.Tuple, ast.List)):
                    for elt in target.elts:
                        if isinstance(elt, ast.Name):
                            self._assigned.add(elt.id)

        # Record container builds: units = [ ...names... ] / listcomp.
        if simple_target is not None and isinstance(
            value, (ast.List, ast.Tuple, ast.ListComp, ast.GeneratorExp)
        ):
            names = self._embedded_names(value)
            if names:
                self._container_elems.append(
                    ContainerElem(simple_target, stmt.lineno, tuple(names))
                )

        # Taint propagation onto a simple name target.
        if simple_target is not None:
            if isinstance(value, ast.Call):
                kind = classify_rng_call(value)
                if kind is not None:
                    self._rng_creations.append(
                        RngCreation(
                            value.lineno, value.col_offset, kind, simple_target
                        )
                    )
                    self._rng_vars.add(simple_target)
                    if kind == "unseeded":
                        self._tainted.add(simple_target)
                    else:
                        self._tainted.discard(simple_target)
                elif self._is_spawn(value):
                    receiver = root_name(value.func)
                    self._rng_creations.append(
                        RngCreation(
                            value.lineno,
                            value.col_offset,
                            "spawn",
                            simple_target,
                            receiver=receiver,
                        )
                    )
                    self._rng_vars.add(simple_target)
                    if receiver in self._tainted:
                        self._tainted.add(simple_target)
                    else:
                        self._tainted.discard(simple_target)
            elif isinstance(value, ast.Name):
                self._aliases.append((simple_target, value.id))
                if value.id in self._rng_vars:
                    self._rng_vars.add(simple_target)
                if value.id in self._tainted:
                    self._tainted.add(simple_target)
                else:
                    self._tainted.discard(simple_target)

        self._expr(value, assigned_to=simple_target)

    @staticmethod
    def _is_spawn(node: ast.Call) -> bool:
        return (
            isinstance(node.func, ast.Attribute) and node.func.attr == "spawn"
        )

    def _embedded_names(self, node: ast.expr) -> List[str]:
        """Names referenced inside container elements (minus loop vars)."""
        loop_vars: set = set()
        elements: List[ast.expr] = []
        if isinstance(node, (ast.List, ast.Tuple)):
            elements = list(node.elts)
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            elements = [node.elt]
            for gen in node.generators:
                for sub in ast.walk(gen.target):
                    if isinstance(sub, ast.Name):
                        loop_vars.add(sub.id)
        names: List[str] = []
        for element in elements:
            for sub in ast.walk(element):
                if (
                    isinstance(sub, ast.Name)
                    and isinstance(sub.ctx, ast.Load)
                    and sub.id not in loop_vars
                    and sub.id not in names
                ):
                    names.append(sub.id)
        return names

    def _maybe_global_write(self, target: ast.expr, stmt: ast.stmt) -> None:
        root = root_name(target)
        if root is None:
            return
        if isinstance(target, ast.Name) and root in self._declared_global:
            self._global_writes.append(
                GlobalWrite(root, "global", stmt.lineno, stmt.col_offset)
            )
        elif isinstance(target, ast.Name) and root in self._declared_nonlocal:
            self._global_writes.append(
                GlobalWrite(root, "nonlocal", stmt.lineno, stmt.col_offset)
            )
        elif not isinstance(target, ast.Name):
            # Attribute/subscript store whose root is a module-level
            # name (class or module object) rather than any local.
            if (
                root not in self._assigned
                and root in self.builder.module_level
            ):
                self._global_writes.append(
                    GlobalWrite(
                        root, "module-attr", stmt.lineno, stmt.col_offset
                    )
                )

    # -- expressions -----------------------------------------------------

    def _return(self, value: ast.expr) -> None:
        if isinstance(value, ast.Name):
            self._returns_names.append(value.id)
        elif isinstance(value, ast.Call):
            if classify_rng_call(value) == "unseeded":
                self._returns_unseeded = True
        self._expr(value)

    def _expr(self, node: ast.expr, assigned_to: Optional[str] = None) -> None:
        if isinstance(node, ast.Lambda):
            self.builder.add_lambda(node, parent=self.out.qualname)
            return
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load):
                self._loaded.add(node.id)
            return
        if isinstance(node, ast.Call):
            self._call(node, assigned_to=assigned_to)
            return
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            # Comprehension scopes share our mutation/taint space well
            # enough for the analyses here; walk them inline.
            for gen in node.generators:
                self._expr(gen.iter)
                for sub in ast.walk(gen.target):
                    if isinstance(sub, ast.Name):
                        self._assigned.add(sub.id)
                for cond in gen.ifs:
                    self._expr(cond)
            if isinstance(node, ast.DictComp):
                self._expr(node.key)
                self._expr(node.value)
            else:
                self._expr(node.elt)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr(child)
            elif isinstance(child, (ast.keyword, ast.FormattedValue)):
                self._generic(child)

    # -- calls -----------------------------------------------------------

    def _arg_ref(self, node: ast.expr) -> Tuple[Optional[str], str]:
        """(reference, kind) for a call argument."""
        if isinstance(node, ast.Name):
            return node.id, "name"
        if isinstance(node, ast.Lambda):
            qual = self.builder.lambda_qualname(node, self.out.qualname)
            return qual, "lambda"
        dotted = dotted_name(node)
        if dotted is not None:
            return dotted, "attribute"
        return None, "other"

    def _call(self, node: ast.Call, assigned_to: Optional[str] = None) -> None:
        callee = dotted_name(node.func)
        if callee is None and isinstance(node.func, ast.Attribute):
            callee = f"<expr>.{node.func.attr}"
        callee = callee or "<expr>"

        arg_refs = []
        for arg in node.args:
            ref, _kind = self._arg_ref(arg)
            arg_refs.append(ref)
        kw_refs = []
        for kw in node.keywords:
            if kw.arg is None:
                continue
            ref, _kind = self._arg_ref(kw.value)
            kw_refs.append((kw.arg, ref))

        record = CallRecord(
            callee=callee,
            line=node.lineno,
            col=node.col_offset,
            arg_refs=tuple(arg_refs),
            kw_refs=tuple(kw_refs),
            assigned_to=assigned_to,
        )
        self._calls.append(record)

        self._classify_call(node, callee, record)

        # Walk arguments (registers lambdas as scopes, visits nested calls).
        self._expr(node.func) if not isinstance(
            node.func, (ast.Name, ast.Attribute)
        ) else self._visit_func_receiver(node.func)
        for arg in node.args:
            self._expr(arg)
        for kw in node.keywords:
            self._expr(kw.value)

    def _visit_func_receiver(self, func: ast.expr) -> None:
        # Mark loads inside the receiver chain (for free-name analysis).
        for sub in ast.walk(func):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                self._loaded.add(sub.id)
            elif isinstance(sub, ast.Call):
                self._call(sub)
                return

    def _classify_call(
        self, node: ast.Call, callee: str, record: CallRecord
    ) -> None:
        tail = callee.rsplit(".", 1)[-1]

        # RNG creation not bound to a name (e.g. used inline).
        kind = classify_rng_call(node)
        if kind is not None and record.assigned_to is None:
            self._rng_creations.append(
                RngCreation(node.lineno, node.col_offset, kind)
            )

        # Stochastic method use.
        if isinstance(node.func, ast.Attribute) and tail in STOCHASTIC_METHODS:
            receiver_node = node.func.value
            receiver = dotted_name(receiver_node)
            if receiver is None and isinstance(receiver_node, ast.Call):
                if classify_rng_call(receiver_node) == "unseeded":
                    receiver = "<unseeded>"
            if receiver is not None:
                self._stochastic.append(
                    StochasticUse(
                        receiver, tail, node.lineno, node.col_offset
                    )
                )

        # Mutating method on a receiver we can root.
        if isinstance(node.func, ast.Attribute) and tail in MUTATING_METHODS:
            root = root_name(node.func.value)
            if root is not None:
                self._mutations.append(
                    Mutation(
                        root, f"method:{tail}", node.lineno, node.col_offset
                    )
                )

        # numpy out= aliasing: np.add(a, b, out=x) mutates x in place.
        for kw in node.keywords:
            if kw.arg == "out" and isinstance(kw.value, ast.Name):
                self._mutations.append(
                    Mutation(
                        kw.value.id, "out=", node.lineno, node.col_offset
                    )
                )

        # I/O calls.
        if callee in IO_DOTTED or (
            isinstance(node.func, ast.Attribute) and tail in IO_METHODS
        ):
            self._io.append(EffectCall(callee, node.lineno, node.col_offset))

        # Clock / entropy reads.
        if callee in CLOCK_ENTROPY_DOTTED:
            self._clock.append(
                EffectCall(callee, node.lineno, node.col_offset)
            )

        # Executor fan-out.
        if tail == "map" and isinstance(node.func, ast.Attribute):
            receiver = dotted_name(node.func.value) or ""
            if (
                receiver in EXECUTOR_RECEIVERS
                or receiver.split(".")[-1] == "executor"
            ):
                fn_ref, fn_kind = (
                    self._arg_ref(node.args[0]) if node.args else (None, "other")
                )
                items_ref = None
                if len(node.args) > 1 and isinstance(node.args[1], ast.Name):
                    items_ref = node.args[1].id
                self._executor_maps.append(
                    ExecutorMap(
                        node.lineno,
                        node.col_offset,
                        receiver,
                        fn_ref,
                        fn_kind,
                        items_ref,
                    )
                )

        # Stage registration.
        if tail == "Stage":
            fn_node: Optional[ast.expr] = None
            if len(node.args) >= 2:
                fn_node = node.args[1]
            for kw in node.keywords:
                if kw.arg == "fn":
                    fn_node = kw.value
            stage_name = None
            name_node: Optional[ast.expr] = node.args[0] if node.args else None
            for kw in node.keywords:
                if kw.arg == "name":
                    name_node = kw.value
            if isinstance(name_node, ast.Constant) and isinstance(
                name_node.value, str
            ):
                stage_name = name_node.value
            if fn_node is None:
                self._stage_refs.append(
                    StageRef(
                        node.lineno, node.col_offset, stage_name, None, "missing"
                    )
                )
            else:
                fn_ref, fn_kind = self._arg_ref(fn_node)
                self._stage_refs.append(
                    StageRef(
                        node.lineno, node.col_offset, stage_name, fn_ref, fn_kind
                    )
                )


import builtins as _builtins_module

_BUILTINS = frozenset(dir(_builtins_module))


class _ModuleBuilder:
    """Drives scope extraction over one module AST."""

    def __init__(self, module: str, path: str):
        self.module = module
        self.path = path
        self.imports: Dict[str, str] = {}
        self.functions: Dict[str, FunctionSummary] = {}
        self.module_level: set = set()
        self._pending: List[Tuple[ast.AST, Optional[str], Optional[str]]] = []

    def lambda_qualname(self, node: ast.Lambda, parent: str) -> str:
        return f"{parent}.<lambda:{node.lineno}:{node.col_offset}>"

    def add_lambda(self, node: ast.Lambda, parent: str) -> None:
        qual = self.lambda_qualname(node, parent)
        if qual in self.functions:
            return
        params = [a.arg for a in node.args.args + node.args.kwonlyargs]
        if node.args.vararg:
            params.append(node.args.vararg.arg)
        if node.args.kwarg:
            params.append(node.args.kwarg.arg)
        extractor = _ScopeExtractor(
            self,
            qualname=qual,
            name="<lambda>",
            params=params,
            parent=parent,
            is_lambda=True,
            line=node.lineno,
        )
        # Lambda bodies are a single expression; wrap as a return.
        ret = ast.Return(value=node.body)
        ast.copy_location(ret, node.body)
        self.functions[qual] = extractor.run([ret])

    def _normalize_parent(self, parent: Optional[str]) -> Optional[str]:
        """The module pseudo-scope is not a real parent for qualnames."""
        if parent == f"{self.module}.<module>":
            return None
        return parent

    def add_scope(
        self, node, parent: Optional[str], nested: bool = False
    ) -> None:
        parent = self._normalize_parent(parent)
        base = parent if parent is not None else self.module
        qual = f"{base}.{node.name}"
        params = self._params(node)
        extractor = _ScopeExtractor(
            self,
            qualname=qual,
            name=node.name,
            params=params,
            parent=parent,
            is_lambda=False,
            line=node.lineno,
        )
        summary = extractor.run(node.body)
        summary.is_nested = nested
        self.functions[qual] = summary

    def add_class(self, node: ast.ClassDef, parent: Optional[str]) -> None:
        parent = self._normalize_parent(parent)
        base = parent if parent is not None else self.module
        qual = f"{base}.{node.name}"
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.add_scope(stmt, parent=qual, nested=False)
            elif isinstance(stmt, ast.ClassDef):
                self.add_class(stmt, parent=qual)

    @staticmethod
    def _params(node) -> List[str]:
        args = node.args
        params = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg:
            params.append(args.vararg.arg)
        if args.kwarg:
            params.append(args.kwarg.arg)
        return params

    def build(self, tree: ast.Module) -> ModuleSummary:
        # First pass: module-level bindings (imports, defs, assignments),
        # so scope extraction can distinguish globals from free names.
        for stmt in tree.body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    name = alias.asname or alias.name.split(".")[0]
                    self.imports[name] = alias.name
                    self.module_level.add(name)
            elif isinstance(stmt, ast.ImportFrom):
                target = _resolve_relative(self.module, stmt)
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    name = alias.asname or alias.name
                    self.imports[name] = (
                        f"{target}.{alias.name}" if target else alias.name
                    )
                    self.module_level.add(name)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.module_level.add(stmt.name)
            elif isinstance(stmt, ast.ClassDef):
                self.module_level.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    for sub in ast.walk(target):
                        if isinstance(sub, ast.Name):
                            self.module_level.add(sub.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                self.module_level.add(stmt.target.id)

        # Second pass: extract every scope.  The module body itself is a
        # pseudo-function so module-level Stage()/map() calls are seen.
        module_scope = _ScopeExtractor(
            self,
            qualname=f"{self.module}.<module>",
            name="<module>",
            params=(),
            parent=None,
            is_lambda=False,
            line=1,
        )
        body = [
            stmt
            for stmt in tree.body
        ]
        self.functions[f"{self.module}.<module>"] = module_scope.run(body)

        return ModuleSummary(
            module=self.module,
            path=self.path,
            imports=dict(self.imports),
            functions=dict(self.functions),
            module_level_names=tuple(sorted(self.module_level)),
        )


def summarize_source(
    source: str, path: str = "<string>", module: Optional[str] = None
) -> ModuleSummary:
    """Parse one module's source into a :class:`ModuleSummary`."""
    tree = ast.parse(source, filename=path)
    name = module if module is not None else module_name_for(path)
    summary = _ModuleBuilder(name, path).build(tree)
    summary.noqa_directives = extract_noqa_directives(source)
    return summary


def extract_noqa_directives(source: str) -> Tuple[NoqaDirective, ...]:
    """Every ``# repro: noqa`` comment in the file, with parsed codes.

    Tokenizes rather than regex-scanning raw lines so the directive
    text appearing inside a docstring or string literal (as it does in
    the linter's own documentation) is not mistaken for a directive —
    that distinction is what keeps RPR014 free of false positives.
    """
    import io
    import tokenize

    from ..lint import _NOQA_RE

    directives: List[NoqaDirective] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return ()
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _NOQA_RE.search(token.string)
        if match is None:
            continue
        codes = match.group(1)
        parsed = (
            None
            if codes is None
            else tuple(c.strip() for c in codes.split(",") if c.strip())
        )
        directives.append(NoqaDirective(token.start[0], parsed))
    return tuple(directives)
