"""Cross-process hazard detection (rules RPR016–RPR017).

``ParallelExecutor`` pickles the work function and every work unit into
pool processes.  Two statically-detectable ways that contract breaks:

RPR016
    The work function is not a module-level callable: a lambda, a
    function nested inside another function (a closure), or a bound
    method.  These either fail to pickle outright (spawn start method)
    or drag captured state across the fork in ways that diverge from
    the serial run.
RPR017
    Work units alias shared mutable state: a local list/dict/array is
    embedded into several units *and* mutated in the same function, so
    parallel workers see a copy diverging from the serial in-process
    aliasing semantics.

Both rules trust parameters: a function that fans out a callable it
received (``run_fold_plan``-style) delegates the obligation to its
callers, which are checked at their own call sites.  ``repro/runtime``
itself is exempt — it is the layer allowed to know about processes.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Set

from ..lint import Finding
from .callgraph import CallGraph
from .summaries import FunctionSummary


def _exempt_path(path: str) -> bool:
    parts = Path(path).parts
    return any(
        part == "repro" and index + 1 < len(parts) and parts[index + 1] == "runtime"
        for index, part in enumerate(parts)
    )


def _fn_hazard(
    graph: CallGraph, scope: FunctionSummary, fn_ref: Optional[str], fn_kind: str
) -> Optional[str]:
    """Why this work-function reference is not pool-safe, or None."""
    if fn_kind == "lambda":
        return "a lambda"
    if fn_kind == "name":
        if fn_ref in scope.params:
            return None  # caller's obligation (trust boundary)
        target = graph.resolve_local_name(scope, fn_ref)
        if target is None:
            return None
        if target.is_lambda:
            return "a lambda"
        if target.is_nested:
            return (
                "a nested function (closure)"
                if target.free_names
                else "a nested function"
            )
        return None
    if fn_kind == "attribute":
        root = (fn_ref or "").split(".")[0]
        if root in ("self", "cls"):
            return "a bound method"
        module = graph.modules.get(scope.module)
        if module is not None and root in module.imports:
            return None  # module.function — picklable
        if fn_ref and root in scope.params:
            return "a bound method of a parameter"
        # Attribute on a local object: almost certainly a bound method.
        if fn_ref and root not in (module.imports if module else {}):
            return "a bound method"
    return None


def analyze_hazards(graph: CallGraph) -> List[Finding]:
    """Cross-process hazards at every ``executor.map`` dispatch site."""
    findings: List[Finding] = []
    for scope in graph.iter_functions():
        if _exempt_path(scope.path):
            continue
        mutated: Set[str] = {m.name for m in scope.mutations}
        for dispatch in scope.executor_maps:
            hazard = _fn_hazard(graph, scope, dispatch.fn_ref, dispatch.fn_kind)
            if hazard is not None:
                shown = (
                    dispatch.fn_ref
                    if dispatch.fn_ref and "<lambda:" not in dispatch.fn_ref
                    else "<lambda>"
                )
                findings.append(
                    Finding(
                        path=scope.path,
                        line=dispatch.line,
                        col=dispatch.col + 1,
                        code="RPR016",
                        message=(
                            f"{shown!r} submitted to {dispatch.receiver}."
                            f"map() is {hazard}; work functions must be "
                            f"module-level so they pickle into pool workers "
                            f"identically to the serial run"
                        ),
                    )
                )

            # RPR017: shared mutable locals embedded into the unit list.
            if dispatch.items_ref is None:
                continue
            embedded: Set[str] = set()
            embed_lines = {}
            for elem in scope.container_elems:
                if elem.var == dispatch.items_ref:
                    for name in elem.names:
                        embedded.add(name)
                        embed_lines.setdefault(name, elem.line)
            shared = sorted(embedded & mutated)
            for name in shared:
                findings.append(
                    Finding(
                        path=scope.path,
                        line=embed_lines[name],
                        col=dispatch.col + 1,
                        code="RPR017",
                        message=(
                            f"work units in {dispatch.items_ref!r} embed "
                            f"local {name!r}, which {scope.name}() also "
                            f"mutates in place; units forked into workers "
                            f"see a snapshot while the serial path sees the "
                            f"mutation — pass an immutable copy per unit"
                        ),
                    )
                )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings
