"""Linking module summaries into a whole-repo call graph.

Resolution is name-based and deliberately conservative: a call resolves
to a :class:`~repro.analysis.dataflow.summaries.FunctionSummary` only
when the callee text can be traced through local defs, module-level
defs, or the importing module's alias table to a function that was
actually summarized.  Anything else — methods on arbitrary objects,
third-party calls, computed callees — resolves to ``None`` and the
analyses treat it as an opaque trust boundary.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .summaries import CallRecord, FunctionSummary, ModuleSummary


class CallGraph:
    """An index over every summarized function, with call resolution."""

    def __init__(self, modules: Iterable[ModuleSummary]):
        self.modules: Dict[str, ModuleSummary] = {}
        self.functions: Dict[str, FunctionSummary] = {}
        for module in modules:
            if module is None:
                continue
            self.modules[module.module] = module
            self.functions.update(module.functions)

    # -- lookups ---------------------------------------------------------

    def function(self, qualname: str) -> Optional[FunctionSummary]:
        return self.functions.get(qualname)

    def module_of(self, fn: FunctionSummary) -> Optional[ModuleSummary]:
        return self.modules.get(fn.module)

    def iter_functions(self) -> Iterable[FunctionSummary]:
        return self.functions.values()

    # -- resolution ------------------------------------------------------

    def resolve_local_name(
        self, scope: FunctionSummary, name: str
    ) -> Optional[FunctionSummary]:
        """Resolve a bare name visible inside ``scope`` to a function.

        Search order mirrors Python scoping: nested defs of the scope
        itself, then enclosing function scopes, then module-level defs,
        then imported names.
        """
        # Nested def in this scope or an enclosing one.
        chain: List[str] = [scope.qualname]
        parent = scope.parent
        while parent is not None:
            chain.append(parent)
            enclosing = self.functions.get(parent)
            parent = enclosing.parent if enclosing is not None else None
        for base in chain:
            hit = self.functions.get(f"{base}.{name}")
            if hit is not None:
                return hit
        # Module-level function.
        hit = self.functions.get(f"{scope.module}.{name}")
        if hit is not None:
            return hit
        # Imported name: "from mod import fn" maps name -> mod.fn.
        module = self.modules.get(scope.module)
        if module is not None:
            target = module.imports.get(name)
            if target is not None:
                return self.functions.get(target)
        return None

    def resolve_call(
        self, scope: FunctionSummary, call: CallRecord
    ) -> Optional[FunctionSummary]:
        """Resolve one call site to a summarized function, if possible."""
        callee = call.callee
        if "." not in callee:
            return self.resolve_local_name(scope, callee)
        head, _, tail = callee.rpartition(".")
        if head in ("self", "cls") or "<expr>" in callee:
            return None
        module = self.modules.get(scope.module)
        if module is None:
            return None
        # "import repro.core.pipeline as p; p.fn()" -> repro.core.pipeline.fn
        target_module = module.imports.get(head)
        if target_module is not None:
            hit = self.functions.get(f"{target_module}.{tail}")
            if hit is not None:
                return hit
        # Dotted chain rooted at a known module name as written.
        return self.functions.get(callee)

    def resolve_ref(
        self, scope: FunctionSummary, ref: Optional[str]
    ) -> Optional[FunctionSummary]:
        """Resolve an argument reference (name / lambda qualname / dotted)."""
        if ref is None:
            return None
        if "<lambda:" in ref:
            return self.functions.get(ref)
        if "." not in ref:
            return self.resolve_local_name(scope, ref)
        return self.resolve_call(
            scope, CallRecord(callee=ref, line=0, col=0)
        )

    # -- derived relations ----------------------------------------------

    def callers_of(
        self, qualname: str
    ) -> List[Tuple[FunctionSummary, CallRecord]]:
        """Every (caller, call site) pair that resolves to ``qualname``."""
        out: List[Tuple[FunctionSummary, CallRecord]] = []
        for fn in self.functions.values():
            for call in fn.calls:
                target = self.resolve_call(fn, call)
                if target is not None and target.qualname == qualname:
                    out.append((fn, call))
        return out
