"""Stage purity verification (rules RPR010–RPR013).

Every function registered as an ``orchestration.Stage`` is a link in a
provenance chain: the pipeline graph digests its inputs and output and
assumes the function computed the latter *only* from the former.  That
assumption breaks silently if a stage mutates an input artifact
(upstream digests no longer describe what downstream stages saw),
writes global state (hidden channel between stages), performs its own
I/O (bypasses the content-addressed cache and its hit/miss
provenance), or reads wall-clock/OS entropy (same inputs, different
output).  This pass statically proves the absence of those four effect
classes for every stage function it can resolve:

RPR010
    In-place mutation of a stage input parameter — ``list.append`` /
    ``dict.__setitem__`` / attribute stores / augmented assignment /
    numpy ``out=`` aliasing on any declared input.
RPR011
    Assignment through ``global`` / ``nonlocal``, or attribute stores
    on module-level objects.
RPR012
    Direct file/OS I/O (``open``, ``np.save``, ``pickle.dump``,
    ``Path.write_text``, …).  Cache traffic must go through the
    injected ``StageContext`` helpers, which record hit/miss counts
    into provenance.
RPR013
    Wall-clock or OS-entropy reads (``time.time``, ``datetime.now``,
    ``os.urandom``, ``uuid.uuid4``, stdlib ``random``) and unseeded
    generator creation.  ``time.perf_counter`` is exempt: duration
    measurement is sanctioned as long as timings stay out of content
    digests (the ``__repro_content__`` convention).

The check covers the stage function body plus same-module helpers it
calls (to a small depth); imported library calls are the trusted API
boundary.  The ``ctx`` (first) parameter is exempt from RPR010 — the
``StageContext`` is *designed* to be written through
(``record_cache`` / ``set_units``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..lint import Finding
from .callgraph import CallGraph
from .summaries import FunctionSummary, StageRef

#: How many call-levels of same-module helpers the checker follows.
HELPER_DEPTH = 3


@dataclass(frozen=True)
class StageBinding:
    """One resolved Stage registration: the fn and where it was bound."""

    stage_name: str
    fn: FunctionSummary
    registered_at: Tuple[str, int]  # (path, line)


def resolve_stage_bindings(graph: CallGraph) -> List[StageBinding]:
    """Every ``Stage(...)`` call whose fn resolves to a summary."""
    bindings: List[StageBinding] = []
    for scope in graph.iter_functions():
        for ref in scope.stage_refs:
            fn = graph.resolve_ref(scope, ref.fn_ref)
            if fn is None:
                continue
            bindings.append(
                StageBinding(
                    stage_name=ref.stage_name or fn.name,
                    fn=fn,
                    registered_at=(scope.path, ref.line),
                )
            )
    return bindings


def _same_module_callees(
    graph: CallGraph, fn: FunctionSummary
) -> Iterator[FunctionSummary]:
    for call in fn.calls:
        target = graph.resolve_call(fn, call)
        if target is not None and target.module == fn.module:
            yield target


def _reachable_helpers(
    graph: CallGraph, fn: FunctionSummary, depth: int = HELPER_DEPTH
) -> List[FunctionSummary]:
    """The stage fn plus same-module helpers reachable within ``depth``."""
    seen: Dict[str, FunctionSummary] = {fn.qualname: fn}
    frontier = [fn]
    for _ in range(depth):
        next_frontier: List[FunctionSummary] = []
        for current in frontier:
            for callee in _same_module_callees(graph, current):
                if callee.qualname not in seen:
                    seen[callee.qualname] = callee
                    next_frontier.append(callee)
        frontier = next_frontier
        if not frontier:
            break
    return list(seen.values())


def _param_aliases(fn: FunctionSummary, params: Set[str]) -> Set[str]:
    """Params plus local names that alias them via simple assignment."""
    names = set(params)
    for target, source in fn.aliases:
        if source in names:
            names.add(target)
    return names


def check_stage_purity(
    graph: CallGraph, bindings: Optional[List[StageBinding]] = None
) -> List[Finding]:
    """Purity findings for every resolved stage function."""
    if bindings is None:
        bindings = resolve_stage_bindings(graph)
    findings: List[Finding] = []
    checked: Set[Tuple[str, str]] = set()

    for binding in bindings:
        key = (binding.stage_name, binding.fn.qualname)
        if key in checked:
            continue
        checked.add(key)
        findings.extend(_check_one(graph, binding))

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def _check_one(graph: CallGraph, binding: StageBinding) -> Iterator[Finding]:
    fn = binding.fn
    stage = binding.stage_name
    # The leading ctx parameter is the injected runtime handle; writes
    # through it (record_cache / set_units) are the sanctioned protocol.
    input_params = set(fn.params[1:]) if fn.params else set()

    # RPR010 — input mutation: only meaningful on the stage fn itself
    # (helpers receive whatever the stage passed; mutations of *their*
    # params are reported when the helper is itself a stage elsewhere).
    watched = _param_aliases(fn, input_params)
    for mutation in fn.mutations:
        if mutation.name in watched:
            yield Finding(
                path=fn.path,
                line=mutation.line,
                col=mutation.col + 1,
                code="RPR010",
                message=(
                    f"stage {stage!r} mutates its input "
                    f"{mutation.name!r} in place ({mutation.kind}); stage "
                    f"inputs are digested before execution — copy before "
                    f"modifying so upstream provenance stays truthful"
                ),
            )

    for member in _reachable_helpers(graph, fn):
        suffix = (
            ""
            if member.qualname == fn.qualname
            else f" (via helper {member.name}())"
        )
        for write in member.global_writes:
            yield Finding(
                path=member.path,
                line=write.line,
                col=write.col + 1,
                code="RPR011",
                message=(
                    f"stage {stage!r} writes {write.kind} state "
                    f"{write.name!r}{suffix}; stages must communicate only "
                    f"through declared artifacts"
                ),
            )
        for io in member.io_calls:
            yield Finding(
                path=member.path,
                line=io.line,
                col=io.col + 1,
                code="RPR012",
                message=(
                    f"stage {stage!r} performs direct I/O via "
                    f"{io.callee}(){suffix}; persistence must go through "
                    f"the injected StageContext cache helpers so traffic "
                    f"lands in provenance"
                ),
            )
        for clock in member.clock_calls:
            yield Finding(
                path=member.path,
                line=clock.line,
                col=clock.col + 1,
                code="RPR013",
                message=(
                    f"stage {stage!r} reads wall-clock/OS entropy via "
                    f"{clock.callee}(){suffix}; same inputs must produce "
                    f"the same artifact — inject time through config and "
                    f"randomness through the stage seed"
                ),
            )
        for creation in member.rng_creations:
            if creation.kind == "unseeded":
                yield Finding(
                    path=member.path,
                    line=creation.line,
                    col=creation.col + 1,
                    code="RPR013",
                    message=(
                        f"stage {stage!r} creates an OS-entropy RNG"
                        f"{suffix}; derive generators from the stage seed "
                        f"(ctx.seed) so reruns reproduce bit-identically"
                    ),
                )
