"""Interprocedural seed-flow analysis (rule RPR015).

The repo's determinism contract says every random draw must descend
from an explicit seed: a ``seed``/``rng`` parameter, a literal, or a
``SeedSequence.spawn`` child.  The per-file linter enforces the local
half (RPR001/002/006); this pass closes the interprocedural gap by
taint-tracking generator values across call boundaries:

* a function *consumes* RNG through a parameter when that parameter
  (transitively) reaches a stochastic drawing method;
* a function *returns unseeded* RNG when its return value is (or
  aliases) a generator created without a seed — including one obtained
  from a callee that itself returns unseeded RNG.

A finding is emitted wherever tainted (OS-entropy) RNG meets a
stochastic operation: directly, through a local alias, or by being
passed into a consuming parameter of a resolved callee.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..lint import Finding
from .callgraph import CallGraph
from .summaries import FunctionSummary

CODE = "RPR015"


def _consuming_params(graph: CallGraph) -> Dict[str, Set[str]]:
    """Fixed point: which parameters of which functions reach a draw."""
    consuming: Dict[str, Set[str]] = {}
    for fn in graph.iter_functions():
        params = set(fn.params)
        direct = {
            use.receiver.split(".")[0]
            for use in fn.stochastic_uses
        } & params
        if direct:
            consuming[fn.qualname] = direct

    changed = True
    while changed:
        changed = False
        for fn in graph.iter_functions():
            params = set(fn.params)
            current = consuming.get(fn.qualname, set())
            for call in fn.calls:
                target = graph.resolve_call(fn, call)
                if target is None:
                    continue
                target_consuming = consuming.get(target.qualname)
                if not target_consuming:
                    continue
                for index, ref in enumerate(call.arg_refs):
                    if ref is None or ref not in params:
                        continue
                    if index < len(target.params) and (
                        target.params[index] in target_consuming
                    ):
                        if ref not in current:
                            current = current | {ref}
                for kw, ref in call.kw_refs:
                    if ref is None or ref not in params:
                        continue
                    if kw in target_consuming and ref not in current:
                        current = current | {ref}
            if current and current != consuming.get(fn.qualname, set()):
                consuming[fn.qualname] = current
                changed = True
    return consuming


def _returns_unseeded(graph: CallGraph) -> Set[str]:
    """Fixed point: functions whose return value is tainted RNG."""
    unseeded: Set[str] = {
        fn.qualname
        for fn in graph.iter_functions()
        if fn.returns_unseeded_expr
        or set(fn.returns_names) & set(fn.tainted_vars)
    }
    changed = True
    while changed:
        changed = False
        for fn in graph.iter_functions():
            if fn.qualname in unseeded:
                continue
            tainted = _extended_tainted(graph, fn, unseeded)
            if set(fn.returns_names) & tainted:
                unseeded.add(fn.qualname)
                changed = True
    return unseeded


def _extended_tainted(
    graph: CallGraph, fn: FunctionSummary, returns_unseeded: Set[str]
) -> Set[str]:
    """Locally tainted vars, plus results of unseeded-returning calls."""
    tainted = set(fn.tainted_vars)
    for call in fn.calls:
        if call.assigned_to is None:
            continue
        target = graph.resolve_call(fn, call)
        if target is not None and target.qualname in returns_unseeded:
            tainted.add(call.assigned_to)
    # Close over simple name-to-name aliases, in program order.
    for alias_target, alias_source in fn.aliases:
        if alias_source in tainted:
            tainted.add(alias_target)
    return tainted


def analyze_seedflow(graph: CallGraph) -> List[Finding]:
    """Run the whole-repo seed-flow pass; returns unsuppressed findings."""
    consuming = _consuming_params(graph)
    returns_unseeded = _returns_unseeded(graph)
    findings: List[Finding] = []

    for fn in graph.iter_functions():
        tainted = _extended_tainted(graph, fn, returns_unseeded)
        creation_lines = {
            c.target: c.line for c in fn.rng_creations if c.target
        }

        for use in fn.stochastic_uses:
            root = use.receiver.split(".")[0]
            if use.receiver == "<unseeded>":
                findings.append(
                    Finding(
                        path=fn.path,
                        line=use.line,
                        col=use.col + 1,
                        code=CODE,
                        message=(
                            f"unseeded RNG reaches .{use.method}() in "
                            f"{fn.name}(); the generator is created from OS "
                            f"entropy — derive it from an explicit seed "
                            f"parameter or a spawned SeedSequence"
                        ),
                    )
                )
            elif root in tainted:
                origin = creation_lines.get(root)
                where = (
                    f"created unseeded at line {origin}"
                    if origin is not None
                    else "obtained from an unseeded source"
                )
                findings.append(
                    Finding(
                        path=fn.path,
                        line=use.line,
                        col=use.col + 1,
                        code=CODE,
                        message=(
                            f"RNG {root!r} ({where}) reaches "
                            f".{use.method}() in {fn.name}() without "
                            f"descending from an explicit seed parameter "
                            f"or a spawned SeedSequence"
                        ),
                    )
                )

        for call in fn.calls:
            target = graph.resolve_call(fn, call)
            if target is None:
                continue
            target_consuming = consuming.get(target.qualname)
            if not target_consuming:
                continue
            passed: List[str] = []
            for index, ref in enumerate(call.arg_refs):
                if (
                    ref in tainted
                    and index < len(target.params)
                    and target.params[index] in target_consuming
                ):
                    passed.append(ref)
            for kw, ref in call.kw_refs:
                if ref in tainted and kw in target_consuming:
                    passed.append(ref)
            for ref in passed:
                findings.append(
                    Finding(
                        path=fn.path,
                        line=call.line,
                        col=call.col + 1,
                        code=CODE,
                        message=(
                            f"unseeded RNG {ref!r} passed from {fn.name}() "
                            f"into {target.name}(), whose parameter reaches "
                            f"stochastic operations — thread an explicit "
                            f"seed or a spawned SeedSequence instead"
                        ),
                    )
                )

    findings.sort(key=lambda f: (f.path, f.line, f.col))
    return findings
