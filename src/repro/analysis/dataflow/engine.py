"""Whole-repo dataflow engine: parse in parallel, analyze as one graph.

The engine is the second tier of the static-analysis stack.  Each file
is parsed exactly once — in a worker process when ``workers > 1``,
which is why :mod:`~repro.analysis.dataflow.summaries` produces
picklable summaries and never retains an AST — then the summaries are
linked into one :class:`~repro.analysis.dataflow.callgraph.CallGraph`
and the interprocedural passes run over it:

* :mod:`~repro.analysis.dataflow.seedflow` — RPR015
* :mod:`~repro.analysis.dataflow.purity` — RPR010–RPR013
* :mod:`~repro.analysis.dataflow.hazards` — RPR016–RPR017

Suppression happens here, not in the passes: the engine sees every
pre-suppression finding (per-file lint *and* dataflow), so it knows
which ``# repro: noqa`` directives actually fired — any directive that
suppresses nothing is itself a finding (RPR014), keeping the
suppression surface honest.

A committed baseline file turns the analyzer into a ratchet: known
findings are tolerated, new ones fail the build, and
``--update-baseline`` re-records the current state.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..lint import Finding, iter_python_files, lint_source_all, report_text
from .callgraph import CallGraph
from .hazards import analyze_hazards
from .purity import check_stage_purity
from .seedflow import analyze_seedflow
from .summaries import FileAnalysis, NoqaDirective, summarize_source

#: The rule catalog of the dataflow tier (RPR900 is shared with lint).
DATAFLOW_RULES: Dict[str, str] = {
    "RPR010": (
        "Stage function mutates one of its input artifacts in place; "
        "upstream digests stop describing what downstream stages saw."
    ),
    "RPR011": (
        "Stage function writes global/nonlocal/module state; stages must "
        "communicate only through declared artifacts."
    ),
    "RPR012": (
        "Stage function performs direct file/OS I/O; persistence must go "
        "through the injected StageContext cache helpers."
    ),
    "RPR013": (
        "Stage function reads wall-clock/OS entropy or creates an "
        "unseeded generator; same inputs must produce the same artifact."
    ),
    "RPR014": (
        "Unused '# repro: noqa' directive: it suppresses no finding and "
        "should be removed."
    ),
    "RPR015": (
        "Unseeded RNG reaches a stochastic operation (interprocedural "
        "seed-flow); derive generators from an explicit seed parameter "
        "or a spawned SeedSequence."
    ),
    "RPR016": (
        "Lambda/nested function/bound method submitted to executor.map; "
        "work functions must be module-level so they pickle into pool "
        "workers identically to the serial run."
    ),
    "RPR017": (
        "Work units embed a local that the same function mutates in "
        "place; parallel workers see a snapshot while the serial path "
        "sees the mutation."
    ),
    "RPR900": "Syntax error: the file could not be parsed.",
}

BaselineKey = Tuple[str, str, int]


@dataclass
class AnalysisResult:
    """Everything one whole-repo analysis run produced."""

    findings: List[Finding] = field(default_factory=list)
    files: int = 0
    suppressed: int = 0
    baselined: int = 0
    errors: List[Tuple[str, str]] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return {
            "findings": [f.to_dict() for f in self.findings],
            "count": len(self.findings),
            "files": self.files,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "errors": [
                {"path": path, "error": message}
                for path, message in self.errors
            ],
        }


def _analyze_file(path: str) -> FileAnalysis:
    """Parse one file into summaries + pre-suppression lint findings.

    Module-level so it pickles into pool workers; returns only
    picklable dataclasses (never an AST).
    """
    try:
        source = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        return FileAnalysis(path=path, summary=None, error=str(exc))
    lint_findings = lint_source_all(source, path)
    try:
        summary = summarize_source(source, path)
    except SyntaxError:
        # lint_source_all already produced the RPR900 finding.
        return FileAnalysis(
            path=path,
            summary=None,
            lint_findings=lint_findings,
            error="syntax error",
        )
    return FileAnalysis(path=path, summary=summary, lint_findings=lint_findings)


def _suppression(
    directives: Sequence[NoqaDirective],
    candidates: Sequence[Finding],
) -> Tuple[Set[int], Set[int]]:
    """(suppressed finding indexes, used directive indexes)."""
    suppressed: Set[int] = set()
    used: Set[int] = set()
    for d_index, directive in enumerate(directives):
        for f_index, finding in enumerate(candidates):
            if finding.line != directive.line:
                continue
            if directive.codes is not None and (
                finding.code not in directive.codes
            ):
                continue
            used.add(d_index)
            suppressed.add(f_index)
    return suppressed, used


def analyze_paths(
    paths: Iterable[Path],
    workers: Optional[int] = None,
    executor=None,
) -> AnalysisResult:
    """Run the full dataflow analysis over every python file in ``paths``."""
    files = [str(p) for p in iter_python_files(Path(p) for p in paths)]
    if executor is None:
        # Lazy import: keeps `import repro.analysis.dataflow` free of the
        # orchestration/runtime dependency until an analysis actually runs.
        from ...orchestration.context import executor_for_workers

        executor = executor_for_workers(workers)
    analyses: List[FileAnalysis] = executor.map(_analyze_file, files)

    result = AnalysisResult(files=len(files))
    graph = CallGraph(
        a.summary for a in analyses if a.summary is not None
    )

    dataflow: List[Finding] = []
    dataflow.extend(analyze_seedflow(graph))
    dataflow.extend(check_stage_purity(graph))
    dataflow.extend(analyze_hazards(graph))

    by_path: Dict[str, List[Finding]] = {}
    for finding in dataflow:
        by_path.setdefault(finding.path, []).append(finding)

    kept: List[Finding] = []
    for analysis in analyses:
        if analysis.error is not None and analysis.summary is None:
            result.errors.append((analysis.path, analysis.error))
        # RPR900 findings pass straight through: an unparseable file is
        # unanalyzable, which the gate must not silently tolerate.
        kept.extend(
            f for f in analysis.lint_findings if f.code == "RPR900"
        )
        file_dataflow = by_path.get(analysis.path, [])
        directives = (
            analysis.summary.noqa_directives
            if analysis.summary is not None
            else ()
        )
        if not directives:
            kept.extend(file_dataflow)
            continue
        # Which directives fire against the union of lint + dataflow
        # findings?  Lint findings only mark directives as used; their
        # reporting is the per-file linter's job.
        candidates = list(analysis.lint_findings) + file_dataflow
        suppressed, used = _suppression(directives, candidates)
        lint_count = len(analysis.lint_findings)
        for offset, finding in enumerate(file_dataflow):
            if lint_count + offset in suppressed:
                result.suppressed += 1
            else:
                kept.append(finding)
        for d_index, directive in enumerate(directives):
            if d_index in used:
                continue
            codes = (
                "all rules"
                if directive.codes is None
                else ",".join(directive.codes)
            )
            kept.append(
                Finding(
                    path=analysis.path,
                    line=directive.line,
                    col=1,
                    code="RPR014",
                    message=(
                        f"unused suppression '# repro: noqa' ({codes}): "
                        f"no finding on this line matches — remove the "
                        f"directive"
                    ),
                )
            )

    kept.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    result.findings = kept
    return result


# -- baseline -------------------------------------------------------------

def _baseline_key(finding: Finding) -> BaselineKey:
    return (finding.path, finding.code, finding.line)


def load_baseline(path: Path) -> Set[BaselineKey]:
    """The committed set of tolerated findings (empty file = empty set)."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    return {
        (entry["path"], entry["code"], int(entry["line"]))
        for entry in data.get("findings", [])
    }


def save_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Record the current findings as the new tolerated baseline."""
    payload = {
        "version": 1,
        "findings": [
            {
                "path": f.path,
                "code": f.code,
                "line": f.line,
                "message": f.message,
            }
            for f in sorted(
                findings, key=lambda f: (f.path, f.line, f.col, f.code)
            )
        ],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )


def apply_baseline(
    result: AnalysisResult, baseline: Set[BaselineKey]
) -> AnalysisResult:
    """Drop findings recorded in the baseline; counts them instead."""
    fresh: List[Finding] = []
    for finding in result.findings:
        if _baseline_key(finding) in baseline:
            result.baselined += 1
        else:
            fresh.append(finding)
    result.findings = fresh
    return result


# -- CLI ------------------------------------------------------------------

def report_sarif(findings: Sequence[Finding]) -> str:
    from ..sarif import sarif_report

    return sarif_report(
        findings, tool_name="repro-dataflow", rules=DATAFLOW_RULES
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro check-determinism",
        description=(
            "Whole-repo determinism & purity analysis: interprocedural "
            "seed-flow, Stage purity contracts, cross-process hazards."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to analyze"
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        dest="fmt",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON of tolerated findings; new findings still fail",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="re-record current findings into --baseline and exit 0",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="parse files with this many processes (default: serial)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule codes to report (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    return parser


def run_cli(args: argparse.Namespace) -> int:
    """The CLI body, shared by ``python -m repro.analysis.dataflow``
    and the ``repro check-determinism`` subcommand."""
    if args.list_rules:
        for code in sorted(DATAFLOW_RULES):
            print(f"{code}  {DATAFLOW_RULES[code]}")
        return 0
    if not args.paths:
        print("error: no paths to analyze", file=sys.stderr)
        return 2
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        print(
            f"no such file or directory: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2
    if args.update_baseline and not args.baseline:
        print("error: --update-baseline requires --baseline", file=sys.stderr)
        return 2

    result = analyze_paths(
        [Path(p) for p in args.paths], workers=args.workers
    )
    if args.select:
        codes = {c.strip() for c in args.select.split(",") if c.strip()}
        unknown = codes - set(DATAFLOW_RULES)
        if unknown:
            print(
                f"unknown rule code(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2
        result.findings = [f for f in result.findings if f.code in codes]

    if args.update_baseline:
        save_baseline(Path(args.baseline), result.findings)
        print(
            f"baseline updated: {len(result.findings)} finding(s) recorded "
            f"in {args.baseline}"
        )
        return 0
    if args.baseline:
        result = apply_baseline(result, load_baseline(Path(args.baseline)))

    if args.fmt == "json":
        print(json.dumps(result.to_dict(), indent=2))
    elif args.fmt == "sarif":
        print(report_sarif(result.findings))
    else:
        print(report_text(result.findings))
        extras = []
        if result.suppressed:
            extras.append(f"{result.suppressed} suppressed via noqa")
        if result.baselined:
            extras.append(f"{result.baselined} tolerated via baseline")
        if extras:
            print("(" + "; ".join(extras) + ")")
    return 1 if result.findings else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    return run_cli(build_parser().parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
