"""Whole-repo dataflow analysis: the second tier of static analysis.

:mod:`repro.analysis.lint` is tier one — per-file, syntactic, fast.
This package is tier two: it parses every module reachable from the
scanned roots into picklable :class:`~repro.analysis.dataflow.summaries.ModuleSummary`
records (fanned out over a :class:`~repro.runtime.executor.Executor`),
links them into a call graph, and runs four whole-repo analyses that
per-file rules cannot express:

``seedflow``  (RPR015)
    Interprocedural taint tracking of ``np.random.Generator`` /
    ``SeedSequence`` values: any RNG that reaches a stochastic
    operation without descending from an explicit seed parameter, a
    literal seed, or a spawned sequence is reported — the
    interprocedural generalization of RPR001/002/006.
``purity``  (RPR010–RPR013)
    Static purity contracts for every function registered as an
    ``orchestration.Stage``: no in-place mutation of input artifacts,
    no module/class global writes, no I/O outside the injected cache
    helpers, no wall-clock/OS-entropy reads.
``hazards``  (RPR016–RPR017)
    Cross-process safety of ``Executor.map`` fan-outs: lambdas,
    closures, and bound methods are not picklable work functions, and
    work units must not alias shared mutable locals.
``shapeflow``
    End-to-end artifact shape/dtype flow through ``PipelineGraph``
    definitions — enforced at graph build time, not by the linter
    (see :mod:`repro.analysis.dataflow.shapeflow`).

The engine (:mod:`repro.analysis.dataflow.engine`) merges these
findings with unused-suppression detection (RPR014), applies
``# repro: noqa`` suppression and the committed baseline, and backs the
``repro check-determinism`` CLI.
"""

from .engine import (
    AnalysisResult,
    DATAFLOW_RULES,
    analyze_paths,
    apply_baseline,
    load_baseline,
    main,
    save_baseline,
)
from .shapeflow import ArtifactFlowError, ArtifactSpec, check_stage_flow
from .summaries import FileAnalysis, FunctionSummary, ModuleSummary, summarize_source

__all__ = [
    "AnalysisResult",
    "DATAFLOW_RULES",
    "analyze_paths",
    "apply_baseline",
    "load_baseline",
    "main",
    "save_baseline",
    "ArtifactFlowError",
    "ArtifactSpec",
    "check_stage_flow",
    "FileAnalysis",
    "FunctionSummary",
    "ModuleSummary",
    "summarize_source",
]
