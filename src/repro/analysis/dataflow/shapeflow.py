"""Artifact shape/dtype flow checking for pipeline graphs.

:mod:`repro.analysis.shapes` proves a *layer stack* consistent before
any forward pass; this module lifts the same idea one level up, to the
:class:`~repro.orchestration.graph.PipelineGraph`: stages may declare
what they produce (``output_spec``) and what they require
(``input_specs``), and :func:`check_stage_flow` proves every declared
edge compatible at graph *build* time — before a single stage runs.

Declarations are optional and independently useful: an undeclared side
of an edge is simply not checked (vacuously compatible), so existing
graphs keep working unchanged and specs can be added incrementally
where mismatches hurt most (feature-map shape into clustering, window
shape into the CNN-LSTM).

Wildcards: a dimension of ``None`` matches anything (batch/fold counts
that depend on the dataset), and a dtype of ``None`` matches any dtype.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ...errors import OrchestrationError

DimSpec = Optional[int]


class ArtifactFlowError(OrchestrationError):
    """A declared artifact edge is statically incompatible.

    Carries the producing and consuming stage names plus both specs, so
    callers (and tests) can assert on the exact edge rather than parse
    the message.  Subclasses :class:`~repro.errors.OrchestrationError`:
    a mismatched edge is a malformed graph.
    """

    def __init__(
        self,
        message: str,
        *,
        artifact: str,
        producer: str,
        consumer: str,
        produced: "ArtifactSpec",
        required: "ArtifactSpec",
    ):
        self.artifact = artifact
        self.producer = producer
        self.consumer = consumer
        self.produced = produced
        self.required = required
        super().__init__(
            f"artifact {artifact!r}: stage {producer!r} produces "
            f"{produced}, but stage {consumer!r} requires {required} "
            f"— {message}"
        )


@dataclass(frozen=True)
class ArtifactSpec:
    """A symbolic artifact contract: shape with wildcards, plus dtype.

    ``shape=None`` means "any shape" (only the dtype is constrained);
    a dimension of ``None`` is a wildcard; ``dtype=None`` means "any
    dtype".  ``ArtifactSpec()`` therefore matches everything.
    """

    shape: Optional[Tuple[DimSpec, ...]] = None
    dtype: Optional[str] = None

    def __post_init__(self) -> None:
        if self.shape is not None:
            object.__setattr__(
                self,
                "shape",
                tuple(None if s is None else int(s) for s in self.shape),
            )

    def __str__(self) -> str:
        shape = (
            "(*)"
            if self.shape is None
            else "("
            + ", ".join("?" if s is None else str(s) for s in self.shape)
            + ("," if len(self.shape) == 1 else "")
            + ")"
        )
        return f"{shape}:{self.dtype or '*'}"


def specs_compatible(
    produced: ArtifactSpec, required: ArtifactSpec
) -> Optional[str]:
    """Why ``produced`` cannot satisfy ``required``, or None if it can."""
    if produced.shape is not None and required.shape is not None:
        if len(produced.shape) != len(required.shape):
            return (
                f"rank mismatch ({len(produced.shape)} vs "
                f"{len(required.shape)})"
            )
        for axis, (have, want) in enumerate(
            zip(produced.shape, required.shape)
        ):
            if have is not None and want is not None and have != want:
                return f"axis {axis} mismatch ({have} vs {want})"
    if (
        produced.dtype is not None
        and required.dtype is not None
        and produced.dtype != required.dtype
    ):
        return f"dtype mismatch ({produced.dtype} vs {required.dtype})"
    return None


def _spec_of_output(stage) -> Optional[ArtifactSpec]:
    return getattr(stage, "output_spec", None)


def _specs_of_inputs(stage) -> dict:
    return getattr(stage, "input_specs", None) or {}


def check_stage_flow(
    stages: Sequence,
    initial_specs: Optional[dict] = None,
) -> List[Tuple[str, str, str]]:
    """Verify every declared artifact edge among ``stages``.

    ``stages`` duck-types :class:`~repro.orchestration.stage.Stage`
    (``name`` / ``requires`` / ``provides`` plus the optional spec
    fields).  ``initial_specs`` optionally declares specs for artifacts
    the caller supplies to :meth:`PipelineGraph.run` directly.

    Returns the list of checked edges ``(producer, consumer, artifact)``
    — useful for asserting coverage — and raises
    :class:`ArtifactFlowError` on the first incompatible edge, naming
    both stages.
    """
    producers = {}
    produced_specs = dict(initial_specs or {})
    for stage in stages:
        producers[stage.provides] = stage.name
        spec = _spec_of_output(stage)
        if spec is not None:
            produced_specs[stage.provides] = spec

    checked: List[Tuple[str, str, str]] = []
    for stage in stages:
        for artifact, required in _specs_of_inputs(stage).items():
            if artifact not in stage.requires:
                raise OrchestrationError(
                    f"stage {stage.name!r} declares an input spec for "
                    f"{artifact!r}, which is not in its requires tuple"
                )
            produced = produced_specs.get(artifact)
            if produced is None:
                continue  # producer undeclared: vacuously compatible
            producer = producers.get(artifact, "<initial>")
            checked.append((producer, stage.name, artifact))
            reason = specs_compatible(produced, required)
            if reason is not None:
                raise ArtifactFlowError(
                    reason,
                    artifact=artifact,
                    producer=producer,
                    consumer=stage.name,
                    produced=produced,
                    required=required,
                )
    return checked
